// Regional failover scenario — the paper's future-work vision in action:
// "regional autonomous, self-governed and self-repairing mechanisms ...
// less vulnerable to the failures of a single mechanism".
//
// A continental CDN is partitioned into latency-coherent regions, each
// running its own AGT-RAM decision body.  We (1) place replicas regionally,
// (2) kill one regional centre and show the damage is contained, and
// (3) let the adaptive migration protocol re-route the orphaned demand by
// re-planning with the survivors.
#include <iostream>

#include "baselines/greedy.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/adaptive.hpp"
#include "core/agt_ram.hpp"
#include "core/regional.hpp"
#include "drp/builder.hpp"
#include "drp/cost_model.hpp"
#include "sim/replay.hpp"

int main(int argc, char** argv) {
  using namespace agtram;

  common::Cli cli("Regional mechanisms with failover and adaptive re-plan");
  cli.add_flag("servers", "120", "number of servers");
  cli.add_flag("objects", "1200", "number of objects");
  cli.add_flag("regions", "6", "autonomous regions");
  cli.add_flag("seed", "3141", "experiment seed");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  drp::InstanceSpec spec;
  spec.servers = static_cast<std::uint32_t>(cli.get_int("servers"));
  spec.objects = static_cast<std::uint32_t>(cli.get_int("objects"));
  spec.topology = net::TopologyKind::TransitStub;  // hierarchical Internet
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  spec.instance.capacity_fraction = 0.015;
  spec.instance.rw_ratio = 0.93;
  const drp::Problem problem = drp::make_instance(spec);
  const double initial = drp::CostModel::initial_cost(problem);

  core::RegionalConfig healthy;
  healthy.regions = static_cast<std::uint32_t>(cli.get_int("regions"));
  healthy.seed = spec.seed;

  // --- 1. Healthy regional placement.
  const auto placed = core::run_regional(problem, healthy);
  {
    common::Table table({"region", "centre", "members", "replicas",
                         "clearing charges"});
    table.set_title("healthy regional run — savings " +
                    common::Table::pct(
                        (initial -
                         drp::CostModel::total_cost(placed.placement)) /
                        initial) +
                    " in " + std::to_string(placed.epochs) + " epochs");
    for (std::size_t r = 0; r < placed.regions.size(); ++r) {
      const auto& region = placed.regions[r];
      table.add_row({std::to_string(r), "S" + std::to_string(region.centre),
                     std::to_string(region.member_count),
                     std::to_string(region.replicas_placed),
                     common::Table::num(region.charges, 0)});
    }
    table.print(std::cout);
  }

  // --- 2. Kill the busiest region's decision body and re-run from scratch
  // (what a deployment would have after the outage, with no failover).
  std::uint32_t busiest = 0;
  for (std::uint32_t r = 1; r < placed.regions.size(); ++r) {
    if (placed.regions[r].replicas_placed >
        placed.regions[busiest].replicas_placed) {
      busiest = r;
    }
  }
  core::RegionalConfig outage = healthy;
  outage.failed_regions = {busiest};
  const auto degraded = core::run_regional(problem, outage);

  // --- 3a. Selfish failover: surviving agents re-price their candidates
  // against the degraded scheme.  This predictably places ~nothing — the
  // orphaned demand belongs to the dead region's *readers*, and a selfish
  // agent never hosts for someone else's benefit.  A structural property
  // of the mechanism worth seeing once.
  std::vector<drp::ServerId> survivors;
  std::vector<bool> survivor_mask(problem.server_count(), false);
  for (drp::ServerId i = 0; i < problem.server_count(); ++i) {
    if (degraded.clustering.assignment[i] != busiest) {
      survivors.push_back(i);
      survivor_mask[i] = true;
    }
  }
  const auto failover = core::run_agt_ram_from(
      problem, core::AgtRamConfig{}, degraded.placement, &survivors);

  // --- 3b. Global-view repair: a centralised greedy pass restricted to
  // surviving sites — it happily parks replicas near the orphaned readers.
  baselines::GreedyConfig repair_cfg;
  repair_cfg.allowed_sites = &survivor_mask;
  const auto repaired = baselines::run_greedy_from(
      problem, degraded.placement, repair_cfg);

  {
    common::Table table({"scenario", "savings", "mean read latency",
                         "local reads"});
    table.set_title("containment: region " + std::to_string(busiest) +
                    " (the busiest) loses its decision body");
    const auto row = [&](const std::string& name,
                         const drp::ReplicaPlacement& placement) {
      const auto stats = sim::replay(placement);
      table.add_row({name,
                     common::Table::pct(
                         (initial - drp::CostModel::total_cost(placement)) /
                         initial),
                     common::Table::num(stats.read_latency.mean, 2),
                     common::Table::pct(stats.read_latency.local_fraction)});
    };
    row("healthy (" + std::to_string(healthy.regions) + " regions)",
        placed.placement);
    row("outage, no failover", degraded.placement);
    row("outage + selfish failover", failover.placement);
    row("outage + global-view repair", repaired);
    table.print(std::cout);
  }

  std::cout << "\nselfish failover placed " << failover.rounds.size()
            << " replicas (agents never host for the dead region's readers);"
            << "\nthe global-view repair placed "
            << repaired.extra_replica_count() -
                   degraded.placement.extra_replica_count()
            << " replicas near the orphaned demand.\n";
  return 0;
}
