// A week in production: the horizon driver compares the three operational
// policies a CDN could run as demand drifts day over day — freeze the
// day-0 plan, rebuild nightly from scratch, or run the paper's adaptive
// replication/migration protocol.
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "drp/builder.hpp"
#include "sim/horizon.hpp"

int main(int argc, char** argv) {
  using namespace agtram;

  common::Cli cli("one simulated week of drifting demand under three "
                  "operational policies");
  cli.add_flag("servers", "100", "number of servers");
  cli.add_flag("objects", "1000", "number of objects");
  cli.add_flag("days", "7", "horizon length");
  cli.add_flag("drift", "0.2", "per-day hotspot shift fraction");
  cli.add_flag("seed", "2024", "experiment seed");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  drp::InstanceSpec spec;
  spec.servers = static_cast<std::uint32_t>(cli.get_int("servers"));
  spec.objects = static_cast<std::uint32_t>(cli.get_int("objects"));
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  spec.instance.capacity_fraction = 0.012;
  spec.instance.rw_ratio = 0.92;
  const drp::Problem problem = drp::make_instance(spec);
  std::cout << "instance: " << problem.summary() << "\n\n";

  for (const auto policy : {sim::HorizonPolicy::Stale,
                            sim::HorizonPolicy::Rebuild,
                            sim::HorizonPolicy::Adapt}) {
    sim::HorizonConfig cfg;
    cfg.days = static_cast<std::uint32_t>(cli.get_int("days"));
    cfg.policy = policy;
    cfg.drift.shift_fraction = cli.get_double("drift");
    cfg.drift.churn_fraction = cli.get_double("drift") / 2.0;
    cfg.seed = spec.seed;
    const sim::HorizonResult result = sim::run_horizon(problem, cfg);

    common::Table table({"day", "demand moved", "savings", "mean latency",
                         "local reads", "churn (units)", "replicas"});
    table.set_title("policy: " + std::string(sim::to_string(policy)) +
                    "  (mean savings " +
                    common::Table::pct(result.mean_savings) +
                    ", total churn " +
                    std::to_string(result.total_churn_units) + " units)");
    for (const sim::DayRecord& day : result.days) {
      table.add_row({std::to_string(day.day),
                     common::Table::pct(day.demand_moved),
                     common::Table::pct(day.savings),
                     common::Table::num(day.mean_read_latency, 2),
                     common::Table::pct(day.local_read_fraction),
                     std::to_string(day.churn_units),
                     std::to_string(day.replicas)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "the adaptive protocol tracks rebuild-quality savings at a "
               "fraction of the churn — the paper's migration claim.\n";
  return 0;
}
