// CDN scenario: the paper's motivating workload end to end.
//
// Synthesises a World-Cup-'98-style multi-day access trace, pushes it
// through the log-processing pipeline (present-in-all-days filter, top-K
// clients, 1-to-many client/server mapping), builds a DRP instance on an
// Inet-style AS-level topology, and runs the semi-distributed AGT-RAM
// deployment with full message accounting — the workflow a CDN operator
// would run nightly to refresh replica placement from yesterday's logs.
#include <algorithm>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "drp/builder.hpp"
#include "drp/cost_model.hpp"
#include "net/topology.hpp"
#include "runtime/distributed_mechanism.hpp"
#include "trace/pipeline.hpp"
#include "trace/worldcup.hpp"

int main(int argc, char** argv) {
  using namespace agtram;

  common::Cli cli("CDN replica placement from synthetic World Cup '98 logs");
  cli.add_flag("servers", "120", "CDN points of presence");
  cli.add_flag("days", "13", "day logs to synthesise (paper: 13 Fridays)");
  cli.add_flag("objects", "1500", "object universe of the site");
  cli.add_flag("clients", "500", "clients kept by the pipeline (paper: 500)");
  cli.add_flag("requests", "40000", "requests per day");
  cli.add_flag("capacity", "0.01", "replica headroom fraction per server");
  cli.add_flag("rw", "0.93", "read fraction after update injection");
  cli.add_flag("seed", "1998", "experiment seed");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const auto servers = static_cast<std::uint32_t>(cli.get_int("servers"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // --- 1. Synthesise the access logs.
  trace::WorldCupConfig wc;
  wc.days = static_cast<std::uint32_t>(cli.get_int("days"));
  wc.object_universe = static_cast<std::uint32_t>(cli.get_int("objects"));
  wc.core_objects = wc.object_universe * 2 / 3;
  wc.clients = static_cast<std::uint32_t>(cli.get_int("clients")) * 2;
  wc.requests_per_day = static_cast<std::uint64_t>(cli.get_int("requests"));
  wc.seed = seed;
  const auto days = trace::generate_worldcup_trace(wc);
  std::uint64_t raw_requests = 0;
  for (const auto& day : days) raw_requests += day.requests.size();
  std::cout << "synthesised " << days.size() << " day logs, " << raw_requests
            << " requests\n";

  // --- 2. The paper's log-processing script.
  trace::PipelineConfig pipe;
  pipe.servers = servers;
  pipe.top_clients = static_cast<std::uint32_t>(cli.get_int("clients"));
  pipe.min_fanout = 1;
  pipe.max_fanout = 3;
  pipe.seed = seed ^ 0xc0ffee;
  const trace::Workload workload = trace::run_pipeline(days, pipe);
  std::cout << "pipeline kept " << workload.object_count()
            << " objects present in all " << days.size() << " logs and "
            << workload.total_requests << " requests from the top "
            << pipe.top_clients << " clients\n";

  // --- 3. AS-level topology and the DRP instance.
  net::TopologyConfig topo;
  topo.kind = net::TopologyKind::PowerLaw;
  topo.nodes = servers;
  topo.seed = seed ^ 0xa5;
  const net::Graph graph = net::generate_topology(topo);
  auto distances = std::make_shared<const net::DistanceMatrix>(
      net::DistanceMatrix::compute(graph));
  std::cout << "topology: " << graph.node_count() << " nodes, "
            << graph.edge_count() << " edges, diameter "
            << distances->diameter() << " cost units\n";

  drp::InstanceConfig inst;
  inst.capacity_fraction = cli.get_double("capacity");
  inst.rw_ratio = cli.get_double("rw");
  inst.seed = seed ^ 0xbeef;
  const drp::Problem problem =
      drp::build_problem(std::move(distances), workload, inst);
  std::cout << "instance: " << problem.summary() << "\n\n";

  // --- 4. Semi-distributed AGT-RAM.
  const double initial = drp::CostModel::initial_cost(problem);
  const auto report = runtime::run_distributed(problem);
  const double final_cost =
      drp::CostModel::total_cost(report.result.placement);

  common::Table table({"metric", "value"});
  table.set_title("nightly placement refresh");
  table.add_row({"OTC before", common::Table::num(initial, 0)});
  table.add_row({"OTC after", common::Table::num(final_cost, 0)});
  table.add_row({"savings", common::Table::pct((initial - final_cost) / initial)});
  table.add_row({"replicas placed",
                 std::to_string(report.result.replicas_placed())});
  table.add_row({"mechanism rounds", std::to_string(report.messages.rounds)});
  table.add_row({"protocol bytes", std::to_string(report.messages.total_bytes())});
  table.add_row({"simulated protocol time (s)",
                 common::Table::num(report.messages.simulated_seconds, 2)});
  table.add_row({"wall time (s)", common::Table::num(report.wall_seconds, 3)});
  table.print(std::cout);

  // --- 5. Which objects got replicated the most (the site's hot set).
  std::vector<std::pair<std::size_t, drp::ObjectIndex>> spread;
  for (drp::ObjectIndex k = 0; k < problem.object_count(); ++k) {
    spread.emplace_back(report.result.placement.replicators(k).size(), k);
  }
  std::sort(spread.rbegin(), spread.rend());
  common::Table hot({"object", "replicas", "reads", "size (units)"});
  hot.set_title("most replicated objects (the Zipf head)");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, spread.size()); ++i) {
    const drp::ObjectIndex k = spread[i].second;
    hot.add_row({"O" + std::to_string(workload.object_ids[k]),
                 std::to_string(spread[i].first),
                 std::to_string(problem.access.total_reads(k)),
                 std::to_string(problem.object_units[k])});
  }
  hot.print(std::cout);
  return 0;
}
