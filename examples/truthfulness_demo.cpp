// Truthfulness demo: the game-theoretic machinery of Sections 3-4 made
// visible on a small instance.
//
// Walks through (1) the agents' private valuations, (2) one mechanism round
// with its second-price clearing, (3) the one-shot dominance audit of
// Lemma 1 / Theorem 5, and (4) what goes wrong for a deviating agent under
// the first-price rule that Axiom 5 rejects.
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/agt_ram.hpp"
#include "core/audit.hpp"
#include "core/strategy.hpp"
#include "drp/builder.hpp"
#include "drp/cost_model.hpp"

int main(int argc, char** argv) {
  using namespace agtram;

  common::Cli cli("Axiomatic mechanism walkthrough: valuations, clearing, "
                  "and the truthfulness audits");
  cli.add_flag("servers", "12", "number of servers");
  cli.add_flag("objects", "30", "number of objects");
  cli.add_flag("seed", "5", "experiment seed");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  drp::InstanceSpec spec;
  spec.servers = static_cast<std::uint32_t>(cli.get_int("servers"));
  spec.objects = static_cast<std::uint32_t>(cli.get_int("objects"));
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  spec.instance.capacity_fraction = 0.08;
  spec.instance.rw_ratio = 0.9;
  const drp::Problem problem = drp::make_instance(spec);

  // --- 1. Private valuations (Axiom 2): what each agent would save by
  // hosting its favourite object.
  {
    const drp::ReplicaPlacement primaries(problem);
    common::Table table({"agent", "best object", "valuation CoR (Eq. 5)"});
    table.set_title("round-0 private valuations");
    for (drp::ServerId i = 0; i < problem.server_count(); ++i) {
      double best = 0.0;
      drp::ObjectIndex best_k = 0;
      for (const auto& a : problem.access.server_objects(i)) {
        if (a.reads == 0 || problem.primary[a.object] == i) continue;
        const double v = drp::CostModel::agent_benefit(primaries, i, a.object);
        if (v > best) {
          best = v;
          best_k = a.object;
        }
      }
      table.add_row({"S" + std::to_string(i),
                     best > 0 ? "O" + std::to_string(best_k) : "-",
                     common::Table::num(best, 0)});
    }
    table.print(std::cout);
  }

  // --- 2. Run the mechanism and show the first rounds' clearing.
  const core::MechanismResult result = core::run_agt_ram(problem);
  {
    common::Table table({"round", "winner", "object", "winning report",
                         "second-price charge", "winner's round utility"});
    table.set_title("mechanism rounds (Axiom 6) with second-price clearing "
                    "(Axiom 5)");
    for (std::size_t r = 0; r < std::min<std::size_t>(8, result.rounds.size());
         ++r) {
      const auto& round = result.rounds[r];
      table.add_row({std::to_string(r), "S" + std::to_string(round.winner),
                     "O" + std::to_string(round.object),
                     common::Table::num(round.claimed_value, 0),
                     common::Table::num(round.payment, 0),
                     common::Table::num(round.true_value - round.payment, 0)});
    }
    table.print(std::cout);
    std::cout << "total rounds: " << result.rounds.size() << ", final savings: "
              << common::Table::pct(drp::CostModel::savings(result.placement))
              << "\n\n";
  }

  // --- 3. One-shot dominance audit (Axiom 3).
  const std::vector<double> distortions{0.5, 0.8, 1.5, 3.0};
  {
    const auto trials = core::audit_one_shot_truthfulness(
        problem, core::PaymentRule::SecondPrice, distortions);
    std::size_t manipulable = 0;
    for (const auto& t : trials) {
      if (t.margin() < -1e-9) ++manipulable;
    }
    std::cout << "second-price one-shot audit: " << trials.size()
              << " (agent x distortion) trials, " << manipulable
              << " profitable deviations  -> truth-telling is dominant\n";
  }

  // --- 4. The same audit under first-price: shading pays.
  {
    const auto trials = core::audit_one_shot_truthfulness(
        problem, core::PaymentRule::FirstPrice, distortions);
    common::Table table({"agent", "distortion", "truthful utility",
                         "deviant utility"});
    table.set_title("first-price counterexamples (why Axiom 5 picks "
                    "second-price)");
    std::size_t shown = 0;
    for (const auto& t : trials) {
      if (t.margin() < -1e-9 && shown < 5) {
        table.add_row({"S" + std::to_string(t.agent),
                       "x" + common::Table::num(t.distortion, 2),
                       common::Table::num(t.truthful_utility, 0),
                       common::Table::num(t.deviant_utility, 0)});
        ++shown;
      }
    }
    if (shown == 0) {
      std::cout << "(no first-price counterexample on this seed; try "
                   "--seed)\n";
    } else {
      table.print(std::cout);
    }
  }

  // --- 5. Strategic agents in the *full* sequential game: inject a
  // StrategyProfile into the report path and sweep deviation magnitudes
  // with core::strategic_audit.  The exact invariant (checked every round
  // by a DominanceAuditor) is the one-shot one; the full-game margins are
  // empirical — under-bidders can shift wins to later, cheaper rounds, but
  // no single round ever rewards the lie.
  {
    core::StrategicAuditConfig audit_cfg;
    audit_cfg.agents_to_probe = 3;
    audit_cfg.collusion_size = 3;
    const core::StrategicAuditReport report =
        core::strategic_audit(problem, audit_cfg);

    common::Table table({"agent", "deviation", "truthful utility",
                         "deviant utility", "round violations"});
    table.set_title("strategic sweep (core::strategic_audit): per-round "
                    "dominance under every deviation");
    for (const auto& trial : report.trials) {
      const char* kind =
          trial.kind == core::DeviationKind::Inflate
              ? "inflate"
              : trial.kind == core::DeviationKind::Zero ? "zero" : "deflate";
      table.add_row({"S" + std::to_string(trial.agent),
                     std::string(kind) + " x" +
                         common::Table::num(trial.factor, 2),
                     common::Table::num(trial.truthful_utility, 0),
                     common::Table::num(trial.deviant_utility, 0),
                     std::to_string(trial.round_violations)});
    }
    table.print(std::cout);
    std::cout << "per-round dominance: "
              << (report.dominance_holds ? "held in every audited round"
                                         : "VIOLATED")
              << " (" << report.total_round_violations << " violations)\n";
    std::cout << "bidding ring of " << report.collusion.members.size()
              << ": centre revenue " << report.collusion.truthful_revenue
              << " (truthful) -> " << report.collusion.collusive_revenue
              << " (ring)\n";

    // The same lie wired straight into a mechanism run, for comparison: a
    // compiled StrategyProfile is just AgtRamConfig::strategy.
    core::StrategyProfile lie;
    lie.deviations.push_back(
        {report.trials.empty() ? drp::ServerId{0} : report.trials[0].agent,
         core::DeviationKind::Zero, 1.0});
    core::AgtRamConfig lie_cfg;
    lie_cfg.strategy = lie.compile(problem.server_count());
    const core::MechanismResult lied = core::run_agt_ram(problem, lie_cfg);
    std::cout << "one agent zero-bidding end to end: savings "
              << common::Table::pct(drp::CostModel::savings(result.placement))
              << " (truthful) vs "
              << common::Table::pct(drp::CostModel::savings(lied.placement))
              << " (lying)\n";
  }
  return 0;
}
