// Scalability study: the paper's core systems argument is that the
// semi-distributed design scales — the centre compares M scalars per round
// while the O(N)-heavy valuation work stays on the servers.  This example
// grows the system (fixed N/M density) and reports AGT-RAM's wall time,
// rounds, and the centre's per-round traffic, next to the centralised
// Greedy baseline whose cost grows much faster.
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "baselines/greedy.hpp"
#include "core/agt_ram.hpp"
#include "drp/builder.hpp"
#include "drp/cost_model.hpp"
#include "runtime/distributed_mechanism.hpp"

int main(int argc, char** argv) {
  using namespace agtram;

  common::Cli cli("Scalability of the semi-distributed mechanism vs. the "
                  "centralised greedy");
  cli.add_flag("sizes", "50,100,200,400", "server counts to sweep");
  cli.add_flag("density", "10", "objects per server (N = density * M)");
  cli.add_flag("seed", "17", "experiment seed");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const auto density = static_cast<std::uint32_t>(cli.get_int("density"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  common::Table table({"M", "N", "AGT-RAM (s)", "Greedy (s)", "speedup",
                       "rounds", "centre msgs/round", "AGT-RAM savings",
                       "Greedy savings"});
  table.set_title("scaling sweep (fixed object density per server)");

  for (const double m : cli.get_double_list("sizes")) {
    drp::InstanceSpec spec;
    spec.servers = static_cast<std::uint32_t>(m);
    spec.objects = spec.servers * density;
    spec.seed = seed;
    spec.instance.capacity_fraction = 0.01;
    spec.instance.rw_ratio = 0.92;
    const drp::Problem problem = drp::make_instance(spec);
    const double initial = drp::CostModel::initial_cost(problem);

    common::Timer agt_timer;
    const auto report = runtime::run_distributed(problem);
    const double agt_seconds = agt_timer.seconds();
    const double agt_savings =
        (initial - drp::CostModel::total_cost(report.result.placement)) /
        initial;

    common::Timer greedy_timer;
    const auto greedy = baselines::run_greedy(problem);
    const double greedy_seconds = greedy_timer.seconds();
    const double greedy_savings =
        (initial - drp::CostModel::total_cost(greedy)) / initial;

    const double msgs_per_round =
        static_cast<double>(report.messages.report_messages) /
        static_cast<double>(std::max<std::size_t>(1, report.messages.rounds));

    table.add_row({std::to_string(spec.servers),
                   std::to_string(spec.objects),
                   common::Table::num(agt_seconds, 3),
                   common::Table::num(greedy_seconds, 3),
                   common::Table::num(greedy_seconds / std::max(1e-9, agt_seconds), 1) + "x",
                   std::to_string(report.messages.rounds),
                   common::Table::num(msgs_per_round, 1),
                   common::Table::pct(agt_savings),
                   common::Table::pct(greedy_savings)});
    std::cerr << "  M=" << spec.servers << " done\n";
  }
  table.print(std::cout);
  std::cout << "\nthe centre's per-round message count stays <= M while the\n"
               "valuation work (O(candidate lists)) runs on the servers —\n"
               "the paper's semi-distributed scalability claim.\n";
  return 0;
}
