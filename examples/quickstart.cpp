// Quickstart: build a replication instance, run AGT-RAM, and compare it
// against the five conventional methods from the paper.
//
//   ./examples/quickstart [--servers 60] [--objects 400] [--capacity 0.25]
//                         [--rw 0.85] [--seed 1]
#include <iostream>

#include "baselines/registry.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/agt_ram.hpp"
#include "drp/builder.hpp"
#include "drp/cost_model.hpp"

int main(int argc, char** argv) {
  using namespace agtram;

  common::Cli cli("AGT-RAM quickstart: one instance, all six methods");
  cli.add_flag("servers", "60", "number of servers (M)");
  cli.add_flag("objects", "400", "number of objects (N)");
  cli.add_flag("capacity", "0.25", "replica headroom C% as a fraction");
  cli.add_flag("rw", "0.85", "read fraction of all accesses (R/W)");
  cli.add_flag("seed", "1", "experiment seed");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  // 1. Build an instance: GT-ITM-style topology + synthetic World Cup '98
  //    trace + capacities/primaries per the paper's setup.
  drp::InstanceSpec spec;
  spec.servers = static_cast<std::uint32_t>(cli.get_int("servers"));
  spec.objects = static_cast<std::uint32_t>(cli.get_int("objects"));
  spec.instance.capacity_fraction = cli.get_double("capacity");
  spec.instance.rw_ratio = cli.get_double("rw");
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const drp::Problem problem = drp::make_instance(spec);
  std::cout << "instance: " << problem.summary() << "\n";

  const double initial = drp::CostModel::initial_cost(problem);
  std::cout << "primaries-only OTC: " << initial << "\n\n";

  // 2. Run the paper's mechanism directly through the public API.
  const core::MechanismResult mech = core::run_agt_ram(problem);
  std::cout << "AGT-RAM placed " << mech.replicas_placed()
            << " replicas over " << mech.rounds.size() << " rounds; total "
            << "payments disbursed: " << mech.total_payments() << "\n\n";

  // 3. Compare all six methods on OTC savings and wall time.
  common::Table table({"method", "OTC savings", "replicas", "time (ms)"});
  table.set_title("OTC savings vs. primaries-only scheme");
  for (const auto& algorithm : baselines::all_algorithms()) {
    common::Timer timer;
    const drp::ReplicaPlacement placement =
        algorithm.run(problem, spec.seed);
    const double ms = timer.millis();
    const double cost = drp::CostModel::total_cost(placement);
    table.add_row({algorithm.name,
                   common::Table::pct((initial - cost) / initial),
                   std::to_string(placement.extra_replica_count()),
                   common::Table::num(ms, 1)});
  }
  table.print(std::cout);
  return 0;
}
