#include "drp/builder.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "common/prng.hpp"

namespace agtram::drp {

using common::Rng;

namespace {

/// The distance-free part of build_problem: primaries, demand, capacities.
/// Shared by the dense path (which attaches the metric closure and
/// validates) and make_sparse_instance (which never materialises one).
Problem assemble_problem(std::size_t servers, const trace::Workload& workload,
                         const InstanceConfig& config) {
  if (config.rw_ratio <= 0.0 || config.rw_ratio > 1.0) {
    throw std::invalid_argument("build_problem: rw_ratio must be in (0, 1]");
  }
  if (config.capacity_fraction < 0.0) {
    throw std::invalid_argument("build_problem: negative capacity fraction");
  }
  const std::size_t objects = workload.object_count();
  if (objects == 0) throw std::invalid_argument("build_problem: empty workload");

  Rng rng(config.seed);

  Problem problem;
  problem.object_units = workload.object_units;

  // --- Primaries: "the primary replicas' original server was mimicked by
  // choosing random locations".
  problem.primary.resize(objects);
  for (std::size_t k = 0; k < objects; ++k) {
    problem.primary[k] = static_cast<ServerId>(rng.below(servers));
  }

  // --- Demand: start from trace reads, then inject writes to hit R/W.
  // Total writes W so that reads / (reads + writes) = rw_ratio.
  std::uint64_t total_reads = 0;
  for (const auto& rows : workload.reads) {
    for (const auto& r : rows) total_reads += r.reads;
  }
  const double total_writes =
      static_cast<double>(total_reads) * (1.0 - config.rw_ratio) /
      config.rw_ratio;

  // Spread update volume across objects by an independent popularity law
  // (uniform by default; see InstanceConfig::write_popularity_exponent).
  std::vector<double> write_weight(objects);
  double weight_sum = 0.0;
  for (std::size_t k = 0; k < objects; ++k) {
    write_weight[k] = std::pow(static_cast<double>(k + 1),
                               -config.write_popularity_exponent);
    weight_sum += write_weight[k];
  }

  std::vector<std::vector<Access>> by_object(objects);
  const std::uint32_t writers =
      std::max<std::uint32_t>(1,
          std::min<std::uint32_t>(config.writers_per_object,
                                  static_cast<std::uint32_t>(servers)));
  for (std::size_t k = 0; k < objects; ++k) {
    auto& row = by_object[k];
    for (const auto& r : workload.reads[k]) {
      if (r.server >= servers) {
        throw std::invalid_argument("build_problem: workload server id out of range");
      }
      row.push_back(Access{r.server, r.reads, 0});
    }
    const auto object_writes = static_cast<std::uint64_t>(
        std::llround(total_writes * write_weight[k] / weight_sum));
    if (object_writes > 0) {
      std::unordered_set<ServerId> chosen;
      while (chosen.size() < writers) {
        chosen.insert(static_cast<ServerId>(rng.below(servers)));
      }
      const std::uint64_t base = object_writes / chosen.size();
      std::uint64_t remainder = object_writes % chosen.size();
      for (ServerId s : chosen) {
        std::uint64_t share = base;
        if (remainder > 0) {
          ++share;
          --remainder;
        }
        if (share > 0) row.push_back(Access{s, 0, share});
      }
    }
  }
  problem.access = AccessMatrix::build(servers, objects, std::move(by_object));

  // --- Capacities: uniform in [0.5, 1.5] x C% x (total object bytes),
  // plus primary load so the initial scheme is feasible by construction.
  std::uint64_t total_units = 0;
  for (std::uint32_t u : problem.object_units) total_units += u;
  problem.capacity.assign(servers, 0);
  std::vector<std::uint64_t> primary_units(servers, 0);
  for (std::size_t k = 0; k < objects; ++k) {
    primary_units[problem.primary[k]] += problem.object_units[k];
  }
  for (std::size_t i = 0; i < servers; ++i) {
    const double headroom = config.capacity_fraction *
                            static_cast<double>(total_units) *
                            rng.uniform(0.5, 1.5);
    problem.capacity[i] =
        primary_units[i] + static_cast<std::uint64_t>(std::llround(headroom));
  }

  return problem;
}

}  // namespace

Problem build_problem(net::DistanceMatrixPtr distances,
                      const trace::Workload& workload,
                      const InstanceConfig& config) {
  if (!distances) throw std::invalid_argument("build_problem: null distances");
  Problem problem =
      assemble_problem(distances->node_count(), workload, config);
  problem.distances = std::move(distances);
  problem.validate();
  return problem;
}

namespace {

// Dispersed demand (DemandModel::Dispersed): each object is read by a small
// random subset of servers.  Object popularity still follows a mild Zipf so
// some objects matter more than others, but the *reader count* stays near
// `readers_per_object` regardless of popularity — popular objects are read
// harder, not wider.  That separation is what the trace pipeline cannot
// produce at bench scale, and what the paper's trace has at M = 3718.
trace::Workload dispersed_workload(const InstanceSpec& spec) {
  Rng rng(spec.seed ^ 0x5851f42d4c957f2dULL);
  const std::uint32_t m = spec.servers;
  const double mean_readers =
      std::min(static_cast<double>(m), std::max(1.0, spec.readers_per_object));

  trace::Workload w;
  w.object_ids.resize(spec.objects);
  w.object_units.resize(spec.objects);
  w.size_variance.assign(spec.objects, 0.0);
  w.reads.resize(spec.objects);

  const double per_object_requests = std::max(1.0, spec.requests_per_object);
  std::vector<std::uint32_t> pick;  // reader ids for the current object
  for (std::uint32_t k = 0; k < spec.objects; ++k) {
    w.object_ids[k] = k;
    w.object_units[k] = 1 + static_cast<std::uint32_t>(rng.below(8));

    // Popularity ∝ 1/(rank+1)^0.8 over a shuffled rank (so the hot set is
    // not the id prefix); spread it over a bounded reader set.
    const double rank = static_cast<double>(rng.below(spec.objects)) + 1.0;
    const double popularity = std::pow(rank, -0.8);
    const std::uint64_t volume = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(per_object_requests *
                                      static_cast<double>(spec.objects) *
                                      popularity / 10.0));

    // Reader count ~ Uniform[1, 2*mean); distinct servers via rejection
    // (reader sets are tiny relative to M, collisions are rare).
    const std::uint32_t readers = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(rng.below(
               static_cast<std::uint64_t>(2.0 * mean_readers))));
    pick.clear();
    while (pick.size() < std::min(readers, m)) {
      const auto candidate = static_cast<std::uint32_t>(rng.below(m));
      if (std::find(pick.begin(), pick.end(), candidate) == pick.end()) {
        pick.push_back(candidate);
      }
    }
    std::sort(pick.begin(), pick.end());

    w.reads[k].reserve(pick.size());
    for (const std::uint32_t server : pick) {
      // Zipf-ish per-reader share, at least one request each.
      const std::uint64_t share = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 static_cast<double>(volume) *
                 rng.uniform(0.5, 1.5) / static_cast<double>(pick.size())));
      w.reads[k].push_back(trace::ServerReads{server, share});
      w.total_requests += share;
    }
  }
  return w;
}

// Trace sized so the persistent core yields ~spec.objects catalogue
// entries after the present-in-all-days filter.
trace::Workload trace_workload(const InstanceSpec& spec) {
  trace::WorldCupConfig wc;
  wc.core_objects = spec.objects;
  wc.object_universe =
      spec.objects + std::max<std::uint32_t>(spec.objects / 2, 16);
  // Client population scales with the topology but stays well below M so
  // that per-(server, object) demand stays concentrated, as in the paper's
  // 500-clients-onto-3718-servers mapping.
  wc.clients = std::max<std::uint32_t>(24, spec.servers / 4);
  wc.days = 5;
  wc.requests_per_day = std::max<std::uint64_t>(
      spec.objects,
      static_cast<std::uint64_t>(spec.requests_per_object *
                                 static_cast<double>(spec.objects) /
                                 static_cast<double>(wc.days)));
  wc.seed = spec.seed ^ 0x9e3779b97f4a7c15ULL;
  const auto days = trace::generate_worldcup_trace(wc);

  trace::PipelineConfig pipe;
  pipe.servers = spec.servers;
  pipe.top_clients = wc.clients;  // keep all clients at bench scale
  pipe.max_fanout = std::min<std::uint32_t>(2, spec.servers);
  pipe.seed = spec.seed ^ 0x1234abcd5678ef00ULL;
  trace::Workload workload = trace::run_pipeline(days, pipe);

  // Keep exactly the first spec.objects catalogue entries (the guaranteed
  // persistent core occupies the lowest object ids).
  if (workload.object_count() > spec.objects) {
    workload.object_ids.resize(spec.objects);
    workload.object_units.resize(spec.objects);
    workload.size_variance.resize(spec.objects);
    workload.reads.resize(spec.objects);
  }
  return workload;
}

trace::Workload make_workload(const InstanceSpec& spec) {
  return spec.demand == DemandModel::Dispersed ? dispersed_workload(spec)
                                               : trace_workload(spec);
}

InstanceConfig instance_config(const InstanceSpec& spec) {
  InstanceConfig inst = spec.instance;
  inst.seed = spec.seed ^ 0x0f0f0f0f0f0f0f0fULL;
  return inst;
}

}  // namespace

net::Graph make_topology(const InstanceSpec& spec) {
  net::TopologyConfig topo;
  topo.kind = spec.topology;
  topo.nodes = spec.servers;
  topo.edge_probability = spec.edge_probability;
  topo.tree_shape = spec.tree_shape;
  topo.tree_arity = spec.tree_arity;
  topo.seed = spec.seed;
  return net::generate_topology(topo);
}

Problem make_instance(const InstanceSpec& spec) {
  if (spec.servers == 0 || spec.objects == 0) {
    throw std::invalid_argument("make_instance: need servers and objects");
  }
  const net::Graph graph = make_topology(spec);
  auto distances = std::make_shared<const net::DistanceMatrix>(
      net::DistanceMatrix::compute(graph));
  return build_problem(std::move(distances), make_workload(spec),
                       instance_config(spec));
}

SparseInstance make_sparse_instance(const InstanceSpec& spec) {
  if (spec.servers == 0 || spec.objects == 0) {
    throw std::invalid_argument("make_sparse_instance: need servers and objects");
  }
  SparseInstance instance{make_topology(spec), Problem{}};
  instance.base = assemble_problem(spec.servers, make_workload(spec),
                                   instance_config(spec));
  return instance;
}

}  // namespace agtram::drp
