// Internal declarations of the AVX2 kernel paths (kernels_avx2.cpp, compiled
// with -mavx2 -ffp-contract=off when AGTRAM_SIMD is ON and the target is
// x86-64).  Only kernels.cpp includes this header; everything else goes
// through the dispatching entry points in kernels.hpp.
//
// Raw-pointer signatures keep the hot call boundary trivial; every function
// handles its own (scalar) tail with the identical op sequence as the
// portable loop, so callers never split ranges.
#pragma once

#include <cstddef>
#include <cstdint>

#include "drp/kernels.hpp"

namespace agtram::drp::kernels::avx2 {

CostAccum object_cost_accumulate(const ServerId* servers, const double* reads,
                                 const double* writes, const net::Cost* nn,
                                 const net::Cost* primary_row,
                                 const std::uint8_t* member, double o,
                                 double w_total, std::size_t n) noexcept;

net::Cost nn_min(const net::Cost* row, const ServerId* reps,
                 std::size_t n) noexcept;

void min_with_row(const net::Cost* nn, const ServerId* servers,
                  const net::Cost* row, net::Cost* out,
                  std::size_t n) noexcept;

double read_savings_accumulate(const ServerId* servers, const double* reads,
                               const net::Cost* nn, const net::Cost* i_row,
                               const std::uint8_t* member, double o,
                               std::size_t n) noexcept;

void best_add_read_pass(double ro, net::Cost current, const net::Cost* a_row,
                        std::size_t first, std::size_t last,
                        double* benefit) noexcept;

void broadcast_price_pass(double w_total, double o, const double* w_dense,
                          const net::Cost* primary_row, std::size_t first,
                          std::size_t last, double* benefit) noexcept;

}  // namespace agtram::drp::kernels::avx2
