#include "drp/placement.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace agtram::drp {

ReplicaPlacement::ReplicaPlacement(const Problem& problem)
    : problem_(&problem),
      replicators_(problem.object_count()),
      nn_dist_(problem.object_count()),
      nn_node_(problem.object_count()),
      used_(problem.server_count(), 0) {
  for (ObjectIndex k = 0; k < problem.object_count(); ++k) {
    const ServerId p = problem.primary[k];
    replicators_[k].push_back(p);
    used_[p] += problem.object_units[k];
    const auto accessors = problem.access.accessors(k);
    nn_dist_[k].resize(accessors.size());
    nn_node_[k].assign(accessors.size(), p);
    for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
      nn_dist_[k][slot] = problem.distance(accessors[slot].server, p);
    }
  }
}

bool ReplicaPlacement::is_replicator(ServerId i, ObjectIndex k) const {
  const auto& reps = replicators_[k];
  return std::binary_search(reps.begin(), reps.end(), i);
}

bool ReplicaPlacement::can_replicate(ServerId i, ObjectIndex k) const {
  return !is_replicator(i, k) &&
         free_capacity(i) >= problem_->object_units[k];
}

void ReplicaPlacement::add_replica(ServerId i, ObjectIndex k) {
  assert(can_replicate(i, k));
  auto& reps = replicators_[k];
  reps.insert(std::upper_bound(reps.begin(), reps.end(), i), i);
  used_[i] += problem_->object_units[k];

  const auto accessors = problem_->access.accessors(k);
  for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
    const net::Cost d = problem_->distance(accessors[slot].server, i);
    if (d < nn_dist_[k][slot]) {
      nn_dist_[k][slot] = d;
      nn_node_[k][slot] = i;
    }
  }
}

void ReplicaPlacement::remove_replica(ServerId i, ObjectIndex k) {
  if (i == problem_->primary[k]) {
    throw std::logic_error("cannot remove the primary copy");
  }
  auto& reps = replicators_[k];
  const auto it = std::lower_bound(reps.begin(), reps.end(), i);
  if (it == reps.end() || *it != i) {
    throw std::logic_error("remove_replica: not a replicator");
  }
  reps.erase(it);
  used_[i] -= problem_->object_units[k];
  rebuild_nn(k);
}

void ReplicaPlacement::rebuild_nn(ObjectIndex k) {
  const auto accessors = problem_->access.accessors(k);
  const auto& reps = replicators_[k];
  for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
    net::Cost best = net::kUnreachable;
    ServerId best_node = reps.front();
    for (ServerId r : reps) {
      const net::Cost d = problem_->distance(accessors[slot].server, r);
      if (d < best) {
        best = d;
        best_node = r;
      }
    }
    nn_dist_[k][slot] = best;
    nn_node_[k][slot] = best_node;
  }
}

net::Cost ReplicaPlacement::nn_distance(ServerId i, ObjectIndex k) const {
  const std::size_t slot = problem_->access.accessor_slot(i, k);
  if (slot != AccessMatrix::npos) return nn_dist_[k][slot];
  net::Cost best = net::kUnreachable;
  for (ServerId r : replicators_[k]) {
    best = std::min(best, problem_->distance(i, r));
  }
  return best;
}

ServerId ReplicaPlacement::nn_server(ServerId i, ObjectIndex k) const {
  const std::size_t slot = problem_->access.accessor_slot(i, k);
  if (slot != AccessMatrix::npos) return nn_node_[k][slot];
  net::Cost best = net::kUnreachable;
  ServerId best_node = replicators_[k].front();
  for (ServerId r : replicators_[k]) {
    const net::Cost d = problem_->distance(i, r);
    if (d < best) {
      best = d;
      best_node = r;
    }
  }
  return best_node;
}

std::size_t ReplicaPlacement::replica_count() const {
  std::size_t total = 0;
  for (const auto& reps : replicators_) total += reps.size();
  return total;
}

void ReplicaPlacement::check_invariants() const {
  std::vector<std::uint64_t> recomputed_used(problem_->server_count(), 0);
  for (ObjectIndex k = 0; k < problem_->object_count(); ++k) {
    const auto& reps = replicators_[k];
    if (!std::is_sorted(reps.begin(), reps.end())) {
      throw std::logic_error("replicator list not sorted");
    }
    if (std::adjacent_find(reps.begin(), reps.end()) != reps.end()) {
      throw std::logic_error("duplicate replicator");
    }
    if (!std::binary_search(reps.begin(), reps.end(), problem_->primary[k])) {
      throw std::logic_error("primary copy missing from replicator set");
    }
    for (ServerId r : reps) {
      if (r >= problem_->server_count()) {
        throw std::logic_error("replicator out of range");
      }
      recomputed_used[r] += problem_->object_units[k];
    }
    const auto accessors = problem_->access.accessors(k);
    for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
      net::Cost best = net::kUnreachable;
      for (ServerId r : reps) {
        best = std::min(best, problem_->distance(accessors[slot].server, r));
      }
      if (best != nn_dist_[k][slot]) {
        throw std::logic_error("stale NN cache");
      }
      if (problem_->distance(accessors[slot].server, nn_node_[k][slot]) !=
          best) {
        throw std::logic_error("NN node does not realise NN distance");
      }
      if (!std::binary_search(reps.begin(), reps.end(), nn_node_[k][slot])) {
        throw std::logic_error("NN node is not a replicator");
      }
    }
  }
  for (ServerId i = 0; i < problem_->server_count(); ++i) {
    if (recomputed_used[i] != used_[i]) {
      throw std::logic_error("capacity accounting drifted");
    }
    if (used_[i] > problem_->capacity[i]) {
      throw std::logic_error("capacity constraint violated");
    }
  }
}

}  // namespace agtram::drp
