#include "drp/placement.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "drp/kernels.hpp"

namespace agtram::drp {

ReplicaPlacement::ReplicaPlacement(const Problem& problem)
    : problem_(&problem),
      reps_(problem.object_count()),
      nn_dist_(problem.access.nonzeros()),
      nn_node_(problem.access.nonzeros()),
      used_(problem.server_count(), 0) {
  for (ObjectIndex k = 0; k < problem.object_count(); ++k) {
    const ServerId p = problem.primary[k];
    RepSet& rs = reps_[k];
    rs.inline_buf[0] = p;
    rs.count = 1;
    used_[p] += problem.object_units[k];
    const auto accessors = problem.access.accessors(k);
    const auto primary_row = problem.distances->row(p);
    const std::size_t base = problem.access.accessor_base(k);
    for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
      nn_dist_[base + slot] = primary_row[accessors[slot].server];
      nn_node_[base + slot] = p;
    }
  }
}

ReplicaPlacement::ReplicaPlacement(const ReplicaPlacement& other)
    : problem_(other.problem_),
      reps_(other.reps_),
      nn_dist_(other.nn_dist_),
      nn_node_(other.nn_node_),
      used_(other.used_) {
  // Re-home spilled sets into a fresh, compact arena (dropping whatever
  // garbage doubling left behind in the source).
  for (RepSet& rs : reps_) {
    if (rs.capacity <= kInlineReplicators) continue;
    const ServerId* src = other.rep_data(rs);
    ServerId* dst = spill_alloc(rs.capacity, rs.block, rs.offset);
    std::memcpy(dst, src, rs.count * sizeof(ServerId));
  }
}

ReplicaPlacement& ReplicaPlacement::operator=(const ReplicaPlacement& other) {
  if (this != &other) {
    ReplicaPlacement copy(other);
    *this = std::move(copy);
  }
  return *this;
}

ServerId* ReplicaPlacement::spill_alloc(std::uint32_t n, std::uint32_t& block,
                                        std::uint32_t& offset) {
  if (spill_blocks_.empty() || spill_block_used_ + n > spill_block_cap_) {
    spill_block_cap_ = std::max<std::size_t>(kSpillBlockEntries, n);
    spill_blocks_.push_back(std::make_unique<ServerId[]>(spill_block_cap_));
    spill_block_used_ = 0;
  }
  block = static_cast<std::uint32_t>(spill_blocks_.size() - 1);
  offset = static_cast<std::uint32_t>(spill_block_used_);
  spill_block_used_ += n;
  return spill_blocks_.back().get() + offset;
}

void ReplicaPlacement::grow(RepSet& rs) {
  const std::uint32_t new_cap = rs.capacity * 2;
  std::uint32_t block = 0, offset = 0;
  ServerId* dst = spill_alloc(new_cap, block, offset);
  std::memcpy(dst, rep_data(rs), rs.count * sizeof(ServerId));
  rs.capacity = new_cap;
  rs.block = block;
  rs.offset = offset;
}

bool ReplicaPlacement::is_replicator(ServerId i, ObjectIndex k) const {
  const RepSet& rs = reps_[k];
  const ServerId* data = rep_data(rs);
  if (rs.count <= kInlineReplicators) {
    for (std::uint32_t s = 0; s < rs.count; ++s) {
      if (data[s] == i) return true;
    }
    return false;
  }
  return std::binary_search(data, data + rs.count, i);
}

bool ReplicaPlacement::can_replicate(ServerId i, ObjectIndex k) const {
  return !is_replicator(i, k) &&
         free_capacity(i) >= problem_->object_units[k];
}

void ReplicaPlacement::add_replica(ServerId i, ObjectIndex k) {
  assert(can_replicate(i, k));
  RepSet& rs = reps_[k];
  if (rs.count == rs.capacity) grow(rs);
  ServerId* data = rep_data(rs);
  const ServerId* pos = std::upper_bound(data, data + rs.count, i);
  const std::size_t at = static_cast<std::size_t>(pos - data);
  std::memmove(data + at + 1, data + at,
               (rs.count - at) * sizeof(ServerId));
  data[at] = i;
  ++rs.count;
  used_[i] += problem_->object_units[k];

  const auto accessors = problem_->access.accessors(k);
  const auto new_row = problem_->distances->row(i);
  const std::size_t base = problem_->access.accessor_base(k);
  for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
    const net::Cost d = new_row[accessors[slot].server];
    if (d < nn_dist_[base + slot]) {
      nn_dist_[base + slot] = d;
      nn_node_[base + slot] = i;
    }
  }
}

void ReplicaPlacement::remove_replica(ServerId i, ObjectIndex k) {
  if (i == problem_->primary[k]) {
    throw std::logic_error("cannot remove the primary copy");
  }
  RepSet& rs = reps_[k];
  ServerId* data = rep_data(rs);
  ServerId* pos = std::lower_bound(data, data + rs.count, i);
  if (pos == data + rs.count || *pos != i) {
    throw std::logic_error("remove_replica: not a replicator");
  }
  std::memmove(pos, pos + 1,
               (rs.count - (pos - data) - 1) * sizeof(ServerId));
  --rs.count;
  used_[i] -= problem_->object_units[k];
  rebuild_nn(k);
}

void ReplicaPlacement::rebuild_nn(ObjectIndex k) {
  const auto servers = problem_->access.accessor_servers(k);
  const auto reps = replicators(k);
  // Hot objects keep their rep list in a spill-arena block; touch it before
  // the walk so the per-slot scans don't stall on the arena's first miss.
  __builtin_prefetch(reps.data());
  const std::size_t base = problem_->access.accessor_base(k);
  for (std::size_t slot = 0; slot < servers.size(); ++slot) {
    if (slot + 1 < servers.size()) {
      // Each slot gathers from its accessor's distance row; consecutive
      // accessors' rows are M entries apart, so hint the next row while this
      // slot's scan is in flight.
      __builtin_prefetch(problem_->distances->row(servers[slot + 1]).data());
    }
    const auto s_row = problem_->distances->row(servers[slot]);
    net::Cost best = net::kUnreachable;
    ServerId best_node = reps.front();
    // Keep-first argmin, deliberately scalar: which of several equidistant
    // replicators gets recorded feeds DeltaEvaluator's drop-staging branch,
    // so the historical tie-break order is part of the contract.
    for (ServerId r : reps) {
      const net::Cost d = s_row[r];
      if (d < best) {
        best = d;
        best_node = r;
      }
    }
    nn_dist_[base + slot] = best;
    nn_node_[base + slot] = best_node;
  }
}

net::Cost ReplicaPlacement::nn_distance(ServerId i, ObjectIndex k) const {
  const std::size_t slot = problem_->access.accessor_slot(i, k);
  if (slot != AccessMatrix::npos) {
    return nn_dist_[problem_->access.accessor_base(k) + slot];
  }
  return kernels::nn_min(problem_->distances->row(i), replicators(k));
}

ServerId ReplicaPlacement::nn_server(ServerId i, ObjectIndex k) const {
  const std::size_t slot = problem_->access.accessor_slot(i, k);
  if (slot != AccessMatrix::npos) {
    return nn_node_[problem_->access.accessor_base(k) + slot];
  }
  net::Cost best = net::kUnreachable;
  ServerId best_node = replicators(k).front();
  for (ServerId r : replicators(k)) {
    const net::Cost d = problem_->distance(i, r);
    if (d < best) {
      best = d;
      best_node = r;
    }
  }
  return best_node;
}

std::size_t ReplicaPlacement::replica_count() const {
  std::size_t total = 0;
  for (const RepSet& rs : reps_) total += rs.count;
  return total;
}

void ReplicaPlacement::check_invariants() const {
  std::vector<std::uint64_t> recomputed_used(problem_->server_count(), 0);
  for (ObjectIndex k = 0; k < problem_->object_count(); ++k) {
    const RepSet& rs = reps_[k];
    if (rs.count > rs.capacity) {
      throw std::logic_error("replicator set count exceeds its capacity");
    }
    if (rs.capacity > kInlineReplicators) {
      if (rs.block >= spill_blocks_.size()) {
        throw std::logic_error("replicator spill block out of range");
      }
      if (rs.capacity % kInlineReplicators != 0 ||
          !std::has_single_bit(rs.capacity / kInlineReplicators)) {
        throw std::logic_error("spilled capacity not a doubling");
      }
    }
    const auto reps = replicators(k);
    if (!std::is_sorted(reps.begin(), reps.end())) {
      throw std::logic_error("replicator list not sorted");
    }
    if (std::adjacent_find(reps.begin(), reps.end()) != reps.end()) {
      throw std::logic_error("duplicate replicator");
    }
    if (!std::binary_search(reps.begin(), reps.end(), problem_->primary[k])) {
      throw std::logic_error("primary copy missing from replicator set");
    }
    for (ServerId r : reps) {
      if (r >= problem_->server_count()) {
        throw std::logic_error("replicator out of range");
      }
      recomputed_used[r] += problem_->object_units[k];
    }
    const auto accessors = problem_->access.accessors(k);
    const std::size_t base = problem_->access.accessor_base(k);
    for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
      net::Cost best = net::kUnreachable;
      for (ServerId r : reps) {
        best = std::min(best, problem_->distance(accessors[slot].server, r));
      }
      if (best != nn_dist_[base + slot]) {
        throw std::logic_error("stale NN cache");
      }
      if (problem_->distance(accessors[slot].server, nn_node_[base + slot]) !=
          best) {
        throw std::logic_error("NN node does not realise NN distance");
      }
      if (!std::binary_search(reps.begin(), reps.end(),
                              nn_node_[base + slot])) {
        throw std::logic_error("NN node is not a replicator");
      }
    }
  }
  for (ServerId i = 0; i < problem_->server_count(); ++i) {
    if (recomputed_used[i] != used_[i]) {
      throw std::logic_error("capacity accounting drifted");
    }
    if (used_[i] > problem_->capacity[i]) {
      throw std::logic_error("capacity constraint violated");
    }
  }
}

}  // namespace agtram::drp
