// Sparse read/write demand matrices r_ik / w_ik.
//
// At paper scale (M=3718, N=25000) a dense pair of M x N matrices would cost
// ~750 MB; the trace-driven demand is sparse, so we store CSR-style rows
// both by object (driving cost evaluation and nearest-neighbour updates) and
// by server (driving each agent's candidate list in the mechanism).
//
// Layout: every view is a single contiguous pool plus an offset table —
// `cells_` holds all by-object rows back to back, `obj_row_[k]` is where
// object k's row starts.  The mechanism's inner loop walks accessor rows
// millions of times per run; one flat arena keeps those walks on sequential
// cache lines instead of chasing a pointer per object, and `obj_row_` doubles
// as the slot base for ReplicaPlacement's equally flat NN cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace agtram::drp {

using ServerId = std::uint32_t;
using ObjectIndex = std::uint32_t;

/// One server's demand for one object.
struct Access {
  ServerId server;
  std::uint64_t reads;
  std::uint64_t writes;
};

/// A (object, demand) pair as seen from one server's side.
struct ServerSideAccess {
  ObjectIndex object;
  std::uint64_t reads;
  std::uint64_t writes;
};

class AccessMatrix {
 public:
  AccessMatrix() = default;

  /// Builds both views from per-object rows.  Rows may be unsorted and may
  /// contain duplicate servers (demand is summed); zero-demand entries are
  /// dropped.
  static AccessMatrix build(std::size_t servers, std::size_t objects,
                            std::vector<std::vector<Access>> by_object);

  std::size_t server_count() const noexcept { return srv_row_.empty() ? 0 : srv_row_.size() - 1; }
  std::size_t object_count() const noexcept { return obj_row_.empty() ? 0 : obj_row_.size() - 1; }

  /// All servers with nonzero demand for object k, sorted by server id.
  std::span<const Access> accessors(ObjectIndex k) const {
    return {cells_.data() + obj_row_[k], obj_row_[k + 1] - obj_row_[k]};
  }

  /// Offset of object k's accessor row in the shared pool: the global index
  /// of (k, slot 0).  ReplicaPlacement indexes its flat NN cache with
  /// accessor_base(k) + slot, so both structures share one slot scheme.
  std::size_t accessor_base(ObjectIndex k) const { return obj_row_[k]; }

  /// SoA mirror of accessors(k) (DESIGN.md §10): three dense streams parallel
  /// to the AoS row, slot for slot, so the kernels read sequential lanes
  /// instead of strided Access fields.  Demand is converted to double once at
  /// build time; the stored value is exactly the static_cast<double> the
  /// scalar loops performed per use, so kernels fed from these streams
  /// reproduce the AoS arithmetic bit for bit.
  std::span<const ServerId> accessor_servers(ObjectIndex k) const {
    return {soa_server_.data() + obj_row_[k], obj_row_[k + 1] - obj_row_[k]};
  }
  std::span<const double> accessor_reads_d(ObjectIndex k) const {
    return {soa_reads_.data() + obj_row_[k], obj_row_[k + 1] - obj_row_[k]};
  }
  std::span<const double> accessor_writes_d(ObjectIndex k) const {
    return {soa_writes_.data() + obj_row_[k], obj_row_[k + 1] - obj_row_[k]};
  }

  /// Servers with nonzero *read* demand for object k, sorted by server id.
  /// Pure writers are excluded: a new replica of k can only change the
  /// valuation of servers whose NN distance for k may drop, i.e. readers.
  /// This is the per-round dirty set of the incremental mechanism.
  std::span<const ServerId> readers(ObjectIndex k) const {
    return {readers_.data() + reader_row_[k], reader_row_[k + 1] - reader_row_[k]};
  }

  /// All objects server i touches, sorted by object index.
  std::span<const ServerSideAccess> server_objects(ServerId i) const {
    return {srv_cells_.data() + srv_row_[i], srv_row_[i + 1] - srv_row_[i]};
  }

  /// Point lookups (binary search in the object row); 0 if absent.
  std::uint64_t reads(ServerId i, ObjectIndex k) const;
  std::uint64_t writes(ServerId i, ObjectIndex k) const;

  /// Checked in-place demand mutation on an *existing* cell (the online
  /// engine's fixed-universe event model, DESIGN.md §12).  The structural
  /// support — which (i, k) cells exist, and which servers appear in
  /// readers(k) — is fixed at build; deltas may move demand anywhere inside
  /// it, including down to zero and back up.  Throws std::invalid_argument
  /// on anything that would change structure or corrupt an invariant:
  ///   * no cell (i, k) exists (accessor_slot == npos),
  ///   * a delta that would drive reads or writes negative,
  ///   * a read delta that would turn a structural non-reader (a pure-writer
  ///     cell, absent from readers(k)) into a reader — the readers list is
  ///     the incremental mechanism's dirty set and is never re-laid-out.
  /// On success every view stays exact: the AoS cell, the SoA double streams
  /// (re-converted with the same static_cast the build performed, so they
  /// remain bitwise-consistent), the by-server transpose cell, and the
  /// per-object / grand demand totals.
  void apply_demand_delta(ServerId i, ObjectIndex k, std::int64_t delta_reads,
                          std::int64_t delta_writes);

  /// Slot of server i in accessors(k), or npos if i has no demand for k.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t accessor_slot(ServerId i, ObjectIndex k) const;

  /// Aggregate demand per object: w_k = sum_i w_ik (and likewise reads).
  std::uint64_t total_writes(ObjectIndex k) const { return object_writes_[k]; }
  std::uint64_t total_reads(ObjectIndex k) const { return object_reads_[k]; }

  std::uint64_t grand_total_reads() const noexcept { return grand_reads_; }
  std::uint64_t grand_total_writes() const noexcept { return grand_writes_; }

  /// Number of stored nonzero (server, object) cells.
  std::size_t nonzeros() const noexcept { return cells_.size(); }

  /// Number of objects with at least one reader.
  std::size_t objects_with_readers() const noexcept { return objects_with_readers_; }

  /// Total (object, reader) pairs — sum of |readers(k)| over all objects.
  std::size_t total_reader_entries() const noexcept { return readers_.size(); }

  /// Mean |readers(k)| over objects that have readers at all.
  double mean_readers_per_object() const noexcept {
    return objects_with_readers_ == 0
               ? 0.0
               : static_cast<double>(readers_.size()) /
                     static_cast<double>(objects_with_readers_);
  }

  /// Size-biased mean |readers(k)|: Σ|readers(k)|² / Σ|readers(k)|.  This is
  /// the expected dirty-set size of an incremental mechanism round —
  /// allocations land on read-hot objects with probability roughly
  /// proportional to their reader counts, so the plain mean undersells the
  /// dirty sets the mechanism actually re-polls when demand is concentrated
  /// (trace-style) rather than dispersed.  Drives ReportMode::Auto
  /// (core/agt_ram.hpp).  O(N), computed on demand.
  double size_biased_readers_per_object() const noexcept {
    std::uint64_t sum = 0;
    std::uint64_t sum_sq = 0;
    for (std::size_t k = 0; k + 1 < reader_row_.size(); ++k) {
      const std::uint64_t n = reader_row_[k + 1] - reader_row_[k];
      sum += n;
      sum_sq += n * n;
    }
    return sum == 0 ? 0.0
                    : static_cast<double>(sum_sq) / static_cast<double>(sum);
  }

  /// Participation ratio of the object read volumes, (Σv_k)² / Σv_k² — the
  /// effective number of read-hot objects.  1 when all reads hit a single
  /// object; N when volume is spread evenly.  Concentrated (trace/Zipf)
  /// demand keeps this near-constant in N (~25 for the WorldCup pipeline at
  /// every bench scale) while dispersed demand grows it linearly, which is
  /// what ReportMode::Auto keys on: a small hot set collapses the live
  /// agent set onto those objects' readers, making the naive sweep already
  /// dirty-set-sized.  O(N), computed on demand.
  double effective_hot_objects() const noexcept {
    double sum_sq = 0.0;
    for (const std::uint64_t v : object_reads_) {
      sum_sq += static_cast<double>(v) * static_cast<double>(v);
    }
    return sum_sq == 0.0
               ? 0.0
               : static_cast<double>(grand_reads_) *
                     static_cast<double>(grand_reads_) / sum_sq;
  }

 private:
  // CSR by object: rows of `cells_` delimited by `obj_row_` (size N+1).
  std::vector<std::size_t> obj_row_;
  std::vector<Access> cells_;
  // SoA mirror of cells_, same slot scheme (demand pre-widened to double).
  std::vector<ServerId> soa_server_;
  std::vector<double> soa_reads_;
  std::vector<double> soa_writes_;
  // Reader ids per object, same row scheme (size N+1 offsets).
  std::vector<std::size_t> reader_row_;
  std::vector<ServerId> readers_;
  // CSR by server: rows of `srv_cells_` delimited by `srv_row_` (size M+1).
  std::vector<std::size_t> srv_row_;
  std::vector<ServerSideAccess> srv_cells_;

  std::vector<std::uint64_t> object_reads_;
  std::vector<std::uint64_t> object_writes_;
  std::uint64_t grand_reads_ = 0;
  std::uint64_t grand_writes_ = 0;
  std::size_t objects_with_readers_ = 0;
};

}  // namespace agtram::drp
