// Sparse read/write demand matrices r_ik / w_ik.
//
// At paper scale (M=3718, N=25000) a dense pair of M x N matrices would cost
// ~750 MB; the trace-driven demand is sparse, so we store CSR-style rows
// both by object (driving cost evaluation and nearest-neighbour updates) and
// by server (driving each agent's candidate list in the mechanism).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace agtram::drp {

using ServerId = std::uint32_t;
using ObjectIndex = std::uint32_t;

/// One server's demand for one object.
struct Access {
  ServerId server;
  std::uint64_t reads;
  std::uint64_t writes;
};

/// A (object, demand) pair as seen from one server's side.
struct ServerSideAccess {
  ObjectIndex object;
  std::uint64_t reads;
  std::uint64_t writes;
};

class AccessMatrix {
 public:
  AccessMatrix() = default;

  /// Builds both views from per-object rows.  Rows may be unsorted and may
  /// contain duplicate servers (demand is summed); zero-demand entries are
  /// dropped.
  static AccessMatrix build(std::size_t servers, std::size_t objects,
                            std::vector<std::vector<Access>> by_object);

  std::size_t server_count() const noexcept { return by_server_.size(); }
  std::size_t object_count() const noexcept { return by_object_.size(); }

  /// All servers with nonzero demand for object k, sorted by server id.
  std::span<const Access> accessors(ObjectIndex k) const {
    return by_object_[k];
  }

  /// Servers with nonzero *read* demand for object k, sorted by server id.
  /// Pure writers are excluded: a new replica of k can only change the
  /// valuation of servers whose NN distance for k may drop, i.e. readers.
  /// This is the per-round dirty set of the incremental mechanism.
  std::span<const ServerId> readers(ObjectIndex k) const {
    return readers_[k];
  }

  /// All objects server i touches, sorted by object index.
  std::span<const ServerSideAccess> server_objects(ServerId i) const {
    return by_server_[i];
  }

  /// Point lookups (binary search in the object row); 0 if absent.
  std::uint64_t reads(ServerId i, ObjectIndex k) const;
  std::uint64_t writes(ServerId i, ObjectIndex k) const;

  /// Slot of server i in accessors(k), or npos if i has no demand for k.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t accessor_slot(ServerId i, ObjectIndex k) const;

  /// Aggregate demand per object: w_k = sum_i w_ik (and likewise reads).
  std::uint64_t total_writes(ObjectIndex k) const { return object_writes_[k]; }
  std::uint64_t total_reads(ObjectIndex k) const { return object_reads_[k]; }

  std::uint64_t grand_total_reads() const noexcept { return grand_reads_; }
  std::uint64_t grand_total_writes() const noexcept { return grand_writes_; }

  /// Number of stored nonzero (server, object) cells.
  std::size_t nonzeros() const noexcept { return nonzeros_; }

 private:
  std::vector<std::vector<Access>> by_object_;
  std::vector<std::vector<ServerId>> readers_;
  std::vector<std::vector<ServerSideAccess>> by_server_;
  std::vector<std::uint64_t> object_reads_;
  std::vector<std::uint64_t> object_writes_;
  std::uint64_t grand_reads_ = 0;
  std::uint64_t grand_writes_ = 0;
  std::size_t nonzeros_ = 0;
};

}  // namespace agtram::drp
