#include "drp/perturb.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "common/prng.hpp"

namespace agtram::drp {

using common::Rng;

Problem perturb_demand(const Problem& base, const PerturbConfig& config) {
  if (config.shift_fraction < 0.0 || config.shift_fraction > 1.0 ||
      config.churn_fraction < 0.0 || config.churn_fraction > 1.0 ||
      config.write_retarget_fraction < 0.0 ||
      config.write_retarget_fraction > 1.0) {
    throw std::invalid_argument("perturb_demand: fractions must be in [0,1]");
  }
  Rng rng(config.seed);
  const std::size_t servers = base.server_count();
  const std::size_t objects = base.object_count();

  std::vector<std::vector<Access>> rows(objects);
  for (ObjectIndex k = 0; k < objects; ++k) {
    // Popularity churn: rescale this object's read volume.
    double read_scale = 1.0;
    if (rng.chance(config.churn_fraction)) {
      read_scale = rng.uniform(0.25, 4.0);
    }

    std::uint64_t writes_total = 0;
    for (const Access& a : base.access.accessors(k)) {
      if (a.reads > 0) {
        // Hotspot drift: the whole read row may migrate to another server.
        ServerId target = a.server;
        if (rng.chance(config.shift_fraction)) {
          target = static_cast<ServerId>(rng.below(servers));
        }
        const auto reads = static_cast<std::uint64_t>(std::llround(
            static_cast<double>(a.reads) * read_scale));
        if (reads > 0) rows[k].push_back(Access{target, reads, 0});
      }
      writes_total += a.writes;
    }

    // Write re-targeting: keep the volume, redraw the writer set.
    if (writes_total > 0) {
      std::vector<std::pair<ServerId, std::uint64_t>> writers;
      if (rng.chance(config.write_retarget_fraction)) {
        std::unordered_set<ServerId> chosen;
        const std::uint32_t count = std::max<std::uint32_t>(
            1, std::min<std::uint32_t>(4, static_cast<std::uint32_t>(servers)));
        while (chosen.size() < count) {
          chosen.insert(static_cast<ServerId>(rng.below(servers)));
        }
        const std::uint64_t share = writes_total / chosen.size();
        std::uint64_t remainder = writes_total % chosen.size();
        for (ServerId s : chosen) {
          std::uint64_t w = share;
          if (remainder > 0) {
            ++w;
            --remainder;
          }
          if (w > 0) writers.emplace_back(s, w);
        }
      } else {
        for (const Access& a : base.access.accessors(k)) {
          if (a.writes > 0) writers.emplace_back(a.server, a.writes);
        }
      }
      for (const auto& [server, w] : writers) {
        rows[k].push_back(Access{server, 0, w});
      }
    }
  }

  Problem result;
  result.distances = base.distances;
  result.object_units = base.object_units;
  result.primary = base.primary;
  result.capacity = base.capacity;
  result.access = AccessMatrix::build(servers, objects, std::move(rows));
  result.validate();
  return result;
}

double demand_shift_magnitude(const Problem& base, const Problem& shifted) {
  if (base.server_count() != shifted.server_count() ||
      base.object_count() != shifted.object_count()) {
    throw std::invalid_argument("demand_shift_magnitude: dimension mismatch");
  }
  double l1 = 0.0;
  for (ObjectIndex k = 0; k < base.object_count(); ++k) {
    // Walk the union of both sparse rows.
    const auto a = base.access.accessors(k);
    const auto b = shifted.access.accessors(k);
    std::size_t ia = 0, ib = 0;
    while (ia < a.size() || ib < b.size()) {
      if (ib == b.size() || (ia < a.size() && a[ia].server < b[ib].server)) {
        l1 += static_cast<double>(a[ia].reads);
        ++ia;
      } else if (ia == a.size() || b[ib].server < a[ia].server) {
        l1 += static_cast<double>(b[ib].reads);
        ++ib;
      } else {
        l1 += std::abs(static_cast<double>(a[ia].reads) -
                       static_cast<double>(b[ib].reads));
        ++ia;
        ++ib;
      }
    }
  }
  const double total = static_cast<double>(base.access.grand_total_reads());
  return total > 0.0 ? l1 / total : 0.0;
}

}  // namespace agtram::drp
