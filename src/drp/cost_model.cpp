#include "drp/cost_model.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <mutex>

#include "common/thread_pool.hpp"

namespace agtram::drp {

double CostModel::object_cost(const ReplicaPlacement& placement,
                              ObjectIndex k) {
  const Problem& p = placement.problem();
  const double o = static_cast<double>(p.object_units[k]);
  const ServerId primary = p.primary[k];
  const double w_total = static_cast<double>(p.access.total_writes(k));

  double cost = 0.0;
  const auto accessors = p.access.accessors(k);
  const auto nn = placement.nn_row(k);
  const auto primary_row = p.distances->row(primary);
  for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
    const Access& a = accessors[slot];
    const double c_primary = static_cast<double>(primary_row[a.server]);
    // Every writer ships its updates to the primary.
    cost += static_cast<double>(a.writes) * o * c_primary;
    if (placement.is_replicator(a.server, k)) {
      // Replicators receive the broadcast of everyone else's updates.
      cost += (w_total - static_cast<double>(a.writes)) * o * c_primary;
    } else {
      // Non-replicators read from the nearest replica.
      cost += static_cast<double>(a.reads) * o * static_cast<double>(nn[slot]);
    }
  }
  // Replicators with no demand of their own still subscribe to the full
  // update broadcast (possible under the genetic baseline's mutations).
  for (ServerId r : placement.replicators(k)) {
    if (r == primary) continue;
    if (p.access.accessor_slot(r, k) == AccessMatrix::npos) {
      cost += w_total * o * static_cast<double>(p.distance(primary, r));
    }
  }
  return cost;
}

double CostModel::object_cost_with_replicators(
    const Problem& p, ObjectIndex k, std::span<const ServerId> replicators) {
  const double o = static_cast<double>(p.object_units[k]);
  const ServerId primary = p.primary[k];
  const double w_total = static_cast<double>(p.access.total_writes(k));
  const auto is_member = [&](ServerId i) {
    return std::binary_search(replicators.begin(), replicators.end(), i);
  };

  double cost = 0.0;
  const auto accessors = p.access.accessors(k);
  const auto primary_row = p.distances->row(primary);
  for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
    const Access& a = accessors[slot];
    const double c_primary = static_cast<double>(primary_row[a.server]);
    cost += static_cast<double>(a.writes) * o * c_primary;
    if (is_member(a.server)) {
      cost += (w_total - static_cast<double>(a.writes)) * o * c_primary;
    } else {
      const auto a_row = p.distances->row(a.server);
      net::Cost nn = net::kUnreachable;
      for (ServerId r : replicators) nn = std::min(nn, a_row[r]);
      cost += static_cast<double>(a.reads) * o * static_cast<double>(nn);
    }
  }
  for (ServerId r : replicators) {
    if (r == primary) continue;
    if (p.access.accessor_slot(r, k) == AccessMatrix::npos) {
      cost += w_total * o * static_cast<double>(p.distance(primary, r));
    }
  }
  return cost;
}

void CostModel::object_costs(const ReplicaPlacement& placement,
                             std::span<double> out) {
  const std::size_t n = placement.problem().object_count();
  assert(out.size() == n);
  common::ThreadPool::shared().parallel_for(
      0, n,
      [&](std::size_t first, std::size_t last) {
        for (std::size_t k = first; k < last; ++k) {
          out[k] = object_cost(placement, static_cast<ObjectIndex>(k));
        }
      },
      /*min_grain=*/128);
}

double CostModel::total_cost(const ReplicaPlacement& placement) {
  const std::size_t n = placement.problem().object_count();
  std::vector<double> partial(n, 0.0);
  object_costs(placement, partial);
  double total = 0.0;
  for (double v : partial) total += v;
  return total;
}

double CostModel::initial_cost(const Problem& problem) {
  return total_cost(ReplicaPlacement(problem));
}

double CostModel::savings(const ReplicaPlacement& placement) {
  const double before = initial_cost(placement.problem());
  if (before <= 0.0) return 0.0;
  const double after = total_cost(placement);
  return (before - after) / before;
}

double CostModel::agent_benefit(const ReplicaPlacement& placement, ServerId i,
                                ObjectIndex k) {
  const Problem& p = placement.problem();
  const std::size_t slot = p.access.accessor_slot(i, k);
  if (slot != AccessMatrix::npos) return agent_benefit_at(placement, i, k, slot);
  assert(!placement.is_replicator(i, k));
  // No demand cell for (i, k): r_ik = w_ik = 0, only the broadcast price.
  const double o = static_cast<double>(p.object_units[k]);
  return -(static_cast<double>(p.access.total_writes(k)) * o *
           static_cast<double>(p.distance(p.primary[k], i)));
}

double CostModel::agent_benefit_at(const ReplicaPlacement& placement,
                                   ServerId i, ObjectIndex k,
                                   std::size_t slot) {
  const Problem& p = placement.problem();
  assert(!placement.is_replicator(i, k));
  assert(p.access.accessors(k)[slot].server == i);
  const Access& cell = p.access.accessors(k)[slot];
  const double o = static_cast<double>(p.object_units[k]);
  const double read_savings =
      static_cast<double>(cell.reads) * o *
      static_cast<double>(placement.nn_distance_by_slot(k, slot));
  const double broadcast_price =
      (static_cast<double>(p.access.total_writes(k)) -
       static_cast<double>(cell.writes)) *
      o * static_cast<double>(p.distance(p.primary[k], i));
  return read_savings - broadcast_price;
}

double CostModel::global_benefit(const ReplicaPlacement& placement, ServerId i,
                                 ObjectIndex k) {
  const Problem& p = placement.problem();
  assert(!placement.is_replicator(i, k));
  const double o = static_cast<double>(p.object_units[k]);

  // Read savings accrue to every accessor whose nearest replica would get
  // closer (including i itself, whose read distance drops to zero).
  double benefit = 0.0;
  const auto accessors = p.access.accessors(k);
  const auto nn = placement.nn_row(k);
  const auto i_row = p.distances->row(i);
  for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
    const Access& a = accessors[slot];
    if (a.reads == 0 || placement.is_replicator(a.server, k)) continue;
    const net::Cost current = nn[slot];
    const net::Cost with_i = std::min(current, i_row[a.server]);
    benefit += static_cast<double>(a.reads) * o *
               (static_cast<double>(current) - static_cast<double>(with_i));
  }
  // New replicator i starts receiving everyone else's update broadcasts.
  benefit -= (static_cast<double>(p.access.total_writes(k)) -
              static_cast<double>(p.access.writes(i, k))) *
             o * static_cast<double>(p.distance(p.primary[k], i));
  return benefit;
}

}  // namespace agtram::drp
