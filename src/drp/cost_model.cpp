#include "drp/cost_model.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <mutex>

#include "common/thread_pool.hpp"
#include "drp/kernels.hpp"

namespace agtram::drp {

double CostModel::object_cost(const ReplicaPlacement& placement,
                              ObjectIndex k) {
  const Problem& p = placement.problem();
  const double o = static_cast<double>(p.object_units[k]);
  const ServerId primary = p.primary[k];
  const double w_total = static_cast<double>(p.access.total_writes(k));

  // Accessor sweep: every writer ships its updates to the primary,
  // replicators receive the broadcast of everyone else's updates, and
  // non-replicators read from the nearest replica (kernels.hpp kernel 1,
  // bit-identical to the historical AoS walk).
  const auto servers = p.access.accessor_servers(k);
  kernels::Scratch& scratch = kernels::tls_scratch();
  scratch.mask.resize(servers.size());
  kernels::member_mask(servers, placement.replicators(k), scratch.mask.data());
  double cost =
      kernels::object_cost_accumulate(
          servers, p.access.accessor_reads_d(k), p.access.accessor_writes_d(k),
          placement.nn_row(k), p.distances->row(primary), scratch.mask.data(),
          o, w_total)
          .cost;
  // Replicators with no demand of their own still subscribe to the full
  // update broadcast (possible under the genetic baseline's mutations).
  for (ServerId r : placement.replicators(k)) {
    if (r == primary) continue;
    if (p.access.accessor_slot(r, k) == AccessMatrix::npos) {
      cost += w_total * o * static_cast<double>(p.distance(primary, r));
    }
  }
  return cost;
}

double CostModel::object_cost_with_replicators(
    const Problem& p, ObjectIndex k, std::span<const ServerId> replicators) {
  const double o = static_cast<double>(p.object_units[k]);
  const ServerId primary = p.primary[k];
  const double w_total = static_cast<double>(p.access.total_writes(k));

  // Stage the virtual NN row (integral min over `replicators`, order-free),
  // then run the same accumulate kernel object_cost uses.  The per-slot
  // double op sequence is unchanged: precomputing the minima only reorders
  // integer work.
  const auto servers = p.access.accessor_servers(k);
  kernels::Scratch& scratch = kernels::tls_scratch();
  scratch.mask.resize(servers.size());
  kernels::member_mask(servers, replicators, scratch.mask.data());
  scratch.nn.resize(servers.size());
  for (std::size_t slot = 0; slot < servers.size(); ++slot) {
    scratch.nn[slot] =
        scratch.mask[slot]
            ? 0  // member slots never read their NN entry
            : kernels::nn_min(p.distances->row(servers[slot]), replicators);
  }
  double cost = kernels::object_cost_accumulate(
                    servers, p.access.accessor_reads_d(k),
                    p.access.accessor_writes_d(k), scratch.nn,
                    p.distances->row(primary), scratch.mask.data(), o, w_total)
                    .cost;
  for (ServerId r : replicators) {
    if (r == primary) continue;
    if (p.access.accessor_slot(r, k) == AccessMatrix::npos) {
      cost += w_total * o * static_cast<double>(p.distance(primary, r));
    }
  }
  return cost;
}

void CostModel::object_costs(const ReplicaPlacement& placement,
                             std::span<double> out) {
  const std::size_t n = placement.problem().object_count();
  assert(out.size() == n);
  common::ThreadPool::shared().parallel_for(
      0, n,
      [&](std::size_t first, std::size_t last) {
        for (std::size_t k = first; k < last; ++k) {
          out[k] = object_cost(placement, static_cast<ObjectIndex>(k));
        }
      },
      /*min_grain=*/128);
}

double CostModel::total_cost(const ReplicaPlacement& placement) {
  const std::size_t n = placement.problem().object_count();
  std::vector<double> partial(n, 0.0);
  object_costs(placement, partial);
  double total = 0.0;
  for (double v : partial) total += v;
  return total;
}

double CostModel::initial_cost(const Problem& problem) {
  return total_cost(ReplicaPlacement(problem));
}

double CostModel::savings(const ReplicaPlacement& placement) {
  const double before = initial_cost(placement.problem());
  if (before <= 0.0) return 0.0;
  const double after = total_cost(placement);
  return (before - after) / before;
}

double CostModel::agent_benefit(const ReplicaPlacement& placement, ServerId i,
                                ObjectIndex k) {
  const Problem& p = placement.problem();
  const std::size_t slot = p.access.accessor_slot(i, k);
  if (slot != AccessMatrix::npos) return agent_benefit_at(placement, i, k, slot);
  assert(!placement.is_replicator(i, k));
  // No demand cell for (i, k): r_ik = w_ik = 0, only the broadcast price.
  const double o = static_cast<double>(p.object_units[k]);
  return -(static_cast<double>(p.access.total_writes(k)) * o *
           static_cast<double>(p.distance(p.primary[k], i)));
}

double CostModel::agent_benefit_at(const ReplicaPlacement& placement,
                                   ServerId i, ObjectIndex k,
                                   std::size_t slot) {
  const Problem& p = placement.problem();
  assert(!placement.is_replicator(i, k));
  assert(p.access.accessors(k)[slot].server == i);
  const Access& cell = p.access.accessors(k)[slot];
  const double o = static_cast<double>(p.object_units[k]);
  const double read_savings =
      static_cast<double>(cell.reads) * o *
      static_cast<double>(placement.nn_distance_by_slot(k, slot));
  const double broadcast_price =
      (static_cast<double>(p.access.total_writes(k)) -
       static_cast<double>(cell.writes)) *
      o * static_cast<double>(p.distance(p.primary[k], i));
  return read_savings - broadcast_price;
}

double CostModel::global_benefit(const ReplicaPlacement& placement, ServerId i,
                                 ObjectIndex k) {
  const Problem& p = placement.problem();
  assert(!placement.is_replicator(i, k));
  const double o = static_cast<double>(p.object_units[k]);

  // Read savings accrue to every accessor whose nearest replica would get
  // closer (including i itself, whose read distance drops to zero).
  // Kernels.hpp kernel 3; the masked sweep adds in slot order, bit-identical
  // to the historical loop.
  const auto servers = p.access.accessor_servers(k);
  kernels::Scratch& scratch = kernels::tls_scratch();
  scratch.mask.resize(servers.size());
  kernels::member_mask(servers, placement.replicators(k), scratch.mask.data());
  double benefit = kernels::read_savings_accumulate(
      servers, p.access.accessor_reads_d(k), placement.nn_row(k),
      p.distances->row(i), scratch.mask.data(), o);
  // New replicator i starts receiving everyone else's update broadcasts.
  benefit -= (static_cast<double>(p.access.total_writes(k)) -
              static_cast<double>(p.access.writes(i, k))) *
             o * static_cast<double>(p.distance(p.primary[k], i));
  return benefit;
}

}  // namespace agtram::drp
