// Replication-scheme state: the boolean matrix X of the paper, held
// incrementally.
//
// For every object we keep the replicator set R_k and — for each server with
// demand on the object — the cached nearest-replica distance NN_ik that the
// cost model and all placement algorithms consume.  Adding a replica updates
// the caches in O(|accessors(k)|); removing one (used by the genetic
// baseline) rebuilds the object's cache in O(|accessors(k)| * |R_k|).
//
// Memory layout (DESIGN.md §7): the NN caches live in two flat arrays
// indexed by AccessMatrix::accessor_base(k) + slot — the same slot scheme as
// the accessor pool, so one round's cost walk touches two parallel
// contiguous ranges.  Replicator sets are small inline buffers
// (kInlineReplicators entries in place); the rare hot object that outgrows
// its buffer spills to a chunked arena whose blocks never move, so
// `replicators(k)` spans stay valid across mutations of *other* objects.
// A span for object k itself is invalidated by add_replica(_, k) — the same
// contract the nested-vector layout had.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "drp/problem.hpp"
#include "net/shortest_paths.hpp"

namespace agtram::drp {

class ReplicaPlacement {
 public:
  /// Primaries-only scheme (X_{P_k,k} = 1, everything else 0) — the paper's
  /// "initial" network against which OTC savings are measured.
  explicit ReplicaPlacement(const Problem& problem);

  ReplicaPlacement(const ReplicaPlacement& other);
  ReplicaPlacement& operator=(const ReplicaPlacement& other);
  ReplicaPlacement(ReplicaPlacement&&) noexcept = default;
  ReplicaPlacement& operator=(ReplicaPlacement&&) noexcept = default;
  ~ReplicaPlacement() = default;

  const Problem& problem() const noexcept { return *problem_; }

  /// Replicators of object k (always contains the primary), sorted.  The
  /// span is invalidated by add_replica/remove_replica on the *same* object;
  /// mutations of other objects leave it valid.
  std::span<const ServerId> replicators(ObjectIndex k) const {
    const RepSet& rs = reps_[k];
    return {rep_data(rs), rs.count};
  }

  bool is_replicator(ServerId i, ObjectIndex k) const;

  /// Storage units consumed on server i (primaries + replicas).
  std::uint64_t used_capacity(ServerId i) const { return used_[i]; }
  std::uint64_t free_capacity(ServerId i) const {
    return problem_->capacity[i] - used_[i];
  }

  /// Whether adding a replica of k on i is legal: not already a replicator
  /// and enough free capacity.
  bool can_replicate(ServerId i, ObjectIndex k) const;

  /// Adds a replica; precondition: can_replicate(i, k).
  void add_replica(ServerId i, ObjectIndex k);

  /// Removes a replica; precondition: is_replicator(i,k) and i != primary.
  void remove_replica(ServerId i, ObjectIndex k);

  /// Nearest-replica distance from server i for object k (0 if i is itself
  /// a replicator).  O(1) for accessors, O(|R_k|) otherwise.
  net::Cost nn_distance(ServerId i, ObjectIndex k) const;

  /// Identity of the nearest replicator (ties: lowest distance found first).
  ServerId nn_server(ServerId i, ObjectIndex k) const;

  /// Cached NN distance by accessor slot (see AccessMatrix::accessor_slot).
  net::Cost nn_distance_by_slot(ObjectIndex k, std::size_t slot) const {
    return nn_dist_[problem_->access.accessor_base(k) + slot];
  }

  /// Identity of the cached nearest replicator for an accessor slot.  Which
  /// of several equidistant replicators is recorded depends on mutation
  /// history, but the cached *distance* never does; DeltaEvaluator uses this
  /// only to decide whether a hypothetical drop can change the slot's NN
  /// distance at all (it cannot when the recorded node survives the drop).
  ServerId nn_node_by_slot(ObjectIndex k, std::size_t slot) const {
    return nn_node_[problem_->access.accessor_base(k) + slot];
  }

  /// Object k's whole NN-distance row, parallel to access.accessors(k).
  /// Hot-loop variant of nn_distance_by_slot: one base lookup per row.
  std::span<const net::Cost> nn_row(ObjectIndex k) const {
    const std::size_t base = problem_->access.accessor_base(k);
    return {nn_dist_.data() + base,
            problem_->access.accessor_base(k + 1) - base};
  }

  /// Object k's cached nearest-replicator identities, parallel to nn_row(k).
  /// Hot-loop variant of nn_node_by_slot (same caveat: the recorded node
  /// among equidistant replicators is history-dependent, the distance isn't).
  std::span<const ServerId> nn_node_row(ObjectIndex k) const {
    const std::size_t base = problem_->access.accessor_base(k);
    return {nn_node_.data() + base,
            problem_->access.accessor_base(k + 1) - base};
  }

  /// Total replica count including primaries.
  std::size_t replica_count() const;

  /// Replicas beyond the primaries (what the algorithms actually placed).
  std::size_t extra_replica_count() const {
    return replica_count() - problem_->object_count();
  }

  /// Checks every invariant (capacity, primary membership, NN cache
  /// consistency, replicator-set layout); throws std::logic_error on
  /// violation.  Test hook — O(M*N).
  void check_invariants() const;

  /// Replicator sets up to this size live inside RepSet itself; bigger sets
  /// spill to the arena.  8 covers the overwhelming majority of objects at
  /// every shipped scale (mean extra replicas per object is ~1).
  static constexpr std::uint32_t kInlineReplicators = 8;

 private:
  static constexpr std::size_t kSpillBlockEntries = 4096;

  struct RepSet {
    std::uint32_t count = 0;
    std::uint32_t capacity = kInlineReplicators;
    std::uint32_t block = 0;   ///< arena block index (capacity > inline only)
    std::uint32_t offset = 0;  ///< offset inside that block
    ServerId inline_buf[kInlineReplicators];
  };

  const ServerId* rep_data(const RepSet& rs) const {
    return rs.capacity <= kInlineReplicators
               ? rs.inline_buf
               : spill_blocks_[rs.block].get() + rs.offset;
  }
  ServerId* rep_data(RepSet& rs) {
    return rs.capacity <= kInlineReplicators
               ? rs.inline_buf
               : spill_blocks_[rs.block].get() + rs.offset;
  }

  /// Bump-allocates `n` entries from the spill arena (blocks never move).
  ServerId* spill_alloc(std::uint32_t n, std::uint32_t& block,
                        std::uint32_t& offset);
  /// Doubles rs's storage via the arena; the old chunk is abandoned in
  /// place (bounded garbage: every entry is copied at most once per
  /// doubling, so waste < total allocated).  Copy construction compacts.
  void grow(RepSet& rs);

  void rebuild_nn(ObjectIndex k);

  const Problem* problem_;
  std::vector<RepSet> reps_;                ///< one per object, never resized
  std::vector<std::unique_ptr<ServerId[]>> spill_blocks_;
  std::size_t spill_block_cap_ = 0;   ///< capacity of spill_blocks_.back()
  std::size_t spill_block_used_ = 0;  ///< bump cursor in spill_blocks_.back()

  /// Flat NN caches, indexed by access.accessor_base(k) + slot (one entry
  /// per nonzero demand cell, shared slot scheme with the accessor pool).
  std::vector<net::Cost> nn_dist_;
  std::vector<ServerId> nn_node_;
  std::vector<std::uint64_t> used_;
};

}  // namespace agtram::drp
