// Replication-scheme state: the boolean matrix X of the paper, held
// incrementally.
//
// For every object we keep the replicator set R_k and — for each server with
// demand on the object — the cached nearest-replica distance NN_ik that the
// cost model and all placement algorithms consume.  Adding a replica updates
// the caches in O(|accessors(k)|); removing one (used by the genetic
// baseline) rebuilds the object's cache in O(|accessors(k)| * |R_k|).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "drp/problem.hpp"
#include "net/shortest_paths.hpp"

namespace agtram::drp {

class ReplicaPlacement {
 public:
  /// Primaries-only scheme (X_{P_k,k} = 1, everything else 0) — the paper's
  /// "initial" network against which OTC savings are measured.
  explicit ReplicaPlacement(const Problem& problem);

  const Problem& problem() const noexcept { return *problem_; }

  /// Replicators of object k (always contains the primary), sorted.
  std::span<const ServerId> replicators(ObjectIndex k) const {
    return replicators_[k];
  }

  bool is_replicator(ServerId i, ObjectIndex k) const;

  /// Storage units consumed on server i (primaries + replicas).
  std::uint64_t used_capacity(ServerId i) const { return used_[i]; }
  std::uint64_t free_capacity(ServerId i) const {
    return problem_->capacity[i] - used_[i];
  }

  /// Whether adding a replica of k on i is legal: not already a replicator
  /// and enough free capacity.
  bool can_replicate(ServerId i, ObjectIndex k) const;

  /// Adds a replica; precondition: can_replicate(i, k).
  void add_replica(ServerId i, ObjectIndex k);

  /// Removes a replica; precondition: is_replicator(i,k) and i != primary.
  void remove_replica(ServerId i, ObjectIndex k);

  /// Nearest-replica distance from server i for object k (0 if i is itself
  /// a replicator).  O(1) for accessors, O(|R_k|) otherwise.
  net::Cost nn_distance(ServerId i, ObjectIndex k) const;

  /// Identity of the nearest replicator (ties: lowest distance found first).
  ServerId nn_server(ServerId i, ObjectIndex k) const;

  /// Cached NN distance by accessor slot (see AccessMatrix::accessor_slot).
  net::Cost nn_distance_by_slot(ObjectIndex k, std::size_t slot) const {
    return nn_dist_[k][slot];
  }

  /// Total replica count including primaries.
  std::size_t replica_count() const;

  /// Replicas beyond the primaries (what the algorithms actually placed).
  std::size_t extra_replica_count() const {
    return replica_count() - problem_->object_count();
  }

  /// Checks every invariant (capacity, primary membership, NN cache
  /// consistency); throws std::logic_error on violation.  Test hook — O(M*N).
  void check_invariants() const;

 private:
  void rebuild_nn(ObjectIndex k);

  const Problem* problem_;
  std::vector<std::vector<ServerId>> replicators_;
  std::vector<std::vector<net::Cost>> nn_dist_;   ///< per accessor slot
  std::vector<std::vector<ServerId>> nn_node_;    ///< per accessor slot
  std::vector<std::uint64_t> used_;
};

}  // namespace agtram::drp
