#include "drp/problem.hpp"

#include <sstream>
#include <stdexcept>

namespace agtram::drp {

std::vector<std::uint64_t> Problem::primary_load() const {
  std::vector<std::uint64_t> load(server_count(), 0);
  for (std::size_t k = 0; k < object_count(); ++k) {
    load[primary[k]] += object_units[k];
  }
  return load;
}

void Problem::validate() const {
  if (!distances) {
    throw std::invalid_argument("Problem: missing distance matrix");
  }
  if (distances->node_count() != server_count()) {
    throw std::invalid_argument("Problem: distance matrix / capacity size mismatch");
  }
  if (primary.size() != object_count()) {
    throw std::invalid_argument("Problem: primary size != object count");
  }
  if (access.server_count() != server_count() ||
      access.object_count() != object_count()) {
    throw std::invalid_argument("Problem: access matrix dimensions mismatch");
  }
  for (std::size_t k = 0; k < object_count(); ++k) {
    if (object_units[k] == 0) {
      throw std::invalid_argument("Problem: zero-sized object");
    }
    if (primary[k] >= server_count()) {
      throw std::invalid_argument("Problem: primary server out of range");
    }
  }
  const auto load = primary_load();
  for (std::size_t i = 0; i < server_count(); ++i) {
    if (load[i] > capacity[i]) {
      throw std::invalid_argument(
          "Problem: server cannot hold its primary copies");
    }
  }
}

std::string Problem::summary() const {
  std::ostringstream os;
  os << "DRP[M=" << server_count() << ", N=" << object_count()
     << ", nnz=" << access.nonzeros()
     << ", reads=" << access.grand_total_reads()
     << ", writes=" << access.grand_total_writes() << "]";
  return os.str();
}

}  // namespace agtram::drp
