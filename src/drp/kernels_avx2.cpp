// AVX2 kernel paths (kernels_avx2.hpp).  Compiled with -mavx2 and
// -ffp-contract=off only when AGTRAM_SIMD=ON on an x86-64 target; dispatch
// in kernels.cpp guarantees the CPU supports AVX2 before any call lands
// here.
//
// Bit-identity rules (kernels.hpp, DESIGN.md §10):
//   - Chained double sums keep the scalar slot order: each 4-slot block
//     computes its addends in lanes, spills them to a stack array, and folds
//     them into the accumulator serially.  Lanes only ever parallelise the
//     *products*, never the sum.
//   - No FMA intrinsics anywhere — separate _mm256_mul_pd / _mm256_add_pd
//     match the -ffp-contract=off scalar code exactly.
//   - Integer (u32) min reductions are associative and commutative, so those
//     run genuinely data-parallel with a final cross-lane reduce.
//   - Masked-out lanes contribute a literal +0.0 to nonnegative-sum chains
//     (x + 0.0 == x bitwise for every x != -0.0, and these sums never see
//     -0.0), which is how the vector path skips member / zero-read slots
//     without branching.
#include "drp/kernels_avx2.hpp"

#include <immintrin.h>

#include <algorithm>
#include <cstring>

namespace agtram::drp::kernels::avx2 {
namespace {

// Exact u32 -> f64 for all 2^32 values (including net::kUnreachable, which a
// signed cvt would wreck): zero-extend to u64 lanes, OR in the exponent bits
// of 2^52 so the integer occupies the mantissa exactly, subtract 2^52.
inline __m256d u32x4_to_f64(__m128i v) noexcept {
  const __m256i wide = _mm256_cvtepu32_epi64(v);
  const __m256i magic_i = _mm256_set1_epi64x(0x4330000000000000LL);
  const __m256d magic_d = _mm256_set1_pd(0x1p52);
  return _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(wide, magic_i)),
                       magic_d);
}

// Four member-mask bytes -> all-ones/all-zeros 64-bit lane masks.
inline __m256d mask4_to_pd(const std::uint8_t* m) noexcept {
  std::int32_t packed;
  std::memcpy(&packed, m, sizeof(packed));
  const __m128i bytes = _mm_cvtsi32_si128(packed);
  const __m128i lanes32 = _mm_cvtepu8_epi32(bytes);
  const __m128i nz = _mm_cmpgt_epi32(lanes32, _mm_setzero_si128());
  return _mm256_castsi256_pd(_mm256_cvtepi32_epi64(nz));
}

inline __m128i load_u32x4(const void* p) noexcept {
  return _mm_loadu_si128(static_cast<const __m128i*>(p));
}

}  // namespace

CostAccum object_cost_accumulate(const ServerId* servers, const double* reads,
                                 const double* writes, const net::Cost* nn,
                                 const net::Cost* primary_row,
                                 const std::uint8_t* member, double o,
                                 double w_total,
                                 std::size_t n) noexcept {
  CostAccum acc;
  const __m256d o_v = _mm256_set1_pd(o);
  const __m256d wt_v = _mm256_set1_pd(w_total);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t s = 0;
  for (; s + 4 <= n; s += 4) {
    const __m128i srv = load_u32x4(servers + s);
    const __m128i cp_i = _mm_i32gather_epi32(
        reinterpret_cast<const int*>(primary_row), srv, 4);
    const __m256d cp = u32x4_to_f64(cp_i);
    const __m256d wr = _mm256_loadu_pd(writes + s);
    const __m256d rd = _mm256_loadu_pd(reads + s);
    const __m256d nn_d = u32x4_to_f64(load_u32x4(nn + s));
    const __m256d mem = mask4_to_pd(member + s);

    // t1 = writes*o*cp;  t2 = member ? (w_total-writes)*o*cp : reads*o*nn
    const __m256d t1 = _mm256_mul_pd(_mm256_mul_pd(wr, o_v), cp);
    const __m256d t2_rep =
        _mm256_mul_pd(_mm256_mul_pd(_mm256_sub_pd(wt_v, wr), o_v), cp);
    const __m256d t2_read = _mm256_mul_pd(_mm256_mul_pd(rd, o_v), nn_d);
    const __m256d t2 = _mm256_blendv_pd(t2_read, t2_rep, mem);
    // sv = (!member && reads != 0) ? reads*o*nn : +0.0
    const __m256d rd_nz = _mm256_cmp_pd(rd, zero, _CMP_NEQ_OQ);
    const __m256d sv =
        _mm256_and_pd(t2_read, _mm256_andnot_pd(mem, rd_nz));

    alignas(32) double t1_a[4];
    alignas(32) double t2_a[4];
    alignas(32) double sv_a[4];
    _mm256_store_pd(t1_a, t1);
    _mm256_store_pd(t2_a, t2);
    _mm256_store_pd(sv_a, sv);
    for (int j = 0; j < 4; ++j) {  // serial fold: scalar add order
      acc.cost += t1_a[j];
      acc.cost += t2_a[j];
      acc.saving += sv_a[j];
    }
  }
  for (; s < n; ++s) {  // scalar tail, identical op sequence
    const double cp = static_cast<double>(primary_row[servers[s]]);
    acc.cost += writes[s] * o * cp;
    if (member[s]) {
      acc.cost += (w_total - writes[s]) * o * cp;
    } else {
      acc.cost += reads[s] * o * static_cast<double>(nn[s]);
      if (reads[s] != 0.0) {
        acc.saving += reads[s] * o * static_cast<double>(nn[s]);
      }
    }
  }
  return acc;
}

net::Cost nn_min(const net::Cost* row, const ServerId* reps,
                 std::size_t n) noexcept {
  // u32 min is order-free: 8 running lane minima, one cross-lane reduce.
  __m256i best8 = _mm256_set1_epi32(-1);  // all bits set == kUnreachable
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(reps + j));
    const __m256i v =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(row), idx, 4);
    best8 = _mm256_min_epu32(best8, v);
  }
  alignas(32) std::uint32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best8);
  net::Cost best = net::kUnreachable;
  for (const std::uint32_t v : lanes) best = std::min(best, v);
  for (; j < n; ++j) best = std::min(best, row[reps[j]]);
  return best;
}

void min_with_row(const net::Cost* nn, const ServerId* servers,
                  const net::Cost* row, net::Cost* out,
                  std::size_t n) noexcept {
  std::size_t s = 0;
  for (; s + 8 <= n; s += 8) {
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(nn + s));
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(servers + s));
    const __m256i gathered =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(row), idx, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + s),
                        _mm256_min_epu32(cur, gathered));
  }
  for (; s < n; ++s) out[s] = std::min(nn[s], row[servers[s]]);
}

double read_savings_accumulate(const ServerId* servers, const double* reads,
                               const net::Cost* nn, const net::Cost* i_row,
                               const std::uint8_t* member, double o,
                               std::size_t n) noexcept {
  double benefit = 0.0;
  const __m256d o_v = _mm256_set1_pd(o);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t s = 0;
  for (; s + 4 <= n; s += 4) {
    const __m128i cur_i = load_u32x4(nn + s);
    const __m128i srv = load_u32x4(servers + s);
    const __m128i row_i =
        _mm_i32gather_epi32(reinterpret_cast<const int*>(i_row), srv, 4);
    const __m128i with_i = _mm_min_epu32(cur_i, row_i);
    const __m256d cur_d = u32x4_to_f64(cur_i);
    const __m256d with_d = u32x4_to_f64(with_i);
    const __m256d rd = _mm256_loadu_pd(reads + s);
    // term = (reads*o) * (cur - with); zeroed where member or reads == 0
    const __m256d term = _mm256_mul_pd(_mm256_mul_pd(rd, o_v),
                                       _mm256_sub_pd(cur_d, with_d));
    const __m256d mem = mask4_to_pd(member + s);
    const __m256d rd_nz = _mm256_cmp_pd(rd, zero, _CMP_NEQ_OQ);
    const __m256d masked =
        _mm256_and_pd(term, _mm256_andnot_pd(mem, rd_nz));
    alignas(32) double t_a[4];
    _mm256_store_pd(t_a, masked);
    for (int j = 0; j < 4; ++j) benefit += t_a[j];  // serial fold
  }
  for (; s < n; ++s) {
    if (reads[s] == 0.0 || member[s]) continue;
    const net::Cost current = nn[s];
    const net::Cost with_i = std::min(current, i_row[servers[s]]);
    benefit += reads[s] * o *
               (static_cast<double>(current) - static_cast<double>(with_i));
  }
  return benefit;
}

void best_add_read_pass(double ro, net::Cost current, const net::Cost* a_row,
                        std::size_t first, std::size_t last,
                        double* benefit) noexcept {
  // benefit[i] are independent accumulators: lanes add straight into memory
  // without any cross-lane reassociation.
  const __m256i cur8 = _mm256_set1_epi32(static_cast<int>(current));
  const __m256d cur_d = _mm256_set1_pd(static_cast<double>(current));
  const __m256d ro_v = _mm256_set1_pd(ro);
  std::size_t i = first;
  for (; i + 8 <= last; i += 8) {
    const __m256i row8 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a_row + i));
    const __m256i with8 = _mm256_min_epu32(cur8, row8);
    // Most candidates don't beat the reader's current NN: when no lane
    // improves, every addend is ro * 0.0 = +0.0, and x + (+0.0) == x
    // bitwise for every x except -0.0 — which the benefit array never
    // holds here (kernels.hpp precondition).  Skip the whole block.
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi32(with8, cur8)) == -1) {
      continue;
    }
    const __m256d with_lo = u32x4_to_f64(_mm256_castsi256_si128(with8));
    const __m256d with_hi = u32x4_to_f64(_mm256_extracti128_si256(with8, 1));
    const __m256d add_lo =
        _mm256_mul_pd(ro_v, _mm256_sub_pd(cur_d, with_lo));
    const __m256d add_hi =
        _mm256_mul_pd(ro_v, _mm256_sub_pd(cur_d, with_hi));
    _mm256_storeu_pd(benefit + i,
                     _mm256_add_pd(_mm256_loadu_pd(benefit + i), add_lo));
    _mm256_storeu_pd(
        benefit + i + 4,
        _mm256_add_pd(_mm256_loadu_pd(benefit + i + 4), add_hi));
  }
  for (; i < last; ++i) {
    const net::Cost with_i = std::min(current, a_row[i]);
    benefit[i] += ro * (static_cast<double>(current) -
                        static_cast<double>(with_i));
  }
}

void broadcast_price_pass(double w_total, double o, const double* w_dense,
                          const net::Cost* primary_row, std::size_t first,
                          std::size_t last, double* benefit) noexcept {
  const __m256d wt_v = _mm256_set1_pd(w_total);
  const __m256d o_v = _mm256_set1_pd(o);
  std::size_t i = first;
  for (; i + 4 <= last; i += 4) {
    const __m256d pr = u32x4_to_f64(load_u32x4(primary_row + i));
    const __m256d w = _mm256_loadu_pd(w_dense + i);
    const __m256d term = _mm256_mul_pd(
        _mm256_mul_pd(_mm256_sub_pd(wt_v, w), o_v), pr);
    _mm256_storeu_pd(benefit + i,
                     _mm256_sub_pd(_mm256_loadu_pd(benefit + i), term));
  }
  for (; i < last; ++i) {
    benefit[i] -=
        (w_total - w_dense[i]) * o * static_cast<double>(primary_row[i]);
  }
}

}  // namespace agtram::drp::kernels::avx2
