// Delta-OTC evaluation engine shared by the baseline placement algorithms
// (DESIGN.md §8).
//
// Owns a ReplicaPlacement plus two per-object caches kept exact across
// mutations:
//
//  * obj_cost_[k]   — CostModel::object_cost(placement, k), refreshed from
//                     scratch (never adjusted in place) whenever object k is
//                     mutated, so every cached value carries the exact bits a
//                     fresh evaluation would produce;
//  * opt_saving_[k] — Aε-Star's admissible per-object saving bound
//                     Σ_readers r·o·NN over non-replicator readers, refreshed
//                     in the same walk.
//
// total() lazily re-sums obj_cost_ in object order — the same association
// CostModel::total_cost uses over its parallel partials — so it is
// bit-identical to a full recomputation at ~1/|accessors| of the work
// (O(N) float adds when dirty, O(1) when clean).
//
// The hypothetical evaluators (cost_if_added/dropped/swapped) replay
// object_cost's exact loop structure against a *virtual* replicator set
// without touching the placement: NN distances are integral minima, so the
// virtual NN values equal what add/remove/rebuild would cache, and the
// floating-point op sequence matches a fresh post-mutation object_cost
// term for term.  That is the whole invariant: delta = hypothetical − cached
// is bit-identical to (after − before) measured around a real mutation.
//
// best_add_for_object is the loop-swapped, optionally thread-parallel
// candidate scan behind Greedy: instead of per-server global_benefit calls
// that stride down distance-matrix columns, it walks each reader's distance
// *row* sequentially, accumulating per-server benefits in slot order — the
// identical op order per server as CostModel::global_benefit, hence
// bit-identical winners.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "drp/cost_model.hpp"
#include "drp/placement.hpp"
#include "drp/problem.hpp"

namespace agtram::drp {

class DeltaEvaluator {
 public:
  /// Per-server scan cutoff: below this many servers the chunked row walk of
  /// best_add_for_object cannot amortise a pool fork, so the scan stays
  /// inline even when asked to parallelise (round-size-aware cutoff, same
  /// policy as the mechanism's parallel_min_agents).  Public so benches and
  /// obs decision blocks can report the threshold the scan compared against.
  static constexpr std::size_t kParallelMinServers = 1024;

  explicit DeltaEvaluator(ReplicaPlacement placement);

  DeltaEvaluator(const DeltaEvaluator&) = default;
  DeltaEvaluator& operator=(const DeltaEvaluator&) = default;
  DeltaEvaluator(DeltaEvaluator&&) noexcept = default;
  DeltaEvaluator& operator=(DeltaEvaluator&&) noexcept = default;

  const Problem& problem() const noexcept { return placement_.problem(); }
  const ReplicaPlacement& placement() const noexcept { return placement_; }
  /// Moves the placement out (the evaluator is dead afterwards).
  ReplicaPlacement take_placement() && { return std::move(placement_); }

  /// Lends the placement out for external mutation (O(1) moves both ways —
  /// no arena copy).  Between detach and attach the evaluator is hollow:
  /// only detach/attach may be called.  The online engine uses this to hand
  /// its live placement to run_agt_ram_from and take the repaired one back.
  ReplicaPlacement detach_placement() { return std::move(placement_); }

  /// Re-attaches a placement previously lent out via detach_placement and
  /// re-refreshes exactly the objects whose replicator sets were mutated
  /// while detached (`touched` need not be sorted or unique).  Caches for
  /// untouched objects are reused verbatim — that is the whole point; the
  /// caller owns the obligation that `touched` covers every mutated object.
  void attach_placement(ReplicaPlacement placement,
                        std::span<const ObjectIndex> touched);

  /// Cached per-object cost; equals CostModel::object_cost bit for bit.
  double object_cost(ObjectIndex k) const { return obj_cost_[k]; }

  /// Cached Σ r·o·NN over non-replicator readers of k (Aε-Star's bound).
  double per_object_saving(ObjectIndex k) const { return opt_saving_[k]; }

  /// Σ_k per_object_saving(k), summed in object order.
  double optimistic_saving() const;

  /// Bit-identical to CostModel::total_cost(placement()); O(N) doubles
  /// re-summed after a mutation, O(1) while untouched.
  double total() const;

  // Read-only hypothetical object costs.  Preconditions mirror the
  // placement mutators': add requires can_replicate(i, k); drop requires a
  // non-primary replicator; swap additionally requires `to` not to be a
  // replicator and to have capacity (capacity at `to` is unaffected by
  // dropping `from`, so placement().can_replicate(to, k) is the right test).
  double cost_if_added(ServerId i, ObjectIndex k) const;
  double cost_if_dropped(ServerId i, ObjectIndex k) const;
  double cost_if_swapped(ServerId from, ServerId to, ObjectIndex k) const;

  double delta_of_add(ServerId i, ObjectIndex k) const {
    return cost_if_added(i, k) - obj_cost_[k];
  }
  double delta_of_drop(ServerId i, ObjectIndex k) const {
    return cost_if_dropped(i, k) - obj_cost_[k];
  }
  double delta_of_swap(ServerId from, ServerId to, ObjectIndex k) const {
    return cost_if_swapped(from, to, k) - obj_cost_[k];
  }

  /// System-wide benefit of adding a replica.  Forwards to
  /// CostModel::global_benefit rather than returning −delta_of_add: the two
  /// are equal mathematically but differ in floating-point association, and
  /// the algorithms that rank by benefit (Greedy, Aε-Star) compare against
  /// oracle paths that use the read-savings form.
  double benefit_of_add(ServerId i, ObjectIndex k) const {
    return CostModel::global_benefit(placement_, i, k);
  }

  bool can_replicate(ServerId i, ObjectIndex k) const {
    return placement_.can_replicate(i, k);
  }

  /// Mutators; keep the caches exact by refreshing object k from scratch.
  void add_replica(ServerId i, ObjectIndex k);
  void remove_replica(ServerId i, ObjectIndex k);

  /// Re-derives object k's caches after an in-place demand mutation
  /// (AccessMatrix::apply_demand_delta).  The caches are demand-dependent —
  /// obj_cost_ folds r/w volumes and opt_saving_ folds reads — so any demand
  /// change on k without this call leaves them silently stale; the
  /// constructor-time refresh was the only writer before the online engine
  /// made demand mutable.
  void refresh_after_demand_change(ObjectIndex k);

  struct BestAdd {
    double benefit = 0.0;
    ServerId server = 0;
  };

  /// Reusable per-scan buffers (caller-owned so concurrent scans from a
  /// parallel outer loop each bring their own).
  struct ScanScratch {
    std::vector<double> benefit;
    std::vector<std::uint8_t> member;  ///< per-slot replicator mask
    std::vector<double> w_dense;       ///< per-server w_ik scatter (0.0 gaps)
  };

  /// argmax_i global_benefit(i, k) over feasible servers (optional site
  /// mask), strict-> with server 0 / benefit 0 as the floor — exactly
  /// Greedy's naive scan.  Loop-swapped: walks each active reader's distance
  /// row sequentially; per-server accumulation stays in slot order, so every
  /// benefit value is bit-identical to CostModel::global_benefit.  When
  /// `parallel` is set the server axis is chunked over the shared pool
  /// (disjoint writes; deterministic serial argmax afterwards).
  BestAdd best_add_for_object(ObjectIndex k,
                              const std::vector<bool>* allowed_sites,
                              ScanScratch& scratch, bool parallel) const;

 private:
  void refresh(ObjectIndex k);

  ReplicaPlacement placement_;
  std::vector<double> obj_cost_;
  std::vector<double> opt_saving_;
  mutable double total_ = 0.0;
  mutable bool total_valid_ = false;
};

}  // namespace agtram::drp
