#include "drp/access_matrix.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace agtram::drp {

AccessMatrix AccessMatrix::build(std::size_t servers, std::size_t objects,
                                 std::vector<std::vector<Access>> by_object) {
  if (by_object.size() != objects) {
    throw std::invalid_argument("AccessMatrix::build: row count != objects");
  }
  AccessMatrix m;
  m.by_object_.resize(objects);
  m.readers_.resize(objects);
  m.by_server_.resize(servers);
  m.object_reads_.assign(objects, 0);
  m.object_writes_.assign(objects, 0);

  for (std::size_t k = 0; k < objects; ++k) {
    auto& row = by_object[k];
    std::sort(row.begin(), row.end(), [](const Access& a, const Access& b) {
      return a.server < b.server;
    });
    auto& out = m.by_object_[k];
    out.reserve(row.size());
    for (const Access& a : row) {
      if (a.server >= servers) {
        throw std::invalid_argument("AccessMatrix::build: server out of range");
      }
      if (a.reads == 0 && a.writes == 0) continue;
      if (!out.empty() && out.back().server == a.server) {
        out.back().reads += a.reads;
        out.back().writes += a.writes;
      } else {
        out.push_back(a);
      }
    }
    for (const Access& a : out) {
      m.object_reads_[k] += a.reads;
      m.object_writes_[k] += a.writes;
      if (a.reads > 0) m.readers_[k].push_back(a.server);
      m.by_server_[a.server].push_back(
          ServerSideAccess{static_cast<ObjectIndex>(k), a.reads, a.writes});
      ++m.nonzeros_;
    }
    m.grand_reads_ += m.object_reads_[k];
    m.grand_writes_ += m.object_writes_[k];
  }
  // by_server_ rows were appended in ascending object order already.
  return m;
}

std::size_t AccessMatrix::accessor_slot(ServerId i, ObjectIndex k) const {
  const auto& row = by_object_[k];
  const auto it = std::lower_bound(
      row.begin(), row.end(), i,
      [](const Access& a, ServerId target) { return a.server < target; });
  if (it == row.end() || it->server != i) return npos;
  return static_cast<std::size_t>(it - row.begin());
}

std::uint64_t AccessMatrix::reads(ServerId i, ObjectIndex k) const {
  const std::size_t slot = accessor_slot(i, k);
  return slot == npos ? 0 : by_object_[k][slot].reads;
}

std::uint64_t AccessMatrix::writes(ServerId i, ObjectIndex k) const {
  const std::size_t slot = accessor_slot(i, k);
  return slot == npos ? 0 : by_object_[k][slot].writes;
}

}  // namespace agtram::drp
