#include "drp/access_matrix.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace agtram::drp {

AccessMatrix AccessMatrix::build(std::size_t servers, std::size_t objects,
                                 std::vector<std::vector<Access>> by_object) {
  if (by_object.size() != objects) {
    throw std::invalid_argument("AccessMatrix::build: row count != objects");
  }
  AccessMatrix m;
  m.obj_row_.assign(objects + 1, 0);
  m.reader_row_.assign(objects + 1, 0);
  m.object_reads_.assign(objects, 0);
  m.object_writes_.assign(objects, 0);

  // First pass: dedupe each row in place, then lay the merged rows into the
  // two flat by-object pools.
  std::size_t total_cells = 0;
  for (std::size_t k = 0; k < objects; ++k) {
    auto& row = by_object[k];
    std::sort(row.begin(), row.end(), [](const Access& a, const Access& b) {
      return a.server < b.server;
    });
    std::size_t out = 0;
    for (const Access& a : row) {
      if (a.server >= servers) {
        throw std::invalid_argument("AccessMatrix::build: server out of range");
      }
      if (a.reads == 0 && a.writes == 0) continue;
      if (out > 0 && row[out - 1].server == a.server) {
        row[out - 1].reads += a.reads;
        row[out - 1].writes += a.writes;
      } else {
        row[out++] = a;
      }
    }
    row.resize(out);
    total_cells += out;
  }

  m.cells_.reserve(total_cells);
  m.soa_server_.reserve(total_cells);
  m.soa_reads_.reserve(total_cells);
  m.soa_writes_.reserve(total_cells);
  m.readers_.reserve(total_cells);
  std::vector<std::size_t> srv_count(servers, 0);
  for (std::size_t k = 0; k < objects; ++k) {
    m.obj_row_[k] = m.cells_.size();
    m.reader_row_[k] = m.readers_.size();
    for (const Access& a : by_object[k]) {
      m.cells_.push_back(a);
      m.soa_server_.push_back(a.server);
      m.soa_reads_.push_back(static_cast<double>(a.reads));
      m.soa_writes_.push_back(static_cast<double>(a.writes));
      m.object_reads_[k] += a.reads;
      m.object_writes_[k] += a.writes;
      if (a.reads > 0) m.readers_.push_back(a.server);
      ++srv_count[a.server];
    }
    if (m.readers_.size() > m.reader_row_[k]) ++m.objects_with_readers_;
    m.grand_reads_ += m.object_reads_[k];
    m.grand_writes_ += m.object_writes_[k];
  }
  m.obj_row_[objects] = m.cells_.size();
  m.reader_row_[objects] = m.readers_.size();

  // Second pass: transpose into the by-server CSR view.  Walking objects in
  // ascending k keeps each server row sorted by object index.
  m.srv_row_.assign(servers + 1, 0);
  for (std::size_t i = 0; i < servers; ++i) {
    m.srv_row_[i + 1] = m.srv_row_[i] + srv_count[i];
  }
  m.srv_cells_.resize(total_cells);
  std::vector<std::size_t> cursor(m.srv_row_.begin(), m.srv_row_.end() - 1);
  for (std::size_t k = 0; k < objects; ++k) {
    for (const Access& a : by_object[k]) {
      m.srv_cells_[cursor[a.server]++] =
          ServerSideAccess{static_cast<ObjectIndex>(k), a.reads, a.writes};
    }
  }
  return m;
}

std::size_t AccessMatrix::accessor_slot(ServerId i, ObjectIndex k) const {
  const auto row = accessors(k);
  const auto it = std::lower_bound(
      row.begin(), row.end(), i,
      [](const Access& a, ServerId target) { return a.server < target; });
  if (it == row.end() || it->server != i) return npos;
  return static_cast<std::size_t>(it - row.begin());
}

std::uint64_t AccessMatrix::reads(ServerId i, ObjectIndex k) const {
  const std::size_t slot = accessor_slot(i, k);
  return slot == npos ? 0 : cells_[obj_row_[k] + slot].reads;
}

std::uint64_t AccessMatrix::writes(ServerId i, ObjectIndex k) const {
  const std::size_t slot = accessor_slot(i, k);
  return slot == npos ? 0 : cells_[obj_row_[k] + slot].writes;
}

namespace {

// new = old + delta with the checked semantics of apply_demand_delta:
// rejects negative results (and, implicitly, u64 wrap) before any state is
// touched.
std::uint64_t checked_apply(std::uint64_t old_value, std::int64_t delta,
                            const char* what) {
  if (delta < 0) {
    const auto drop = static_cast<std::uint64_t>(-delta);
    if (drop > old_value) {
      throw std::invalid_argument(
          std::string("AccessMatrix::apply_demand_delta: ") + what +
          " would go negative");
    }
    return old_value - drop;
  }
  return old_value + static_cast<std::uint64_t>(delta);
}

}  // namespace

void AccessMatrix::apply_demand_delta(ServerId i, ObjectIndex k,
                                      std::int64_t delta_reads,
                                      std::int64_t delta_writes) {
  const std::size_t slot = accessor_slot(i, k);
  if (slot == npos) {
    throw std::invalid_argument(
        "AccessMatrix::apply_demand_delta: no demand cell for (server " +
        std::to_string(i) + ", object " + std::to_string(k) + ")");
  }
  Access& cell = cells_[obj_row_[k] + slot];
  const std::uint64_t new_reads =
      checked_apply(cell.reads, delta_reads, "reads");
  const std::uint64_t new_writes =
      checked_apply(cell.writes, delta_writes, "writes");
  if (cell.reads == 0 && new_reads > 0) {
    // readers(k) is structural (laid out once at build); a pure-writer cell
    // gaining reads would need a reader-list splice the flat layout cannot
    // do, and would silently break the mechanism's dirty-set superset
    // invariant.  Cells that *were* readers at build stay in readers(k)
    // through a zero-demand dip, so they may re-heat freely.
    const auto rs = readers(k);
    if (!std::binary_search(rs.begin(), rs.end(), i)) {
      throw std::invalid_argument(
          "AccessMatrix::apply_demand_delta: read demand on (server " +
          std::to_string(i) + ", object " + std::to_string(k) +
          ") would add a reader outside the structural readers(k) list");
    }
  }

  // All checks passed; commit to every view in lockstep.
  cell.reads = new_reads;
  cell.writes = new_writes;
  soa_reads_[obj_row_[k] + slot] = static_cast<double>(new_reads);
  soa_writes_[obj_row_[k] + slot] = static_cast<double>(new_writes);

  object_reads_[k] = checked_apply(object_reads_[k], delta_reads, "reads");
  object_writes_[k] = checked_apply(object_writes_[k], delta_writes, "writes");
  grand_reads_ = checked_apply(grand_reads_, delta_reads, "reads");
  grand_writes_ = checked_apply(grand_writes_, delta_writes, "writes");

  // By-server transpose: rows are sorted by object index.
  const auto row = server_objects(i);
  const auto it = std::lower_bound(
      row.begin(), row.end(), k,
      [](const ServerSideAccess& a, ObjectIndex target) {
        return a.object < target;
      });
  assert(it != row.end() && it->object == k);
  ServerSideAccess& srv_cell = srv_cells_[srv_row_[i] + (it - row.begin())];
  srv_cell.reads = new_reads;
  srv_cell.writes = new_writes;
}

}  // namespace agtram::drp
