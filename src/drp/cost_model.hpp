// The Object Transfer Cost (OTC) engine — Equations 1-5 of the paper.
//
// Total cost of a replication scheme X (Eq. 4, reconstructed; see DESIGN.md
// Section 1 for the derivation from the paper's prose):
//
//   C(X) = sum_i sum_k [ (1 - X_ik) * r_ik * o_k * c(i, NN_ik)
//                        +            w_ik * o_k * c(i, P_k)
//                        + X_ik * (w_k - w_ik) * o_k * c(P_k, i) ]
//
// All aggregate values are doubles: each additive term is a product of
// 32/64-bit integers that individually fits a double exactly (< 2^53), but
// the paper-scale sum overflows int64.
//
// The two incremental quantities every algorithm is built from:
//
//  * agent_benefit (Eq. 5 / the valuation CoR):  the drop in *agent i's own*
//    cost if it replicates k — reads become local, in exchange for receiving
//    everyone else's update broadcasts.  This is the private "true data" the
//    mechanism elicits.
//  * global_benefit:  the drop in the *system* cost C(X) if i replicates k —
//    every accessor whose nearest replica gets closer saves on reads.  This
//    is what the centralised Greedy baseline maximises.
#pragma once

#include <span>

#include "drp/placement.hpp"
#include "drp/problem.hpp"

namespace agtram::drp {

class CostModel {
 public:
  /// Cost contribution of object k under the given scheme.
  static double object_cost(const ReplicaPlacement& placement, ObjectIndex k);

  /// object_cost for a hypothetical replicator set, without materialising a
  /// placement.  `replicators` must be sorted, contain the primary, and hold
  /// no duplicates — the invariants ReplicaPlacement maintains — so the loop
  /// structure (and therefore the floating-point result) is identical to
  /// object_cost on a placement with that exact set.  NN distances are
  /// recomputed as min over the set (integral, order-independent).  Used by
  /// GRA's delta fitness to score genomes against a shared base placement.
  static double object_cost_with_replicators(
      const Problem& problem, ObjectIndex k,
      std::span<const ServerId> replicators);

  /// Fills out[k] = object_cost(placement, k) for every object, in parallel
  /// on the shared pool.  Precondition: out.size() == object_count().
  static void object_costs(const ReplicaPlacement& placement,
                           std::span<double> out);

  /// C(X): total OTC; evaluated per object in parallel on the shared pool.
  static double total_cost(const ReplicaPlacement& placement);

  /// Cost of the primaries-only scheme — the paper's baseline against which
  /// "OTC savings %" are computed.
  static double initial_cost(const Problem& problem);

  /// OTC savings of `placement` relative to the primaries-only scheme,
  /// as a fraction in [0, 1].
  static double savings(const ReplicaPlacement& placement);

  /// Eq. 5: agent i's private benefit of replicating object k
  ///   B_ik = r_ik * o_k * c(i, NN_ik)  -  (w_k - w_ik) * o_k * c(P_k, i)
  /// Negative for update-hot objects.  Precondition: X_ik = 0.
  static double agent_benefit(const ReplicaPlacement& placement, ServerId i,
                              ObjectIndex k);

  /// agent_benefit for an accessor whose slot in accessors(k) is already
  /// known (precondition: accessors(k)[slot].server == i).  The mechanism's
  /// inner loop calls this millions of times per run; resolving the slot
  /// once at candidate-list construction removes three binary searches per
  /// evaluation.  Same arithmetic as agent_benefit — bit-identical result.
  static double agent_benefit_at(const ReplicaPlacement& placement, ServerId i,
                                 ObjectIndex k, std::size_t slot);

  /// Reduction in C(X) from adding a replica of k at i (may be negative).
  /// Precondition: X_ik = 0.
  static double global_benefit(const ReplicaPlacement& placement, ServerId i,
                               ObjectIndex k);
};

}  // namespace agtram::drp
