// Portable kernel paths plus the runtime dispatch glue (kernels.hpp).
//
// This TU compiles with -ffp-contract=off (src/drp/CMakeLists.txt): the
// scalar loops below ARE the floating-point contract, op for op, and letting
// the compiler fuse a mul+add into an FMA would change the low bits relative
// to the historical AoS loops and to the AVX2 paths (which use separate
// mul/add intrinsics).
#include "drp/kernels.hpp"

#include <atomic>
#include <cstdlib>

#include "obs/obs.hpp"

#if defined(AGTRAM_SIMD_AVX2)
#include "drp/kernels_avx2.hpp"
#endif

namespace agtram::drp::kernels {
namespace {

// Below these sizes the vector path's gather/mask setup costs more than the
// scalar walk; route short rows straight to the portable loops.  Chosen by
// the micro_core --kernels family on the dev box; correctness never depends
// on them (both arms are bit-identical).  The double-accumulate kernels
// (4 lanes + gathers + a serial fold) need four full blocks to amortise
// their setup; the pure u32 min/row kernels break even at one 8-lane block.
constexpr std::size_t kMinSimdAccumSlots = 16;
constexpr std::size_t kMinSimdSlots = 8;
constexpr std::size_t kMinSimdReps = 16;
constexpr std::size_t kMinSimdServers = 16;

struct SimdState {
  bool compiled = false;
  bool supported = false;
  std::atomic<bool> enabled{false};
};

SimdState& state() noexcept {
  static SimdState s;
  static const bool initialized = [] {
#if defined(AGTRAM_SIMD_AVX2)
    s.compiled = true;
#endif
#if defined(__x86_64__) || defined(_M_X64)
    s.supported = __builtin_cpu_supports("avx2");
#endif
    bool on = s.compiled && s.supported;
    if (const char* env = std::getenv("AGTRAM_SIMD")) {
      if (env[0] == '0' && env[1] == '\0') on = false;
    }
    s.enabled.store(on, std::memory_order_relaxed);
    return true;
  }();
  (void)initialized;
  return s;
}

inline bool use_simd() noexcept {
  return state().enabled.load(std::memory_order_relaxed);
}

// Obs accounting for which arm ran: `simd` / `tail` count iterations the
// vector path handled in lanes vs in its scalar tail; `scalar` counts
// iterations that took the portable loop (dispatch off, or below the size
// cutoff).  AGTRAM_OBS_COUNT caches its counter per call site, so the names
// must be literals — hence a macro, not a helper function.
#define AGTRAM_KERNEL_COUNT_VEC(simd_name, tail_name, n, lanes)          \
  do {                                                                   \
    const std::size_t agtram_kv_tail_ = (n) % (lanes);                   \
    AGTRAM_OBS_COUNT(simd_name,                                          \
                     static_cast<std::uint64_t>((n) - agtram_kv_tail_)); \
    AGTRAM_OBS_COUNT(tail_name,                                          \
                     static_cast<std::uint64_t>(agtram_kv_tail_));       \
  } while (0)

// -------------------------------------------------------------------------
// Portable reference loops.  These are verbatim transcriptions of the AoS
// loops they replaced (cost_model.cpp / delta_evaluator.cpp as of PR 4) with
// the field loads renamed onto the SoA streams; every add happens in the
// same order with the same operand grouping.

CostAccum object_cost_accumulate_portable(
    std::span<const ServerId> servers, std::span<const double> reads,
    std::span<const double> writes, std::span<const net::Cost> nn,
    std::span<const net::Cost> primary_row, const std::uint8_t* member,
    double o, double w_total) noexcept {
  CostAccum acc;
  const std::size_t n = servers.size();
  for (std::size_t s = 0; s < n; ++s) {
    const double cp = static_cast<double>(primary_row[servers[s]]);
    acc.cost += writes[s] * o * cp;
    if (member[s]) {
      acc.cost += (w_total - writes[s]) * o * cp;
    } else {
      acc.cost += reads[s] * o * static_cast<double>(nn[s]);
      if (reads[s] != 0.0) {
        acc.saving += reads[s] * o * static_cast<double>(nn[s]);
      }
    }
  }
  return acc;
}

net::Cost nn_min_portable(std::span<const net::Cost> row,
                          std::span<const ServerId> reps) noexcept {
  net::Cost best = net::kUnreachable;
  for (const ServerId r : reps) {
    best = std::min(best, row[r]);
  }
  return best;
}

void min_with_row_portable(std::span<const net::Cost> nn,
                           std::span<const ServerId> servers,
                           std::span<const net::Cost> row,
                           net::Cost* out) noexcept {
  const std::size_t n = nn.size();
  for (std::size_t s = 0; s < n; ++s) {
    out[s] = std::min(nn[s], row[servers[s]]);
  }
}

double read_savings_accumulate_portable(std::span<const ServerId> servers,
                                        std::span<const double> reads,
                                        std::span<const net::Cost> nn,
                                        std::span<const net::Cost> i_row,
                                        const std::uint8_t* member,
                                        double o) noexcept {
  double benefit = 0.0;
  const std::size_t n = servers.size();
  for (std::size_t s = 0; s < n; ++s) {
    if (reads[s] == 0.0 || member[s]) continue;
    const net::Cost current = nn[s];
    const net::Cost with_i = std::min(current, i_row[servers[s]]);
    benefit += reads[s] * o *
               (static_cast<double>(current) - static_cast<double>(with_i));
  }
  return benefit;
}

void best_add_read_pass_portable(double ro, net::Cost current,
                                 std::span<const net::Cost> a_row,
                                 std::size_t first, std::size_t last,
                                 double* benefit) noexcept {
  for (std::size_t i = first; i < last; ++i) {
    const net::Cost with_i = std::min(current, a_row[i]);
    benefit[i] += ro * (static_cast<double>(current) -
                        static_cast<double>(with_i));
  }
}

void broadcast_price_pass_portable(double w_total, double o,
                                   std::span<const double> w_dense,
                                   std::span<const net::Cost> primary_row,
                                   std::size_t first, std::size_t last,
                                   double* benefit) noexcept {
  for (std::size_t i = first; i < last; ++i) {
    benefit[i] -=
        (w_total - w_dense[i]) * o * static_cast<double>(primary_row[i]);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Dispatch state

bool simd_compiled() noexcept { return state().compiled; }
bool simd_supported() noexcept { return state().supported; }
bool simd_active() noexcept { return use_simd(); }

void set_simd_enabled(bool on) noexcept {
  SimdState& s = state();
  s.enabled.store(on && s.compiled && s.supported, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Membership mask

void member_mask(std::span<const ServerId> servers,
                 std::span<const ServerId> reps, std::uint8_t* mask) noexcept {
  const std::size_t n = servers.size();
  std::size_t r = 0;
  const std::size_t nr = reps.size();
  for (std::size_t s = 0; s < n; ++s) {
    const ServerId id = servers[s];
    while (r < nr && reps[r] < id) ++r;
    mask[s] = (r < nr && reps[r] == id) ? 1 : 0;
  }
}

// ---------------------------------------------------------------------------
// Kernel entry points

CostAccum object_cost_accumulate(std::span<const ServerId> servers,
                                 std::span<const double> reads,
                                 std::span<const double> writes,
                                 std::span<const net::Cost> nn,
                                 std::span<const net::Cost> primary_row,
                                 const std::uint8_t* member, double o,
                                 double w_total) noexcept {
#if defined(AGTRAM_SIMD_AVX2)
  if (servers.size() >= kMinSimdAccumSlots && use_simd()) {
    AGTRAM_KERNEL_COUNT_VEC("kernels.object_cost.simd_slots",
                            "kernels.object_cost.tail_slots",
                            servers.size(), 4);
    return avx2::object_cost_accumulate(servers.data(), reads.data(),
                                        writes.data(), nn.data(),
                                        primary_row.data(), member, o,
                                        w_total, servers.size());
  }
#endif
  AGTRAM_OBS_COUNT("kernels.object_cost.scalar_slots",
                   static_cast<std::uint64_t>(servers.size()));
  return object_cost_accumulate_portable(servers, reads, writes, nn,
                                         primary_row, member, o, w_total);
}

net::Cost nn_min(std::span<const net::Cost> row,
                 std::span<const ServerId> reps) noexcept {
#if defined(AGTRAM_SIMD_AVX2)
  if (reps.size() >= kMinSimdReps && use_simd()) {
    AGTRAM_KERNEL_COUNT_VEC("kernels.nn_min.simd_reps",
                            "kernels.nn_min.tail_reps", reps.size(), 8);
    return avx2::nn_min(row.data(), reps.data(), reps.size());
  }
#endif
  AGTRAM_OBS_COUNT("kernels.nn_min.scalar_reps",
                   static_cast<std::uint64_t>(reps.size()));
  return nn_min_portable(row, reps);
}

net::Cost nn_min_excluding(std::span<const net::Cost> row,
                           std::span<const ServerId> reps,
                           ServerId excluded) noexcept {
  // Always scalar: every call site walks a drop/swap replica set, which the
  // mechanism keeps small (paper-scale runs average < 8 replicas/object); a
  // gather would lose before it starts.  Integer min is order-free, so this
  // is trivially bit-identical across builds.
  net::Cost best = net::kUnreachable;
  for (const ServerId r : reps) {
    if (r == excluded) continue;
    best = std::min(best, row[r]);
  }
  return best;
}

void min_with_row(std::span<const net::Cost> nn,
                  std::span<const ServerId> servers,
                  std::span<const net::Cost> row, net::Cost* out) noexcept {
#if defined(AGTRAM_SIMD_AVX2)
  if (nn.size() >= kMinSimdSlots && use_simd()) {
    AGTRAM_KERNEL_COUNT_VEC("kernels.min_with_row.simd_slots",
                            "kernels.min_with_row.tail_slots", nn.size(), 8);
    avx2::min_with_row(nn.data(), servers.data(), row.data(), out, nn.size());
    return;
  }
#endif
  AGTRAM_OBS_COUNT("kernels.min_with_row.scalar_slots",
                   static_cast<std::uint64_t>(nn.size()));
  min_with_row_portable(nn, servers, row, out);
}

double read_savings_accumulate(std::span<const ServerId> servers,
                               std::span<const double> reads,
                               std::span<const net::Cost> nn,
                               std::span<const net::Cost> i_row,
                               const std::uint8_t* member,
                               double o) noexcept {
#if defined(AGTRAM_SIMD_AVX2)
  if (servers.size() >= kMinSimdAccumSlots && use_simd()) {
    AGTRAM_KERNEL_COUNT_VEC("kernels.read_savings.simd_slots",
                            "kernels.read_savings.tail_slots",
                            servers.size(), 4);
    return avx2::read_savings_accumulate(servers.data(), reads.data(),
                                         nn.data(), i_row.data(), member, o,
                                         servers.size());
  }
#endif
  AGTRAM_OBS_COUNT("kernels.read_savings.scalar_slots",
                   static_cast<std::uint64_t>(servers.size()));
  return read_savings_accumulate_portable(servers, reads, nn, i_row, member,
                                          o);
}

void best_add_read_pass(double ro, net::Cost current,
                        std::span<const net::Cost> a_row, std::size_t first,
                        std::size_t last, double* benefit) noexcept {
  const std::size_t n = last > first ? last - first : 0;
#if defined(AGTRAM_SIMD_AVX2)
  if (n >= kMinSimdServers && use_simd()) {
    AGTRAM_KERNEL_COUNT_VEC("kernels.best_add.simd_servers",
                            "kernels.best_add.tail_servers", n, 8);
    avx2::best_add_read_pass(ro, current, a_row.data(), first, last, benefit);
    return;
  }
#endif
  AGTRAM_OBS_COUNT("kernels.best_add.scalar_servers",
                   static_cast<std::uint64_t>(n));
  best_add_read_pass_portable(ro, current, a_row, first, last, benefit);
}

void broadcast_price_pass(double w_total, double o,
                          std::span<const double> w_dense,
                          std::span<const net::Cost> primary_row,
                          std::size_t first, std::size_t last,
                          double* benefit) noexcept {
  const std::size_t n = last > first ? last - first : 0;
#if defined(AGTRAM_SIMD_AVX2)
  if (n >= kMinSimdServers && use_simd()) {
    AGTRAM_KERNEL_COUNT_VEC("kernels.broadcast.simd_servers",
                            "kernels.broadcast.tail_servers", n, 4);
    avx2::broadcast_price_pass(w_total, o, w_dense.data(), primary_row.data(),
                               first, last, benefit);
    return;
  }
#endif
  AGTRAM_OBS_COUNT("kernels.broadcast.scalar_servers",
                   static_cast<std::uint64_t>(n));
  broadcast_price_pass_portable(w_total, o, w_dense, primary_row, first,
                                last, benefit);
}

// ---------------------------------------------------------------------------
// Scratch

Scratch& tls_scratch() noexcept {
  thread_local Scratch scratch;
  return scratch;
}

}  // namespace agtram::drp::kernels
