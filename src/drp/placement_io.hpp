// Replica-scheme serialisation: lets the CLI tools and deployments persist
// a placement and reload it against the same instance (e.g. the nightly
// refresh of examples/cdn_worldcup writing the scheme the CDN's control
// plane consumes).
//
// Format: one line per object with at least one extra replica —
//   <object-index>: <server> <server> ...
// (primaries are implicit; '#' starts a comment).
#pragma once

#include <iosfwd>

#include "drp/placement.hpp"

namespace agtram::drp {

/// Writes the extra replicas (beyond primaries) of `placement`.
void write_placement(std::ostream& os, const ReplicaPlacement& placement);

/// Reconstructs a placement for `problem` from a stream produced by
/// write_placement.  Throws std::runtime_error on malformed input,
/// out-of-range ids, duplicate replicas, or capacity violations.
ReplicaPlacement read_placement(std::istream& is, const Problem& problem);

}  // namespace agtram::drp
