#include "drp/placement_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace agtram::drp {

void write_placement(std::ostream& os, const ReplicaPlacement& placement) {
  const Problem& p = placement.problem();
  os << "# agtram replica scheme: " << placement.extra_replica_count()
     << " extra replicas over " << p.object_count() << " objects\n";
  for (ObjectIndex k = 0; k < p.object_count(); ++k) {
    const auto replicators = placement.replicators(k);
    if (replicators.size() <= 1) continue;  // primary only
    os << k << ':';
    for (const ServerId i : replicators) {
      if (i != p.primary[k]) os << ' ' << i;
    }
    os << '\n';
  }
}

ReplicaPlacement read_placement(std::istream& is, const Problem& problem) {
  ReplicaPlacement placement(problem);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const auto fail = [&](const std::string& what) {
      throw std::runtime_error("placement line " + std::to_string(line_number) +
                               ": " + what);
    };
    // Strip comments and whitespace-only lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t") == std::string::npos) continue;

    const auto colon = line.find(':');
    if (colon == std::string::npos) fail("missing ':'");
    std::size_t object = 0;
    try {
      object = std::stoul(line.substr(0, colon));
    } catch (const std::exception&) {
      fail("bad object index");
    }
    if (object >= problem.object_count()) fail("object index out of range");

    std::istringstream servers(line.substr(colon + 1));
    std::uint64_t server = 0;
    while (servers >> server) {
      if (server >= problem.server_count()) fail("server id out of range");
      const auto i = static_cast<ServerId>(server);
      const auto k = static_cast<ObjectIndex>(object);
      if (placement.is_replicator(i, k)) fail("duplicate replica");
      if (!placement.can_replicate(i, k)) fail("capacity violated");
      placement.add_replica(i, k);
    }
    if (!servers.eof()) fail("bad server id");
  }
  return placement;
}

}  // namespace agtram::drp
