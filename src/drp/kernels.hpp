// SIMD/SoA kernel engine for the benefit and delta hot loops (DESIGN.md §10).
//
// Every cost the system computes is one of four inner-loop shapes swept over
// the CSR pools of AccessMatrix / ReplicaPlacement:
//
//   1. object_cost_accumulate — the weighted primary-cost walk of
//      CostModel::object_cost / DeltaEvaluator::refresh: two chained adds per
//      accessor slot, fed by three dense SoA streams plus a distance gather.
//   2. nn_min / nn_min_excluding / min_with_row — the nearest-replica
//      min-reduce over a distance row.  Integer min is associative and
//      commutative, so any evaluation order (vector lanes included) produces
//      the identical value.
//   3. read_savings_accumulate / best_add_read_pass / broadcast_price_pass —
//      the masked read-savings accumulates behind CostModel::global_benefit
//      and DeltaEvaluator::best_add_for_object.
//   4. The replica-min object cost (CostModel::object_cost_with_replicators)
//      is composed from 1 + 2 by the cost model.
//
// Floating-point contract (pinned; tests/kernels_test.cpp): every kernel
// produces hexfloat-identical results to the scalar reference loop it
// replaced.  Summation order is part of the contract — vector paths may
// reassociate *integer* reductions (shape 2) and compute independent
// per-server accumulators in lanes (shape 3b), but any chained double sum is
// evaluated in the original slot order: the SIMD path computes the per-slot
// addends four at a time and folds them into the accumulator serially, in
// slot order, exactly as the scalar loop does.  No FMA contraction anywhere
// (the kernel TUs compile with -ffp-contract=off; the AVX2 paths use
// separate mul/add intrinsics), so SIMD-on and SIMD-off builds — and the
// pre-change goldens — agree bit for bit.
//
// Dispatch: the AVX2 paths are compiled into a separate TU (kernels_avx2.cpp,
// -mavx2) only when the build enables AGTRAM_SIMD and the target is x86-64.
// At runtime the entry points take the vector path iff the CPU reports AVX2,
// the AGTRAM_SIMD environment variable is not "0", and set_simd_enabled has
// not forced scalar.  Everything else — other architectures, old CPUs,
// AGTRAM_SIMD=OFF builds — runs the portable std::span loops, which are
// written to auto-vectorize where the contract allows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "drp/access_matrix.hpp"
#include "net/shortest_paths.hpp"

namespace agtram::drp::kernels {

// ---------------------------------------------------------------------------
// Dispatch state

/// True when this binary contains the AVX2 kernel TU (-DAGTRAM_SIMD=ON on an
/// x86-64 target).
bool simd_compiled() noexcept;

/// True when the running CPU supports AVX2 (always false off x86-64).
bool simd_supported() noexcept;

/// True when the vector paths will actually run: compiled in, CPU-supported,
/// not disabled by AGTRAM_SIMD=0 in the environment, and not forced scalar
/// by set_simd_enabled(false).
bool simd_active() noexcept;

/// Runtime toggle (bench/test hook): force the portable paths even when the
/// vector paths are available.  Enabling has no effect unless
/// simd_compiled() && simd_supported().  Not intended to be flipped while
/// kernels are running on other threads.
void set_simd_enabled(bool on) noexcept;

// ---------------------------------------------------------------------------
// Membership mask

/// mask[slot] = 1 iff servers[slot] ∈ reps, else 0.  Both inputs ascending
/// (the AccessMatrix / ReplicaPlacement invariants).  One O(|servers|+|reps|)
/// merge replaces a per-slot is_replicator probe (linear or binary search).
void member_mask(std::span<const ServerId> servers,
                 std::span<const ServerId> reps, std::uint8_t* mask) noexcept;

// ---------------------------------------------------------------------------
// Kernel 1: weighted primary-cost accumulate

struct CostAccum {
  double cost = 0.0;
  double saving = 0.0;
};

/// Replays the accessor walk of CostModel::object_cost term for term over the
/// SoA streams; per slot, with cp = double(primary_row[servers[slot]]):
///
///   cost += writes[slot] * o * cp;
///   cost += member[slot] ? (w_total - writes[slot]) * o * cp
///                        : reads[slot] * o * double(nn[slot]);
///   if (!member[slot] && reads[slot] != 0)
///     saving += reads[slot] * o * double(nn[slot]);
///
/// `cost` is the accessor-sweep part of the object cost (the caller adds the
/// demandless-replicator spur terms); `saving` is DeltaEvaluator's
/// optimistic-saving bound, folded into the same walk.  All spans are
/// parallel and slot-indexed; `nn` may hold any value at member slots (the
/// masked branch never reads it into the sum).
CostAccum object_cost_accumulate(std::span<const ServerId> servers,
                                 std::span<const double> reads,
                                 std::span<const double> writes,
                                 std::span<const net::Cost> nn,
                                 std::span<const net::Cost> primary_row,
                                 const std::uint8_t* member, double o,
                                 double w_total) noexcept;

// ---------------------------------------------------------------------------
// Kernel 2: nearest-replica min-reduce

/// min over r ∈ reps of row[r] (kUnreachable when reps is empty).
net::Cost nn_min(std::span<const net::Cost> row,
                 std::span<const ServerId> reps) noexcept;

/// Same, skipping every occurrence of `excluded`.
net::Cost nn_min_excluding(std::span<const net::Cost> row,
                           std::span<const ServerId> reps,
                           ServerId excluded) noexcept;

/// out[slot] = min(nn[slot], row[servers[slot]]) — the "effective NN if the
/// candidate also held a replica" precompute of cost_if_added/swapped.
/// `out` may alias `nn.data()`.
void min_with_row(std::span<const net::Cost> nn,
                  std::span<const ServerId> servers,
                  std::span<const net::Cost> row, net::Cost* out) noexcept;

// ---------------------------------------------------------------------------
// Kernel 3: read-savings masked accumulates

/// CostModel::global_benefit's read-savings sweep: over slots with
/// reads[slot] != 0 && !member[slot], in slot order,
///
///   benefit += (reads[slot] * o) *
///              (double(nn[slot]) - double(min(nn[slot], i_row[servers[slot]])))
double read_savings_accumulate(std::span<const ServerId> servers,
                               std::span<const double> reads,
                               std::span<const net::Cost> nn,
                               std::span<const net::Cost> i_row,
                               const std::uint8_t* member, double o) noexcept;

/// One active reader's contribution to the per-server benefit array of
/// DeltaEvaluator::best_add_for_object, for candidate servers [first, last):
///
///   benefit[i] += ro * (double(current) - double(min(current, a_row[i])))
///
/// Each benefit[i] is an independent accumulator, so lanes never reassociate
/// a chain — vectorizing over i is bit-exact by construction.  Precondition:
/// no benefit entry in [first, last) is -0.0 (call sites accumulate
/// nonnegative read savings from a +0.0 fill, so this holds by
/// construction); under it the vector path may skip blocks whose addends
/// are all +0.0 bit-identically.
void best_add_read_pass(double ro, net::Cost current,
                        std::span<const net::Cost> a_row, std::size_t first,
                        std::size_t last, double* benefit) noexcept;

/// The broadcast-price pass of the same scan, w_dense[i] = w_ik as a double
/// (zero for non-writers), for candidate servers [first, last):
///
///   benefit[i] -= ((w_total - w_dense[i]) * o) * double(primary_row[i])
void broadcast_price_pass(double w_total, double o,
                          std::span<const double> w_dense,
                          std::span<const net::Cost> primary_row,
                          std::size_t first, std::size_t last,
                          double* benefit) noexcept;

// ---------------------------------------------------------------------------
// Shared per-thread scratch for mask / effective-NN staging buffers, so the
// cost-model and delta-evaluator entry points stay allocation-free per call
// (they are invoked from pool workers; thread_local keeps chunks disjoint).
struct Scratch {
  std::vector<std::uint8_t> mask;
  std::vector<net::Cost> nn;
};
Scratch& tls_scratch() noexcept;

}  // namespace agtram::drp::kernels
