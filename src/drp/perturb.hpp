// Demand-change generation for the adaptive replication protocol.
//
// The paper's abstract frames AGT-RAM as "a protocol for automatic
// replication and migration of objects in response to demand changes";
// this module synthesises such changes: hotspot drift (read demand moving
// between servers), popularity churn (objects heating up / cooling down),
// and write re-targeting — while keeping the topology, catalogue,
// capacities and primaries fixed so placements remain comparable.
#pragma once

#include <cstdint>

#include "drp/problem.hpp"

namespace agtram::drp {

struct PerturbConfig {
  /// Probability that a given (server, object) read row migrates to a
  /// different (uniformly random) server — hotspot drift.
  double shift_fraction = 0.3;
  /// Fraction of objects whose total read volume is rescaled by a random
  /// factor in [0.25, 4] — popularity churn.
  double churn_fraction = 0.2;
  /// Probability that an object's writer set is redrawn.
  double write_retarget_fraction = 0.25;
  std::uint64_t seed = 1;
};

/// Returns a new Problem sharing the topology/catalogue/capacities and
/// primaries of `base` but with perturbed demand.  Deterministic in the
/// config.
Problem perturb_demand(const Problem& base, const PerturbConfig& config);

/// L1 distance between the two instances' read matrices, normalised by the
/// base's total reads — a measure of how much demand actually moved.
double demand_shift_magnitude(const Problem& base, const Problem& shifted);

}  // namespace agtram::drp
