// Instance builder: topology x trace x (C%, R/W, seed) -> drp::Problem.
//
// Mirrors the paper's experimental setup (Section 5):
//  * read demand r_ik comes from the (synthetic) World Cup trace pipeline;
//  * update demand w_ik is injected to hit a target R/W ratio, "randomly
//    pushed onto different servers", with per-object volume proportional to
//    the object's read popularity;
//  * primaries are placed uniformly at random;
//  * capacities are drawn uniformly from [0.5, 1.5] x (C% of the total
//    object bytes), plus each server's primary load so the primaries-only
//    scheme is always feasible.
#pragma once

#include <cstdint>

#include "drp/problem.hpp"
#include "net/graph.hpp"
#include "net/topology.hpp"
#include "trace/pipeline.hpp"
#include "trace/worldcup.hpp"

namespace agtram::drp {

struct InstanceConfig {
  /// C%: mean per-server replica headroom as a fraction of the total bytes
  /// of all objects (paper sweeps 10%..45%).
  double capacity_fraction = 0.25;

  /// R/W: fraction of all accesses that are reads (paper sweeps up to 0.95).
  /// 1.0 means a read-only workload (no update traffic at all).
  double rw_ratio = 0.75;

  /// How many distinct writer servers are drawn per object (clamped to M).
  std::uint32_t writers_per_object = 4;

  /// How update volume spreads across objects: w_k ∝ (k+1)^-e over the
  /// popularity ranks.  The paper pushes updates onto random servers with no
  /// popularity bias, so the default is 0 (uniform across objects) — read
  /// demand is Zipf-concentrated while update demand is flat, which is what
  /// makes replicating the hot set profitable.  Raise towards the read
  /// exponent to model update-hot workloads.
  double write_popularity_exponent = 0.0;

  std::uint64_t seed = 13;
};

/// Builds a Problem from a prepared workload and metric closure.
/// `workload.reads[k]` rows must reference servers < distances->node_count().
Problem build_problem(net::DistanceMatrixPtr distances,
                      const trace::Workload& workload,
                      const InstanceConfig& config);

/// How read demand maps onto the servers.
enum class DemandModel {
  /// World-Cup trace pipeline (default): Zipf-popular objects whose demand
  /// concentrates on a small client population, so at bench scale the hot
  /// objects end up read by essentially every participating server.
  Trace,
  /// Dispersed synthetic demand: every server reads, but each object's
  /// reader set is a small random subset of them.  This is the paper's
  /// large-M regime (500 clients onto M = 3718 servers, N = 25000 objects:
  /// |readers(k)| << M), and the regime where per-round work is dominated
  /// by the few agents an allocation can actually affect.
  Dispersed,
};

/// One-call convenience used by tests, examples and the bench harness:
/// generate a topology, synthesise and process a trace sized to produce
/// ~`objects` catalogue entries, and assemble the Problem.
struct InstanceSpec {
  std::uint32_t servers = 100;
  std::uint32_t objects = 1000;
  net::TopologyKind topology = net::TopologyKind::FlatRandom;
  double edge_probability = 0.5;
  /// Tree family only (net::TopologyKind::Tree): shape and branching factor.
  net::TreeShape tree_shape = net::TreeShape::Random;
  std::uint32_t tree_arity = 3;
  /// Requests scale: total synthetic requests ~ requests_per_object * objects.
  double requests_per_object = 150.0;
  DemandModel demand = DemandModel::Trace;
  /// Mean reader-set size per object under DemandModel::Dispersed (clamped
  /// to M; ignored by the trace pipeline, which derives it from clients).
  double readers_per_object = 8.0;
  InstanceConfig instance;
  std::uint64_t seed = 99;
};

Problem make_instance(const InstanceSpec& spec);

/// The raw topology graph make_instance(spec) builds its metric closure
/// from — deterministic in (spec), so callers that need the graph structure
/// itself (baselines::tree_placement walks the tree edges, not the closure)
/// can regenerate it exactly.
net::Graph make_topology(const InstanceSpec& spec);

/// Closure-free instance for the tiled regional engine (M beyond the dense
/// M x M ceiling): the raw topology plus the demand/capacity state of a
/// Problem.  `base.distances` is intentionally null and `base` is not
/// validated — only the tiled engine's per-region distance blocks ever
/// materialise path costs.  For identical (spec), `base` matches
/// make_instance(spec) field-for-field except the missing closure.
struct SparseInstance {
  net::Graph graph;
  Problem base;
};

SparseInstance make_sparse_instance(const InstanceSpec& spec);

}  // namespace agtram::drp
