#include "drp/delta_evaluator.hpp"

#include <algorithm>
#include <cassert>

#include "common/thread_pool.hpp"
#include "obs/obs.hpp"

namespace agtram::drp {

DeltaEvaluator::DeltaEvaluator(ReplicaPlacement placement)
    : placement_(std::move(placement)) {
  const std::size_t n = placement_.problem().object_count();
  obj_cost_.resize(n);
  opt_saving_.resize(n);
  common::ThreadPool::shared().parallel_for(
      0, n,
      [&](std::size_t first, std::size_t last) {
        for (std::size_t k = first; k < last; ++k) {
          refresh(static_cast<ObjectIndex>(k));
        }
      },
      /*min_grain=*/128);
}

void DeltaEvaluator::refresh(ObjectIndex k) {
  AGTRAM_OBS_COUNT("delta_eval.refreshes", 1);
  // Mirrors CostModel::object_cost term for term (the `cost` accumulator
  // sees the identical op sequence — DESIGN.md §8), folding the optimistic
  // saving bound into the same accessor walk.
  const Problem& p = placement_.problem();
  const double o = static_cast<double>(p.object_units[k]);
  const ServerId primary = p.primary[k];
  const double w_total = static_cast<double>(p.access.total_writes(k));

  double cost = 0.0;
  double saving = 0.0;
  const auto accessors = p.access.accessors(k);
  const auto nn = placement_.nn_row(k);
  const auto primary_row = p.distances->row(primary);
  for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
    const Access& a = accessors[slot];
    const double c_primary = static_cast<double>(primary_row[a.server]);
    cost += static_cast<double>(a.writes) * o * c_primary;
    if (placement_.is_replicator(a.server, k)) {
      cost += (w_total - static_cast<double>(a.writes)) * o * c_primary;
    } else {
      cost += static_cast<double>(a.reads) * o * static_cast<double>(nn[slot]);
      if (a.reads != 0) {
        saving += static_cast<double>(a.reads) * o *
                  static_cast<double>(nn[slot]);
      }
    }
  }
  for (ServerId r : placement_.replicators(k)) {
    if (r == primary) continue;
    if (p.access.accessor_slot(r, k) == AccessMatrix::npos) {
      cost += w_total * o * static_cast<double>(p.distance(primary, r));
    }
  }
  obj_cost_[k] = cost;
  opt_saving_[k] = saving;
}

double DeltaEvaluator::optimistic_saving() const {
  double total = 0.0;
  for (const double v : opt_saving_) total += v;
  return total;
}

double DeltaEvaluator::total() const {
  if (!total_valid_) {
    AGTRAM_OBS_COUNT("delta_eval.total_resums", 1);
    double total = 0.0;
    for (const double v : obj_cost_) total += v;
    total_ = total;
    total_valid_ = true;
  } else {
    AGTRAM_OBS_COUNT("delta_eval.total_cached", 1);
  }
  return total_;
}

double DeltaEvaluator::cost_if_added(ServerId i, ObjectIndex k) const {
  AGTRAM_OBS_COUNT("delta_eval.hypo_add", 1);
  const Problem& p = placement_.problem();
  assert(placement_.can_replicate(i, k));
  const double o = static_cast<double>(p.object_units[k]);
  const ServerId primary = p.primary[k];
  const double w_total = static_cast<double>(p.access.total_writes(k));

  double cost = 0.0;
  const auto accessors = p.access.accessors(k);
  const auto nn = placement_.nn_row(k);
  const auto primary_row = p.distances->row(primary);
  const auto i_row = p.distances->row(i);
  for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
    const Access& a = accessors[slot];
    const double c_primary = static_cast<double>(primary_row[a.server]);
    cost += static_cast<double>(a.writes) * o * c_primary;
    if (a.server == i || placement_.is_replicator(a.server, k)) {
      cost += (w_total - static_cast<double>(a.writes)) * o * c_primary;
    } else {
      const net::Cost with_i = std::min(nn[slot], i_row[a.server]);
      cost +=
          static_cast<double>(a.reads) * o * static_cast<double>(with_i);
    }
  }
  // Spur loop over the virtual set replicators(k) ∪ {i}, merged in sorted
  // order — the order a real add would leave the set in.
  bool placed_i = false;
  const auto spur = [&](ServerId r) {
    if (r == primary) return;
    if (p.access.accessor_slot(r, k) == AccessMatrix::npos) {
      cost += w_total * o * static_cast<double>(p.distance(primary, r));
    }
  };
  for (ServerId r : placement_.replicators(k)) {
    if (!placed_i && i < r) {
      spur(i);
      placed_i = true;
    }
    spur(r);
  }
  if (!placed_i) spur(i);
  return cost;
}

double DeltaEvaluator::cost_if_dropped(ServerId i, ObjectIndex k) const {
  AGTRAM_OBS_COUNT("delta_eval.hypo_drop", 1);
  const Problem& p = placement_.problem();
  assert(placement_.is_replicator(i, k) && i != p.primary[k]);
  const double o = static_cast<double>(p.object_units[k]);
  const ServerId primary = p.primary[k];
  const double w_total = static_cast<double>(p.access.total_writes(k));
  const auto reps = placement_.replicators(k);

  // NN of `server` over the surviving set (integral min — equals whatever
  // rebuild_nn would cache after the real remove).
  const auto nn_without_i = [&](ServerId server) {
    const auto s_row = p.distances->row(server);
    net::Cost best = net::kUnreachable;
    for (ServerId r : reps) {
      if (r == i) continue;
      best = std::min(best, s_row[r]);
    }
    return best;
  };

  double cost = 0.0;
  const auto accessors = p.access.accessors(k);
  const auto nn = placement_.nn_row(k);
  const auto primary_row = p.distances->row(primary);
  for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
    const Access& a = accessors[slot];
    const double c_primary = static_cast<double>(primary_row[a.server]);
    cost += static_cast<double>(a.writes) * o * c_primary;
    if (placement_.is_replicator(a.server, k) && a.server != i) {
      cost += (w_total - static_cast<double>(a.writes)) * o * c_primary;
    } else {
      // Reader after the drop.  The cached distance survives unless the
      // dropped node was the recorded nearest (or the reader is i itself,
      // whose cached distance is its replicator zero).
      const net::Cost after =
          (a.server == i || placement_.nn_node_by_slot(k, slot) == i)
              ? nn_without_i(a.server)
              : nn[slot];
      cost += static_cast<double>(a.reads) * o * static_cast<double>(after);
    }
  }
  for (ServerId r : reps) {
    if (r == i || r == primary) continue;
    if (p.access.accessor_slot(r, k) == AccessMatrix::npos) {
      cost += w_total * o * static_cast<double>(p.distance(primary, r));
    }
  }
  return cost;
}

double DeltaEvaluator::cost_if_swapped(ServerId from, ServerId to,
                                       ObjectIndex k) const {
  AGTRAM_OBS_COUNT("delta_eval.hypo_swap", 1);
  const Problem& p = placement_.problem();
  assert(placement_.is_replicator(from, k) && from != p.primary[k]);
  assert(from != to && !placement_.is_replicator(to, k));
  const double o = static_cast<double>(p.object_units[k]);
  const ServerId primary = p.primary[k];
  const double w_total = static_cast<double>(p.access.total_writes(k));
  const auto reps = placement_.replicators(k);

  const auto nn_without_from = [&](ServerId server) {
    const auto s_row = p.distances->row(server);
    net::Cost best = net::kUnreachable;
    for (ServerId r : reps) {
      if (r == from) continue;
      best = std::min(best, s_row[r]);
    }
    return best;
  };

  double cost = 0.0;
  const auto accessors = p.access.accessors(k);
  const auto nn = placement_.nn_row(k);
  const auto primary_row = p.distances->row(primary);
  const auto to_row = p.distances->row(to);
  for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
    const Access& a = accessors[slot];
    const double c_primary = static_cast<double>(primary_row[a.server]);
    cost += static_cast<double>(a.writes) * o * c_primary;
    const bool member_after =
        a.server == to ||
        (placement_.is_replicator(a.server, k) && a.server != from);
    if (member_after) {
      cost += (w_total - static_cast<double>(a.writes)) * o * c_primary;
    } else {
      const net::Cost base =
          (a.server == from || placement_.nn_node_by_slot(k, slot) == from)
              ? nn_without_from(a.server)
              : nn[slot];
      const net::Cost after = std::min(base, to_row[a.server]);
      cost += static_cast<double>(a.reads) * o * static_cast<double>(after);
    }
  }
  // Virtual set: (replicators \ {from}) ∪ {to}, merged sorted.
  bool placed_to = false;
  const auto spur = [&](ServerId r) {
    if (r == primary) return;
    if (p.access.accessor_slot(r, k) == AccessMatrix::npos) {
      cost += w_total * o * static_cast<double>(p.distance(primary, r));
    }
  };
  for (ServerId r : reps) {
    if (r == from) continue;
    if (!placed_to && to < r) {
      spur(to);
      placed_to = true;
    }
    spur(r);
  }
  if (!placed_to) spur(to);
  return cost;
}

void DeltaEvaluator::add_replica(ServerId i, ObjectIndex k) {
  placement_.add_replica(i, k);
  refresh(k);
  total_valid_ = false;
}

void DeltaEvaluator::remove_replica(ServerId i, ObjectIndex k) {
  placement_.remove_replica(i, k);
  refresh(k);
  total_valid_ = false;
}

DeltaEvaluator::BestAdd DeltaEvaluator::best_add_for_object(
    ObjectIndex k, const std::vector<bool>* allowed_sites,
    ScanScratch& scratch, bool parallel) const {
  const Problem& p = placement_.problem();
  const std::size_t m = p.server_count();
  const double o = static_cast<double>(p.object_units[k]);
  const double w_total = static_cast<double>(p.access.total_writes(k));
  const auto accessors = p.access.accessors(k);
  const auto nn = placement_.nn_row(k);
  const auto primary_row = p.distances->row(p.primary[k]);

  std::vector<double>& benefit = scratch.benefit;
  benefit.assign(m, 0.0);

  const auto scan = [&](std::size_t first, std::size_t last) {
    // Read-savings terms, slot-outer/server-inner: each active reader's
    // distance row is walked sequentially, and every server accumulates its
    // terms in slot order — the op sequence global_benefit uses.
    for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
      const Access& a = accessors[slot];
      if (a.reads == 0 || placement_.is_replicator(a.server, k)) continue;
      const auto a_row = p.distances->row(a.server);
      const net::Cost current = nn[slot];
      const double ro = static_cast<double>(a.reads) * o;
      for (std::size_t i = first; i < last; ++i) {
        const net::Cost with_i = std::min(current, a_row[i]);
        benefit[i] += ro * (static_cast<double>(current) -
                            static_cast<double>(with_i));
      }
    }
    // Broadcast price, merged two-pointer over the (server-sorted) accessor
    // row for w_ik.  Kept as one (w_total − w_i)·o·d product so the
    // floating-point grouping matches global_benefit's final subtraction.
    std::size_t ptr = 0;
    {
      std::size_t lo = 0, hi = accessors.size();
      while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (accessors[mid].server < first) lo = mid + 1; else hi = mid;
      }
      ptr = lo;
    }
    for (std::size_t i = first; i < last; ++i) {
      while (ptr < accessors.size() && accessors[ptr].server < i) ++ptr;
      const double w_i =
          (ptr < accessors.size() && accessors[ptr].server == i)
              ? static_cast<double>(accessors[ptr].writes)
              : 0.0;
      benefit[i] -=
          (w_total - w_i) * o * static_cast<double>(primary_row[i]);
    }
  };

  AGTRAM_OBS_COUNT("delta_eval.scans", 1);
  if (parallel && m >= kParallelMinServers) {
    AGTRAM_OBS_COUNT("delta_eval.scans_parallel", 1);
    common::ThreadPool::shared().parallel_for(0, m, scan, /*min_grain=*/256);
  } else {
    AGTRAM_OBS_COUNT("delta_eval.scans_inline", 1);
    scan(0, m);
  }

  BestAdd best;
  for (std::size_t i = 0; i < m; ++i) {
    if (allowed_sites && !(*allowed_sites)[i]) continue;
    const auto server = static_cast<ServerId>(i);
    if (!placement_.can_replicate(server, k)) continue;
    if (benefit[i] > best.benefit) {
      best.benefit = benefit[i];
      best.server = server;
    }
  }
  return best;
}

}  // namespace agtram::drp
