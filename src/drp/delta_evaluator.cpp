#include "drp/delta_evaluator.hpp"

#include <algorithm>
#include <cassert>

#include "common/thread_pool.hpp"
#include "drp/kernels.hpp"
#include "obs/obs.hpp"

namespace agtram::drp {

DeltaEvaluator::DeltaEvaluator(ReplicaPlacement placement)
    : placement_(std::move(placement)) {
  const std::size_t n = placement_.problem().object_count();
  obj_cost_.resize(n);
  opt_saving_.resize(n);
  common::ThreadPool::shared().parallel_for(
      0, n,
      [&](std::size_t first, std::size_t last) {
        for (std::size_t k = first; k < last; ++k) {
          refresh(static_cast<ObjectIndex>(k));
        }
      },
      /*min_grain=*/128);
}

void DeltaEvaluator::refresh(ObjectIndex k) {
  AGTRAM_OBS_COUNT("delta_eval.refreshes", 1);
  // Mirrors CostModel::object_cost term for term (the `cost` accumulator
  // sees the identical op sequence — DESIGN.md §8), folding the optimistic
  // saving bound into the same accessor walk.
  const Problem& p = placement_.problem();
  const double o = static_cast<double>(p.object_units[k]);
  const ServerId primary = p.primary[k];
  const double w_total = static_cast<double>(p.access.total_writes(k));

  const auto servers = p.access.accessor_servers(k);
  kernels::Scratch& scratch = kernels::tls_scratch();
  scratch.mask.resize(servers.size());
  kernels::member_mask(servers, placement_.replicators(k),
                       scratch.mask.data());
  const kernels::CostAccum acc = kernels::object_cost_accumulate(
      servers, p.access.accessor_reads_d(k), p.access.accessor_writes_d(k),
      placement_.nn_row(k), p.distances->row(primary), scratch.mask.data(), o,
      w_total);
  double cost = acc.cost;
  for (ServerId r : placement_.replicators(k)) {
    if (r == primary) continue;
    if (p.access.accessor_slot(r, k) == AccessMatrix::npos) {
      cost += w_total * o * static_cast<double>(p.distance(primary, r));
    }
  }
  obj_cost_[k] = cost;
  opt_saving_[k] = acc.saving;
}

double DeltaEvaluator::optimistic_saving() const {
  double total = 0.0;
  for (const double v : opt_saving_) total += v;
  return total;
}

double DeltaEvaluator::total() const {
  if (!total_valid_) {
    AGTRAM_OBS_COUNT("delta_eval.total_resums", 1);
    double total = 0.0;
    for (const double v : obj_cost_) total += v;
    total_ = total;
    total_valid_ = true;
  } else {
    AGTRAM_OBS_COUNT("delta_eval.total_cached", 1);
  }
  return total_;
}

double DeltaEvaluator::cost_if_added(ServerId i, ObjectIndex k) const {
  AGTRAM_OBS_COUNT("delta_eval.hypo_add", 1);
  const Problem& p = placement_.problem();
  assert(placement_.can_replicate(i, k));
  const double o = static_cast<double>(p.object_units[k]);
  const ServerId primary = p.primary[k];
  const double w_total = static_cast<double>(p.access.total_writes(k));

  // Stage the post-add state: membership gains i (when i has a demand
  // slot), and every slot's effective NN becomes min(nn, i_row) — an
  // integral min, so the staged values equal what a real add would cache.
  // The accumulate kernel then replays object_cost's exact double sequence.
  const auto servers = p.access.accessor_servers(k);
  kernels::Scratch& scratch = kernels::tls_scratch();
  scratch.mask.resize(servers.size());
  kernels::member_mask(servers, placement_.replicators(k),
                       scratch.mask.data());
  const std::size_t slot_i = p.access.accessor_slot(i, k);
  if (slot_i != AccessMatrix::npos) scratch.mask[slot_i] = 1;
  scratch.nn.resize(servers.size());
  kernels::min_with_row(placement_.nn_row(k), servers, p.distances->row(i),
                        scratch.nn.data());
  double cost =
      kernels::object_cost_accumulate(
          servers, p.access.accessor_reads_d(k), p.access.accessor_writes_d(k),
          scratch.nn, p.distances->row(primary), scratch.mask.data(), o,
          w_total)
          .cost;
  // Spur loop over the virtual set replicators(k) ∪ {i}, merged in sorted
  // order — the order a real add would leave the set in.
  bool placed_i = false;
  const auto spur = [&](ServerId r) {
    if (r == primary) return;
    if (p.access.accessor_slot(r, k) == AccessMatrix::npos) {
      cost += w_total * o * static_cast<double>(p.distance(primary, r));
    }
  };
  for (ServerId r : placement_.replicators(k)) {
    if (!placed_i && i < r) {
      spur(i);
      placed_i = true;
    }
    spur(r);
  }
  if (!placed_i) spur(i);
  return cost;
}

double DeltaEvaluator::cost_if_dropped(ServerId i, ObjectIndex k) const {
  AGTRAM_OBS_COUNT("delta_eval.hypo_drop", 1);
  const Problem& p = placement_.problem();
  assert(placement_.is_replicator(i, k) && i != p.primary[k]);
  const double o = static_cast<double>(p.object_units[k]);
  const ServerId primary = p.primary[k];
  const double w_total = static_cast<double>(p.access.total_writes(k));
  const auto reps = placement_.replicators(k);

  // Stage the post-drop state: clear i's membership, and re-min the slots
  // whose cached distance cannot survive the drop — i's own slot, plus any
  // slot whose recorded nearest node was i (kernels::nn_min_excluding over
  // the surviving set equals whatever rebuild_nn would cache).  Every other
  // cached distance survives verbatim.
  const auto servers = p.access.accessor_servers(k);
  const auto nn = placement_.nn_row(k);
  const auto nn_node = placement_.nn_node_row(k);
  kernels::Scratch& scratch = kernels::tls_scratch();
  scratch.mask.resize(servers.size());
  kernels::member_mask(servers, reps, scratch.mask.data());
  const std::size_t slot_i = p.access.accessor_slot(i, k);
  if (slot_i != AccessMatrix::npos) scratch.mask[slot_i] = 0;
  scratch.nn.assign(nn.begin(), nn.end());
  for (std::size_t slot = 0; slot < servers.size(); ++slot) {
    if (scratch.mask[slot]) continue;
    if (servers[slot] == i || nn_node[slot] == i) {
      scratch.nn[slot] =
          kernels::nn_min_excluding(p.distances->row(servers[slot]), reps, i);
    }
  }
  double cost =
      kernels::object_cost_accumulate(
          servers, p.access.accessor_reads_d(k), p.access.accessor_writes_d(k),
          scratch.nn, p.distances->row(primary), scratch.mask.data(), o,
          w_total)
          .cost;
  for (ServerId r : reps) {
    if (r == i || r == primary) continue;
    if (p.access.accessor_slot(r, k) == AccessMatrix::npos) {
      cost += w_total * o * static_cast<double>(p.distance(primary, r));
    }
  }
  return cost;
}

double DeltaEvaluator::cost_if_swapped(ServerId from, ServerId to,
                                       ObjectIndex k) const {
  AGTRAM_OBS_COUNT("delta_eval.hypo_swap", 1);
  const Problem& p = placement_.problem();
  assert(placement_.is_replicator(from, k) && from != p.primary[k]);
  assert(from != to && !placement_.is_replicator(to, k));
  const double o = static_cast<double>(p.object_units[k]);
  const ServerId primary = p.primary[k];
  const double w_total = static_cast<double>(p.access.total_writes(k));
  const auto reps = placement_.replicators(k);

  // Stage the post-swap state: membership loses `from` and gains `to`; slots
  // whose cached distance depended on `from` re-min over the surviving set,
  // then every slot takes min(base, to_row) — all integral minima, equal to
  // what a real remove+add would cache.
  const auto servers = p.access.accessor_servers(k);
  const auto nn = placement_.nn_row(k);
  const auto nn_node = placement_.nn_node_row(k);
  const auto to_row = p.distances->row(to);
  kernels::Scratch& scratch = kernels::tls_scratch();
  scratch.mask.resize(servers.size());
  kernels::member_mask(servers, reps, scratch.mask.data());
  const std::size_t slot_from = p.access.accessor_slot(from, k);
  if (slot_from != AccessMatrix::npos) scratch.mask[slot_from] = 0;
  const std::size_t slot_to = p.access.accessor_slot(to, k);
  if (slot_to != AccessMatrix::npos) scratch.mask[slot_to] = 1;
  scratch.nn.assign(nn.begin(), nn.end());
  for (std::size_t slot = 0; slot < servers.size(); ++slot) {
    if (scratch.mask[slot]) continue;
    if (servers[slot] == from || nn_node[slot] == from) {
      scratch.nn[slot] = kernels::nn_min_excluding(
          p.distances->row(servers[slot]), reps, from);
    }
  }
  kernels::min_with_row(scratch.nn, servers, to_row, scratch.nn.data());
  double cost =
      kernels::object_cost_accumulate(
          servers, p.access.accessor_reads_d(k), p.access.accessor_writes_d(k),
          scratch.nn, p.distances->row(primary), scratch.mask.data(), o,
          w_total)
          .cost;
  // Virtual set: (replicators \ {from}) ∪ {to}, merged sorted.
  bool placed_to = false;
  const auto spur = [&](ServerId r) {
    if (r == primary) return;
    if (p.access.accessor_slot(r, k) == AccessMatrix::npos) {
      cost += w_total * o * static_cast<double>(p.distance(primary, r));
    }
  };
  for (ServerId r : reps) {
    if (r == from) continue;
    if (!placed_to && to < r) {
      spur(to);
      placed_to = true;
    }
    spur(r);
  }
  if (!placed_to) spur(to);
  return cost;
}

void DeltaEvaluator::add_replica(ServerId i, ObjectIndex k) {
  placement_.add_replica(i, k);
  refresh(k);
  total_valid_ = false;
}

void DeltaEvaluator::remove_replica(ServerId i, ObjectIndex k) {
  placement_.remove_replica(i, k);
  refresh(k);
  total_valid_ = false;
}

void DeltaEvaluator::refresh_after_demand_change(ObjectIndex k) {
  refresh(k);
  total_valid_ = false;
}

void DeltaEvaluator::attach_placement(ReplicaPlacement placement,
                                      std::span<const ObjectIndex> touched) {
  placement_ = std::move(placement);
  for (const ObjectIndex k : touched) refresh(k);
  if (!touched.empty()) total_valid_ = false;
}

DeltaEvaluator::BestAdd DeltaEvaluator::best_add_for_object(
    ObjectIndex k, const std::vector<bool>* allowed_sites,
    ScanScratch& scratch, bool parallel) const {
  const Problem& p = placement_.problem();
  const std::size_t m = p.server_count();
  const double o = static_cast<double>(p.object_units[k]);
  const double w_total = static_cast<double>(p.access.total_writes(k));
  const auto servers = p.access.accessor_servers(k);
  const auto reads_d = p.access.accessor_reads_d(k);
  const auto writes_d = p.access.accessor_writes_d(k);
  const auto nn = placement_.nn_row(k);
  const auto primary_row = p.distances->row(p.primary[k]);

  std::vector<double>& benefit = scratch.benefit;
  benefit.assign(m, 0.0);
  // Shared per-scan staging, built once before the (possibly parallel)
  // chunks: the replicator mask for the slot skip test, and the dense w_ik
  // scatter that replaces the two-pointer merge.  (w_total − 0.0) == w_total
  // exactly, so defaulting non-writers to 0.0 keeps the broadcast product
  // bit-identical per server.
  scratch.member.resize(servers.size());
  kernels::member_mask(servers, placement_.replicators(k),
                       scratch.member.data());
  scratch.w_dense.assign(m, 0.0);
  for (std::size_t slot = 0; slot < servers.size(); ++slot) {
    scratch.w_dense[servers[slot]] = writes_d[slot];
  }

  const auto scan = [&](std::size_t first, std::size_t last) {
    // Read-savings terms, slot-outer/server-inner: each active reader's
    // distance row is walked sequentially, and every server accumulates its
    // terms in slot order — the op sequence global_benefit uses.  Per-server
    // accumulators are independent, so the kernel's lanes never reassociate
    // a chain (kernels.hpp kernel 3b).
    for (std::size_t slot = 0; slot < servers.size(); ++slot) {
      if (reads_d[slot] == 0.0 || scratch.member[slot]) continue;
      const auto a_row = p.distances->row(servers[slot]);
      const double ro = reads_d[slot] * o;
      kernels::best_add_read_pass(ro, nn[slot], a_row, first, last,
                                  benefit.data());
    }
    // Broadcast price as one (w_total − w_ik)·o·d product per server, the
    // grouping global_benefit's final subtraction uses (kernel 3c).
    kernels::broadcast_price_pass(w_total, o, scratch.w_dense, primary_row,
                                  first, last, benefit.data());
  };

  AGTRAM_OBS_COUNT("delta_eval.scans", 1);
  if (parallel && m >= kParallelMinServers) {
    AGTRAM_OBS_COUNT("delta_eval.scans_parallel", 1);
    common::ThreadPool::shared().parallel_for(0, m, scan, /*min_grain=*/256);
  } else {
    AGTRAM_OBS_COUNT("delta_eval.scans_inline", 1);
    scan(0, m);
  }

  // Argmax with can_replicate unrolled into its two parts: the replicator
  // membership test becomes one merged walk over the sorted replica list
  // (O(m + |R_k|) instead of m binary searches over the spilled set), and
  // the capacity test reads the free-capacity arrays directly.  Same skip
  // conditions, same server order, same strict >, so the same winner.
  BestAdd best;
  const auto reps = placement_.replicators(k);
  const std::uint64_t units = p.object_units[k];
  std::size_t rp = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const auto server = static_cast<ServerId>(i);
    while (rp < reps.size() && reps[rp] < server) ++rp;
    if (rp < reps.size() && reps[rp] == server) continue;
    if (allowed_sites && !(*allowed_sites)[i]) continue;
    if (placement_.free_capacity(server) < units) continue;
    if (benefit[i] > best.benefit) {
      best.benefit = benefit[i];
      best.server = server;
    }
  }
  return best;
}

}  // namespace agtram::drp
