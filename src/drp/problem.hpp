// The Data Replication Problem instance (paper Section 2).
//
// M servers with storage capacities s_i, N objects with sizes o_k and fixed
// primary servers P_k, the metric closure c(i,j), and sparse read/write
// demand r_ik / w_ik.  The optimisation variable is the replication matrix
// X (represented incrementally by drp::ReplicaPlacement); the objective is
// the Object Transfer Cost implemented in drp::CostModel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "drp/access_matrix.hpp"
#include "net/shortest_paths.hpp"

namespace agtram::drp {

struct Problem {
  /// Shared, immutable metric closure c(i,j).
  net::DistanceMatrixPtr distances;

  /// o_k: object sizes in data units (>= 1).
  std::vector<std::uint32_t> object_units;

  /// P_k: the server holding the immovable primary copy of each object.
  std::vector<ServerId> primary;

  /// s_i: storage capacity of each server, in data units.  Instances built
  /// by drp::build_problem always satisfy s_i >= (units of i's primaries),
  /// i.e. the primaries-only placement is feasible.
  std::vector<std::uint64_t> capacity;

  /// r_ik / w_ik, sparse.
  AccessMatrix access;

  std::size_t server_count() const noexcept { return capacity.size(); }
  std::size_t object_count() const noexcept { return object_units.size(); }

  net::Cost distance(ServerId a, ServerId b) const {
    return (*distances)(a, b);
  }

  /// Units of primary copies hosted by each server.
  std::vector<std::uint64_t> primary_load() const;

  /// Throws std::invalid_argument describing the first inconsistency:
  /// size mismatches, out-of-range primaries, zero-sized objects, capacities
  /// that cannot hold the primaries, or a distance matrix of the wrong
  /// dimension.
  void validate() const;

  /// Human-readable one-line summary (for bench harness logs).
  std::string summary() const;
};

}  // namespace agtram::drp
