// The computational agent of the mechanism (Axiom 2).
//
// Each server is represented by an agent that privately knows its demand
// (and therefore its valuations CoR_ik) and exposes only a *report*: the
// object it most wants to replicate and the claimed valuation.  The heavy
// per-round work of Figure 2's first PARFOR loop — "each agent recursively
// calculates the true data of every object in list L_i" — happens here.
//
// Implementation note: valuations B_ik only ever *decrease* as replicas are
// placed (the nearest-neighbour distance is monotonically non-increasing
// and the broadcast price is constant), so each agent keeps a lazy max-heap
// over its candidate objects: pop, recompute, and re-insert until the top
// entry is current.  This keeps a full mechanism run near-linear instead of
// the naive O(M * N^2) worst case of Theorem 4.
//
// The same monotonicity powers the mechanism's dirty-set protocol
// (agt_ram.hpp): between two make_report calls, agent i's report can only
// change if a replica of an object i *reads* was placed (its NN distance for
// that object may have dropped) or if i itself won a round (its free
// capacity shrank, and the won object must leave the heap).  Every other
// agent's previous report remains valid verbatim, so the centre re-polls
// only the agents in readers(k*) ∪ {winner}.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "drp/cost_model.hpp"
#include "drp/placement.hpp"

namespace agtram::core {

/// A report can be distorted by a strategy (ablation hook; Axiom 3 audits).
/// Maps (agent, true value) -> claimed value.  Truthful agents use identity.
using ReportStrategy = std::function<double(drp::ServerId, double)>;

/// What an agent tells the centre in one round.
struct Report {
  drp::ObjectIndex object = 0;
  double claimed_value = 0.0;  ///< possibly distorted
  double true_value = 0.0;     ///< the agent's real valuation (for audits)
  bool has_candidate = false;
  /// Candidate evaluations the lazy heap performed to produce this report
  /// (drives the compute model of the protocol simulator).
  std::uint32_t evaluations = 0;
};

class Agent {
 public:
  /// Builds agent i's candidate list L_i: every object it reads, except
  /// those whose primary it already hosts.  Initial valuations are upper
  /// bounds against the primaries-only scheme.
  Agent(const drp::Problem& problem, drp::ServerId id);

  /// Warm-start variant: candidate valuations are computed against an
  /// existing placement (adaptive re-allocation, regional mechanisms).
  /// Objects the agent already replicates are excluded.
  Agent(const drp::ReplicaPlacement& placement, drp::ServerId id);

  drp::ServerId id() const noexcept { return id_; }

  /// Computes this round's report against the current placement.  Entries
  /// that became infeasible (capacity) or worthless (value <= 0) are
  /// discarded permanently — both conditions are monotone.
  Report make_report(const drp::ReplicaPlacement& placement,
                     const ReportStrategy& strategy);

  /// True when the candidate heap is exhausted (the agent leaves LS).
  bool retired() const noexcept { return heap_.empty(); }

  std::size_t remaining_candidates() const noexcept { return heap_.size(); }

 private:
  struct Entry {
    double value;
    drp::ObjectIndex object;
    /// This agent's slot in accessors(object) — fixed for the lifetime of
    /// the instance, resolved once at construction so every revaluation is
    /// a direct load from the flat demand/NN pools (no binary searches).
    std::uint32_t slot;
    bool operator<(const Entry& other) const noexcept {
      if (value != other.value) return value < other.value;
      return object > other.object;  // deterministic tie-break: low id first
    }
  };

  const drp::Problem* problem_;
  drp::ServerId id_;
  std::priority_queue<Entry> heap_;
};

}  // namespace agtram::core
