#include "core/payments.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace agtram::core {

PaymentRule parse_payment_rule(const std::string& name) {
  if (name == "second-price" || name == "vickrey") return PaymentRule::SecondPrice;
  if (name == "first-price") return PaymentRule::FirstPrice;
  if (name == "none" || name == "zero") return PaymentRule::None;
  throw std::invalid_argument("unknown payment rule: " + name);
}

std::string to_string(PaymentRule rule) {
  switch (rule) {
    case PaymentRule::SecondPrice: return "second-price";
    case PaymentRule::FirstPrice: return "first-price";
    case PaymentRule::None: return "none";
  }
  return "?";
}

double compute_payment(PaymentRule rule, std::span<const double> reports,
                       std::size_t winner_index) {
  assert(winner_index < reports.size());
  switch (rule) {
    case PaymentRule::None:
      return 0.0;
    case PaymentRule::FirstPrice:
      return reports[winner_index];
    case PaymentRule::SecondPrice: {
      double second = 0.0;
      for (std::size_t i = 0; i < reports.size(); ++i) {
        if (i == winner_index) continue;
        second = std::max(second, reports[i]);
      }
      return second;
    }
  }
  return 0.0;
}

}  // namespace agtram::core
