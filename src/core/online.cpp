#include "core/online.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"

namespace agtram::core {

namespace {

std::string describe(const char* what, std::uint64_t a, std::uint64_t b,
                     const char* detail) {
  std::ostringstream os;
  os << what << " differ at " << detail << ": " << a << " vs " << b;
  return os.str();
}

}  // namespace

bool placements_identical(const drp::ReplicaPlacement& a,
                          const drp::ReplicaPlacement& b, std::string* why) {
  const auto fail = [&](std::string message) {
    if (why) *why = std::move(message);
    return false;
  };
  // The placements may live on distinct (but equal) Problem copies — two
  // engines fed the same instance — so compare shapes, not pointers.
  const drp::Problem& p = a.problem();
  const std::size_t m = p.server_count();
  const std::size_t n = p.object_count();
  if (m != b.problem().server_count() || n != b.problem().object_count()) {
    return fail("placements have different instance shapes");
  }
  for (drp::ServerId i = 0; i < m; ++i) {
    if (a.used_capacity(i) != b.used_capacity(i)) {
      return fail(describe("used capacities", a.used_capacity(i),
                           b.used_capacity(i),
                           ("server " + std::to_string(i)).c_str()));
    }
  }
  for (drp::ObjectIndex k = 0; k < n; ++k) {
    const auto ra = a.replicators(k);
    const auto rb = b.replicators(k);
    if (!std::equal(ra.begin(), ra.end(), rb.begin(), rb.end())) {
      return fail("replicator sets differ at object " + std::to_string(k));
    }
    const auto da = a.nn_row(k);
    const auto db = b.nn_row(k);
    if (!std::equal(da.begin(), da.end(), db.begin(), db.end())) {
      return fail("NN distance rows differ at object " + std::to_string(k));
    }
    const auto na = a.nn_node_row(k);
    const auto nb = b.nn_node_row(k);
    if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end())) {
      return fail("NN node rows differ at object " + std::to_string(k));
    }
  }
  return true;
}

OnlineMechanism::OnlineMechanism(drp::Problem problem, OnlineConfig config)
    : config_(std::move(config)),
      problem_(std::make_unique<drp::Problem>(std::move(problem))) {
  problem_->validate();
  const std::size_t m = problem_->server_count();
  const std::size_t n = problem_->object_count();
  nominal_capacity_ = problem_->capacity;
  failed_.assign(m, 0);
  deleted_.assign(n, 0);
  stash_.resize(n);
  dirty_flag_.assign(m, 0);
  demand_touched_flag_.assign(n, 0);
  agents_.resize(m);

  AGTRAM_OBS_SPAN("online.initial_solve");
  MechanismResult initial = run_agt_ram(*problem_, config_.mechanism);
  if (!initial.drained) {
    throw std::invalid_argument(
        "OnlineMechanism: initial solve hit max_rounds — the engine needs a "
        "quiescent starting placement");
  }
  initial_rounds_ = initial.rounds.size();
  accumulate(initial);
  eval_.emplace(std::move(initial.placement));
}

void OnlineMechanism::mark_dirty(drp::ServerId i) {
  if (dirty_flag_[i] == 0) {
    dirty_flag_[i] = 1;
    dirty_.push_back(i);
  }
}

void OnlineMechanism::mark_demand_touched(drp::ObjectIndex k) {
  if (demand_touched_flag_[k] == 0) {
    demand_touched_flag_[k] = 1;
    demand_touched_.push_back(k);
  }
}

void OnlineMechanism::accumulate(const MechanismResult& result) {
  for (std::size_t i = 0; i < result.agents.size(); ++i) {
    const AgentOutcome& o = result.agents[i];
    if (o.objects_won == 0 && o.payments == 0.0 && o.true_value == 0.0) {
      continue;
    }
    agents_[i].payments += o.payments;
    agents_[i].true_value += o.true_value;
    agents_[i].objects_won += o.objects_won;
  }
  rounds_total_ += result.rounds.size();
}

void OnlineMechanism::apply_one(const OnlineEvent& event, BatchOutcome& out) {
  const drp::AccessMatrix& access = problem_->access;

  if (const auto* d = std::get_if<DemandDelta>(&event)) {
    if (deleted_[d->object]) {
      throw std::invalid_argument(
          "OnlineMechanism: demand delta on deleted object " +
          std::to_string(d->object));
    }
    problem_->access.apply_demand_delta(d->server, d->object, d->delta_reads,
                                        d->delta_writes);
    eval_->refresh_after_demand_change(d->object);
    mark_dirty(d->server);
    mark_demand_touched(d->object);
    if (d->delta_writes != 0) {
      // w_total(k) enters every reader's broadcast price, so a write delta
      // can move any reader's valuation (in either direction).
      for (const drp::ServerId i : access.readers(d->object)) mark_dirty(i);
    }
    return;
  }

  if (const auto* l = std::get_if<ReplicaLoss>(&event)) {
    if (problem_->primary[l->object] == l->server) {
      throw std::invalid_argument(
          "OnlineMechanism: primary copies are immovable (object " +
          std::to_string(l->object) + ")");
    }
    if (!eval_->placement().is_replicator(l->server, l->object)) {
      throw std::invalid_argument(
          "OnlineMechanism: replica loss on (server " +
          std::to_string(l->server) + ", object " + std::to_string(l->object) +
          ") which holds no replica");
    }
    eval_->remove_replica(l->server, l->object);
    ++out.replicas_lost;
    AGTRAM_OBS_COUNT("online.replicas_lost", 1);
    mark_dirty(l->server);  // freed capacity: retired-infeasible bids revive
    for (const drp::ServerId i : access.readers(l->object)) mark_dirty(i);
    return;
  }

  if (const auto* f = std::get_if<ServerFail>(&event)) {
    if (failed_[f->server]) {
      throw std::invalid_argument("OnlineMechanism: server " +
                                  std::to_string(f->server) +
                                  " is already failed");
    }
    // Drop every non-primary replica the server holds; each loss lifts NN
    // distances for that object's readers.
    std::vector<drp::ObjectIndex> lost;
    const std::size_t n = problem_->object_count();
    for (drp::ObjectIndex k = 0; k < n; ++k) {
      if (problem_->primary[k] != f->server &&
          eval_->placement().is_replicator(f->server, k)) {
        lost.push_back(k);
      }
    }
    for (const drp::ObjectIndex k : lost) {
      eval_->remove_replica(f->server, k);
      ++out.replicas_lost;
      AGTRAM_OBS_COUNT("online.replicas_lost", 1);
      for (const drp::ServerId i : access.readers(k)) mark_dirty(i);
    }
    // Clamp capacity to the surviving load (the immovable primaries): the
    // failed server can win nothing.  Capacity loss is monotone with
    // retirement, so the server itself needs no repolling.
    problem_->capacity[f->server] = eval_->placement().used_capacity(f->server);
    failed_[f->server] = 1;
    return;
  }

  if (const auto* j = std::get_if<ServerJoin>(&event)) {
    if (!failed_[j->server]) return;  // joining a live server: no-op
    problem_->capacity[j->server] = nominal_capacity_[j->server];
    failed_[j->server] = 0;
    mark_dirty(j->server);  // restored capacity may make old bids feasible
    return;
  }

  if (const auto* del = std::get_if<ObjectDelete>(&event)) {
    const drp::ObjectIndex k = del->object;
    if (deleted_[k]) {
      throw std::invalid_argument("OnlineMechanism: object " +
                                  std::to_string(k) + " is already deleted");
    }
    // Stash and zero the demand row (values only; structure is immutable).
    const auto row = access.accessors(k);
    for (std::size_t slot = 0; slot < row.size(); ++slot) {
      const drp::Access cell = row[slot];  // copy before mutating in place
      if (cell.reads == 0 && cell.writes == 0) continue;
      stash_[k].push_back(StashCell{cell.server, cell.reads, cell.writes});
      problem_->access.apply_demand_delta(
          cell.server, k, -static_cast<std::int64_t>(cell.reads),
          -static_cast<std::int64_t>(cell.writes));
    }
    // Drop the extra replicas; the spans invalidate on mutation, so copy.
    const auto reps = eval_->placement().replicators(k);
    std::vector<drp::ServerId> extras;
    for (const drp::ServerId r : reps) {
      if (r != problem_->primary[k]) extras.push_back(r);
    }
    for (const drp::ServerId r : extras) {
      eval_->remove_replica(r, k);
      ++out.replicas_lost;
      AGTRAM_OBS_COUNT("online.replicas_lost", 1);
      mark_dirty(r);  // freed capacity
    }
    eval_->refresh_after_demand_change(k);
    deleted_[k] = 1;
    // Readers of k are *not* dirtied: their valuation for k only fell to
    // zero, and retirement is monotone under value decreases.
    return;
  }

  const auto& create = std::get<ObjectCreate>(event);
  const drp::ObjectIndex k = create.object;
  if (!deleted_[k]) {
    throw std::invalid_argument(
        "OnlineMechanism: object " + std::to_string(k) +
        " is active; ObjectCreate re-activates a deleted object");
  }
  for (const StashCell& cell : stash_[k]) {
    problem_->access.apply_demand_delta(cell.server, k,
                                        static_cast<std::int64_t>(cell.reads),
                                        static_cast<std::int64_t>(cell.writes));
  }
  stash_[k].clear();
  eval_->refresh_after_demand_change(k);
  deleted_[k] = 0;
  mark_demand_touched(k);
  for (const drp::ServerId i : access.readers(k)) mark_dirty(i);
}

BatchOutcome OnlineMechanism::apply_events(std::span<const OnlineEvent> batch) {
  AGTRAM_OBS_SPAN("online.apply_batch");
  BatchOutcome out;
  out.events_applied = batch.size();
  ++batches_;
  events_ += batch.size();
  AGTRAM_OBS_COUNT("online.batches", 1);
  AGTRAM_OBS_COUNT("online.events", batch.size());

  dirty_.clear();
  // A bounded repair run that stopped early left live bids inside its
  // participant set; fold it into this batch before the events add theirs.
  for (const drp::ServerId i : carryover_) mark_dirty(i);
  carryover_.clear();

  for (const OnlineEvent& event : batch) apply_one(event, out);

  out.dirty_agents = dirty_.size();
  out.reports_saved = problem_->server_count() - dirty_.size();
  AGTRAM_OBS_COUNT("online.dirty_agents", dirty_.size());
  AGTRAM_OBS_COUNT("online.reports_saved", out.reports_saved);

  // The oracle re-solves from the pre-repair placement with everyone
  // polled, so snapshot it before the repair run consumes it.
  std::optional<drp::ReplicaPlacement> oracle_start;
  if (config_.differential_oracle) oracle_start.emplace(eval_->placement());

  std::vector<RoundRecord> repair_rounds;
  if (!dirty_.empty()) {
    AGTRAM_OBS_SPAN("online.repair");
    AgtRamConfig mech = config_.mechanism;
    mech.max_rounds = config_.max_repair_rounds;
    MechanismResult repair = run_agt_ram_from(
        *problem_, mech, eval_->detach_placement(), &dirty_);

    std::vector<drp::ObjectIndex> touched;
    touched.reserve(repair.rounds.size());
    for (const RoundRecord& r : repair.rounds) touched.push_back(r.object);
    eval_->attach_placement(std::move(repair.placement), touched);

    accumulate(repair);
    out.repair_rounds = repair.rounds.size();
    out.replicas_added = repair.rounds.size();
    out.reports_computed = repair.reports_computed;
    out.candidate_evaluations = repair.candidate_evaluations;
    out.drained = repair.drained;
    for (const RoundRecord& r : repair.rounds) out.payments += r.payment;
    AGTRAM_OBS_COUNT("online.repair_rounds", repair.rounds.size());
    AGTRAM_OBS_COUNT("online.replicas_added", repair.rounds.size());
    if (!repair.drained) {
      // Allocations only lower other agents' valuations, so every
      // still-live bid is inside the participant set: carry all of it.
      carryover_ = dirty_;
      AGTRAM_OBS_COUNT("online.carryover_batches", 1);
    }
    repair_rounds = std::move(repair.rounds);
  }
  for (const drp::ServerId i : dirty_) dirty_flag_[i] = 0;

  if (config_.differential_oracle && out.drained) {
    run_oracle(std::move(*oracle_start), repair_rounds);
    out.oracle_checked = true;
    AGTRAM_OBS_COUNT("online.oracle_checks", 1);
  }

  // Bounded eviction pass: only after a drained batch (an un-drained batch
  // already carries its whole participant set; its objects get re-marked by
  // the deltas that keep arriving).  The touched-object list is per batch.
  if (config_.eviction_limit > 0 && out.drained && !demand_touched_.empty()) {
    run_eviction(out);
  }
  for (const drp::ObjectIndex k : demand_touched_) demand_touched_flag_[k] = 0;
  demand_touched_.clear();

  out.total_cost = eval_->total();
  return out;
}

void OnlineMechanism::run_eviction(BatchOutcome& out) {
  AGTRAM_OBS_SPAN("online.evict");
  std::size_t budget = config_.eviction_limit;
  const std::size_t carryover_mark = carryover_.size();
  for (const drp::ObjectIndex k : demand_touched_) {
    if (budget == 0) break;
    if (deleted_[k]) continue;
    const drp::ServerId primary = problem_->primary[k];
    while (budget > 0) {
      // Most negative drop benefit among k's non-primary replicators; the
      // replicator span invalidates on mutation, so re-scan per drop.
      drp::ServerId victim = 0;
      double best = 0.0;
      bool found = false;
      for (const drp::ServerId r : eval_->placement().replicators(k)) {
        if (r == primary) continue;
        const double delta = eval_->delta_of_drop(r, k);
        if (delta < best) {
          best = delta;
          victim = r;
          found = true;
        }
      }
      if (!found) break;  // every remaining replica still pays its way
      eval_->remove_replica(victim, k);
      --budget;
      ++out.replicas_evicted;
      out.eviction_cost_delta += best;
      AGTRAM_OBS_COUNT("online.replicas_evicted", 1);
      // A drop only *raises* valuations, and only for object k's readers
      // (their NN distance may grow back) and the victim (freed capacity
      // may revive any of its retired-infeasible bids).  Queue exactly
      // those agents for the next batch's repair so the monotone-
      // retirement identity argument keeps holding batch to batch.
      carryover_.push_back(victim);
      for (const drp::ServerId i : problem_->access.readers(k)) {
        carryover_.push_back(i);
      }
    }
  }
  if (carryover_.size() > carryover_mark) {
    std::sort(carryover_.begin(), carryover_.end());
    carryover_.erase(std::unique(carryover_.begin(), carryover_.end()),
                     carryover_.end());
  }
}

void OnlineMechanism::run_oracle(drp::ReplicaPlacement pre_repair,
                                 const std::vector<RoundRecord>& repair_rounds) {
  AGTRAM_OBS_SPAN("online.oracle");
  MechanismResult oracle = run_agt_ram_from(*problem_, config_.mechanism,
                                            std::move(pre_repair), nullptr);
  if (!oracle.drained) {
    throw std::logic_error(
        "OnlineMechanism oracle: full-participation re-solve hit max_rounds");
  }
  if (oracle.rounds.size() != repair_rounds.size()) {
    throw std::logic_error(
        "OnlineMechanism oracle mismatch: repair made " +
        std::to_string(repair_rounds.size()) + " allocations, oracle made " +
        std::to_string(oracle.rounds.size()));
  }
  for (std::size_t r = 0; r < repair_rounds.size(); ++r) {
    const RoundRecord& a = repair_rounds[r];
    const RoundRecord& b = oracle.rounds[r];
    if (a.winner != b.winner || a.object != b.object ||
        a.claimed_value != b.claimed_value || a.true_value != b.true_value ||
        a.payment != b.payment) {
      throw std::logic_error(
          "OnlineMechanism oracle mismatch at allocation " +
          std::to_string(r) + ": repair (server " + std::to_string(a.winner) +
          ", object " + std::to_string(a.object) + ", payment " +
          std::to_string(a.payment) + ") vs oracle (server " +
          std::to_string(b.winner) + ", object " + std::to_string(b.object) +
          ", payment " + std::to_string(b.payment) + ")");
    }
  }
  std::string why;
  if (!placements_identical(oracle.placement, eval_->placement(), &why)) {
    throw std::logic_error("OnlineMechanism oracle mismatch: " + why);
  }
}

}  // namespace agtram::core
