#include "core/agent.hpp"

#include <cassert>

namespace agtram::core {

Agent::Agent(const drp::Problem& problem, drp::ServerId id)
    : problem_(&problem), id_(id) {
  // L_i: objects with read demand at i, excluding i's own primaries.  The
  // initial valuation uses the primaries-only placement; a fresh placement
  // is cheap enough to construct once per mechanism run, so we compute the
  // upper-bound value directly from the problem instead.
  for (const drp::ServerSideAccess& access :
       problem.access.server_objects(id)) {
    if (access.reads == 0) continue;  // pure writers never benefit
    if (problem.primary[access.object] == id) continue;
    const double o = static_cast<double>(problem.object_units[access.object]);
    const double read_savings =
        static_cast<double>(access.reads) * o *
        static_cast<double>(problem.distance(id, problem.primary[access.object]));
    const double broadcast_price =
        (static_cast<double>(problem.access.total_writes(access.object)) -
         static_cast<double>(access.writes)) *
        o *
        static_cast<double>(problem.distance(problem.primary[access.object], id));
    const double initial_value = read_savings - broadcast_price;
    if (initial_value > 0.0) {
      const std::size_t slot = problem.access.accessor_slot(id, access.object);
      assert(slot != drp::AccessMatrix::npos);
      heap_.push(Entry{initial_value, access.object,
                       static_cast<std::uint32_t>(slot)});
    }
  }
}

Agent::Agent(const drp::ReplicaPlacement& placement, drp::ServerId id)
    : problem_(&placement.problem()), id_(id) {
  for (const drp::ServerSideAccess& access :
       problem_->access.server_objects(id)) {
    if (access.reads == 0) continue;
    if (problem_->primary[access.object] == id) continue;
    if (placement.is_replicator(id, access.object)) continue;
    const std::size_t slot =
        problem_->access.accessor_slot(id, access.object);
    assert(slot != drp::AccessMatrix::npos);
    const double value =
        drp::CostModel::agent_benefit_at(placement, id, access.object, slot);
    if (value > 0.0) {
      heap_.push(Entry{value, access.object, static_cast<std::uint32_t>(slot)});
    }
  }
}

Report Agent::make_report(const drp::ReplicaPlacement& placement,
                          const ReportStrategy& strategy) {
  Report report;
  const auto fill = [&](drp::ObjectIndex object, double value) {
    report.object = object;
    report.true_value = value;
    report.claimed_value = strategy ? strategy(id_, value) : value;
    report.has_candidate = true;
  };
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    ++report.evaluations;
    // Monotone discards: already ours, or will never fit again.
    if (placement.is_replicator(id_, top.object) ||
        placement.free_capacity(id_) < problem_->object_units[top.object]) {
      heap_.pop();
      continue;
    }
    const double current =
        drp::CostModel::agent_benefit_at(placement, id_, top.object, top.slot);
    assert(current <= top.value * (1.0 + 1e-9));
    if (current == top.value) {
      // Untouched since it was last priced (the common case when only some
      // *other* object gained a replica): report without re-heapifying.
      fill(top.object, current);
      return report;
    }
    heap_.pop();
    if (current <= 0.0) continue;
    heap_.push(Entry{current, top.object, top.slot});
    if (heap_.top().value == current && heap_.top().object == top.object) {
      // Decayed but still dominant: report it and keep it queued for the
      // next round (only the winner actually replicates).
      fill(top.object, current);
      return report;
    }
    // Decayed below another candidate: re-sorted, retry from the new top.
  }
  return report;
}

}  // namespace agtram::core
