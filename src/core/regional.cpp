#include "core/regional.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

#include "drp/cost_model.hpp"

namespace agtram::core {

std::size_t RegionalResult::replicas_placed() const {
  std::size_t total = 0;
  for (const RegionOutcome& region : regions) total += region.replicas_placed;
  return total;
}

RegionalResult run_regional(const drp::Problem& problem,
                            const RegionalConfig& config) {
  net::ClusteringConfig clustering_cfg;
  clustering_cfg.regions = config.regions;
  clustering_cfg.seed = config.seed;
  net::Clustering clustering =
      net::cluster_servers(*problem.distances, clustering_cfg);

  const std::size_t region_count = clustering.region_count();
  RegionalResult result{drp::ReplicaPlacement(problem), std::move(clustering),
                        {}, 0};
  result.regions.resize(region_count);

  // Per-region agent pools (indices into `agents` per region).
  std::vector<Agent> agents;
  agents.reserve(problem.server_count());
  std::vector<std::vector<std::uint32_t>> region_live(region_count);
  for (drp::ServerId i = 0; i < problem.server_count(); ++i) {
    agents.emplace_back(problem, i);
    if (!agents.back().retired()) {
      region_live[result.clustering.assignment[i]].push_back(
          static_cast<std::uint32_t>(agents.size() - 1));
    }
  }
  for (std::uint32_t r = 0; r < region_count; ++r) {
    result.regions[r].centre = result.clustering.medoids[r];
    result.regions[r].member_count =
        static_cast<std::uint32_t>(result.clustering.members(r).size());
  }
  for (const std::uint32_t r : config.failed_regions) {
    if (r < region_count) {
      result.regions[r].failed = true;
      region_live[r].clear();  // a dead decision body allocates nothing
    }
  }

  // Epoch loop: every live region performs one mechanism round.  The
  // regions act concurrently in a deployment; the simulation serialises
  // them in region order within an epoch, which only affects intra-epoch
  // tie-breaks.
  bool any_progress = true;
  while (any_progress) {
    if (config.max_epochs != 0 && result.epochs >= config.max_epochs) break;
    any_progress = false;
    for (std::uint32_t r = 0; r < region_count; ++r) {
      auto& live = region_live[r];
      if (live.empty()) continue;

      std::vector<double> values;
      std::vector<std::uint32_t> bidders;  // agent indices
      std::vector<std::uint32_t> next_live;
      std::vector<Report> reports(agents.size());
      values.reserve(live.size());
      next_live.reserve(live.size());
      for (const std::uint32_t a : live) {
        reports[a] = agents[a].make_report(result.placement, nullptr);
        if (reports[a].has_candidate) {
          values.push_back(reports[a].claimed_value);
          bidders.push_back(a);
          next_live.push_back(a);
        }
      }
      live = std::move(next_live);
      if (values.empty()) continue;

      std::size_t winner_slot = 0;
      for (std::size_t s = 1; s < values.size(); ++s) {
        if (values[s] > values[winner_slot]) winner_slot = s;
      }
      const std::uint32_t winner_agent = bidders[winner_slot];
      const Report& winning = reports[winner_agent];
      const drp::ServerId winner = agents[winner_agent].id();

      assert(result.placement.can_replicate(winner, winning.object));
      result.placement.add_replica(winner, winning.object);
      result.regions[r].replicas_placed += 1;
      result.regions[r].charges +=
          compute_payment(config.payment_rule, values, winner_slot);
      any_progress = true;
    }
    ++result.epochs;
  }
  return result;
}

namespace {

/// Welfare gain for one region of placing a replica of k at member i:
/// read savings of the region's members minus i's broadcast subscription.
double regional_benefit(const drp::ReplicaPlacement& placement,
                        const net::Clustering& clustering,
                        std::uint32_t region, drp::ServerId i,
                        drp::ObjectIndex k) {
  const drp::Problem& p = placement.problem();
  const double o = static_cast<double>(p.object_units[k]);
  double benefit = 0.0;
  const auto accessors = p.access.accessors(k);
  for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
    const auto& a = accessors[slot];
    if (a.reads == 0 || clustering.assignment[a.server] != region) continue;
    if (placement.is_replicator(a.server, k)) continue;
    const net::Cost current = placement.nn_distance_by_slot(k, slot);
    const net::Cost with_i = std::min(current, p.distance(a.server, i));
    benefit += static_cast<double>(a.reads) * o *
               (static_cast<double>(current) - static_cast<double>(with_i));
  }
  benefit -= (static_cast<double>(p.access.total_writes(k)) -
              static_cast<double>(p.access.writes(i, k))) *
             o * static_cast<double>(p.distance(p.primary[k], i));
  return benefit;
}

struct CoalitionMove {
  double benefit = 0.0;
  drp::ServerId server = 0;
  drp::ObjectIndex object = 0;
};

/// Best member site for object k from the region's cooperative viewpoint.
CoalitionMove best_coalition_move(const drp::ReplicaPlacement& placement,
                                  const net::Clustering& clustering,
                                  std::uint32_t region,
                                  const std::vector<net::NodeId>& members,
                                  drp::ObjectIndex k) {
  CoalitionMove best;
  best.object = k;
  for (const net::NodeId i : members) {
    if (!placement.can_replicate(i, k)) continue;
    const double benefit =
        regional_benefit(placement, clustering, region, i, k);
    if (benefit > best.benefit) {
      best.benefit = benefit;
      best.server = i;
    }
  }
  return best;
}

}  // namespace

RegionalResult run_regional_cooperative(const drp::Problem& problem,
                                        const RegionalConfig& config) {
  net::ClusteringConfig clustering_cfg;
  clustering_cfg.regions = config.regions;
  clustering_cfg.seed = config.seed;
  net::Clustering clustering =
      net::cluster_servers(*problem.distances, clustering_cfg);
  const std::size_t region_count = clustering.region_count();

  RegionalResult result{drp::ReplicaPlacement(problem), std::move(clustering),
                        {}, 0};
  result.regions.resize(region_count);
  std::vector<std::vector<net::NodeId>> members(region_count);
  for (std::uint32_t r = 0; r < region_count; ++r) {
    members[r] = result.clustering.members(r);
    result.regions[r].centre = result.clustering.medoids[r];
    result.regions[r].member_count =
        static_cast<std::uint32_t>(members[r].size());
  }
  std::vector<bool> region_failed(region_count, false);
  for (const std::uint32_t r : config.failed_regions) {
    if (r < region_count) {
      region_failed[r] = true;
      result.regions[r].failed = true;
    }
  }

  // Per-region lazy max-heap over objects; coalition benefits only decay
  // (NN distances shrink, capacities shrink), so stale tops re-validate.
  struct HeapEntry {
    double benefit;
    drp::ObjectIndex object;
    bool operator<(const HeapEntry& other) const noexcept {
      if (benefit != other.benefit) return benefit < other.benefit;
      return object > other.object;
    }
  };
  std::vector<std::priority_queue<HeapEntry>> heaps(region_count);
  for (std::uint32_t r = 0; r < region_count; ++r) {
    if (region_failed[r]) continue;
    for (drp::ObjectIndex k = 0; k < problem.object_count(); ++k) {
      const CoalitionMove move = best_coalition_move(
          result.placement, result.clustering, r, members[r], k);
      if (move.benefit > 0.0) heaps[r].push(HeapEntry{move.benefit, k});
    }
  }

  bool any_progress = true;
  while (any_progress) {
    if (config.max_epochs != 0 && result.epochs >= config.max_epochs) break;
    any_progress = false;
    for (std::uint32_t r = 0; r < region_count; ++r) {
      auto& heap = heaps[r];
      while (!heap.empty()) {
        const HeapEntry top = heap.top();
        heap.pop();
        const CoalitionMove fresh = best_coalition_move(
            result.placement, result.clustering, r, members[r], top.object);
        if (fresh.benefit <= 0.0) continue;
        if (!heap.empty() && fresh.benefit < heap.top().benefit) {
          heap.push(HeapEntry{fresh.benefit, top.object});
          continue;
        }
        result.placement.add_replica(fresh.server, fresh.object);
        result.regions[r].replicas_placed += 1;
        any_progress = true;
        const CoalitionMove next = best_coalition_move(
            result.placement, result.clustering, r, members[r], fresh.object);
        if (next.benefit > 0.0) heap.push(HeapEntry{next.benefit, fresh.object});
        break;  // one allocation per region per epoch
      }
    }
    ++result.epochs;
  }
  return result;
}

HierarchicalResult run_hierarchical(const drp::Problem& problem,
                                    const RegionalConfig& config) {
  net::ClusteringConfig clustering_cfg;
  clustering_cfg.regions = config.regions;
  clustering_cfg.seed = config.seed;
  net::Clustering clustering =
      net::cluster_servers(*problem.distances, clustering_cfg);
  const std::size_t region_count = clustering.region_count();

  HierarchicalResult result{drp::ReplicaPlacement(problem),
                            std::move(clustering),
                            {},
                            0.0,
                            0};

  std::vector<Agent> agents;
  agents.reserve(problem.server_count());
  std::vector<std::vector<std::uint32_t>> region_live(region_count);
  for (drp::ServerId i = 0; i < problem.server_count(); ++i) {
    agents.emplace_back(problem, i);
    if (!agents.back().retired()) {
      region_live[result.clustering.assignment[i]].push_back(
          static_cast<std::uint32_t>(agents.size() - 1));
    }
  }
  std::vector<bool> region_failed(region_count, false);
  for (const std::uint32_t r : config.failed_regions) {
    if (r < region_count) region_failed[r] = true;
  }

  struct Champion {
    double value;
    drp::ServerId server;
    drp::ObjectIndex object;
    double true_value;
  };

  std::vector<Report> reports(agents.size());
  std::size_t round = 0;
  for (;;) {
    if (config.max_epochs != 0 && round >= config.max_epochs) break;

    // Level 1: every live region nominates its champion (regional argmax,
    // ties towards the lowest server id — region members are in id order).
    std::vector<Champion> champions;
    for (std::uint32_t r = 0; r < region_count; ++r) {
      if (region_failed[r]) continue;
      auto& live = region_live[r];
      std::vector<std::uint32_t> next_live;
      next_live.reserve(live.size());
      const Champion none{0.0, 0, 0, 0.0};
      Champion best = none;
      bool has_best = false;
      for (const std::uint32_t a : live) {
        reports[a] = agents[a].make_report(result.placement, nullptr);
        if (!reports[a].has_candidate) continue;
        next_live.push_back(a);
        if (!has_best || reports[a].claimed_value > best.value) {
          has_best = true;
          best = Champion{reports[a].claimed_value, agents[a].id(),
                          reports[a].object, reports[a].true_value};
        }
      }
      live = std::move(next_live);
      if (has_best) champions.push_back(best);
    }
    if (champions.empty()) break;
    result.top_level_reports += champions.size();

    // Level 2: the top centre compares R scalars.
    std::size_t winner_slot = 0;
    for (std::size_t c = 1; c < champions.size(); ++c) {
      if (champions[c].value > champions[winner_slot].value ||
          (champions[c].value == champions[winner_slot].value &&
           champions[c].server < champions[winner_slot].server)) {
        winner_slot = c;
      }
    }
    double second = 0.0;
    for (std::size_t c = 0; c < champions.size(); ++c) {
      if (c != winner_slot) second = std::max(second, champions[c].value);
    }
    const double payment =
        config.payment_rule == PaymentRule::SecondPrice ? second
        : config.payment_rule == PaymentRule::FirstPrice
            ? champions[winner_slot].value
            : 0.0;

    const Champion& winner = champions[winner_slot];
    assert(result.placement.can_replicate(winner.server, winner.object));
    result.placement.add_replica(winner.server, winner.object);
    result.rounds.push_back(RoundRecord{winner.server, winner.object,
                                        winner.value, winner.true_value,
                                        payment});
    result.total_charges += payment;
    ++round;
  }
  return result;
}

}  // namespace agtram::core
