#include "core/regional.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

#include "drp/cost_model.hpp"
#include "obs/obs.hpp"

namespace agtram::core {

std::size_t RegionalResult::replicas_placed() const {
  std::size_t total = 0;
  for (const RegionOutcome& region : regions) total += region.replicas_placed;
  return total;
}

namespace {

// Wire sizes mirror runtime::WireFormat's defaults; core cannot depend on
// the runtime layer, so the regional traffic model restates them.
constexpr std::uint64_t kReportWireBytes = 16;
constexpr std::uint64_t kAllocationWireBytes = 16;
constexpr std::uint64_t kBroadcastWireBytes = 12;

common::ThreadPool& resolve_pool(const RegionalConfig& config) {
  return config.pool != nullptr ? *config.pool : common::ThreadPool::shared();
}

/// Runs `body(r)` once per region: concurrently (one job per region) under
/// Sharded, in ascending region order under Serial.  Bodies may only write
/// region-owned state (their agents, heaps, and result slots) and read the
/// shared placement, so the two orders are byte-identical.
template <typename Body>
void for_each_region(const RegionalConfig& config, std::size_t region_count,
                     const Body& body) {
  if (config.execution == RegionalExecution::Sharded) {
    resolve_pool(config).parallel_for(
        0, region_count,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t r = begin; r < end; ++r) {
            body(static_cast<std::uint32_t>(r));
          }
        },
        /*min_grain=*/1);
  } else {
    for (std::size_t r = 0; r < region_count; ++r) {
      body(static_cast<std::uint32_t>(r));
    }
  }
}

/// Fresh reports for a region's live agents against the placement snapshot.
/// Under Sharded the pool is already busy with the region jobs, so the
/// inner parallel_for degrades to the inline fallback.
void poll_reports(const RegionalConfig& config, std::vector<Agent>& agents,
                  const std::vector<std::uint32_t>& live,
                  const drp::ReplicaPlacement& placement,
                  std::vector<Report>& reports) {
  const auto eval = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t a = live[i];
      reports[a] = agents[a].make_report(placement, nullptr);
    }
  };
  if (config.parallel_agents && live.size() >= config.parallel_min_agents) {
    resolve_pool(config).parallel_for(0, live.size(), eval);
  } else {
    eval(0, live.size());
  }
}

net::Clustering cluster_for(const drp::Problem& problem,
                            const RegionalConfig& config) {
  net::ClusteringConfig clustering_cfg;
  clustering_cfg.regions = config.regions;
  clustering_cfg.seed = config.seed;
  return net::cluster_servers(*problem.distances, clustering_cfg);
}

}  // namespace

RegionalResult run_regional(const drp::Problem& problem,
                            const RegionalConfig& config) {
  AGTRAM_OBS_SPAN("regional.run");
  net::Clustering clustering = cluster_for(problem, config);

  const std::size_t region_count = clustering.region_count();
  RegionalResult result{drp::ReplicaPlacement(problem), std::move(clustering),
                        {}, 0};
  result.regions.resize(region_count);

  // Per-region agent pools (indices into `agents` per region).
  std::vector<Agent> agents;
  agents.reserve(problem.server_count());
  std::vector<std::vector<std::uint32_t>> region_live(region_count);
  for (drp::ServerId i = 0; i < problem.server_count(); ++i) {
    agents.emplace_back(problem, i);
    if (!agents.back().retired()) {
      region_live[result.clustering.assignment[i]].push_back(
          static_cast<std::uint32_t>(agents.size() - 1));
    }
  }
  for (std::uint32_t r = 0; r < region_count; ++r) {
    result.regions[r].centre = result.clustering.medoids[r];
    result.regions[r].member_count =
        static_cast<std::uint32_t>(result.clustering.members(r).size());
  }
  for (const std::uint32_t r : config.failed_regions) {
    if (r < region_count) {
      result.regions[r].failed = true;
      region_live[r].clear();  // a dead decision body allocates nothing
    }
  }

  // One epoch = a poll phase in which every live region runs its round
  // against the epoch-start placement snapshot (region jobs own their
  // agents and pick slots; the placement is read-only), then a commit phase
  // applying the <=R winners in ascending region id.  Regions occupy
  // disjoint servers, so deferred commits can never invalidate another
  // region's winner — values are simply cleared as reported, which is the
  // honest concurrent-regions semantics.
  struct EpochPick {
    bool has = false;
    std::uint32_t winner_agent = 0;
    drp::ObjectIndex object = 0;
    double payment = 0.0;
  };
  std::vector<EpochPick> picks(region_count);
  std::vector<Report> reports(agents.size());

  bool any_progress = true;
  while (any_progress) {
    if (config.max_epochs != 0 && result.epochs >= config.max_epochs) break;
    any_progress = false;

    for_each_region(config, region_count, [&](std::uint32_t r) {
      picks[r] = EpochPick{};
      auto& live = region_live[r];
      if (live.empty()) return;

      const std::uint64_t polled = live.size();
      poll_reports(config, agents, live, result.placement, reports);

      std::vector<double> values;
      std::vector<std::uint32_t> bidders;  // agent indices
      std::vector<std::uint32_t> next_live;
      values.reserve(live.size());
      next_live.reserve(live.size());
      for (const std::uint32_t a : live) {
        if (reports[a].has_candidate) {
          values.push_back(reports[a].claimed_value);
          bidders.push_back(a);
          next_live.push_back(a);
        }
      }
      live = std::move(next_live);
      result.regions[r].reports_polled += polled;
      result.regions[r].wire_bytes += polled * kReportWireBytes;
      AGTRAM_OBS_COUNT("regional.reports_polled", polled);
      AGTRAM_OBS_COUNT("regional.report_bytes", polled * kReportWireBytes);
      if (values.empty()) return;

      std::size_t winner_slot = 0;
      for (std::size_t s = 1; s < values.size(); ++s) {
        if (values[s] > values[winner_slot]) winner_slot = s;
      }
      picks[r].has = true;
      picks[r].winner_agent = bidders[winner_slot];
      picks[r].object = reports[bidders[winner_slot]].object;
      picks[r].payment =
          compute_payment(config.payment_rule, values, winner_slot);
    });

    for (std::uint32_t r = 0; r < region_count; ++r) {
      if (!picks[r].has) continue;
      const drp::ServerId winner = agents[picks[r].winner_agent].id();
      assert(result.placement.can_replicate(winner, picks[r].object));
      result.placement.add_replica(winner, picks[r].object);
      const std::uint64_t broadcast =
          kBroadcastWireBytes * region_live[r].size();
      result.regions[r].replicas_placed += 1;
      result.regions[r].charges += picks[r].payment;
      result.regions[r].wire_bytes += kAllocationWireBytes + broadcast;
      AGTRAM_OBS_COUNT("regional.replicas_placed", 1);
      AGTRAM_OBS_COUNT("regional.alloc_bytes", kAllocationWireBytes);
      AGTRAM_OBS_COUNT("regional.broadcast_bytes", broadcast);
      any_progress = true;
    }
    ++result.epochs;
    AGTRAM_OBS_COUNT("regional.epochs", 1);
  }
  return result;
}

namespace {

/// Welfare gain for one region of placing a replica of k at member i:
/// read savings of the region's members minus i's broadcast subscription.
double regional_benefit(const drp::ReplicaPlacement& placement,
                        const net::Clustering& clustering,
                        std::uint32_t region, drp::ServerId i,
                        drp::ObjectIndex k) {
  const drp::Problem& p = placement.problem();
  const double o = static_cast<double>(p.object_units[k]);
  double benefit = 0.0;
  const auto accessors = p.access.accessors(k);
  for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
    const auto& a = accessors[slot];
    if (a.reads == 0 || clustering.assignment[a.server] != region) continue;
    if (placement.is_replicator(a.server, k)) continue;
    const net::Cost current = placement.nn_distance_by_slot(k, slot);
    const net::Cost with_i = std::min(current, p.distance(a.server, i));
    benefit += static_cast<double>(a.reads) * o *
               (static_cast<double>(current) - static_cast<double>(with_i));
  }
  benefit -= (static_cast<double>(p.access.total_writes(k)) -
              static_cast<double>(p.access.writes(i, k))) *
             o * static_cast<double>(p.distance(p.primary[k], i));
  return benefit;
}

struct CoalitionMove {
  double benefit = 0.0;
  drp::ServerId server = 0;
  drp::ObjectIndex object = 0;
};

/// Best member site for object k from the region's cooperative viewpoint.
CoalitionMove best_coalition_move(const drp::ReplicaPlacement& placement,
                                  const net::Clustering& clustering,
                                  std::uint32_t region,
                                  const std::vector<net::NodeId>& members,
                                  drp::ObjectIndex k) {
  CoalitionMove best;
  best.object = k;
  for (const net::NodeId i : members) {
    if (!placement.can_replicate(i, k)) continue;
    const double benefit =
        regional_benefit(placement, clustering, region, i, k);
    if (benefit > best.benefit) {
      best.benefit = benefit;
      best.server = i;
    }
  }
  return best;
}

}  // namespace

RegionalResult run_regional_cooperative(const drp::Problem& problem,
                                        const RegionalConfig& config) {
  AGTRAM_OBS_SPAN("regional.cooperative_run");
  net::Clustering clustering = cluster_for(problem, config);
  const std::size_t region_count = clustering.region_count();

  RegionalResult result{drp::ReplicaPlacement(problem), std::move(clustering),
                        {}, 0};
  result.regions.resize(region_count);
  std::vector<std::vector<net::NodeId>> members(region_count);
  for (std::uint32_t r = 0; r < region_count; ++r) {
    members[r] = result.clustering.members(r);
    result.regions[r].centre = result.clustering.medoids[r];
    result.regions[r].member_count =
        static_cast<std::uint32_t>(members[r].size());
  }
  std::vector<bool> region_failed(region_count, false);
  for (const std::uint32_t r : config.failed_regions) {
    if (r < region_count) {
      region_failed[r] = true;
      result.regions[r].failed = true;
    }
  }

  // Per-region lazy max-heap over objects; coalition benefits only decay
  // (NN distances shrink, capacities shrink), so stale tops re-validate.
  struct HeapEntry {
    double benefit;
    drp::ObjectIndex object;
    bool operator<(const HeapEntry& other) const noexcept {
      if (benefit != other.benefit) return benefit < other.benefit;
      return object > other.object;
    }
  };
  std::vector<std::priority_queue<HeapEntry>> heaps(region_count);
  for_each_region(config, region_count, [&](std::uint32_t r) {
    if (region_failed[r]) return;
    std::uint64_t scans = 0;
    for (drp::ObjectIndex k = 0; k < problem.object_count(); ++k) {
      const CoalitionMove move = best_coalition_move(
          result.placement, result.clustering, r, members[r], k);
      ++scans;
      if (move.benefit > 0.0) heaps[r].push(HeapEntry{move.benefit, k});
    }
    result.regions[r].reports_polled += scans;
    result.regions[r].wire_bytes += scans * kReportWireBytes;
    AGTRAM_OBS_COUNT("regional.coalition_scans", scans);
  });

  // Epochs follow the same snapshot/commit split as run_regional: the poll
  // phase validates each region's heap top against the epoch-start
  // placement and records at most one move per region; commits then apply
  // in ascending region id and push the committed object's next move.
  struct CoopPick {
    bool has = false;
    drp::ServerId server = 0;
    drp::ObjectIndex object = 0;
  };
  std::vector<CoopPick> picks(region_count);

  bool any_progress = true;
  while (any_progress) {
    if (config.max_epochs != 0 && result.epochs >= config.max_epochs) break;
    any_progress = false;

    for_each_region(config, region_count, [&](std::uint32_t r) {
      picks[r] = CoopPick{};
      auto& heap = heaps[r];
      std::uint64_t scans = 0;
      while (!heap.empty()) {
        const HeapEntry top = heap.top();
        heap.pop();
        const CoalitionMove fresh = best_coalition_move(
            result.placement, result.clustering, r, members[r], top.object);
        ++scans;
        if (fresh.benefit <= 0.0) continue;
        if (!heap.empty() && fresh.benefit < heap.top().benefit) {
          heap.push(HeapEntry{fresh.benefit, top.object});
          continue;
        }
        picks[r] = CoopPick{true, fresh.server, fresh.object};
        break;  // one allocation per region per epoch
      }
      result.regions[r].reports_polled += scans;
      result.regions[r].wire_bytes += scans * kReportWireBytes;
      AGTRAM_OBS_COUNT("regional.coalition_scans", scans);
    });

    for (std::uint32_t r = 0; r < region_count; ++r) {
      if (!picks[r].has) continue;
      assert(result.placement.can_replicate(picks[r].server, picks[r].object));
      result.placement.add_replica(picks[r].server, picks[r].object);
      const std::uint64_t broadcast = kBroadcastWireBytes * members[r].size();
      result.regions[r].replicas_placed += 1;
      result.regions[r].wire_bytes += kAllocationWireBytes + broadcast;
      AGTRAM_OBS_COUNT("regional.replicas_placed", 1);
      AGTRAM_OBS_COUNT("regional.alloc_bytes", kAllocationWireBytes);
      AGTRAM_OBS_COUNT("regional.broadcast_bytes", broadcast);
      any_progress = true;
      const CoalitionMove next = best_coalition_move(
          result.placement, result.clustering, r, members[r],
          picks[r].object);
      result.regions[r].reports_polled += 1;
      result.regions[r].wire_bytes += kReportWireBytes;
      if (next.benefit > 0.0) {
        heaps[r].push(HeapEntry{next.benefit, picks[r].object});
      }
    }
    ++result.epochs;
    AGTRAM_OBS_COUNT("regional.epochs", 1);
  }
  return result;
}

HierarchicalResult run_hierarchical(const drp::Problem& problem,
                                    const RegionalConfig& config) {
  AGTRAM_OBS_SPAN("regional.hierarchical_run");
  net::Clustering clustering = cluster_for(problem, config);
  const std::size_t region_count = clustering.region_count();

  HierarchicalResult result{drp::ReplicaPlacement(problem),
                            std::move(clustering),
                            {},
                            0.0,
                            0};

  std::vector<Agent> agents;
  agents.reserve(problem.server_count());
  std::vector<std::vector<std::uint32_t>> region_live(region_count);
  for (drp::ServerId i = 0; i < problem.server_count(); ++i) {
    agents.emplace_back(problem, i);
    if (!agents.back().retired()) {
      region_live[result.clustering.assignment[i]].push_back(
          static_cast<std::uint32_t>(agents.size() - 1));
    }
  }
  std::vector<bool> region_failed(region_count, false);
  for (const std::uint32_t r : config.failed_regions) {
    if (r < region_count) region_failed[r] = true;
  }

  struct Champion {
    double value;
    drp::ServerId server;
    drp::ObjectIndex object;
    double true_value;
  };
  struct RegionNomination {
    bool has = false;
    Champion champion{0.0, 0, 0, 0.0};
  };
  std::vector<RegionNomination> nominations(region_count);
  std::vector<Report> reports(agents.size());

  std::size_t round = 0;
  for (;;) {
    if (config.max_epochs != 0 && round >= config.max_epochs) break;

    // Level 1: every live region nominates its champion (regional argmax,
    // ties towards the lowest server id — region members are in id order).
    // Region rounds poll against the round-start placement, one job per
    // region under Sharded, so the nominations match Serial exactly.
    for_each_region(config, region_count, [&](std::uint32_t r) {
      nominations[r] = RegionNomination{};
      if (region_failed[r]) return;
      auto& live = region_live[r];
      if (live.empty()) return;
      const std::uint64_t polled = live.size();
      poll_reports(config, agents, live, result.placement, reports);
      std::vector<std::uint32_t> next_live;
      next_live.reserve(live.size());
      for (const std::uint32_t a : live) {
        if (!reports[a].has_candidate) continue;
        next_live.push_back(a);
        if (!nominations[r].has ||
            reports[a].claimed_value > nominations[r].champion.value) {
          nominations[r].has = true;
          nominations[r].champion =
              Champion{reports[a].claimed_value, agents[a].id(),
                       reports[a].object, reports[a].true_value};
        }
      }
      live = std::move(next_live);
      AGTRAM_OBS_COUNT("regional.reports_polled", polled);
      AGTRAM_OBS_COUNT("regional.report_bytes", polled * kReportWireBytes);
    });

    std::vector<Champion> champions;
    champions.reserve(region_count);
    for (std::uint32_t r = 0; r < region_count; ++r) {
      if (nominations[r].has) champions.push_back(nominations[r].champion);
    }
    if (champions.empty()) break;
    result.top_level_reports += champions.size();

    // Level 2: the top centre compares R scalars.
    std::size_t winner_slot = 0;
    for (std::size_t c = 1; c < champions.size(); ++c) {
      if (champions[c].value > champions[winner_slot].value ||
          (champions[c].value == champions[winner_slot].value &&
           champions[c].server < champions[winner_slot].server)) {
        winner_slot = c;
      }
    }
    double second = 0.0;
    for (std::size_t c = 0; c < champions.size(); ++c) {
      if (c != winner_slot) second = std::max(second, champions[c].value);
    }
    const double payment =
        config.payment_rule == PaymentRule::SecondPrice ? second
        : config.payment_rule == PaymentRule::FirstPrice
            ? champions[winner_slot].value
            : 0.0;

    const Champion& winner = champions[winner_slot];
    assert(result.placement.can_replicate(winner.server, winner.object));
    result.placement.add_replica(winner.server, winner.object);
    result.rounds.push_back(RoundRecord{winner.server, winner.object,
                                        winner.value, winner.true_value,
                                        payment});
    result.total_charges += payment;
    AGTRAM_OBS_COUNT("regional.hier_rounds", 1);
    AGTRAM_OBS_COUNT("regional.replicas_placed", 1);
    ++round;
  }
  return result;
}

}  // namespace agtram::core
