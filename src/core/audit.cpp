#include "core/audit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>

#include "obs/obs.hpp"

namespace agtram::core {

void RoundAuditor::on_round_begin(std::size_t) {
  round_values_.clear();
  ++rounds_;
}

void RoundAuditor::on_report(drp::ServerId, const Report& report,
                             bool /*fresh*/) {
  if (report.has_candidate) round_values_.push_back(report.claimed_value);
}

void RoundAuditor::on_allocation(drp::ServerId, drp::ObjectIndex,
                                 double payment) {
  if (round_values_.empty()) {
    throw std::logic_error("allocation without any report");
  }
  const double best = *std::max_element(round_values_.begin(),
                                        round_values_.end());
  // Axiom 4 (utilitarian): the centre must have chosen the argmax report.
  // We cannot see which agent won from here, but the winning value equals
  // the payment under FirstPrice and bounds it under SecondPrice.
  double expected_payment = 0.0;
  switch (rule_) {
    case PaymentRule::None:
      expected_payment = 0.0;
      break;
    case PaymentRule::FirstPrice:
      expected_payment = best;
      break;
    case PaymentRule::SecondPrice: {
      // Second-highest value (0 with a single bidder).
      double second = 0.0;
      double first = -1.0;
      for (double v : round_values_) {
        if (v > first) {
          second = first < 0.0 ? 0.0 : first;
          first = v;
        } else {
          second = std::max(second, v);
        }
      }
      expected_payment = std::max(0.0, second);
      break;
    }
  }
  if (std::abs(payment - expected_payment) > 1e-6 * std::max(1.0, best)) {
    throw std::logic_error("payment does not match the payment rule");
  }
}

std::vector<OneShotTrial> audit_one_shot_truthfulness(
    const drp::Problem& problem, PaymentRule rule,
    const std::vector<double>& distortions) {
  const drp::ReplicaPlacement placement(problem);
  std::vector<Agent> agents;
  agents.reserve(problem.server_count());
  for (drp::ServerId i = 0; i < problem.server_count(); ++i) {
    agents.emplace_back(problem, i);
  }
  std::vector<double> claims;
  std::vector<double> values;
  std::vector<drp::ServerId> bidders;
  for (auto& agent : agents) {
    const Report r = agent.make_report(placement, nullptr);
    if (!r.has_candidate) continue;
    claims.push_back(r.claimed_value);
    values.push_back(r.true_value);
    bidders.push_back(agent.id());
  }

  const auto round_utility = [&](std::vector<double> profile,
                                 std::size_t slot) {
    // Winner of the round under this report profile (ties: lowest id).
    std::size_t winner = 0;
    for (std::size_t s = 1; s < profile.size(); ++s) {
      if (profile[s] > profile[winner]) winner = s;
    }
    if (winner != slot) return 0.0;
    return values[slot] - compute_payment(rule, profile, slot);
  };

  std::vector<OneShotTrial> trials;
  for (std::size_t slot = 0; slot < bidders.size(); ++slot) {
    const double truthful = round_utility(claims, slot);
    for (const double factor : distortions) {
      std::vector<double> profile = claims;
      profile[slot] = claims[slot] * factor;
      trials.push_back(OneShotTrial{bidders[slot], factor, truthful,
                                    round_utility(std::move(profile), slot)});
    }
  }
  return trials;
}

std::vector<TruthfulnessTrial> audit_truthfulness(
    const drp::Problem& problem, PaymentRule rule, drp::ServerId agent,
    const std::vector<double>& distortions) {
  AgtRamConfig truthful_cfg;
  truthful_cfg.payment_rule = rule;
  const MechanismResult truthful = run_agt_ram(problem, truthful_cfg);
  const double truthful_utility = truthful.agents[agent].utility();

  std::vector<TruthfulnessTrial> trials;
  trials.reserve(distortions.size());
  for (const double factor : distortions) {
    AgtRamConfig deviant_cfg;
    deviant_cfg.payment_rule = rule;
    deviant_cfg.strategy = [agent, factor](drp::ServerId who, double value) {
      return who == agent ? value * factor : value;
    };
    const MechanismResult deviant = run_agt_ram(problem, deviant_cfg);
    trials.push_back(TruthfulnessTrial{agent, factor, truthful_utility,
                                       deviant.agents[agent].utility()});
  }
  return trials;
}

DominanceAuditor::DominanceAuditor(PaymentRule rule,
                                   std::vector<drp::ServerId> watched)
    : rule_(rule), watched_(std::move(watched)) {
  std::sort(watched_.begin(), watched_.end());
  watched_.erase(std::unique(watched_.begin(), watched_.end()),
                 watched_.end());
}

void DominanceAuditor::on_round_begin(std::size_t) {
  profile_.clear();
  ++rounds_;
  AGTRAM_OBS_COUNT("audit.rounds", 1);
}

void DominanceAuditor::on_report(drp::ServerId agent, const Report& report,
                                 bool /*fresh*/) {
  if (report.has_candidate) {
    profile_.push_back(Standing{agent, report.claimed_value,
                                report.true_value});
  }
}

void DominanceAuditor::on_allocation(drp::ServerId winner, drp::ObjectIndex,
                                     double payment) {
  for (const drp::ServerId who : watched_) {
    // The watched agent's standing report this round; absent means it had no
    // feasible candidate, so no bid (truthful or not) was possible.
    const Standing* mine = nullptr;
    double best_other = 0.0;
    drp::ServerId best_other_id = 0;
    bool any_other = false;
    for (const Standing& s : profile_) {
      if (s.agent == who) {
        mine = &s;
        continue;
      }
      // Mirror the centre's strict-greater sweep over ascending ids: the
      // lowest id among the maximal claims wins ties.
      if (!any_other || s.claimed > best_other) {
        best_other = s.claimed;
        best_other_id = s.agent;
        any_other = true;
      }
    }
    if (mine == nullptr) continue;

    // Realized round utility of the actual (possibly distorted) bid.
    const double realized =
        winner == who ? mine->true_value - payment : 0.0;

    // Counterfactual: the same round with `who` bidding its true valuation,
    // everyone else's claims fixed.
    const bool would_win =
        !any_other || mine->true_value > best_other ||
        (mine->true_value == best_other && who < best_other_id);
    double truthful = 0.0;
    if (would_win) {
      const double standing[2] = {mine->true_value,
                                  any_other ? best_other : 0.0};
      truthful = mine->true_value -
                 compute_payment(rule_, std::span<const double>(standing, 2),
                                 0);
    }

    const double margin = truthful - realized;
    min_margin_ = std::min(min_margin_, margin);
    ++checks_;
    AGTRAM_OBS_COUNT("audit.checks", 1);
    const double eps =
        1e-6 * std::max({1.0, std::abs(truthful), std::abs(realized)});
    if (margin < -eps) {
      ++violations_;
      AGTRAM_OBS_COUNT("audit.violations", 1);
    }
  }
}

namespace {

// One deviant mechanism run with the dominance auditor installed.
StrategicTrial run_strategic_trial(const drp::Problem& problem,
                                   const StrategicAuditConfig& config,
                                   const StrategyProfile& profile,
                                   drp::ServerId agent, DeviationKind kind,
                                   double factor, double truthful_utility) {
  AgtRamConfig cfg;
  cfg.payment_rule = config.payment_rule;
  cfg.report_mode = config.report_mode;
  cfg.strategy = profile.compile(problem.server_count());
  DominanceAuditor auditor(config.payment_rule, profile.deviating_agents());
  cfg.observer = &auditor;
  const MechanismResult deviant = run_agt_ram(problem, cfg);

  StrategicTrial trial;
  trial.agent = agent;
  trial.kind = kind;
  trial.factor = factor;
  trial.truthful_utility = truthful_utility;
  trial.deviant_utility = deviant.agents[agent].utility();
  trial.rounds_checked = auditor.rounds_audited();
  trial.round_violations = auditor.violations();
  trial.min_round_margin = std::isfinite(auditor.min_round_margin())
                               ? auditor.min_round_margin()
                               : 0.0;
  AGTRAM_OBS_COUNT("audit.trials", 1);
  return trial;
}

}  // namespace

StrategicAuditReport strategic_audit(const drp::Problem& problem,
                                     const StrategicAuditConfig& config) {
  AgtRamConfig truthful_cfg;
  truthful_cfg.payment_rule = config.payment_rule;
  truthful_cfg.report_mode = config.report_mode;
  const MechanismResult truthful = run_agt_ram(problem, truthful_cfg);

  // Probe the truthful run's top winners: their misreports are the ones
  // that can actually move the allocation.
  std::vector<drp::ServerId> ranked(problem.server_count());
  std::iota(ranked.begin(), ranked.end(), 0);
  std::sort(ranked.begin(), ranked.end(),
            [&](drp::ServerId a, drp::ServerId b) {
              const AgentOutcome& oa = truthful.agents[a];
              const AgentOutcome& ob = truthful.agents[b];
              if ((oa.objects_won > 0) != (ob.objects_won > 0)) {
                return oa.objects_won > 0;
              }
              if (oa.utility() != ob.utility()) {
                return oa.utility() > ob.utility();
              }
              return a < b;
            });
  std::vector<drp::ServerId> probes;
  for (const drp::ServerId who : ranked) {
    if (probes.size() >= config.agents_to_probe) break;
    if (truthful.agents[who].objects_won == 0) break;
    probes.push_back(who);
  }

  StrategicAuditReport report;
  for (const drp::ServerId who : probes) {
    const double truthful_utility = truthful.agents[who].utility();
    const auto sweep = [&](DeviationKind kind, double factor) {
      StrategyProfile profile;
      profile.deviations.push_back(Deviation{who, kind, factor});
      report.trials.push_back(run_strategic_trial(
          problem, config, profile, who, kind, factor, truthful_utility));
    };
    for (const double f : config.inflate_factors) {
      sweep(DeviationKind::Inflate, f);
    }
    for (const double f : config.deflate_factors) {
      sweep(f == 0.0 ? DeviationKind::Zero : DeviationKind::Deflate, f);
    }
  }

  // Collusion ring over the top winners (needs at least two members).
  if (config.collusion_size >= 2 && probes.size() >= 2) {
    CollusionGroup ring;
    ring.members.assign(
        probes.begin(),
        probes.begin() +
            std::min<std::size_t>(config.collusion_size, probes.size()));
    const drp::ServerId leader = ring.leader();

    StrategyProfile ring_profile;
    ring_profile.collusion_groups.push_back(ring);
    AgtRamConfig ring_cfg;
    ring_cfg.payment_rule = config.payment_rule;
    ring_cfg.report_mode = config.report_mode;
    ring_cfg.strategy = ring_profile.compile(problem.server_count());
    DominanceAuditor ring_auditor(config.payment_rule,
                                  ring_profile.deviating_agents());
    ring_cfg.observer = &ring_auditor;
    const MechanismResult ring_run = run_agt_ram(problem, ring_cfg);

    report.collusion.members = ring.members;
    report.collusion.truthful_revenue = truthful.total_payments();
    report.collusion.collusive_revenue = ring_run.total_payments();
    report.collusion.round_violations = ring_auditor.violations();

    // Each non-leader member unilaterally reverts to truth while the rest
    // of the ring keeps suppressing: dominance says it can only gain.
    for (const drp::ServerId member : ring.members) {
      if (member == leader) continue;
      CollusionGroup rest;
      for (const drp::ServerId other : ring.members) {
        if (other != member) rest.members.push_back(other);
      }
      StrategyProfile revert_profile;
      revert_profile.collusion_groups.push_back(rest);
      AgtRamConfig revert_cfg;
      revert_cfg.payment_rule = config.payment_rule;
      revert_cfg.report_mode = config.report_mode;
      revert_cfg.strategy = revert_profile.compile(problem.server_count());
      const MechanismResult revert_run = run_agt_ram(problem, revert_cfg);

      StrategicTrial reversion;
      reversion.agent = member;
      reversion.kind = DeviationKind::Zero;
      reversion.factor = 0.0;
      reversion.truthful_utility = revert_run.agents[member].utility();
      reversion.deviant_utility = ring_run.agents[member].utility();
      report.collusion.reversion.push_back(reversion);
      AGTRAM_OBS_COUNT("audit.trials", 1);
    }
  }

  report.total_round_violations = report.collusion.round_violations;
  report.min_full_game_margin = std::numeric_limits<double>::infinity();
  for (const StrategicTrial& trial : report.trials) {
    report.total_round_violations += trial.round_violations;
    report.min_full_game_margin =
        std::min(report.min_full_game_margin, trial.margin());
  }
  for (const StrategicTrial& trial : report.collusion.reversion) {
    report.min_full_game_margin =
        std::min(report.min_full_game_margin, trial.margin());
  }
  if (!std::isfinite(report.min_full_game_margin)) {
    report.min_full_game_margin = 0.0;
  }
  // The gate is the exact invariant: Lemma 1 / Theorem 5 are one-shot, and
  // every audited round must honour them.  Full-game margins are reported
  // but not gated — under the global clearing price an under-bidder can
  // legitimately shift its wins to later, cheaper rounds (the sequential
  // game is not dominance-solvable; see the header).
  report.dominance_holds =
      report.total_round_violations == 0 && !report.trials.empty();
  return report;
}

double utilitarian_discrepancy(const MechanismResult& result) {
  double per_round = 0.0;
  for (const RoundRecord& r : result.rounds) per_round += r.true_value;
  double per_agent = 0.0;
  for (const AgentOutcome& a : result.agents) per_agent += a.true_value;
  return std::abs(per_round - per_agent);
}

}  // namespace agtram::core
