#include "core/audit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace agtram::core {

void RoundAuditor::on_round_begin(std::size_t) {
  round_values_.clear();
  ++rounds_;
}

void RoundAuditor::on_report(drp::ServerId, const Report& report,
                             bool /*fresh*/) {
  if (report.has_candidate) round_values_.push_back(report.claimed_value);
}

void RoundAuditor::on_allocation(drp::ServerId, drp::ObjectIndex,
                                 double payment) {
  if (round_values_.empty()) {
    throw std::logic_error("allocation without any report");
  }
  const double best = *std::max_element(round_values_.begin(),
                                        round_values_.end());
  // Axiom 4 (utilitarian): the centre must have chosen the argmax report.
  // We cannot see which agent won from here, but the winning value equals
  // the payment under FirstPrice and bounds it under SecondPrice.
  double expected_payment = 0.0;
  switch (rule_) {
    case PaymentRule::None:
      expected_payment = 0.0;
      break;
    case PaymentRule::FirstPrice:
      expected_payment = best;
      break;
    case PaymentRule::SecondPrice: {
      // Second-highest value (0 with a single bidder).
      double second = 0.0;
      double first = -1.0;
      for (double v : round_values_) {
        if (v > first) {
          second = first < 0.0 ? 0.0 : first;
          first = v;
        } else {
          second = std::max(second, v);
        }
      }
      expected_payment = std::max(0.0, second);
      break;
    }
  }
  if (std::abs(payment - expected_payment) > 1e-6 * std::max(1.0, best)) {
    throw std::logic_error("payment does not match the payment rule");
  }
}

std::vector<OneShotTrial> audit_one_shot_truthfulness(
    const drp::Problem& problem, PaymentRule rule,
    const std::vector<double>& distortions) {
  const drp::ReplicaPlacement placement(problem);
  std::vector<Agent> agents;
  agents.reserve(problem.server_count());
  for (drp::ServerId i = 0; i < problem.server_count(); ++i) {
    agents.emplace_back(problem, i);
  }
  std::vector<double> claims;
  std::vector<double> values;
  std::vector<drp::ServerId> bidders;
  for (auto& agent : agents) {
    const Report r = agent.make_report(placement, nullptr);
    if (!r.has_candidate) continue;
    claims.push_back(r.claimed_value);
    values.push_back(r.true_value);
    bidders.push_back(agent.id());
  }

  const auto round_utility = [&](std::vector<double> profile,
                                 std::size_t slot) {
    // Winner of the round under this report profile (ties: lowest id).
    std::size_t winner = 0;
    for (std::size_t s = 1; s < profile.size(); ++s) {
      if (profile[s] > profile[winner]) winner = s;
    }
    if (winner != slot) return 0.0;
    return values[slot] - compute_payment(rule, profile, slot);
  };

  std::vector<OneShotTrial> trials;
  for (std::size_t slot = 0; slot < bidders.size(); ++slot) {
    const double truthful = round_utility(claims, slot);
    for (const double factor : distortions) {
      std::vector<double> profile = claims;
      profile[slot] = claims[slot] * factor;
      trials.push_back(OneShotTrial{bidders[slot], factor, truthful,
                                    round_utility(std::move(profile), slot)});
    }
  }
  return trials;
}

std::vector<TruthfulnessTrial> audit_truthfulness(
    const drp::Problem& problem, PaymentRule rule, drp::ServerId agent,
    const std::vector<double>& distortions) {
  AgtRamConfig truthful_cfg;
  truthful_cfg.payment_rule = rule;
  const MechanismResult truthful = run_agt_ram(problem, truthful_cfg);
  const double truthful_utility = truthful.agents[agent].utility();

  std::vector<TruthfulnessTrial> trials;
  trials.reserve(distortions.size());
  for (const double factor : distortions) {
    AgtRamConfig deviant_cfg;
    deviant_cfg.payment_rule = rule;
    deviant_cfg.strategy = [agent, factor](drp::ServerId who, double value) {
      return who == agent ? value * factor : value;
    };
    const MechanismResult deviant = run_agt_ram(problem, deviant_cfg);
    trials.push_back(TruthfulnessTrial{agent, factor, truthful_utility,
                                       deviant.agents[agent].utility()});
  }
  return trials;
}

double utilitarian_discrepancy(const MechanismResult& result) {
  double per_round = 0.0;
  for (const RoundRecord& r : result.rounds) per_round += r.true_value;
  double per_agent = 0.0;
  for (const AgentOutcome& a : result.agents) per_agent += a.true_value;
  return std::abs(per_round - per_agent);
}

}  // namespace agtram::core
