// The six axioms of the paper's game-theoretical mechanism (Figure 1) and
// how this library realises each of them.  This header is the map between
// the paper's theory (Section 3) and the code (Section 4 / Figure 2).
//
//  Axiom 1 (Ingredients)   — a mechanism has (a) an algorithmic output
//      specification and (b) agent utility functions.
//      Code: core::AgtRam produces core::MechanismResult (the output x and
//      the payments p); utilities u_i = p_i + v_i(t_i, x) are tracked in
//      MechanismResult::agents.
//
//  Axiom 2 (Agent disposition) — each agent holds private "true data";
//      everything else is public.  The paper argues DRP[pi] is the only
//      natural variant: the private data is the cost-of-replication
//      valuation CoR_ik, while topology and capacities are public.
//      Code: core::Agent computes t_ik = drp::CostModel::agent_benefit
//      from its local demand; the mechanism never reads demand directly,
//      only the reports (enforced by the Agent interface).
//
//  Axiom 3 (Truthful)      — truth-telling must be a dominant strategy
//      (Lemma 1 / Theorem 5).  Code: with PaymentRule::SecondPrice the
//      winner's payment is independent of its own report, which makes
//      misreporting weakly dominated; core::audit_truthfulness verifies the
//      dominance empirically on concrete instances, and the strategic
//      ReportStrategy hooks let benches demonstrate what breaks under
//      first-price payments.
//
//  Axiom 4 (Utilitarian)   — the objective is the sum of agent valuations,
//      g(x, t) = sum_i v_i(t_i, x), which is exactly the OTC objective of
//      Equation 4.  Code: each round allocates argmax of the reported
//      valuations; core::audit_round checks the argmax property per round.
//
//  Axiom 5 (Motivation)    — payments reward hosting: AGT-RAM pays the
//      *overall second-best* reported valuation (a Vickrey/second-price
//      rule), making over-, under- and random projection all unprofitable.
//      Code: core::compute_payment.
//
//  Axiom 6 (Algorithmic output) — the iterative allocation loop of
//      Figure 2; one replica per round, the centre only takes the binary
//      replicate / don't-replicate decision.  Code: core::AgtRam::run.
#pragma once

namespace agtram::core {

enum class Axiom {
  Ingredients = 1,
  AgentDisposition = 2,
  Truthful = 3,
  Utilitarian = 4,
  Motivation = 5,
  AlgorithmicOutput = 6,
};

/// Short human-readable description (bench/report output).
constexpr const char* axiom_name(Axiom axiom) {
  switch (axiom) {
    case Axiom::Ingredients: return "ingredients";
    case Axiom::AgentDisposition: return "agent disposition";
    case Axiom::Truthful: return "truthful";
    case Axiom::Utilitarian: return "utilitarian";
    case Axiom::Motivation: return "motivation";
    case Axiom::AlgorithmicOutput: return "algorithmic output";
  }
  return "?";
}

}  // namespace agtram::core
