// Online re-convergence engine (DESIGN.md §12, ROADMAP item 1).
//
// The paper solves a static one-shot instance; `OnlineMechanism` keeps that
// solution *live* across a stream of events — demand drift, replica loss,
// server fail/join, object delete/create — and re-converges incrementally
// instead of re-running the mechanism from scratch.  The engine owns the
// mutable Problem, the current ReplicaPlacement (inside a DeltaEvaluator so
// per-object costs stay exact across mutations), and re-converges after each
// event batch by warm-starting the round protocol restricted to a *dirty
// agent set*:
//
//   event                     dirty agents                    why
//   ---------------------     ------------------------------  ----------------
//   DemandDelta(i,k,dr,dw)    {i} ∪ (dw≠0 ? readers(k) : ∅)   r_ik is i's own
//                                                             term; w_total(k)
//                                                             prices every
//                                                             reader's bid
//   ReplicaLoss(s,k)          readers(k) ∪ {s}                NN_·k rose; s
//                                                             freed capacity
//   ServerFail(s)             ∪_k readers(k) over dropped k   NN rose per lost
//                                                             object; s gains
//                                                             nothing (capacity
//                                                             clamps to used)
//   ServerJoin(s)             {s}                             capacity restored
//   ObjectDelete(k)           former extra replicators of k   they freed
//                                                             capacity; readers
//                                                             only lose value
//   ObjectCreate(k)           readers(k)                      demand restored
//
// Identity contract: at quiescence every agent is retired, and both
// retirement conditions (value ≤ 0, infeasible capacity) are *monotone*
// under everything the repair run itself does.  An agent outside the dirty
// set therefore still has no positive feasible candidate: rebuilding it
// fresh and polling it would produce empty reports that touch neither the
// argmax nor the second price.  Hence the repair run restricted to the dirty
// set is byte-identical — rounds, payments, placement, NN caches — to the
// same warm-started run with *every* server participating.  That
// full-participation re-solve is the differential oracle this engine can run
// after every drained batch (`OnlineConfig::differential_oracle`); tests and
// the bench harness turn it on and fail hard on the first differing byte.
// The from-scratch `run_agt_ram` re-solve is the *cost* baseline the bench
// compares against (what a system without this engine must pay per event);
// it is not a placement oracle because the greedy round sequence is
// path-dependent and the mechanism never evicts.
//
// Fixed-universe event model: all M servers and N objects are provisioned at
// build time; events toggle activity *inside* that structural support.
// Demand moves only on existing cells (AccessMatrix::apply_demand_delta),
// deletes stash demand and recreate restores it, fail/join swing capacity
// between 0-free and nominal.  This keeps the CSR pools, the distance
// matrix, and the flat NN caches structurally immutable — no O(M²) rebuilds
// anywhere on the event path.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "core/agt_ram.hpp"
#include "drp/delta_evaluator.hpp"
#include "drp/placement.hpp"
#include "drp/problem.hpp"

namespace agtram::core {

/// In-place demand mutation on an existing (server, object) cell.  Rejected
/// if the cell is structurally absent, a count would go negative, or reads
/// would appear on a cell outside the structural readers(k) list (see
/// AccessMatrix::apply_demand_delta).
struct DemandDelta {
  drp::ServerId server;
  drp::ObjectIndex object;
  std::int64_t delta_reads;
  std::int64_t delta_writes;
};

/// A single non-primary replica of `object` on `server` is lost (disk
/// corruption on an otherwise healthy node).  Re-replication, if worthwhile,
/// happens through the repair rounds.
struct ReplicaLoss {
  drp::ServerId server;
  drp::ObjectIndex object;
};

/// Replica-storage failure: the server drops every non-primary replica it
/// holds and its capacity clamps to what remains (primaries are immovable
/// and survive; its demand keeps flowing and is served by other replicas).
struct ServerFail {
  drp::ServerId server;
};

/// Recovery: capacity restored to the nominal value captured at
/// construction.  Joining a never-failed server is a no-op (and produces an
/// empty dirty set).
struct ServerJoin {
  drp::ServerId server;
};

/// Deactivates an object: demand is stashed and zeroed, extra replicas are
/// dropped (freeing capacity); the primary copy stays (immovable).
struct ObjectDelete {
  drp::ObjectIndex object;
};

/// Re-activates a previously deleted object, restoring its stashed demand.
struct ObjectCreate {
  drp::ObjectIndex object;
};

using OnlineEvent = std::variant<DemandDelta, ReplicaLoss, ServerFail,
                                 ServerJoin, ObjectDelete, ObjectCreate>;

struct OnlineConfig {
  /// Mechanism configuration used for the initial solve, every repair run,
  /// and the oracle re-solve.  All report modes produce byte-identical
  /// allocations, so the choice only affects speed.
  AgtRamConfig mechanism;
  /// Bound on repair rounds per batch (latency cap); 0 = run until the
  /// dirty set drains.  When a batch is cut short the engine carries the
  /// whole participant set into the next batch — allocations only lower
  /// other agents' valuations, so the un-drained bids all live inside it.
  std::size_t max_repair_rounds = 0;
  /// Demand-aware eviction (DESIGN.md §13): after the repair run of a
  /// *drained* batch, walk the objects whose demand the batch touched and
  /// repeatedly drop the non-primary replica with the most negative
  /// delta-OTC drop benefit (DeltaEvaluator::delta_of_drop < 0 means the
  /// total cost strictly falls without it), at most this many drops per
  /// batch (0 = off).  The mechanism itself never evicts, so under drift a
  /// replica placed for yesterday's mix can turn into pure broadcast
  /// weight; this bounded pass retires it.  Every drop only *raises* other
  /// agents' valuations for that object, so the evicting servers and the
  /// object's readers are carried into the next batch's dirty set — the
  /// monotone-retirement identity argument then holds batch to batch.
  std::size_t eviction_limit = 0;
  /// After every *drained* batch, re-run the mechanism warm-started from the
  /// pre-repair placement with full participation and require byte-identical
  /// rounds, payments, placement, and NN caches; throws std::logic_error on
  /// the first mismatch.  Costs a full re-solve per batch: tests and bench
  /// verification only.  Checked *before* the eviction pass (the oracle
  /// characterises the repair run, eviction is a separate post-pass).
  bool differential_oracle = false;
};

/// What one apply_events call did (per-batch diagnostics; the same numbers
/// feed the `online.*` obs counters).
struct BatchOutcome {
  std::size_t events_applied = 0;
  std::size_t dirty_agents = 0;      ///< repair participants (incl. carryover)
  std::size_t reports_saved = 0;     ///< servers the repair never polled
  std::size_t repair_rounds = 0;     ///< allocations made by the repair run
  std::size_t replicas_added = 0;    ///< == repair_rounds (one per round)
  std::size_t replicas_lost = 0;     ///< dropped by loss/fail/delete events
  std::size_t replicas_evicted = 0;  ///< dropped by the eviction pass
  double eviction_cost_delta = 0.0;  ///< <= 0: OTC change from evictions
  std::uint64_t reports_computed = 0;
  std::uint64_t candidate_evaluations = 0;
  double payments = 0.0;             ///< second-price charges this batch
  double total_cost = 0.0;           ///< OTC after the batch (exact, cached)
  bool drained = true;               ///< false iff max_repair_rounds hit
  bool oracle_checked = false;
};

/// Byte-level placement comparison: replicator sets, used capacities, and
/// the flat NN caches (distance *and* recorded node) must all agree.  On
/// mismatch returns false and, when `why` is non-null, describes the first
/// difference.  Exposed for the differential tests and the bench harness.
bool placements_identical(const drp::ReplicaPlacement& a,
                          const drp::ReplicaPlacement& b,
                          std::string* why = nullptr);

class OnlineMechanism {
 public:
  /// Takes ownership of the instance (the engine mutates demand and
  /// capacity in place) and runs the initial full mechanism to quiescence.
  explicit OnlineMechanism(drp::Problem problem, OnlineConfig config = {});

  // The DeltaEvaluator and every live ReplicaPlacement hold pointers into
  // problem_; the engine is intentionally not copyable or movable.
  OnlineMechanism(const OnlineMechanism&) = delete;
  OnlineMechanism& operator=(const OnlineMechanism&) = delete;

  /// Applies one event batch, then re-converges the dirty set via a
  /// warm-started restricted mechanism run.  Events are validated and
  /// applied in order; an invalid event throws std::invalid_argument with
  /// the engine state unchanged by that event (prior events in the batch
  /// remain applied).
  BatchOutcome apply_events(std::span<const OnlineEvent> batch);

  const drp::Problem& problem() const noexcept { return *problem_; }
  const drp::ReplicaPlacement& placement() const noexcept {
    return eval_->placement();
  }
  const drp::DeltaEvaluator& evaluator() const noexcept { return *eval_; }

  /// Exact current OTC (DeltaEvaluator::total — bit-identical to
  /// CostModel::total_cost on the live placement).
  double total_cost() const { return eval_->total(); }

  bool server_failed(drp::ServerId i) const { return failed_[i] != 0; }
  bool object_deleted(drp::ObjectIndex k) const { return deleted_[k] != 0; }

  /// Cumulative per-agent outcomes across the initial solve and every
  /// repair run (indexed by server id).
  const std::vector<AgentOutcome>& agent_outcomes() const noexcept {
    return agents_;
  }

  /// Allocations made by the initial solve (before any event).
  std::size_t initial_rounds() const noexcept { return initial_rounds_; }
  /// Allocations made across all repair runs so far.
  std::size_t repair_rounds_total() const noexcept {
    return rounds_total_ - initial_rounds_;
  }
  std::size_t batches_applied() const noexcept { return batches_; }
  std::size_t events_applied() const noexcept { return events_; }
  /// Participants queued for the next batch because a bounded repair run
  /// stopped before draining (empty in steady state).
  std::span<const drp::ServerId> pending_carryover() const noexcept {
    return carryover_;
  }

 private:
  struct StashCell {
    drp::ServerId server;
    std::uint64_t reads;
    std::uint64_t writes;
  };

  void mark_dirty(drp::ServerId i);
  void mark_demand_touched(drp::ObjectIndex k);
  void apply_one(const OnlineEvent& event, BatchOutcome& out);
  void run_eviction(BatchOutcome& out);
  void accumulate(const MechanismResult& result);
  void run_oracle(drp::ReplicaPlacement pre_repair,
                  const std::vector<RoundRecord>& repair_rounds);

  OnlineConfig config_;
  std::unique_ptr<drp::Problem> problem_;
  std::optional<drp::DeltaEvaluator> eval_;
  std::vector<std::uint64_t> nominal_capacity_;
  std::vector<char> failed_;
  std::vector<char> deleted_;
  std::vector<std::vector<StashCell>> stash_;

  // Per-batch dirty set (flags persist across batches, cleared after use).
  std::vector<char> dirty_flag_;
  std::vector<drp::ServerId> dirty_;
  std::vector<drp::ServerId> carryover_;
  // Objects whose demand this batch touched (eviction candidates).
  std::vector<char> demand_touched_flag_;
  std::vector<drp::ObjectIndex> demand_touched_;

  std::vector<AgentOutcome> agents_;
  std::size_t initial_rounds_ = 0;
  std::size_t rounds_total_ = 0;
  std::size_t batches_ = 0;
  std::size_t events_ = 0;
};

}  // namespace agtram::core
