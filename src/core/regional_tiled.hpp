// Tiled regional AGT-RAM for M = 50k-100k servers.
//
// The shared-placement engine in core/regional.hpp scales the *round
// structure* (R concurrent regional rounds per epoch) but still inherits
// the dense M x M closure through drp::Problem.  This engine removes that
// ceiling: servers are clustered directly on the graph
// (net::cluster_servers_sampled), distances are tiled into per-region
// blocks plus centre strips (net::TiledDistances), and each region runs a
// fully independent AGT-RAM auction — or a cooperative greedy coalition on
// a per-region drp::DeltaEvaluator shard — over its own subproblem:
//
//   * member servers keep their global capacities; objects enter a shard
//     when a member reads/writes them or homes their primary;
//   * a foreign object's primary maps to the *gateway* of its home region
//     (zero free capacity, so gateways never replicate), and the writes of
//     non-member servers aggregate onto that gateway — update broadcasts
//     are priced along the route through the regional centres, total write
//     volume per object matching the global instance exactly;
//   * reads by non-members are excluded: those are the home business of
//     the readers' own regions.
//
// Shards share no mutable state, so Serial and Sharded execution are
// byte-identical by construction; the differential suite in
// tests/regional_test.cpp pins it, and pins the R=1 degenerate case equal
// to the flat mechanism.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/regional.hpp"
#include "drp/builder.hpp"
#include "net/clustering.hpp"
#include "net/tiled_distances.hpp"

namespace agtram::core {

struct TiledRegionalConfig {
  std::uint32_t regions = 8;
  std::uint64_t seed = 1;
  PaymentRule payment_rule = PaymentRule::SecondPrice;
  RegionalExecution execution = RegionalExecution::Serial;
  /// Greedy welfare loop on a per-region DeltaEvaluator shard instead of
  /// the per-region auction (no payments inside a coalition).
  bool cooperative = false;
  /// Budget for the tiled distance state (blocks + strips).  A partition
  /// whose estimate exceeds it is refused — within_budget=false, nothing
  /// materialised — never silently truncated.
  std::uint64_t distance_budget_bytes = 4ull << 30;
  /// Member cap per region; 0 = twice the balanced share, which bounds the
  /// largest block on skewed (power-law) topologies.
  std::uint32_t max_members = 0;
  std::uint32_t refine_iterations = 1;
  /// Per-shard round cap; 0 = run each shard to quiescence.
  std::size_t max_rounds_per_region = 0;
  /// Inner PARFOR inside a shard's auction rounds / candidate scans
  /// (inline under Sharded via the pool's nested fallback).
  bool parallel_agents = true;
  /// Pool for Sharded execution; nullptr = common::ThreadPool::shared().
  common::ThreadPool* pool = nullptr;
};

/// The reusable expensive part: clustering + tiled distance blocks.  Built
/// once per (instance, R) and shared by timed Serial/Sharded runs.
struct TiledPartition {
  net::Clustering clustering;
  net::TiledDistances tiles;
  bool within_budget = false;
  std::uint64_t tile_bytes = 0;  ///< estimate; exact when within budget
};

TiledPartition make_tiled_partition(const drp::SparseInstance& instance,
                                    const TiledRegionalConfig& config);

struct TiledShardOutcome {
  net::NodeId centre = 0;
  std::uint32_t member_count = 0;
  std::uint32_t object_count = 0;  ///< objects in the shard subproblem
  std::size_t rounds = 0;
  std::size_t replicas_placed = 0;
  double charges = 0.0;
  double initial_cost = 0.0;
  double final_cost = 0.0;
  std::uint64_t reports_computed = 0;
  std::uint64_t wire_bytes = 0;
};

struct TiledRegionalResult {
  bool within_budget = false;
  std::uint64_t tile_bytes = 0;
  std::vector<TiledShardOutcome> shards;
  /// Federated OTC: shard subproblem costs summed in region order (objects
  /// read in several regions contribute to each reader region's shard).
  double initial_cost = 0.0;
  double final_cost = 0.0;
  /// Every replica allocated, as global (server, object) pairs, sorted —
  /// the cross-execution identity key.
  std::vector<std::pair<drp::ServerId, drp::ObjectIndex>> allocations;

  std::size_t replicas_placed() const { return allocations.size(); }
  double savings() const {
    return initial_cost > 0.0 ? (initial_cost - final_cost) / initial_cost
                              : 0.0;
  }
};

/// Runs every region's mechanism over a prebuilt partition.  Returns
/// within_budget=false (and does nothing) when the partition was refused.
TiledRegionalResult run_regional_tiled(const drp::SparseInstance& instance,
                                       const TiledPartition& partition,
                                       const TiledRegionalConfig& config);

/// Convenience: partition + run.
TiledRegionalResult run_regional_tiled(const drp::SparseInstance& instance,
                                       const TiledRegionalConfig& config);

}  // namespace agtram::core
