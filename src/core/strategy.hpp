// Strategic (misreporting) agents — the adversarial side of Axiom 3.
//
// The paper proves truth-telling is a dominant strategy (Lemma 1, Theorem 5)
// but every bench agent so far has been honest.  A StrategyProfile names the
// agents that deviate — inflating, deflating, or zeroing their Eq.-5
// valuations, or colluding in groups — and compiles down to the existing
// ReportStrategy hook of AgtRamConfig, so the same profile can be injected
// into run_agt_ram, run_agt_ram_from, and (through OnlineConfig::mechanism)
// the online engine's repair rounds.
//
// Collusion is modelled as the classic Vickrey bidding ring: every member
// except the designated leader (the lowest id) suppresses its bid to zero.
// The ring lowers the clearing price the leader pays when the suppressed
// bids would have set it — centre revenue drops — but no *individual* member
// can gain by the suppression itself, which is exactly what the audit
// measures (core/audit.hpp: strategic_audit).
//
// The compiled strategy is stateless — claimed = factor(agent) * value — so
// it is well-defined under both report modes (a cached standing report under
// ReportMode::Incremental is the value the same call would produce fresh).
#pragma once

#include <cstdint>
#include <vector>

#include "core/agent.hpp"
#include "drp/problem.hpp"

namespace agtram::core {

enum class DeviationKind {
  Truthful,  ///< identity (useful as a sweep's control row)
  Inflate,   ///< claim = factor * value, factor > 1 (over-projection)
  Deflate,   ///< claim = factor * value, factor in (0, 1) (under-projection)
  Zero,      ///< claim = 0 (bid suppression)
};

/// One agent's misreporting rule.  `factor` is the multiplicative distortion
/// for Inflate/Deflate and ignored for Truthful/Zero.
struct Deviation {
  drp::ServerId agent = 0;
  DeviationKind kind = DeviationKind::Truthful;
  double factor = 1.0;

  /// The multiplier actually applied to the true valuation.
  double multiplier() const noexcept {
    switch (kind) {
      case DeviationKind::Truthful: return 1.0;
      case DeviationKind::Inflate:
      case DeviationKind::Deflate: return factor;
      case DeviationKind::Zero: return 0.0;
    }
    return 1.0;
  }
};

/// A bidding ring: every member except the leader zero-bids.  The leader is
/// the lowest member id (deterministic; no configuration needed).
struct CollusionGroup {
  std::vector<drp::ServerId> members;

  drp::ServerId leader() const;
};

/// The full strategic posture of a mechanism run: individual deviations plus
/// collusion groups.  Later entries win when an agent appears twice; a
/// collusion membership (non-leader) overrides any individual deviation.
struct StrategyProfile {
  std::vector<Deviation> deviations;
  std::vector<CollusionGroup> collusion_groups;

  bool empty() const noexcept {
    return deviations.empty() && collusion_groups.empty();
  }

  /// The multiplier agent `who` applies to its true valuations (1.0 for
  /// agents the profile does not name).
  double multiplier_for(drp::ServerId who) const;

  /// True when the profile distorts `who`'s reports (multiplier != 1).
  bool deviates(drp::ServerId who) const {
    return multiplier_for(who) != 1.0;
  }

  /// Every agent with a non-identity multiplier, ascending, deduplicated.
  std::vector<drp::ServerId> deviating_agents() const;

  /// Compiles the profile to the stateless ReportStrategy the mechanism's
  /// report path consumes: a dense per-agent multiplier table captured by
  /// value, O(1) per report.  `server_count` bounds the table (agents beyond
  /// it are truthful).
  ReportStrategy compile(std::size_t server_count) const;
};

/// The same misreports aimed at the non-truthful baselines: since Greedy,
/// GRA, and the auctions consume demand rather than reports, a deviating
/// agent's lie enters as distorted *read volumes* (reads scaled by the
/// agent's multiplier — the demand claim behind its Eq.-5 valuation).
/// Returns a Problem identical to `problem` except those read cells; write
/// demand, capacities, primaries, and the metric stay untouched, so any
/// placement feasible on the distorted instance is feasible on the true one.
drp::Problem distorted_problem(const drp::Problem& problem,
                               const StrategyProfile& profile);

}  // namespace agtram::core
