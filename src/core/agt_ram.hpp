// AGT-RAM — the Axiomatic Game Theoretical Replica Allocation Mechanism
// (paper Section 4, Figure 2).  This is the paper's primary contribution.
//
// Round structure:
//   1. PARFOR each live agent: compute its best candidate and report
//      (object, valuation) to the centre.
//   2. The centre picks the globally dominant report (argmax), decides the
//      binary "replicate", pays the winner per the payment rule (Axiom 5),
//      and broadcasts the allocation.
//   3. The winner replicates; every agent's NN table for that object is
//      refreshed (done incrementally by drp::ReplicaPlacement).
// The loop ends when no agent has a positive-valued feasible candidate.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/agent.hpp"
#include "core/payments.hpp"
#include "drp/placement.hpp"
#include "drp/problem.hpp"

namespace agtram::core {

/// Instrumentation hook: the semi-distributed runtime (src/runtime) uses it
/// to account messages/bytes and simulated network latency; tests use it to
/// audit the axioms round by round.
class MechanismObserver {
 public:
  virtual ~MechanismObserver() = default;
  virtual void on_round_begin(std::size_t /*round*/) {}
  /// Called for every live agent's report (including empty ones).
  virtual void on_report(drp::ServerId /*agent*/, const Report& /*report*/) {}
  virtual void on_allocation(drp::ServerId /*winner*/,
                             drp::ObjectIndex /*object*/,
                             double /*payment*/) {}
  /// Centre broadcasts the winning (object, server) so agents refresh NN.
  virtual void on_broadcast(drp::ServerId /*winner*/,
                            drp::ObjectIndex /*object*/) {}
};

struct AgtRamConfig {
  PaymentRule payment_rule = PaymentRule::SecondPrice;
  /// Run the per-agent report loop on the shared thread pool (the PARFOR of
  /// Figure 2).  Results are identical to the serial run by construction.
  bool parallel_agents = false;
  /// Optional distortion of agent reports (Axiom 3 ablations).
  ReportStrategy strategy;
  /// Optional instrumentation.
  MechanismObserver* observer = nullptr;
  /// Safety valve for pathological configs; 0 = unlimited.
  std::size_t max_rounds = 0;
};

/// Per-agent game-theoretic outcome.
///
/// Sign convention: `payments` is the Vickrey *clearing charge* of each won
/// round — the second-best report, which the winner is charged against its
/// hosting gain.  The paper's Axiom 5 text phrases this as a compensation,
/// but its own Theorem 5 proof evaluates a deviating winner's utility as
/// t_i - d_{3-i} (value minus the second declaration), i.e. the standard
/// second-price form u_i = v_i - p_i; that is the convention audited here.
struct AgentOutcome {
  double payments = 0.0;        ///< sum of second-price charges (Axiom 5)
  double true_value = 0.0;      ///< sum of true valuations of objects won
  std::uint32_t objects_won = 0;
  /// u_i = v_i(t_i, x) - p_i, per the Theorem 5 proof.
  double utility() const noexcept { return true_value - payments; }
};

struct RoundRecord {
  drp::ServerId winner;
  drp::ObjectIndex object;
  double claimed_value;  ///< the winning report
  double true_value;     ///< the winner's actual valuation
  double payment;
};

struct MechanismResult {
  drp::ReplicaPlacement placement;
  std::vector<RoundRecord> rounds;
  std::vector<AgentOutcome> agents;  ///< indexed by server id

  double total_payments() const;
  std::size_t replicas_placed() const noexcept { return rounds.size(); }
};

/// Runs the mechanism to completion on `problem`, starting from the
/// primaries-only scheme with every server participating.
MechanismResult run_agt_ram(const drp::Problem& problem,
                            const AgtRamConfig& config = {});

/// Warm-start / restricted variant: continues allocating on top of `start`
/// and (optionally) lets only `participants` act as agents.  This powers
/// the adaptive re-allocation protocol and the regional mechanisms of the
/// paper's future-work section (src/core/adaptive.hpp, regional.hpp).
MechanismResult run_agt_ram_from(const drp::Problem& problem,
                                 const AgtRamConfig& config,
                                 drp::ReplicaPlacement start,
                                 const std::vector<drp::ServerId>* participants
                                 = nullptr);

}  // namespace agtram::core
