// AGT-RAM — the Axiomatic Game Theoretical Replica Allocation Mechanism
// (paper Section 4, Figure 2).  This is the paper's primary contribution.
//
// Round structure:
//   1. PARFOR each live agent: compute its best candidate and report
//      (object, valuation) to the centre.
//   2. The centre picks the globally dominant report (argmax), decides the
//      binary "replicate", pays the winner per the payment rule (Axiom 5),
//      and broadcasts the allocation.
//   3. The winner replicates; every agent's NN table for that object is
//      refreshed (done incrementally by drp::ReplicaPlacement).
// The loop ends when no agent has a positive-valued feasible candidate.
//
// Incremental (dirty-set) evaluation: because one round allocates exactly
// one replica of one object k*, an agent's report can only change if it
// reads k* (its NN distance for k* may have dropped) or if it is the winner
// (its free capacity shrank).  With `ReportMode::Incremental` the centre
// caches every agent's standing report, re-polls only the dirty set
// readers(k*) ∪ {winner} each round, and selects the winner from a lazy
// max-heap over the cached claimed values — O(|readers(k*)| log M) per round
// instead of O(Σ|L_i|).  The allocation, payments, and round sequence are
// byte-identical to the naive sweep (tests assert this); the naive path is
// kept as a differential-testing oracle.  See DESIGN.md "Dirty-set
// incremental evaluation".
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/agent.hpp"
#include "core/payments.hpp"
#include "drp/placement.hpp"
#include "drp/problem.hpp"

namespace agtram::core {

/// Instrumentation hook: the semi-distributed runtime (src/runtime) uses it
/// to account messages/bytes and simulated network latency; tests use it to
/// audit the axioms round by round.
class MechanismObserver {
 public:
  virtual ~MechanismObserver() = default;
  virtual void on_round_begin(std::size_t /*round*/) {}
  /// Called for every live agent's *standing* report each round (including
  /// empty ones).  `fresh` is true when the report was recomputed this round
  /// — a wire message in the semi-distributed deployment — and false when
  /// the centre served it from its cache (incremental mode only; the naive
  /// sweep recomputes everything, so every report is fresh).
  virtual void on_report(drp::ServerId /*agent*/, const Report& /*report*/,
                         bool /*fresh*/) {}
  virtual void on_allocation(drp::ServerId /*winner*/,
                             drp::ObjectIndex /*object*/,
                             double /*payment*/) {}
  /// Centre broadcasts the winning (object, server).  `notified` is the
  /// fan-out size: every reporting agent under the naive sweep, only the
  /// next round's dirty set (the agents whose state the allocation can
  /// touch) under the incremental protocol.
  virtual void on_broadcast(drp::ServerId /*winner*/,
                            drp::ObjectIndex /*object*/,
                            std::size_t /*notified*/) {}
};

/// How the centre gathers per-round reports.  All three produce
/// byte-identical allocations; they differ only in work per round.
enum class ReportMode {
  /// Full sweep: every live agent re-evaluates its heap every round.  Kept
  /// as the differential-testing oracle; it also wins outright when the
  /// dirty set is most of the live set (trace demand at bench scale), since
  /// it skips the standing-report heap machinery.
  Naive,
  /// Dirty-set evaluation (see the header comment): re-poll only
  /// readers(k*) ∪ {winner} and select from a lazy max-heap.  Wins when
  /// |readers(k)| << M — the paper's large-M regime.
  Incremental,
  /// Pick per instance from readers(k) statistics: incremental iff the mean
  /// dirty set is a small fraction of the agent population (see
  /// kAutoIncrementalFraction in agt_ram.cpp).  The default.
  Auto,
};

struct AgtRamConfig {
  PaymentRule payment_rule = PaymentRule::SecondPrice;
  /// Run the per-agent report loop on the shared thread pool (the PARFOR of
  /// Figure 2).  Results are identical to the serial run by construction.
  bool parallel_agents = false;
  /// Rounds evaluating fewer agents than this run inline even when
  /// parallel_agents is set: fork/join latency dwarfs the work of a
  /// handful of lazy-heap pops, and the dirty set of a typical incremental
  /// round is single digits.  Measured crossover on the bench instances is
  /// a few hundred agents per round (see DESIGN.md §7).
  std::size_t parallel_min_agents = 256;
  /// Report evaluation policy (see ReportMode).  Note: a *stateful*
  /// ReportStrategy (one whose output depends on call history rather than
  /// only on (agent, value)) is only well-defined under Naive, because the
  /// incremental path reuses cached reports instead of re-invoking it.
  ReportMode report_mode = ReportMode::Auto;
  /// Optional distortion of agent reports (Axiom 3 ablations).
  ReportStrategy strategy;
  /// Optional instrumentation.
  MechanismObserver* observer = nullptr;
  /// Safety valve for pathological configs; 0 = unlimited.
  std::size_t max_rounds = 0;
};

/// The mode ReportMode::Auto would pick for `problem` with `agent_count`
/// participating agents (exposed for benches and tests).
ReportMode resolve_report_mode(const drp::Problem& problem,
                               std::size_t agent_count, ReportMode requested);

/// The Auto resolution together with the inputs and thresholds that decided
/// it — what the bench JSON `obs` blocks and `--obs-trace` dumps record so a
/// regression can be traced to the signal that flipped (DESIGN.md §9).  For
/// a non-Auto `requested` the signals are still populated (they are cheap
/// statistics) but `resolved == requested`.
struct AutoPolicyDecision {
  ReportMode requested = ReportMode::Auto;
  ReportMode resolved = ReportMode::Naive;
  /// Expected dirty-set size: size-biased mean readers per object.
  double size_biased_readers = 0.0;
  /// Participation ratio of object read volumes.
  double effective_hot_objects = 0.0;
  std::size_t agent_count = 0;
  /// The thresholds the signals were compared against
  /// (kAutoIncrementalFraction / kAutoMinEffectiveHotObjects).
  double incremental_fraction = 0.0;
  double min_effective_hot_objects = 0.0;
  /// size_biased_readers * incremental_fraction < agent_count
  bool dirty_is_local = false;
  /// effective_hot_objects >= min_effective_hot_objects
  bool demand_is_dispersed = false;
};

AutoPolicyDecision explain_report_mode(const drp::Problem& problem,
                                       std::size_t agent_count,
                                       ReportMode requested);

/// Per-agent game-theoretic outcome.
///
/// Sign convention: `payments` is the Vickrey *clearing charge* of each won
/// round — the second-best report, which the winner is charged against its
/// hosting gain.  The paper's Axiom 5 text phrases this as a compensation,
/// but its own Theorem 5 proof evaluates a deviating winner's utility as
/// t_i - d_{3-i} (value minus the second declaration), i.e. the standard
/// second-price form u_i = v_i - p_i; that is the convention audited here.
struct AgentOutcome {
  double payments = 0.0;        ///< sum of second-price charges (Axiom 5)
  double true_value = 0.0;      ///< sum of true valuations of objects won
  std::uint32_t objects_won = 0;
  /// u_i = v_i(t_i, x) - p_i, per the Theorem 5 proof.
  double utility() const noexcept { return true_value - payments; }
};

struct RoundRecord {
  drp::ServerId winner;
  drp::ObjectIndex object;
  double claimed_value;  ///< the winning report
  double true_value;     ///< the winner's actual valuation
  double payment;
};

struct MechanismResult {
  drp::ReplicaPlacement placement;
  std::vector<RoundRecord> rounds;
  std::vector<AgentOutcome> agents;  ///< indexed by server id

  /// Work diagnostics (not part of the allocation, and the one place the
  /// incremental and naive paths legitimately differ): candidate heap
  /// evaluations performed and reports computed across the whole run.
  std::uint64_t candidate_evaluations = 0;
  std::uint64_t reports_computed = 0;
  /// The evaluation path actually taken (Auto resolves to Naive or
  /// Incremental before the first round).
  ReportMode resolved_mode = ReportMode::Naive;
  /// True when the round loop ended because no agent had a positive feasible
  /// candidate left (the mechanism's natural fixpoint); false only when
  /// `max_rounds` cut it short, in which case live agents may still hold
  /// bids.  The online engine keys its carryover and oracle checks on this.
  bool drained = true;

  double total_payments() const;
  std::size_t replicas_placed() const noexcept { return rounds.size(); }
};

/// Runs the mechanism to completion on `problem`, starting from the
/// primaries-only scheme with every server participating.
MechanismResult run_agt_ram(const drp::Problem& problem,
                            const AgtRamConfig& config = {});

/// Warm-start / restricted variant: continues allocating on top of `start`
/// and (optionally) lets only `participants` act as agents.  This powers
/// the adaptive re-allocation protocol and the regional mechanisms of the
/// paper's future-work section (src/core/adaptive.hpp, regional.hpp).
MechanismResult run_agt_ram_from(const drp::Problem& problem,
                                 const AgtRamConfig& config,
                                 drp::ReplicaPlacement start,
                                 const std::vector<drp::ServerId>* participants
                                 = nullptr);

}  // namespace agtram::core
