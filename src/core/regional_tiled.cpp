#include "core/regional_tiled.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "drp/cost_model.hpp"
#include "drp/delta_evaluator.hpp"
#include "obs/obs.hpp"

namespace agtram::core {

namespace {

// Same modelled wire sizes as core/regional.cpp (runtime::WireFormat
// defaults restated; core cannot depend on the runtime layer).
constexpr std::uint64_t kReportWireBytes = 16;
constexpr std::uint64_t kAllocationWireBytes = 16;
constexpr std::uint64_t kBroadcastWireBytes = 12;

common::ThreadPool& resolve_pool(const TiledRegionalConfig& config) {
  return config.pool != nullptr ? *config.pool : common::ThreadPool::shared();
}

template <typename Body>
void for_each_region(const TiledRegionalConfig& config,
                     std::size_t region_count, const Body& body) {
  if (config.execution == RegionalExecution::Sharded) {
    resolve_pool(config).parallel_for(
        0, region_count,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t r = begin; r < end; ++r) {
            body(static_cast<std::uint32_t>(r));
          }
        },
        /*min_grain=*/1);
  } else {
    for (std::size_t r = 0; r < region_count; ++r) {
      body(static_cast<std::uint32_t>(r));
    }
  }
}

/// Objects each region's shard must carry: those a member reads/writes plus
/// those whose primary lives in the region.  One pass over the nonzeros.
/// noinline: GCC 12's -Wfree-nonheap-object misfires on the stamp vector
/// when this inlines into the caller's frame.
[[gnu::noinline]] std::vector<std::vector<drp::ObjectIndex>> objects_per_region(
    const drp::Problem& base, const net::Clustering& clustering) {
  const std::size_t region_count = clustering.region_count();
  std::vector<std::vector<drp::ObjectIndex>> result(region_count);
  constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> stamp(region_count, kNone);
  for (drp::ObjectIndex k = 0; k < base.object_count(); ++k) {
    const std::uint32_t home = clustering.assignment[base.primary[k]];
    stamp[home] = k;
    result[home].push_back(k);
    for (const drp::Access& a : base.access.accessors(k)) {
      const std::uint32_t region = clustering.assignment[a.server];
      if (stamp[region] != k) {
        stamp[region] = k;
        result[region].push_back(k);
      }
    }
  }
  return result;
}

/// One region's subproblem over its tiled distance block.  Local server ids
/// 0..n-1 are the members (ascending global id); n+q is region q's gateway.
struct ShardProblem {
  drp::Problem sub;
  const std::vector<drp::ObjectIndex>* global_objects = nullptr;
};

ShardProblem build_shard_problem(
    const drp::SparseInstance& instance, const TiledPartition& partition,
    std::uint32_t r, const std::vector<drp::ObjectIndex>& objects) {
  const drp::Problem& base = instance.base;
  const net::Clustering& clustering = partition.clustering;
  const std::vector<net::NodeId>& members = partition.tiles.members(r);
  const std::size_t n = members.size();
  const std::size_t region_count = clustering.region_count();
  const std::size_t side = n + region_count;

  constexpr std::uint32_t kNoLocal = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> local(base.server_count(), kNoLocal);
  for (std::uint32_t i = 0; i < n; ++i) local[members[i]] = i;

  ShardProblem shard;
  shard.global_objects = &objects;
  drp::Problem& sub = shard.sub;
  sub.distances = partition.tiles.block(r);
  sub.object_units.reserve(objects.size());
  sub.primary.reserve(objects.size());

  std::vector<std::uint64_t> gateway_load(region_count, 0);
  std::vector<std::vector<drp::Access>> by_object;
  by_object.reserve(objects.size());
  for (const drp::ObjectIndex k : objects) {
    sub.object_units.push_back(base.object_units[k]);
    const std::uint32_t home = clustering.assignment[base.primary[k]];
    if (home == r) {
      sub.primary.push_back(local[base.primary[k]]);
    } else {
      sub.primary.push_back(static_cast<drp::ServerId>(n + home));
      gateway_load[home] += base.object_units[k];
    }

    std::vector<drp::Access> row;
    std::uint64_t member_writes = 0;
    for (const drp::Access& a : base.access.accessors(k)) {
      if (local[a.server] == kNoLocal) continue;
      row.push_back(drp::Access{local[a.server], a.reads, a.writes});
      member_writes += a.writes;
    }
    // Non-member writers aggregate onto the home gateway so the shard's
    // total write volume (and hence broadcast pricing) matches the global
    // instance; non-member reads stay with the readers' own regions.
    const std::uint64_t foreign_writes =
        base.access.total_writes(k) - member_writes;
    if (foreign_writes > 0) {
      row.push_back(drp::Access{static_cast<drp::ServerId>(n + home), 0,
                                foreign_writes});
    }
    by_object.push_back(std::move(row));
  }
  sub.access =
      drp::AccessMatrix::build(side, objects.size(), std::move(by_object));

  // Members keep their global capacity (their in-shard primary load equals
  // their global one: member-homed objects are always included).  Gateways
  // get exactly their primary load — zero headroom, so they never
  // replicate and retire from the auction immediately.
  sub.capacity.resize(side);
  for (std::uint32_t i = 0; i < n; ++i) {
    sub.capacity[i] = base.capacity[members[i]];
  }
  for (std::uint32_t q = 0; q < region_count; ++q) {
    sub.capacity[n + q] = gateway_load[q];
  }
  sub.validate();
  return shard;
}

struct ShardRun {
  TiledShardOutcome outcome;
  std::vector<std::pair<drp::ServerId, drp::ObjectIndex>> allocations;
};

/// Extracts the shard's extra replicas as global (server, object) pairs.
void collect_allocations(const drp::ReplicaPlacement& placement,
                         const std::vector<net::NodeId>& members,
                         const std::vector<drp::ObjectIndex>& objects,
                         ShardRun& run) {
  const drp::Problem& sub = placement.problem();
  const std::size_t n = members.size();
  for (drp::ObjectIndex lk = 0; lk < sub.object_count(); ++lk) {
    for (const drp::ServerId s : placement.replicators(lk)) {
      if (s < n && s != sub.primary[lk]) {
        run.allocations.emplace_back(members[s], objects[lk]);
      }
    }
  }
  std::sort(run.allocations.begin(), run.allocations.end());
}

/// Cooperative shard: greedy welfare loop on a per-region DeltaEvaluator —
/// lazy max-heap over objects of their best member add (benefits only
/// decay as replicas land, so stale tops re-validate).
void run_cooperative_shard(const ShardProblem& shard,
                           const TiledRegionalConfig& config,
                           const std::vector<net::NodeId>& members,
                           ShardRun& run) {
  const drp::Problem& sub = shard.sub;
  const std::size_t n = members.size();
  drp::DeltaEvaluator eval{drp::ReplicaPlacement(sub)};
  std::vector<bool> allowed(sub.server_count(), false);
  for (std::size_t i = 0; i < n; ++i) allowed[i] = true;
  drp::DeltaEvaluator::ScanScratch scratch;

  struct HeapEntry {
    double benefit;
    drp::ObjectIndex object;
    bool operator<(const HeapEntry& other) const noexcept {
      if (benefit != other.benefit) return benefit < other.benefit;
      return object > other.object;
    }
  };
  std::priority_queue<HeapEntry> heap;
  std::uint64_t scans = 0;
  for (drp::ObjectIndex k = 0; k < sub.object_count(); ++k) {
    const drp::DeltaEvaluator::BestAdd best =
        eval.best_add_for_object(k, &allowed, scratch, config.parallel_agents);
    ++scans;
    if (best.benefit > 0.0) heap.push(HeapEntry{best.benefit, k});
  }
  while (!heap.empty()) {
    if (config.max_rounds_per_region != 0 &&
        run.outcome.rounds >= config.max_rounds_per_region) {
      break;
    }
    const HeapEntry top = heap.top();
    heap.pop();
    const drp::DeltaEvaluator::BestAdd fresh = eval.best_add_for_object(
        top.object, &allowed, scratch, config.parallel_agents);
    ++scans;
    if (fresh.benefit <= 0.0) continue;
    if (!heap.empty() && fresh.benefit < heap.top().benefit) {
      heap.push(HeapEntry{fresh.benefit, top.object});
      continue;
    }
    eval.add_replica(fresh.server, top.object);
    run.outcome.rounds += 1;
    run.outcome.replicas_placed += 1;
    const drp::DeltaEvaluator::BestAdd next = eval.best_add_for_object(
        top.object, &allowed, scratch, config.parallel_agents);
    ++scans;
    if (next.benefit > 0.0) heap.push(HeapEntry{next.benefit, top.object});
  }
  run.outcome.reports_computed = scans;
  run.outcome.final_cost = eval.total();
  const drp::ReplicaPlacement placement = std::move(eval).take_placement();
  collect_allocations(placement, members, *shard.global_objects, run);
}

void run_auction_shard(const ShardProblem& shard,
                       const TiledRegionalConfig& config,
                       const std::vector<net::NodeId>& members,
                       ShardRun& run) {
  AgtRamConfig mech_cfg;
  mech_cfg.payment_rule = config.payment_rule;
  mech_cfg.report_mode = ReportMode::Auto;
  mech_cfg.parallel_agents = config.parallel_agents;
  mech_cfg.max_rounds = config.max_rounds_per_region;
  const MechanismResult result = run_agt_ram(shard.sub, mech_cfg);
  run.outcome.rounds = result.rounds.size();
  run.outcome.replicas_placed = result.replicas_placed();
  run.outcome.charges = result.total_payments();
  run.outcome.reports_computed = result.reports_computed;
  run.outcome.final_cost = drp::CostModel::total_cost(result.placement);
  collect_allocations(result.placement, members, *shard.global_objects, run);
}

}  // namespace

TiledPartition make_tiled_partition(const drp::SparseInstance& instance,
                                    const TiledRegionalConfig& config) {
  AGTRAM_OBS_SPAN("regional.tiled_partition");
  const std::uint32_t servers =
      static_cast<std::uint32_t>(instance.base.server_count());
  net::SampledClusteringConfig clustering_cfg;
  clustering_cfg.regions = config.regions;
  clustering_cfg.seed = config.seed;
  clustering_cfg.refine_iterations = config.refine_iterations;
  clustering_cfg.max_members =
      config.max_members != 0
          ? config.max_members
          : 2 * ((servers + config.regions - 1) / config.regions);

  TiledPartition partition;
  partition.clustering =
      net::cluster_servers_sampled(instance.graph, clustering_cfg);
  partition.tile_bytes =
      net::TiledDistances::estimate_bytes(partition.clustering);
  if (partition.tile_bytes > config.distance_budget_bytes) {
    partition.within_budget = false;  // refused: nothing materialised
    return partition;
  }
  partition.tiles =
      net::TiledDistances::build(instance.graph, partition.clustering);
  partition.within_budget = true;
  return partition;
}

TiledRegionalResult run_regional_tiled(const drp::SparseInstance& instance,
                                       const TiledPartition& partition,
                                       const TiledRegionalConfig& config) {
  TiledRegionalResult result;
  result.tile_bytes = partition.tile_bytes;
  if (!partition.within_budget) return result;
  result.within_budget = true;

  AGTRAM_OBS_SPAN("regional.tiled_run");
  const std::size_t region_count = partition.clustering.region_count();
  const std::vector<std::vector<drp::ObjectIndex>> region_objects =
      objects_per_region(instance.base, partition.clustering);

  // Shards share no mutable state (each builds and solves its own
  // subproblem), so Serial and Sharded execution are byte-identical.
  std::vector<ShardRun> runs(region_count);
  for_each_region(config, region_count, [&](std::uint32_t r) {
    ShardRun& run = runs[r];
    const std::vector<net::NodeId>& members = partition.tiles.members(r);
    const ShardProblem shard =
        build_shard_problem(instance, partition, r, region_objects[r]);
    run.outcome.centre = partition.clustering.medoids[r];
    run.outcome.member_count = static_cast<std::uint32_t>(members.size());
    run.outcome.object_count =
        static_cast<std::uint32_t>(shard.sub.object_count());
    run.outcome.initial_cost = drp::CostModel::initial_cost(shard.sub);
    if (config.cooperative) {
      run_cooperative_shard(shard, config, members, run);
    } else {
      run_auction_shard(shard, config, members, run);
    }
    run.outcome.wire_bytes =
        run.outcome.reports_computed * kReportWireBytes +
        static_cast<std::uint64_t>(run.outcome.replicas_placed) *
            (kAllocationWireBytes + kBroadcastWireBytes * members.size());
    AGTRAM_OBS_COUNT("regional.tiled_shards", 1);
    AGTRAM_OBS_COUNT("regional.reports_polled", run.outcome.reports_computed);
    AGTRAM_OBS_COUNT("regional.report_bytes",
                     run.outcome.reports_computed * kReportWireBytes);
    AGTRAM_OBS_COUNT("regional.replicas_placed", run.outcome.replicas_placed);
  });

  result.shards.reserve(region_count);
  for (const ShardRun& run : runs) {
    result.shards.push_back(run.outcome);
    result.initial_cost += run.outcome.initial_cost;
    result.final_cost += run.outcome.final_cost;
    result.allocations.insert(result.allocations.end(),
                              run.allocations.begin(), run.allocations.end());
  }
  std::sort(result.allocations.begin(), result.allocations.end());
  return result;
}

TiledRegionalResult run_regional_tiled(const drp::SparseInstance& instance,
                                       const TiledRegionalConfig& config) {
  const TiledPartition partition = make_tiled_partition(instance, config);
  return run_regional_tiled(instance, partition, config);
}

}  // namespace agtram::core
