#include "core/agt_ram.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <span>
#include <stdexcept>
#include <string>

#include "common/thread_pool.hpp"
#include "obs/obs.hpp"

namespace agtram::core {

double MechanismResult::total_payments() const {
  double total = 0.0;
  for (const AgentOutcome& a : agents) total += a.payments;
  return total;
}

// ReportMode::Auto: incremental evaluation pays off when one round's dirty
// set (readers(k*) ∪ {winner}) is well under the *live* agent set the naive
// sweep would touch; otherwise the standing-report heap overhead loses to
// the naive sweep's tight loop over cached heap tops.  Two static signals
// predict that, calibrated on the bench families (micro_core):
//
//  * the expected dirty-set size — the size-biased mean reader count, since
//    allocations land on read-hot objects — must be well under the agent
//    population (4× margin), else re-polls rival the full sweep outright;
//  * the read volume must not be concentrated on a few objects: with a
//    small effective hot set (participation ratio of object read volumes),
//    the surviving live set collapses onto exactly those objects' readers,
//    so the naive sweep is already dirty-set-sized and the heap is pure
//    overhead.  The WorldCup trace pipeline yields ~20–26 effective hot
//    objects at every bench scale (naive wins, measured 0.6×); dispersed
//    demand yields ~95 at 64×640 up to ~370 at paper scale (incremental
//    wins 5×–68×).  50 splits the two with ~2× margin on both sides.
static constexpr double kAutoIncrementalFraction = 4.0;
static constexpr double kAutoMinEffectiveHotObjects = 50.0;

AutoPolicyDecision explain_report_mode(const drp::Problem& problem,
                                       std::size_t agent_count,
                                       ReportMode requested) {
  AutoPolicyDecision decision;
  decision.requested = requested;
  decision.size_biased_readers =
      problem.access.size_biased_readers_per_object();
  decision.effective_hot_objects = problem.access.effective_hot_objects();
  decision.agent_count = agent_count;
  decision.incremental_fraction = kAutoIncrementalFraction;
  decision.min_effective_hot_objects = kAutoMinEffectiveHotObjects;
  decision.dirty_is_local =
      decision.size_biased_readers * kAutoIncrementalFraction <
      static_cast<double>(agent_count);
  decision.demand_is_dispersed =
      decision.effective_hot_objects >= kAutoMinEffectiveHotObjects;
  if (requested != ReportMode::Auto) {
    decision.resolved = requested;
  } else {
    decision.resolved = decision.dirty_is_local && decision.demand_is_dispersed
                            ? ReportMode::Incremental
                            : ReportMode::Naive;
  }
  return decision;
}

ReportMode resolve_report_mode(const drp::Problem& problem,
                               std::size_t agent_count, ReportMode requested) {
  if (requested != ReportMode::Auto) return requested;
  return explain_report_mode(problem, agent_count, requested).resolved;
}

namespace {

// Round-size-aware PARFOR: fork onto the shared pool only when the round
// evaluates enough agents to amortise the fork/join handshake (and the pool
// actually has workers).  Below the cutoff — 3-agent dirty sets are the
// incremental steady state — the body runs inline on the centre's thread.
void round_parfor(const AgtRamConfig& config, std::size_t count,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (config.parallel_agents && count >= config.parallel_min_agents &&
      common::ThreadPool::shared().thread_count() > 1) {
    AGTRAM_OBS_COUNT("agt_ram.parfor_forked", 1);
    common::ThreadPool::shared().parallel_for(0, count, body,
                                              /*min_grain=*/16);
  } else {
    AGTRAM_OBS_COUNT("agt_ram.parfor_inline", 1);
    body(0, count);
  }
}

// Checked invariants (replacing asserts that compiled out in Release): a
// fresh empty report can only mean the agent's candidate heap drained, and
// the centre must never allocate an infeasible candidate.  Both are cheap
// relative to a round, so they stay on in every build.
[[noreturn]] void throw_not_retired(drp::ServerId id) {
  throw std::logic_error(
      "AGT-RAM invariant violated: agent " + std::to_string(id) +
      " reported no candidate but its candidate heap is not drained");
}

void check_feasible(const drp::ReplicaPlacement& placement,
                    drp::ServerId winner, drp::ObjectIndex object) {
  if (!placement.can_replicate(winner, object)) {
    throw std::logic_error(
        "AGT-RAM invariant violated: winning candidate (server " +
        std::to_string(winner) + ", object " + std::to_string(object) +
        ") is not feasible");
  }
}

// Allocate to the winner, pay it, and record the round — common to both
// evaluation paths so the differential tests compare real shared state.
void allocate(MechanismResult& result, drp::ServerId winner,
              const Report& winning, double payment) {
  check_feasible(result.placement, winner, winning.object);
  result.placement.add_replica(winner, winning.object);
  result.agents[winner].payments += payment;
  result.agents[winner].true_value += winning.true_value;
  result.agents[winner].objects_won += 1;
  result.rounds.push_back(RoundRecord{winner, winning.object,
                                      winning.claimed_value,
                                      winning.true_value, payment});
}

// ---------------------------------------------------------------- naive
// Full sweep: every live agent re-evaluates its heap every round.  Kept as
// the differential-testing oracle for the incremental path below.
MechanismResult run_rounds_naive(const drp::Problem& problem,
                                 const AgtRamConfig& config,
                                 drp::ReplicaPlacement start,
                                 std::vector<Agent> agents) {
  const std::size_t m = problem.server_count();

  MechanismResult result{std::move(start), {}, {}};
  result.agents.resize(m);

  // Initialise LS: every participating server starts as a live agent;
  // agents whose candidate heap drains are retired (removed from LS in
  // Figure 2, line 18).  `live` holds indices into `agents`; `reports` is
  // indexed by server id.
  std::vector<std::uint32_t> live;
  live.reserve(agents.size());
  for (std::uint32_t a = 0; a < agents.size(); ++a) {
    if (!agents[a].retired()) live.push_back(a);
  }

  std::vector<Report> reports(m);
  std::size_t round = 0;
  while (!live.empty()) {
    if (config.max_rounds != 0 && round >= config.max_rounds) {
      result.drained = false;
      break;
    }
    if (config.observer) config.observer->on_round_begin(round);
    AGTRAM_OBS_ROUND(round);
    AGTRAM_OBS_COUNT("agt_ram.rounds", 1);
    AGTRAM_OBS_COUNT("agt_ram.reports_fresh", live.size());
    AGTRAM_OBS_GAUGE("polled", static_cast<std::uint64_t>(live.size()));
    AGTRAM_OBS_GAUGE("live", static_cast<std::uint64_t>(live.size()));

    // --- First PARFOR: every live agent evaluates its list and reports.
    const auto evaluate = [&](std::size_t first, std::size_t last) {
      for (std::size_t idx = first; idx < last; ++idx) {
        const std::uint32_t a = live[idx];
        reports[agents[a].id()] =
            agents[a].make_report(result.placement, config.strategy);
      }
    };
    round_parfor(config, live.size(), evaluate);

    // --- Centre: collect reports, drop retired agents, pick the dominant
    // valuation (ties broken towards the lowest server id so serial and
    // parallel runs are byte-identical).
    const std::size_t reporting = live.size();
    std::vector<double> round_values;
    std::vector<std::uint32_t> round_agents;
    round_values.reserve(live.size());
    round_agents.reserve(live.size());
    std::vector<std::uint32_t> next_live;
    next_live.reserve(live.size());
    for (const std::uint32_t a : live) {
      const drp::ServerId i = agents[a].id();
      result.candidate_evaluations += reports[i].evaluations;
      ++result.reports_computed;
      if (config.observer) {
        config.observer->on_report(i, reports[i], /*fresh=*/true);
      }
      if (reports[i].has_candidate) {
        round_values.push_back(reports[i].claimed_value);
        round_agents.push_back(i);
        next_live.push_back(a);
      } else if (!agents[a].retired()) {
        // No candidate this round can only mean the heap drained.
        throw_not_retired(i);
      }
    }
    if (round_values.empty()) break;

    std::size_t winner_slot = 0;
    for (std::size_t s = 1; s < round_values.size(); ++s) {
      if (round_values[s] > round_values[winner_slot]) winner_slot = s;
    }
    const std::uint32_t winner = round_agents[winner_slot];
    const Report& winning = reports[winner];

    const double payment =
        compute_payment(config.payment_rule, round_values, winner_slot);

    allocate(result, winner, winning, payment);
    if (config.observer) {
      config.observer->on_allocation(winner, winning.object, payment);
      config.observer->on_broadcast(winner, winning.object, reporting);
    }
    AGTRAM_OBS_GAUGE("winner", static_cast<std::uint64_t>(winner));
    AGTRAM_OBS_GAUGE("object", static_cast<std::uint64_t>(winning.object));
    AGTRAM_OBS_GAUGE("claimed_value", winning.claimed_value);
    AGTRAM_OBS_GAUGE("payment", payment);

    live = std::move(next_live);
    ++round;
  }
  return result;
}

// ----------------------------------------------------------- incremental
// Dirty-set evaluation: the centre caches every agent's standing report,
// re-polls only readers(k*) ∪ {winner} after allocating (winner, k*), and
// selects the winner from a lazy max-heap over the cached claimed values.
// Heap entries are invalidated by a per-agent epoch that bumps on every
// fresh report — values only ever decrease, so stale (higher) entries
// surface first and are discarded on sight.

struct HeapEntry {
  double value;
  drp::ServerId server;
  std::uint32_t epoch;
};

// Max-heap: higher value wins; ties towards the lowest server id, matching
// the naive linear scan's strict-greater sweep over ascending ids.
struct HeapCompare {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
    if (a.value != b.value) return a.value < b.value;
    return a.server > b.server;
  }
};

// Lazy max-heap over the standing claimed values.  Stale entries (epoch
// mismatch) are skimmed off on pop; when they outnumber the ~one-valid-
// entry-per-live-agent working set, the heap is compacted in place, so its
// size stays O(live) instead of growing by |dirty| every round.
class LazyBidHeap {
 public:
  void push(HeapEntry entry) {
    AGTRAM_OBS_COUNT("agt_ram.heap_pushes", 1);
    entries_.push_back(entry);
    std::push_heap(entries_.begin(), entries_.end(), HeapCompare{});
  }

  /// Drops stale entries once they dominate.  At most `live_count` entries
  /// are epoch-valid (one standing report per live agent), so this keeps
  /// the heap O(live); the caller invokes it once per round, and the O(n)
  /// rebuild amortises against the pushes that grew the heap.
  void maybe_compact(const std::vector<std::uint32_t>& epoch,
                     std::size_t live_count) {
    if (entries_.size() <= 2 * live_count + 64) return;
    AGTRAM_OBS_COUNT("agt_ram.heap_compactions", 1);
    std::erase_if(entries_, [&](const HeapEntry& e) {
      return e.epoch != epoch[e.server];
    });
    std::make_heap(entries_.begin(), entries_.end(), HeapCompare{});
  }

  /// Pops the best epoch-valid entry; false once none remain.
  bool pop_best(const std::vector<std::uint32_t>& epoch, HeapEntry& out) {
    while (!entries_.empty()) {
      std::pop_heap(entries_.begin(), entries_.end(), HeapCompare{});
      const HeapEntry top = entries_.back();
      entries_.pop_back();
      if (top.epoch != epoch[top.server]) {
        AGTRAM_OBS_COUNT("agt_ram.heap_stale_skipped", 1);
        continue;
      }
      AGTRAM_OBS_COUNT("agt_ram.heap_pops", 1);
      out = top;
      return true;
    }
    return false;
  }

  /// Best valid value without consuming it (0 when the heap is dry).
  double peek_best(const std::vector<std::uint32_t>& epoch) {
    while (!entries_.empty()) {
      if (entries_.front().epoch == epoch[entries_.front().server]) {
        return entries_.front().value;
      }
      AGTRAM_OBS_COUNT("agt_ram.heap_stale_skipped", 1);
      std::pop_heap(entries_.begin(), entries_.end(), HeapCompare{});
      entries_.pop_back();
    }
    return 0.0;
  }

 private:
  std::vector<HeapEntry> entries_;
};

MechanismResult run_rounds_incremental(const drp::Problem& problem,
                                       const AgtRamConfig& config,
                                       drp::ReplicaPlacement start,
                                       std::vector<Agent> agents) {
  const std::size_t m = problem.server_count();
  constexpr std::uint32_t kNoAgent = static_cast<std::uint32_t>(-1);

  MechanismResult result{std::move(start), {}, {}};
  result.agents.resize(m);

  // Participants may be a subset of the servers: map id -> agent index.
  std::vector<std::uint32_t> agent_of(m, kNoAgent);
  for (std::uint32_t a = 0; a < agents.size(); ++a) {
    agent_of[agents[a].id()] = a;
  }

  std::vector<Report> reports(m);        // standing reports, by server id
  std::vector<std::uint32_t> epoch(m, 0);
  std::vector<char> live_flag(m, 0);

  // `live` (ascending ids — agents are constructed sorted) backs the
  // observer contract: the observer sees every live agent's standing report
  // each round, so audits remain whole-profile even though only the dirty
  // set is recomputed.  The first round polls everyone.
  std::vector<drp::ServerId> live;
  live.reserve(agents.size());
  for (const Agent& agent : agents) {
    if (agent.retired()) continue;
    live.push_back(agent.id());
    live_flag[agent.id()] = 1;
  }
  std::vector<drp::ServerId> dirty = live;

  LazyBidHeap heap;

  std::size_t round = 0;
  // After every allocation the winner is dirty again (it reads k*), so the
  // dirty set is empty only once the mechanism has terminated.
  while (!dirty.empty()) {
    if (config.max_rounds != 0 && round >= config.max_rounds) {
      result.drained = false;
      break;
    }
    if (config.observer) config.observer->on_round_begin(round);
    AGTRAM_OBS_ROUND(round);
    AGTRAM_OBS_COUNT("agt_ram.rounds", 1);
    AGTRAM_OBS_COUNT("agt_ram.reports_fresh", dirty.size());
    AGTRAM_OBS_COUNT("agt_ram.reports_cached", live.size() - dirty.size());
    AGTRAM_OBS_GAUGE("dirty", static_cast<std::uint64_t>(dirty.size()));
    AGTRAM_OBS_GAUGE("live", static_cast<std::uint64_t>(live.size()));

    // --- First PARFOR, restricted to the dirty set.
    const auto evaluate = [&](std::size_t first, std::size_t last) {
      for (std::size_t idx = first; idx < last; ++idx) {
        const drp::ServerId i = dirty[idx];
        reports[i] = agents[agent_of[i]].make_report(result.placement,
                                                     config.strategy);
      }
    };
    round_parfor(config, dirty.size(), evaluate);

    // --- Centre: fold the fresh reports into the standing cache.
    bool retired_any = false;
    for (const drp::ServerId i : dirty) {
      const Report& r = reports[i];
      result.candidate_evaluations += r.evaluations;
      ++result.reports_computed;
      ++epoch[i];
      if (r.has_candidate) {
        heap.push(HeapEntry{r.claimed_value, i, epoch[i]});
      } else {
        if (!agents[agent_of[i]].retired()) throw_not_retired(i);
        live_flag[i] = 0;
        retired_any = true;
      }
    }

    if (config.observer) {
      // Includes agents retiring this round: their empty fresh report is the
      // "nothing for me" wire message that removes them from LS.
      std::size_t d = 0;
      for (const drp::ServerId i : live) {
        while (d < dirty.size() && dirty[d] < i) ++d;
        const bool fresh = d < dirty.size() && dirty[d] == i;
        config.observer->on_report(i, reports[i], fresh);
      }
    }
    if (retired_any) {
      live.erase(std::remove_if(
                     live.begin(), live.end(),
                     [&](drp::ServerId i) { return live_flag[i] == 0; }),
                 live.end());
    }
    heap.maybe_compact(epoch, live.size());

    // --- Winner: the best epoch-valid entry is the argmax over the
    // standing reports (stale, necessarily higher, entries are skimmed off
    // on the way down).
    HeapEntry winner_entry{0.0, 0, 0};
    if (!heap.pop_best(epoch, winner_entry)) break;

    // Second-highest standing value (the Vickrey charge): peek the next
    // valid entry without consuming it.  The epoch guarantees at most one
    // valid entry per agent, so this is never the winner's own report.
    const double second = heap.peek_best(epoch);

    const drp::ServerId winner = winner_entry.server;
    const Report& winning = reports[winner];
    const double standing[2] = {winning.claimed_value, second};
    const double payment = compute_payment(
        config.payment_rule, std::span<const double>(standing, 2), 0);

    allocate(result, winner, winning, payment);

    // --- Next round's dirty set: the allocation of k* can only touch the
    // valuations of servers that read k* (the winner is one of them — a
    // candidate requires read demand — and its capacity shrank too).
    dirty.clear();
    for (const drp::ServerId i : problem.access.readers(winning.object)) {
      if (live_flag[i] != 0) dirty.push_back(i);
    }
    if (config.observer) {
      config.observer->on_allocation(winner, winning.object, payment);
      // Targeted multicast: only the dirty set needs to hear about (w, k*);
      // the centre answers for everyone else out of its report cache.
      config.observer->on_broadcast(winner, winning.object, dirty.size());
    }
    AGTRAM_OBS_GAUGE("winner", static_cast<std::uint64_t>(winner));
    AGTRAM_OBS_GAUGE("object", static_cast<std::uint64_t>(winning.object));
    AGTRAM_OBS_GAUGE("claimed_value", winning.claimed_value);
    AGTRAM_OBS_GAUGE("payment", payment);
    ++round;
  }
  return result;
}

MechanismResult run_rounds(const drp::Problem& problem,
                           const AgtRamConfig& config,
                           drp::ReplicaPlacement start,
                           std::vector<Agent> agents) {
  AGTRAM_OBS_SPAN("agt_ram.run");
  const ReportMode mode =
      resolve_report_mode(problem, agents.size(), config.report_mode);
  MechanismResult result =
      mode == ReportMode::Incremental
          ? run_rounds_incremental(problem, config, std::move(start),
                                   std::move(agents))
          : run_rounds_naive(problem, config, std::move(start),
                             std::move(agents));
  result.resolved_mode = mode;
  return result;
}

}  // namespace

MechanismResult run_agt_ram(const drp::Problem& problem,
                            const AgtRamConfig& config) {
  std::vector<Agent> agents;
  agents.reserve(problem.server_count());
  for (drp::ServerId i = 0; i < problem.server_count(); ++i) {
    agents.emplace_back(problem, i);
  }
  return run_rounds(problem, config, drp::ReplicaPlacement(problem),
                    std::move(agents));
}

MechanismResult run_agt_ram_from(
    const drp::Problem& problem, const AgtRamConfig& config,
    drp::ReplicaPlacement start,
    const std::vector<drp::ServerId>* participants) {
  std::vector<Agent> agents;
  if (participants) {
    std::vector<drp::ServerId> sorted = *participants;
    std::sort(sorted.begin(), sorted.end());
    agents.reserve(sorted.size());
    for (drp::ServerId i : sorted) agents.emplace_back(start, i);
  } else {
    agents.reserve(problem.server_count());
    for (drp::ServerId i = 0; i < problem.server_count(); ++i) {
      agents.emplace_back(start, i);
    }
  }
  return run_rounds(problem, config, std::move(start), std::move(agents));
}

}  // namespace agtram::core
