#include "core/agt_ram.hpp"

#include <algorithm>
#include <cassert>

#include "common/thread_pool.hpp"

namespace agtram::core {

double MechanismResult::total_payments() const {
  double total = 0.0;
  for (const AgentOutcome& a : agents) total += a.payments;
  return total;
}

namespace {

MechanismResult run_rounds(const drp::Problem& problem,
                           const AgtRamConfig& config,
                           drp::ReplicaPlacement start,
                           std::vector<Agent> agents) {
  const std::size_t m = problem.server_count();

  MechanismResult result{std::move(start), {}, {}};
  result.agents.resize(m);

  // Initialise LS: every participating server starts as a live agent;
  // agents whose candidate heap drains are retired (removed from LS in
  // Figure 2, line 18).  `live` holds indices into `agents`; `reports` is
  // indexed by server id.
  std::vector<std::uint32_t> live;
  live.reserve(agents.size());
  for (std::uint32_t a = 0; a < agents.size(); ++a) {
    if (!agents[a].retired()) live.push_back(a);
  }

  std::vector<Report> reports(m);
  std::size_t round = 0;
  while (!live.empty()) {
    if (config.max_rounds != 0 && round >= config.max_rounds) break;
    if (config.observer) config.observer->on_round_begin(round);

    // --- First PARFOR: every live agent evaluates its list and reports.
    const auto evaluate = [&](std::size_t first, std::size_t last) {
      for (std::size_t idx = first; idx < last; ++idx) {
        const std::uint32_t a = live[idx];
        reports[agents[a].id()] =
            agents[a].make_report(result.placement, config.strategy);
      }
    };
    if (config.parallel_agents) {
      common::ThreadPool::shared().parallel_for(0, live.size(), evaluate,
                                                /*min_grain=*/16);
    } else {
      evaluate(0, live.size());
    }

    // --- Centre: collect reports, drop retired agents, pick the dominant
    // valuation (ties broken towards the lowest server id so serial and
    // parallel runs are byte-identical).
    std::vector<double> round_values;
    std::vector<std::uint32_t> round_agents;
    round_values.reserve(live.size());
    round_agents.reserve(live.size());
    std::vector<std::uint32_t> next_live;
    next_live.reserve(live.size());
    for (const std::uint32_t a : live) {
      const drp::ServerId i = agents[a].id();
      if (config.observer) config.observer->on_report(i, reports[i]);
      if (reports[i].has_candidate) {
        round_values.push_back(reports[i].claimed_value);
        round_agents.push_back(i);
        next_live.push_back(a);
      } else {
        // No candidate this round can only mean the heap drained.
        assert(agents[a].retired());
      }
    }
    if (round_values.empty()) break;

    std::size_t winner_slot = 0;
    for (std::size_t s = 1; s < round_values.size(); ++s) {
      if (round_values[s] > round_values[winner_slot]) winner_slot = s;
    }
    const std::uint32_t winner = round_agents[winner_slot];
    const Report& winning = reports[winner];

    const double payment =
        compute_payment(config.payment_rule, round_values, winner_slot);

    // --- Allocate, pay, broadcast.
    assert(result.placement.can_replicate(winner, winning.object));
    result.placement.add_replica(winner, winning.object);
    result.agents[winner].payments += payment;
    result.agents[winner].true_value += winning.true_value;
    result.agents[winner].objects_won += 1;
    result.rounds.push_back(RoundRecord{winner, winning.object,
                                        winning.claimed_value,
                                        winning.true_value, payment});
    if (config.observer) {
      config.observer->on_allocation(winner, winning.object, payment);
      config.observer->on_broadcast(winner, winning.object);
    }

    live = std::move(next_live);
    ++round;
  }
  return result;
}

}  // namespace

MechanismResult run_agt_ram(const drp::Problem& problem,
                            const AgtRamConfig& config) {
  std::vector<Agent> agents;
  agents.reserve(problem.server_count());
  for (drp::ServerId i = 0; i < problem.server_count(); ++i) {
    agents.emplace_back(problem, i);
  }
  return run_rounds(problem, config, drp::ReplicaPlacement(problem),
                    std::move(agents));
}

MechanismResult run_agt_ram_from(
    const drp::Problem& problem, const AgtRamConfig& config,
    drp::ReplicaPlacement start,
    const std::vector<drp::ServerId>* participants) {
  std::vector<Agent> agents;
  if (participants) {
    std::vector<drp::ServerId> sorted = *participants;
    std::sort(sorted.begin(), sorted.end());
    agents.reserve(sorted.size());
    for (drp::ServerId i : sorted) agents.emplace_back(start, i);
  } else {
    agents.reserve(problem.server_count());
    for (drp::ServerId i = 0; i < problem.server_count(); ++i) {
      agents.emplace_back(start, i);
    }
  }
  return run_rounds(problem, config, std::move(start), std::move(agents));
}

}  // namespace agtram::core
