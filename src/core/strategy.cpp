#include "core/strategy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace agtram::core {

drp::ServerId CollusionGroup::leader() const {
  if (members.empty()) {
    throw std::invalid_argument("collusion group needs at least one member");
  }
  return *std::min_element(members.begin(), members.end());
}

double StrategyProfile::multiplier_for(drp::ServerId who) const {
  double multiplier = 1.0;
  for (const Deviation& d : deviations) {
    if (d.agent == who) multiplier = d.multiplier();
  }
  for (const CollusionGroup& group : collusion_groups) {
    if (group.members.empty()) continue;
    const drp::ServerId leader = group.leader();
    for (const drp::ServerId member : group.members) {
      if (member == who && member != leader) multiplier = 0.0;
    }
  }
  return multiplier;
}

std::vector<drp::ServerId> StrategyProfile::deviating_agents() const {
  std::vector<drp::ServerId> agents;
  for (const Deviation& d : deviations) agents.push_back(d.agent);
  for (const CollusionGroup& group : collusion_groups) {
    for (const drp::ServerId member : group.members) agents.push_back(member);
  }
  std::sort(agents.begin(), agents.end());
  agents.erase(std::unique(agents.begin(), agents.end()), agents.end());
  std::erase_if(agents,
                [this](drp::ServerId who) { return !deviates(who); });
  return agents;
}

ReportStrategy StrategyProfile::compile(std::size_t server_count) const {
  if (empty()) return nullptr;
  std::vector<double> table(server_count, 1.0);
  bool identity = true;
  for (drp::ServerId who = 0; who < table.size(); ++who) {
    table[who] = multiplier_for(who);
    identity = identity && table[who] == 1.0;
  }
  if (identity) return nullptr;
  return [table = std::move(table)](drp::ServerId who, double value) {
    return who < table.size() ? value * table[who] : value;
  };
}

drp::Problem distorted_problem(const drp::Problem& problem,
                               const StrategyProfile& profile) {
  const std::size_t servers = problem.server_count();
  const std::size_t objects = problem.object_count();
  std::vector<double> multiplier(servers, 1.0);
  for (drp::ServerId who = 0; who < servers; ++who) {
    multiplier[who] = std::max(0.0, profile.multiplier_for(who));
  }

  std::vector<std::vector<drp::Access>> rows(objects);
  for (drp::ObjectIndex k = 0; k < objects; ++k) {
    const auto cells = problem.access.accessors(k);
    rows[k].reserve(cells.size());
    for (const drp::Access& cell : cells) {
      const double scaled =
          std::round(static_cast<double>(cell.reads) * multiplier[cell.server]);
      const auto reads = static_cast<std::uint64_t>(
          std::min(scaled, static_cast<double>(
                               std::numeric_limits<std::int64_t>::max())));
      rows[k].push_back(drp::Access{cell.server, reads, cell.writes});
    }
  }

  drp::Problem distorted;
  distorted.distances = problem.distances;
  distorted.object_units = problem.object_units;
  distorted.primary = problem.primary;
  distorted.capacity = problem.capacity;
  distorted.access =
      drp::AccessMatrix::build(servers, objects, std::move(rows));
  return distorted;
}

}  // namespace agtram::core
