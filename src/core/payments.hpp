// Payment rules (Axiom 5).  AGT-RAM's rule is second-price: the winner of a
// round is paid the second-best reported valuation across all agents, which
// decouples the payment from the winner's own report and yields Theorem 5's
// truthfulness.  First-price and zero payments exist for the ablation bench
// that demonstrates *why* the paper's choice matters.
#pragma once

#include <span>
#include <string>

namespace agtram::core {

enum class PaymentRule {
  SecondPrice,  ///< the paper's rule: pay the overall second-best valuation
  FirstPrice,   ///< pay the winner its own report (manipulable)
  None,         ///< no payments (agents have no incentive to participate)
};

PaymentRule parse_payment_rule(const std::string& name);
std::string to_string(PaymentRule rule);

/// Computes the winner's payment for one round given all (non-negative)
/// reports of that round.  `winner_index` indexes into `reports`.
/// SecondPrice with a single bidder pays 0 (no competition).
double compute_payment(PaymentRule rule, std::span<const double> reports,
                       std::size_t winner_index);

}  // namespace agtram::core
