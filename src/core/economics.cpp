#include "core/economics.hpp"

#include <algorithm>
#include <vector>

namespace agtram::core {

EconomicsReport economics_report(const MechanismResult& result) {
  EconomicsReport report;
  report.rounds = result.rounds.size();

  double dominance_sum = 0.0;
  std::size_t dominance_rounds = 0;
  for (const RoundRecord& round : result.rounds) {
    report.welfare += round.true_value;
    report.charges += round.payment;
    if (round.payment > 0.0) {
      dominance_sum += round.claimed_value / round.payment;
      ++dominance_rounds;
    }
  }
  report.frugality_ratio =
      report.welfare > 0.0 ? report.charges / report.welfare : 0.0;
  report.mean_dominance =
      dominance_rounds ? dominance_sum / static_cast<double>(dominance_rounds)
                       : 0.0;

  std::vector<double> utilities;
  utilities.reserve(result.agents.size());
  for (const AgentOutcome& agent : result.agents) {
    utilities.push_back(agent.utility());
    report.total_surplus += agent.utility();
    if (agent.objects_won > 0) ++report.winning_agents;
  }

  // Gini over non-negative utilities (truthful second-price guarantees
  // non-negativity; clamp for strategic runs).
  for (double& u : utilities) u = std::max(0.0, u);
  std::sort(utilities.begin(), utilities.end());
  double cum_weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < utilities.size(); ++i) {
    cum_weighted += static_cast<double>(i + 1) * utilities[i];
    total += utilities[i];
  }
  if (total > 0.0 && utilities.size() > 1) {
    const double n = static_cast<double>(utilities.size());
    report.utility_gini = (2.0 * cum_weighted) / (n * total) - (n + 1.0) / n;
  }
  return report;
}

}  // namespace agtram::core
