// Adaptive replication and migration — "AGT-RAM is a protocol for automatic
// replication and migration of objects in response to demand changes"
// (paper Section 7 / abstract).
//
// When demand shifts, the standing replica scheme contains two kinds of
// waste: replicas whose holders no longer read them enough to cover the
// update-broadcast subscription (eviction candidates), and unmet demand
// hotspots (allocation candidates).  The protocol alternates the two moves
// until a fixed point:
//
//   1. eviction sweep — every agent re-prices each replica it holds
//      (retention value = reads saved against the next-nearest replica,
//      minus the broadcast subscription) and drops non-positive holdings;
//   2. allocation phase — a warm-started AGT-RAM run places replicas for
//      the new demand (core::run_agt_ram_from).
//
// Evicting a replica can only *raise* other holders' retention values (the
// remaining copies serve more reads) and allocation can only lower
// non-holders' valuations, so the alternation converges; a small iteration
// cap guards pathological oscillation through capacity coupling.
#pragma once

#include <cstdint>

#include "core/agt_ram.hpp"

namespace agtram::core {

struct AdaptiveConfig {
  PaymentRule payment_rule = PaymentRule::SecondPrice;
  /// Maximum evict/allocate alternations.
  std::size_t max_iterations = 8;
  /// Forwarded to every re-seeded allocation phase (AgtRamConfig); the
  /// warm-started runs profit from dirty-set evaluation exactly like cold
  /// ones.  Set to ReportMode::Naive for differential testing against the
  /// naive sweep.
  ReportMode report_mode = ReportMode::Incremental;
};

struct MigrationReport {
  drp::ReplicaPlacement placement;
  std::size_t evicted = 0;          ///< replicas dropped across all sweeps
  std::size_t added = 0;            ///< replicas placed across all phases
  std::uint64_t units_evicted = 0;  ///< storage churn, data units
  std::uint64_t units_added = 0;
  std::size_t iterations = 0;
  /// Replicas carried over unchanged from the old scheme.
  std::size_t retained = 0;
};

/// Migrates `old_placement` (built against a previous demand snapshot) onto
/// `new_problem`.  The instances must agree on dimensions, object sizes and
/// primaries (the usual demand-only change); throws otherwise.  Replicas
/// that no longer fit (changed capacities) are dropped during the carry-over.
MigrationReport adapt_placement(const drp::Problem& new_problem,
                                const drp::ReplicaPlacement& old_placement,
                                const AdaptiveConfig& config = {});

/// One eviction sweep on `placement`: drops every non-primary replica whose
/// retention value is <= 0; returns the number evicted.  Exposed for tests
/// and for callers that want eviction without re-allocation.
std::size_t evict_unprofitable(drp::ReplicaPlacement& placement);

/// Retention value of an existing replica (i, k): what the holder would
/// lose by dropping it — reads re-routed to the next-nearest replica minus
/// the broadcast subscription it sheds.  Precondition: i is a non-primary
/// replicator of k.
double retention_value(const drp::ReplicaPlacement& placement,
                       drp::ServerId i, drp::ObjectIndex k);

}  // namespace agtram::core
