// Regional (hierarchical) AGT-RAM — the paper's future-work extension
// (Section 7): "the current system model would be broadened to incorporate
// regional or hierarchical mechanisms.  This would enable the system to be
// less vulnerable to the failures of a single mechanism."
//
// Servers are partitioned into latency-coherent regions (k-medoids over the
// metric closure); each region runs its own AGT-RAM round concurrently,
// with its medoid hosting the regional decision body.  The global scheme
// is shared — regional broadcasts keep the NN tables coherent — so the
// placement converges to the same no-positive-candidate fixed point as the
// flat mechanism, while:
//
//   * each epoch performs up to R allocations instead of 1 (R-fold fewer
//     coordination round-trips),
//   * each regional centre handles only its members' reports,
//   * a failed region stalls only its own members' allocations (graceful
//     degradation instead of a dead system).
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/agt_ram.hpp"
#include "net/clustering.hpp"

namespace agtram::core {

/// How an epoch's per-region rounds execute.  Both orders produce
/// byte-identical results: every region polls against the epoch-start
/// placement snapshot (regions own their agents/heaps, the shared placement
/// is read-only during the poll phase), and the winning allocations commit
/// serially in ascending region id afterwards.
enum class RegionalExecution : std::uint8_t {
  Serial,   ///< poll regions one after another (the differential oracle)
  Sharded,  ///< poll all live regions concurrently on the thread pool
};

struct RegionalConfig {
  std::uint32_t regions = 4;
  PaymentRule payment_rule = PaymentRule::SecondPrice;
  /// Region indices whose mechanism is down (failure injection); their
  /// agents never allocate.
  std::vector<std::uint32_t> failed_regions;
  /// Clustering seed (medoid initialisation).
  std::uint64_t seed = 1;
  /// Safety valve; 0 = run to quiescence.
  std::size_t max_epochs = 0;
  RegionalExecution execution = RegionalExecution::Serial;
  /// PARFOR over a region's live agents inside the poll phase.  Under
  /// Sharded the outer region jobs occupy the pool, so the inner call takes
  /// the pool's inline fallback — same results either way.
  bool parallel_agents = false;
  std::size_t parallel_min_agents = 256;
  /// Pool for Sharded execution; nullptr = common::ThreadPool::shared().
  common::ThreadPool* pool = nullptr;
};

struct RegionOutcome {
  net::NodeId centre = 0;          ///< the region's medoid / decision body
  std::uint32_t member_count = 0;
  bool failed = false;
  std::size_t replicas_placed = 0;
  double charges = 0.0;            ///< second-price clearing volume
  /// Reports the regional centre polled from its members over the run.
  std::uint64_t reports_polled = 0;
  /// Modelled control-plane traffic through this centre: report uplinks,
  /// allocation grants, and allocation broadcasts to the live members
  /// (wire sizes match runtime::WireFormat's defaults).
  std::uint64_t wire_bytes = 0;
};

struct RegionalResult {
  drp::ReplicaPlacement placement;
  net::Clustering clustering;
  std::vector<RegionOutcome> regions;
  std::size_t epochs = 0;

  std::size_t replicas_placed() const;
};

RegionalResult run_regional(const drp::Problem& problem,
                            const RegionalConfig& config = {});

/// The cooperative variant of the hierarchical game ("in each level either
/// a cooperative or non-cooperative game could be played", Section 7):
/// within a region the members pool their information and jointly pick the
/// move that maximises the *region's* welfare — the summed cost reduction
/// of its members — while regions still act selfishly towards each other.
/// Replicas may land on any member (including pure hub members that read
/// nothing themselves), which is exactly what the non-cooperative game
/// cannot do; no payments are needed inside a coalition, so charges are 0.
RegionalResult run_regional_cooperative(const drp::Problem& problem,
                                        const RegionalConfig& config = {});

/// Two-level hierarchical mechanism: each round every live region holds a
/// regional round to nominate its *champion* report, and the top-level
/// centre picks the global argmax among the R champions — one replica per
/// round, exactly like the flat mechanism, but the top centre compares R
/// scalars instead of M (the regional centres absorb the fan-in).
///
/// Allocation-equivalent to run_agt_ram (the argmax of regional argmaxes is
/// the global argmax; ties break towards the lowest server id at both
/// levels) — tested.  Payments clear at the top level against the
/// second-best champion, which is never more than the flat second price
/// (the flat runner-up may hide inside the winner's own region), so the
/// hierarchy is weakly cheaper for the winners.
struct HierarchicalResult {
  drp::ReplicaPlacement placement;
  net::Clustering clustering;
  std::vector<RoundRecord> rounds;
  double total_charges = 0.0;
  /// Scalars the top-level centre compared over the whole run (<= R per
  /// round; the flat mechanism's centre compares up to M per round).
  std::uint64_t top_level_reports = 0;
};

HierarchicalResult run_hierarchical(const drp::Problem& problem,
                                    const RegionalConfig& config = {});

}  // namespace agtram::core
