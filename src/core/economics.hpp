// Mechanism economics: the quantitative side of Axiom 5.
//
// The paper justifies its payment choice qualitatively (over/under/random
// projection all fail); this module measures the resulting transfers on a
// concrete run: welfare created, clearing volume, the frugality ratio
// (what fraction of the created welfare the clearing prices absorb — high
// frugality means the mechanism overpays for competition, the concern of
// the cited Saurabh & Parkes manuscript), and the distribution of surplus
// across agents.
#pragma once

#include <cstddef>

#include "core/agt_ram.hpp"

namespace agtram::core {

struct EconomicsReport {
  /// Sum of winners' true valuations — the utilitarian welfare realised.
  double welfare = 0.0;
  /// Sum of second-price charges cleared through the centre.
  double charges = 0.0;
  /// charges / welfare in [0, 1] under truthful second-price play.
  double frugality_ratio = 0.0;
  /// Sum of agent utilities (welfare - charges).
  double total_surplus = 0.0;
  /// Gini coefficient of the per-agent utilities (0 = equal split).
  double utility_gini = 0.0;
  std::size_t winning_agents = 0;  ///< agents that won at least one round
  std::size_t rounds = 0;
  /// Mean competition: winner's report over the charge (>= 1); large means
  /// the winner dominated its round.
  double mean_dominance = 0.0;
};

EconomicsReport economics_report(const MechanismResult& result);

}  // namespace agtram::core
