// Axiom audits: executable checks of the game-theoretic properties the
// paper proves on paper (Lemma 1, Theorems 3 and 5).  Tests and the payment
// ablation bench run these on concrete instances.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/agt_ram.hpp"
#include "core/strategy.hpp"
#include "drp/problem.hpp"

namespace agtram::core {

/// Per-round axiom verification (Axioms 4-6): the chosen allocation is the
/// argmax of the reports (utilitarian), the payment matches the rule
/// (motivation), and the winner's allocation was feasible.  Install as
/// AgtRamConfig::observer; violations throw std::logic_error.
class RoundAuditor : public MechanismObserver {
 public:
  explicit RoundAuditor(PaymentRule rule) : rule_(rule) {}

  void on_round_begin(std::size_t round) override;
  /// Audits the full standing-report profile: under the incremental
  /// protocol cached (non-fresh) reports are part of the round's argmax and
  /// payment basis exactly like fresh ones.
  void on_report(drp::ServerId agent, const Report& report,
                 bool fresh) override;
  void on_allocation(drp::ServerId winner, drp::ObjectIndex object,
                     double payment) override;

  std::size_t rounds_audited() const noexcept { return rounds_; }

 private:
  PaymentRule rule_;
  std::vector<double> round_values_;
  std::size_t rounds_ = 0;
};

/// One-shot dominance audit (the exact property behind Lemma 1 / Theorem 5;
/// both are proved for a single allocation decision).  Takes the first
/// round's report profile, and for every agent and every distortion factor
/// compares the agent's round utility (win: value - payment; lose: 0) when
/// truthful vs. when scaling its claim, with all other reports held fixed.
struct OneShotTrial {
  drp::ServerId agent;
  double distortion;
  double truthful_utility;
  double deviant_utility;
  double margin() const noexcept { return truthful_utility - deviant_utility; }
};

/// Under PaymentRule::SecondPrice every margin is >= 0 (exact dominance);
/// under FirstPrice under-projection produces negative margins.
std::vector<OneShotTrial> audit_one_shot_truthfulness(
    const drp::Problem& problem, PaymentRule rule,
    const std::vector<double>& distortions);

/// Result of one *full-game* truthfulness trial: the utility an agent
/// achieved when truthful vs. when deviating with some distortion factor in
/// every round.  The sequential game is not dominance-solvable in general
/// (the paper's proofs are one-shot), so these margins are an empirical
/// measurement consumed by the payment-rule ablation bench, not an exact
/// invariant.
struct TruthfulnessTrial {
  drp::ServerId agent;
  double distortion;        ///< multiplicative misreport factor applied
  double truthful_utility;
  double deviant_utility;
  /// Dominance margin: >= 0 means truth-telling was (weakly) better.
  double margin() const noexcept { return truthful_utility - deviant_utility; }
};

/// Empirically checks Axiom 3 / Theorem 5: runs the mechanism with agent
/// `agent` truthful, then re-runs it with the agent scaling every report by
/// each factor in `distortions` (others stay truthful), comparing utilities.
/// With PaymentRule::SecondPrice every margin should be >= -epsilon.
std::vector<TruthfulnessTrial> audit_truthfulness(
    const drp::Problem& problem, PaymentRule rule, drp::ServerId agent,
    const std::vector<double>& distortions);

/// Per-round dominance auditor for *strategic* runs (the adversarial side
/// of Lemma 1 / Theorem 5).  Installed as the observer of a mechanism run in
/// which the `watched` agents misreport, it records every round's standing
/// report profile and, at each allocation, checks the exact one-shot
/// invariant: with all other reports held fixed, the watched agent's round
/// utility had it bid its true valuation is >= the round utility its actual
/// (distorted) bid realised.  Under PaymentRule::SecondPrice this holds in
/// every round of every run — a violation means the mechanism itself is
/// broken; under FirstPrice, deflation legitimately produces violations.
class DominanceAuditor : public MechanismObserver {
 public:
  DominanceAuditor(PaymentRule rule, std::vector<drp::ServerId> watched);

  void on_round_begin(std::size_t round) override;
  void on_report(drp::ServerId agent, const Report& report,
                 bool fresh) override;
  void on_allocation(drp::ServerId winner, drp::ObjectIndex object,
                     double payment) override;

  /// (round, watched agent) pairs actually checked (agents with no standing
  /// candidate in a round are skipped: they cannot bid at all).
  std::size_t checks() const noexcept { return checks_; }
  std::size_t rounds_audited() const noexcept { return rounds_; }
  std::size_t violations() const noexcept { return violations_; }
  /// Smallest (truthful - realized) round margin seen; >= 0 when dominance
  /// held everywhere, +inf when nothing was checked.
  double min_round_margin() const noexcept { return min_margin_; }

 private:
  struct Standing {
    drp::ServerId agent;
    double claimed;
    double true_value;
  };

  PaymentRule rule_;
  std::vector<drp::ServerId> watched_;
  std::vector<Standing> profile_;
  std::size_t checks_ = 0;
  std::size_t rounds_ = 0;
  std::size_t violations_ = 0;
  double min_margin_ = std::numeric_limits<double>::infinity();
};

/// One swept deviation: the agent's full-game utilities truthful vs deviant
/// plus the per-round dominance evidence from the deviant run.  The
/// full-game margin is an empirical measurement (the sequential game is not
/// dominance-solvable in general; see TruthfulnessTrial); the round
/// violations are the exact invariant and must be 0 under SecondPrice.
struct StrategicTrial {
  drp::ServerId agent = 0;
  DeviationKind kind = DeviationKind::Truthful;
  double factor = 1.0;
  double truthful_utility = 0.0;
  double deviant_utility = 0.0;
  std::size_t rounds_checked = 0;
  std::size_t round_violations = 0;
  double min_round_margin = 0.0;
  double margin() const noexcept { return truthful_utility - deviant_utility; }
};

/// The bidding-ring case: members (except the leader) zero-bid.  The ring
/// depresses the clearing prices — collusive_revenue <= truthful_revenue —
/// and the per-round invariant still holds for every suppressed member (no
/// round exists where the zero bid beat what truth would have realised in
/// that round).  `reversion` reports each non-leader member's full-game
/// utility when it unilaterally reverts to truth vs staying suppressed —
/// empirical data, like all full-game margins (see StrategicAuditReport).
struct CollusionAudit {
  std::vector<drp::ServerId> members;
  double truthful_revenue = 0.0;   ///< total payments, all agents truthful
  double collusive_revenue = 0.0;  ///< total payments under the ring
  std::size_t round_violations = 0;
  /// Per non-leader member: utility(unilateral revert) - utility(in ring).
  std::vector<StrategicTrial> reversion;
};

struct StrategicAuditConfig {
  PaymentRule payment_rule = PaymentRule::SecondPrice;
  ReportMode report_mode = ReportMode::Auto;
  /// Inflation sweep (> 1) and deflation sweep (< 1; 0 entries become
  /// DeviationKind::Zero, i.e. bid suppression).
  std::vector<double> inflate_factors = {1.25, 2.0, 5.0};
  std::vector<double> deflate_factors = {0.0, 0.5, 0.8};
  /// How many agents to probe, picked from the truthful run's top winners
  /// (their deviations are the ones that can move the allocation).
  std::size_t agents_to_probe = 4;
  /// Ring size for the collusion case (0 disables it).
  std::size_t collusion_size = 3;
};

struct StrategicAuditReport {
  std::vector<StrategicTrial> trials;
  CollusionAudit collusion;
  std::size_t total_round_violations = 0;
  /// min over trials (and collusion reversions) of the full-game margin.
  /// Empirical only: negative values are legitimate — under the global
  /// clearing price an under-bidder can shift its wins to later, cheaper
  /// rounds, so the sequential game rewards patience even though no single
  /// round ever does (inflation, by contrast, advances wins into *more*
  /// expensive rounds and loses; the per-round invariant holds throughout).
  double min_full_game_margin = 0.0;
  /// The acceptance bar for SecondPrice: the exact per-round invariant held
  /// in every audited round of every trial (no misreporting agent's bid
  /// ever beat what its truthful bid would have realised in that round).
  bool dominance_holds = false;
};

/// Sweeps deviation magnitudes over the truthful run's top winners, running
/// the mechanism once per (agent, factor) with a DominanceAuditor installed,
/// plus the collusion-ring case.  Deterministic: the mechanism is
/// deterministic and the probe set derives from the truthful run.
StrategicAuditReport strategic_audit(const drp::Problem& problem,
                                     const StrategicAuditConfig& config = {});

/// Axiom 4 consistency: the utilitarian objective equals the sum of agent
/// valuations; concretely, the sum of winners' true values across rounds
/// must equal the total value the mechanism reports per agent.  Returns the
/// absolute discrepancy (0 in exact arithmetic).
double utilitarian_discrepancy(const MechanismResult& result);

}  // namespace agtram::core
