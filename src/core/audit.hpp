// Axiom audits: executable checks of the game-theoretic properties the
// paper proves on paper (Lemma 1, Theorems 3 and 5).  Tests and the payment
// ablation bench run these on concrete instances.
#pragma once

#include <cstdint>
#include <vector>

#include "core/agt_ram.hpp"
#include "drp/problem.hpp"

namespace agtram::core {

/// Per-round axiom verification (Axioms 4-6): the chosen allocation is the
/// argmax of the reports (utilitarian), the payment matches the rule
/// (motivation), and the winner's allocation was feasible.  Install as
/// AgtRamConfig::observer; violations throw std::logic_error.
class RoundAuditor : public MechanismObserver {
 public:
  explicit RoundAuditor(PaymentRule rule) : rule_(rule) {}

  void on_round_begin(std::size_t round) override;
  /// Audits the full standing-report profile: under the incremental
  /// protocol cached (non-fresh) reports are part of the round's argmax and
  /// payment basis exactly like fresh ones.
  void on_report(drp::ServerId agent, const Report& report,
                 bool fresh) override;
  void on_allocation(drp::ServerId winner, drp::ObjectIndex object,
                     double payment) override;

  std::size_t rounds_audited() const noexcept { return rounds_; }

 private:
  PaymentRule rule_;
  std::vector<double> round_values_;
  std::size_t rounds_ = 0;
};

/// One-shot dominance audit (the exact property behind Lemma 1 / Theorem 5;
/// both are proved for a single allocation decision).  Takes the first
/// round's report profile, and for every agent and every distortion factor
/// compares the agent's round utility (win: value - payment; lose: 0) when
/// truthful vs. when scaling its claim, with all other reports held fixed.
struct OneShotTrial {
  drp::ServerId agent;
  double distortion;
  double truthful_utility;
  double deviant_utility;
  double margin() const noexcept { return truthful_utility - deviant_utility; }
};

/// Under PaymentRule::SecondPrice every margin is >= 0 (exact dominance);
/// under FirstPrice under-projection produces negative margins.
std::vector<OneShotTrial> audit_one_shot_truthfulness(
    const drp::Problem& problem, PaymentRule rule,
    const std::vector<double>& distortions);

/// Result of one *full-game* truthfulness trial: the utility an agent
/// achieved when truthful vs. when deviating with some distortion factor in
/// every round.  The sequential game is not dominance-solvable in general
/// (the paper's proofs are one-shot), so these margins are an empirical
/// measurement consumed by the payment-rule ablation bench, not an exact
/// invariant.
struct TruthfulnessTrial {
  drp::ServerId agent;
  double distortion;        ///< multiplicative misreport factor applied
  double truthful_utility;
  double deviant_utility;
  /// Dominance margin: >= 0 means truth-telling was (weakly) better.
  double margin() const noexcept { return truthful_utility - deviant_utility; }
};

/// Empirically checks Axiom 3 / Theorem 5: runs the mechanism with agent
/// `agent` truthful, then re-runs it with the agent scaling every report by
/// each factor in `distortions` (others stay truthful), comparing utilities.
/// With PaymentRule::SecondPrice every margin should be >= -epsilon.
std::vector<TruthfulnessTrial> audit_truthfulness(
    const drp::Problem& problem, PaymentRule rule, drp::ServerId agent,
    const std::vector<double>& distortions);

/// Axiom 4 consistency: the utilitarian objective equals the sum of agent
/// valuations; concretely, the sum of winners' true values across rounds
/// must equal the total value the mechanism reports per agent.  Returns the
/// absolute discrepancy (0 in exact arithmetic).
double utilitarian_discrepancy(const MechanismResult& result);

}  // namespace agtram::core
