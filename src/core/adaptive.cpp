#include "core/adaptive.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "drp/cost_model.hpp"
#include "drp/kernels.hpp"

namespace agtram::core {

double retention_value(const drp::ReplicaPlacement& placement,
                       drp::ServerId i, drp::ObjectIndex k) {
  const drp::Problem& p = placement.problem();
  if (!placement.is_replicator(i, k) || p.primary[k] == i) {
    throw std::logic_error("retention_value: not a non-primary replica");
  }
  // Distance the holder's reads would travel without this copy.
  const net::Cost next_nearest = drp::kernels::nn_min_excluding(
      p.distances->row(i), placement.replicators(k), i);
  const double o = static_cast<double>(p.object_units[k]);
  const double reads_saved =
      static_cast<double>(p.access.reads(i, k)) * o *
      static_cast<double>(next_nearest);
  const double broadcast_price =
      (static_cast<double>(p.access.total_writes(k)) -
       static_cast<double>(p.access.writes(i, k))) *
      o * static_cast<double>(p.distance(p.primary[k], i));
  return reads_saved - broadcast_price;
}

std::size_t evict_unprofitable(drp::ReplicaPlacement& placement) {
  const drp::Problem& p = placement.problem();
  std::size_t evicted = 0;
  for (drp::ObjectIndex k = 0; k < p.object_count(); ++k) {
    // Snapshot: evaluating against the pre-sweep replica set; evictions
    // within the sweep only raise survivors' retention, so a survivor
    // priced positive stays positive.
    std::vector<drp::ServerId> holders(placement.replicators(k).begin(),
                                       placement.replicators(k).end());
    for (const drp::ServerId i : holders) {
      if (i == p.primary[k]) continue;
      if (retention_value(placement, i, k) <= 0.0) {
        placement.remove_replica(i, k);
        ++evicted;
      }
    }
  }
  return evicted;
}

MigrationReport adapt_placement(const drp::Problem& new_problem,
                                const drp::ReplicaPlacement& old_placement,
                                const AdaptiveConfig& config) {
  const drp::Problem& old_problem = old_placement.problem();
  if (old_problem.server_count() != new_problem.server_count() ||
      old_problem.object_count() != new_problem.object_count() ||
      old_problem.object_units != new_problem.object_units ||
      old_problem.primary != new_problem.primary) {
    throw std::invalid_argument(
        "adapt_placement: instances differ in more than demand");
  }

  MigrationReport report{drp::ReplicaPlacement(new_problem)};

  // Carry the old scheme over onto the new instance.
  for (drp::ObjectIndex k = 0; k < new_problem.object_count(); ++k) {
    for (const drp::ServerId i : old_placement.replicators(k)) {
      if (i == new_problem.primary[k]) continue;
      if (report.placement.can_replicate(i, k)) {
        report.placement.add_replica(i, k);
      }
    }
  }

  AgtRamConfig mechanism;
  mechanism.payment_rule = config.payment_rule;
  mechanism.report_mode = config.report_mode;

  for (report.iterations = 0; report.iterations < config.max_iterations;
       ++report.iterations) {
    // 1. Eviction sweep against the new demand.
    std::size_t evicted_before = report.evicted;
    for (drp::ObjectIndex k = 0; k < new_problem.object_count(); ++k) {
      std::vector<drp::ServerId> holders(
          report.placement.replicators(k).begin(),
          report.placement.replicators(k).end());
      for (const drp::ServerId i : holders) {
        if (i == new_problem.primary[k]) continue;
        if (retention_value(report.placement, i, k) <= 0.0) {
          report.placement.remove_replica(i, k);
          report.evicted += 1;
          report.units_evicted += new_problem.object_units[k];
        }
      }
    }

    // 2. Warm-started allocation phase.
    MechanismResult phase =
        run_agt_ram_from(new_problem, mechanism, std::move(report.placement));
    report.placement = std::move(phase.placement);
    for (const RoundRecord& round : phase.rounds) {
      report.added += 1;
      report.units_added += new_problem.object_units[round.object];
    }

    if (phase.rounds.empty() && report.evicted == evicted_before) {
      ++report.iterations;
      break;  // fixed point: nothing evicted, nothing added
    }
  }

  // Replicas surviving from the old scheme into the new one.
  for (drp::ObjectIndex k = 0; k < new_problem.object_count(); ++k) {
    for (const drp::ServerId i : old_placement.replicators(k)) {
      if (i == new_problem.primary[k]) continue;
      if (report.placement.is_replicator(i, k)) ++report.retained;
    }
  }
  return report;
}

}  // namespace agtram::core
