// Workload characterisation — the Arlitt & Jin analysis the paper's trace
// preparation leans on (HPL-1999-35R1).
//
// Given day logs (synthetic or external), this module measures the
// properties the generator is calibrated to: the Zipf popularity exponent
// (log-log rank/frequency fit), traffic concentration (share of requests
// absorbed by the hottest objects/clients), per-day volumes, and delivered
// size statistics.  Tests close the loop by asserting that the generator's
// configured exponent is recovered by the estimator.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/access_log.hpp"

namespace agtram::trace {

struct WorkloadProfile {
  std::uint64_t total_requests = 0;
  std::size_t distinct_objects = 0;
  std::size_t distinct_clients = 0;

  /// Fitted Zipf exponent of the object popularity law (positive; ~0.8-1.4
  /// for web workloads).
  double zipf_exponent = 0.0;
  /// Share of requests going to the top 1% / 10% of objects by rank.
  double top1_object_share = 0.0;
  double top10_object_share = 0.0;
  /// Share of requests issued by the top 10% of clients.
  double top10_client_share = 0.0;

  /// Delivered units per request: mean and coefficient of variation.
  double mean_units = 0.0;
  double units_cv = 0.0;

  /// Requests per day, in day order.
  std::vector<std::uint64_t> day_volumes;
};

/// Full-profile measurement over a set of day logs.
WorkloadProfile characterize(const std::vector<DayLog>& days);

/// Standalone Zipf-exponent estimate from per-object request counts
/// (descending rank/frequency log-log regression, ranks with >= 2 hits).
double estimate_zipf_exponent(std::vector<std::uint64_t> object_counts);

}  // namespace agtram::trace
