// Synthetic World Cup 1998 trace generator.
//
// Substitution note (see DESIGN.md): the original HP Labs trace is
// proprietary; we synthesise logs matching its published characterisation
// (Arlitt & Jin, "Workload Characterization of the 1998 World Cup Web
// Site", HPL-1999-35R1):
//
//   * object popularity follows a Zipf-like law (exponent ~0.8-1.0);
//   * object sizes are lognormal with a small per-delivery variance;
//   * per-client request counts are heavily skewed (bounded Pareto);
//   * a stable "core" of objects appears in every day sample (the paper
//     keeps the 25,000 objects present in all 13 Friday logs);
//   * traffic volume differs per day (Fridays carry the weekly peak; later
//     tournament days are busier).
//
// The generator is fully deterministic in its config (seed included).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/access_log.hpp"

namespace agtram::trace {

struct WorldCupConfig {
  std::uint32_t days = 13;            ///< paper: 13 Friday logs
  std::uint32_t object_universe = 4000;  ///< distinct URLs across the site
  std::uint32_t core_objects = 2500;  ///< objects hot enough to appear daily
  std::uint32_t clients = 800;        ///< distinct client IPs
  std::uint64_t requests_per_day = 100000;
  double popularity_exponent = 1.1;   ///< Zipf exponent for object choice
  double size_mu = 2.2;               ///< lognormal of object size, data units
  double size_sigma = 1.0;
  std::uint32_t max_object_units = 500;  ///< clamp for pathological draws
  double client_activity_alpha = 1.2; ///< bounded-Pareto client skew
  double day_ramp = 0.35;             ///< late-tournament traffic growth
  /// Day-to-day popularity flux: each day, this fraction of the object
  /// universe has its popularity rank swapped with a random peer (match
  /// schedules made different pages hot on different days).  0 = the same
  /// static law every day.
  double daily_flux = 0.0;
  std::uint64_t seed = 42;
};

/// Base (true) size of each object in the universe, in data units; the
/// placement instance uses these via the pipeline's per-object size stats.
std::vector<std::uint32_t> worldcup_object_sizes(const WorldCupConfig& cfg);

/// Generates `cfg.days` day logs.  The first `core_objects` ranks form the
/// persistent core: each day's log is guaranteed to contain every core
/// object at least once (mirroring the paper's present-in-all-logs filter
/// yielding a stable object set), while tail objects come and go.
std::vector<DayLog> generate_worldcup_trace(const WorldCupConfig& cfg);

}  // namespace agtram::trace
