#include "trace/worldcup.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/distributions.hpp"
#include "common/prng.hpp"

namespace agtram::trace {

using common::BoundedParetoSampler;
using common::LognormalSampler;
using common::Rng;
using common::ZipfSampler;

namespace {

void validate(const WorldCupConfig& cfg) {
  if (cfg.days == 0) throw std::invalid_argument("days must be >= 1");
  if (cfg.object_universe == 0 || cfg.clients == 0) {
    throw std::invalid_argument("need objects and clients");
  }
  if (cfg.core_objects > cfg.object_universe) {
    throw std::invalid_argument("core_objects exceeds universe");
  }
  if (cfg.requests_per_day < cfg.core_objects) {
    throw std::invalid_argument(
        "requests_per_day must cover at least one hit per core object");
  }
}

/// Client chooser: activity weights drawn from a bounded Pareto, sampled via
/// a cumulative table.  Heavier clients issue proportionally more requests.
class ClientSampler {
 public:
  ClientSampler(const WorldCupConfig& cfg, Rng& rng) : cdf_(cfg.clients) {
    BoundedParetoSampler activity(cfg.client_activity_alpha, 1.0, 1e4);
    double acc = 0.0;
    for (std::uint32_t c = 0; c < cfg.clients; ++c) {
      acc += activity(rng);
      cdf_[c] = acc;
    }
    for (double& v : cdf_) v /= acc;
    cdf_.back() = 1.0;
  }

  ClientId operator()(Rng& rng) const {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<ClientId>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

std::vector<std::uint32_t> worldcup_object_sizes(const WorldCupConfig& cfg) {
  validate(cfg);
  // Sizes come from an Rng stream independent of the request stream so the
  // same object universe backs every day sample.
  Rng rng(cfg.seed ^ 0x5151515151515151ULL);
  LognormalSampler size_dist(cfg.size_mu, cfg.size_sigma);
  std::vector<std::uint32_t> sizes(cfg.object_universe);
  for (auto& s : sizes) {
    const double raw = std::max(1.0, size_dist(rng));
    s = static_cast<std::uint32_t>(
        std::min<double>(raw, cfg.max_object_units));
  }
  return sizes;
}

std::vector<DayLog> generate_worldcup_trace(const WorldCupConfig& cfg) {
  validate(cfg);
  const std::vector<std::uint32_t> sizes = worldcup_object_sizes(cfg);

  Rng master(cfg.seed);
  ZipfSampler popularity(cfg.object_universe, cfg.popularity_exponent);
  ClientSampler pick_client(cfg, master);

  std::vector<DayLog> days;
  days.reserve(cfg.days);
  for (std::uint32_t d = 0; d < cfg.days; ++d) {
    Rng rng = master.fork(d + 1);
    DayLog log;
    log.day_index = d;

    // Daily popularity flux: a per-day permutation of the ranks, so "who
    // is hot" rotates while the shape of the law is preserved.
    std::vector<ObjectId> rank_map(cfg.object_universe);
    for (ObjectId k = 0; k < cfg.object_universe; ++k) rank_map[k] = k;
    if (cfg.daily_flux > 0.0 && d > 0) {
      const auto swaps = static_cast<std::size_t>(
          cfg.daily_flux * static_cast<double>(cfg.object_universe));
      Rng flux_rng = master.fork(0x1000 + d);
      for (std::size_t s = 0; s < swaps; ++s) {
        const std::size_t a = flux_rng.below(cfg.object_universe);
        const std::size_t b = flux_rng.below(cfg.object_universe);
        std::swap(rank_map[a], rank_map[b]);
      }
    }

    // Fridays later in the tournament are busier: linear ramp by day_ramp.
    const double ramp =
        1.0 + cfg.day_ramp * static_cast<double>(d) /
                  static_cast<double>(std::max(1u, cfg.days - 1));
    const auto volume =
        static_cast<std::uint64_t>(static_cast<double>(cfg.requests_per_day) * ramp);
    log.requests.reserve(volume + cfg.core_objects);

    const auto emit = [&](ObjectId object) {
      const ClientId client = pick_client(rng);
      // Per-delivery unit count jitters around the object's true size
      // (partial transfers, headers) — this produces the per-object size
      // variance the paper measures from the logs.
      const double jitter = 0.85 + 0.3 * rng.uniform();
      const auto units = static_cast<std::uint32_t>(std::max(
          1.0, std::round(static_cast<double>(sizes[object]) * jitter)));
      log.requests.push_back(Request{client, object, units});
    };

    // Guarantee the persistent core appears in every day sample.
    for (ObjectId k = 0; k < cfg.core_objects; ++k) emit(k);
    for (std::uint64_t i = cfg.core_objects; i < volume; ++i) {
      emit(rank_map[popularity(rng)]);
    }
    days.push_back(std::move(log));
  }
  return days;
}

}  // namespace agtram::trace
