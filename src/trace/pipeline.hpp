// Log-processing pipeline (paper Section 5, trace preparation).
//
// "we wrote a script that returned: only those objects which were present in
//  all the logs (25,000 in our case), the total number of requests from a
//  particular client for an object, the average and the variance of the
//  object size. From this log we chose the top five hundred clients ...
//  A random mapping was then performed of the clients to the nodes of the
//  topologies. Note that this mapping is not 1-1, rather 1-M."
//
// This module reproduces exactly that script: filter -> aggregate -> top-K
// clients -> 1-to-many client/server mapping -> per-(server, object) read
// demand, which is what the DRP instance builder consumes.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "trace/access_log.hpp"

namespace agtram::trace {

struct PipelineConfig {
  /// Keep this many of the busiest clients (paper: 500).
  std::uint32_t top_clients = 500;
  /// Number of servers in the target topology.
  std::uint32_t servers = 100;
  /// Each client is mapped onto between min_fanout and max_fanout distinct
  /// servers ("not 1-1, rather 1-M"); its requests are split across them.
  std::uint32_t min_fanout = 1;
  std::uint32_t max_fanout = 4;
  std::uint64_t seed = 7;
};

/// A server's aggregated read demand for one object.
struct ServerReads {
  std::uint32_t server;
  std::uint64_t reads;
};

/// The pipeline's output: a compacted object catalogue plus sparse
/// per-object read demand.
struct Workload {
  /// Compact index -> original ObjectId (objects present in every day log).
  std::vector<ObjectId> object_ids;
  /// Rounded mean delivered units per object (>= 1).
  std::vector<std::uint32_t> object_units;
  /// Per-object delivered-size variance (the paper uses it to parameterise
  /// update sizes).
  std::vector<double> size_variance;
  /// reads[k]: demand rows sorted by server id; servers with zero demand are
  /// omitted (sparse).
  std::vector<std::vector<ServerReads>> reads;
  /// Requests surviving the filters (paper: 1-2 million per instance).
  std::uint64_t total_requests = 0;

  std::size_t object_count() const noexcept { return object_ids.size(); }
};

/// Objects appearing in every one of the given day logs, sorted ascending.
std::vector<ObjectId> objects_in_all_days(const std::vector<DayLog>& days);

/// Busiest `k` clients by total request count (ties: lower id first),
/// sorted ascending by id.
std::vector<ClientId> top_clients(const std::vector<DayLog>& days,
                                  std::uint32_t k);

/// The 1-to-many client -> servers mapping; mapping[c] lists the distinct
/// servers client c's requests are spread over.
std::vector<std::vector<std::uint32_t>> map_clients_to_servers(
    const std::vector<ClientId>& clients, const PipelineConfig& cfg);

/// Full pipeline.  Deterministic in (days, cfg).
Workload run_pipeline(const std::vector<DayLog>& days,
                      const PipelineConfig& cfg);

}  // namespace agtram::trace
