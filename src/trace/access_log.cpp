#include "trace/access_log.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace agtram::trace {

void write_day_log(std::ostream& os, const DayLog& log) {
  for (const Request& r : log.requests) {
    os << log.day_index << ' ' << r.client << ' ' << r.object << ' '
       << r.units << '\n';
  }
}

DayLog read_day_log(std::istream& is) {
  DayLog log;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::uint32_t day = 0;
    Request r{};
    if (!(fields >> day >> r.client >> r.object >> r.units)) {
      throw std::runtime_error("malformed log line: " + line);
    }
    if (first) {
      log.day_index = day;
      first = false;
    } else if (day != log.day_index) {
      throw std::runtime_error("mixed day indices in one log");
    }
    log.requests.push_back(r);
  }
  return log;
}

}  // namespace agtram::trace
