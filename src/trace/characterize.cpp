#include "trace/characterize.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace agtram::trace {

double estimate_zipf_exponent(std::vector<std::uint64_t> object_counts) {
  std::sort(object_counts.rbegin(), object_counts.rend());
  std::vector<double> xs, ys;
  for (std::size_t rank = 0; rank < object_counts.size(); ++rank) {
    if (object_counts[rank] < 2) break;  // the sparse tail biases the fit
    xs.push_back(std::log(static_cast<double>(rank + 1)));
    ys.push_back(std::log(static_cast<double>(object_counts[rank])));
  }
  if (xs.size() < 3) return 0.0;
  double mean_x = 0.0, mean_y = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mean_x += xs[i];
    mean_y += ys[i];
  }
  mean_x /= static_cast<double>(xs.size());
  mean_y /= static_cast<double>(xs.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    num += (xs[i] - mean_x) * (ys[i] - mean_y);
    den += (xs[i] - mean_x) * (xs[i] - mean_x);
  }
  return den > 0.0 ? -num / den : 0.0;  // negated slope = Zipf exponent
}

WorkloadProfile characterize(const std::vector<DayLog>& days) {
  WorkloadProfile profile;
  std::unordered_map<ObjectId, std::uint64_t> object_counts;
  std::unordered_map<ClientId, std::uint64_t> client_counts;
  double units_sum = 0.0, units_m2 = 0.0;

  for (const DayLog& day : days) {
    profile.day_volumes.push_back(day.requests.size());
    for (const Request& r : day.requests) {
      ++profile.total_requests;
      ++object_counts[r.object];
      ++client_counts[r.client];
      units_sum += static_cast<double>(r.units);
    }
  }
  profile.distinct_objects = object_counts.size();
  profile.distinct_clients = client_counts.size();
  if (profile.total_requests == 0) return profile;

  profile.mean_units =
      units_sum / static_cast<double>(profile.total_requests);
  for (const DayLog& day : days) {
    for (const Request& r : day.requests) {
      const double d = static_cast<double>(r.units) - profile.mean_units;
      units_m2 += d * d;
    }
  }
  const double units_var =
      profile.total_requests > 1
          ? units_m2 / static_cast<double>(profile.total_requests - 1)
          : 0.0;
  profile.units_cv =
      profile.mean_units > 0.0 ? std::sqrt(units_var) / profile.mean_units
                               : 0.0;

  // Concentration shares.
  std::vector<std::uint64_t> objects;
  objects.reserve(object_counts.size());
  for (const auto& [id, count] : object_counts) objects.push_back(count);
  std::sort(objects.rbegin(), objects.rend());
  const auto share_of_top = [&](const std::vector<std::uint64_t>& counts,
                                double fraction) {
    const std::size_t take = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(static_cast<double>(counts.size()) * fraction)));
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < std::min(take, counts.size()); ++i) {
      sum += counts[i];
    }
    return static_cast<double>(sum) /
           static_cast<double>(profile.total_requests);
  };
  profile.top1_object_share = share_of_top(objects, 0.01);
  profile.top10_object_share = share_of_top(objects, 0.10);

  std::vector<std::uint64_t> clients;
  clients.reserve(client_counts.size());
  for (const auto& [id, count] : client_counts) clients.push_back(count);
  std::sort(clients.rbegin(), clients.rend());
  profile.top10_client_share = share_of_top(clients, 0.10);

  profile.zipf_exponent = estimate_zipf_exponent(std::move(objects));
  return profile;
}

}  // namespace agtram::trace
