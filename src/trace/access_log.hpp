// Access-log model.
//
// The paper replays the Soccer World Cup 1998 web-server logs: thirteen
// Friday (24h) logs, May 1 - July 24 1998, reduced to the objects present in
// every log and the top-500 clients.  The raw trace is not redistributable,
// so src/trace/worldcup.hpp synthesises logs with the same published
// statistics; this header defines the records those logs are made of plus a
// simple text serialisation so the pipeline can also ingest external logs in
// the same shape.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace agtram::trace {

using ClientId = std::uint32_t;
using ObjectId = std::uint32_t;

/// One GET served by the origin: which client fetched which object and how
/// many data units went over the wire (object size +/- delivery noise).
struct Request {
  ClientId client;
  ObjectId object;
  std::uint32_t units;
};

/// One day's worth of requests (the paper uses 24h Friday logs).
struct DayLog {
  std::uint32_t day_index = 0;
  std::vector<Request> requests;
};

/// Whitespace-separated "day client object units" lines.
void write_day_log(std::ostream& os, const DayLog& log);

/// Parses lines produced by write_day_log; throws std::runtime_error on
/// malformed input.  Stops at EOF.
DayLog read_day_log(std::istream& is);

}  // namespace agtram::trace
