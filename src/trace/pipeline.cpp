#include "trace/pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "common/prng.hpp"

namespace agtram::trace {

using common::Rng;

std::vector<ObjectId> objects_in_all_days(const std::vector<DayLog>& days) {
  if (days.empty()) return {};
  std::unordered_map<ObjectId, std::uint32_t> day_presence;
  for (const DayLog& day : days) {
    std::unordered_set<ObjectId> seen_today;
    for (const Request& r : day.requests) seen_today.insert(r.object);
    for (ObjectId o : seen_today) ++day_presence[o];
  }
  std::vector<ObjectId> result;
  for (const auto& [object, count] : day_presence) {
    if (count == days.size()) result.push_back(object);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<ClientId> top_clients(const std::vector<DayLog>& days,
                                  std::uint32_t k) {
  std::unordered_map<ClientId, std::uint64_t> totals;
  for (const DayLog& day : days) {
    for (const Request& r : day.requests) ++totals[r.client];
  }
  std::vector<std::pair<ClientId, std::uint64_t>> ranked(totals.begin(),
                                                         totals.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ranked.size() > k) ranked.resize(k);
  std::vector<ClientId> result;
  result.reserve(ranked.size());
  for (const auto& [client, count] : ranked) result.push_back(client);
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<std::vector<std::uint32_t>> map_clients_to_servers(
    const std::vector<ClientId>& clients, const PipelineConfig& cfg) {
  if (cfg.servers == 0) throw std::invalid_argument("servers must be >= 1");
  if (cfg.min_fanout == 0 || cfg.min_fanout > cfg.max_fanout) {
    throw std::invalid_argument("require 1 <= min_fanout <= max_fanout");
  }
  Rng rng(cfg.seed);
  std::vector<std::vector<std::uint32_t>> mapping(clients.size());
  const std::uint32_t cap = std::min(cfg.max_fanout, cfg.servers);
  const std::uint32_t floor = std::min(cfg.min_fanout, cap);
  for (std::size_t c = 0; c < clients.size(); ++c) {
    const auto fanout = static_cast<std::uint32_t>(
        rng.between(floor, cap));
    std::unordered_set<std::uint32_t> chosen;
    while (chosen.size() < fanout) {
      chosen.insert(static_cast<std::uint32_t>(rng.below(cfg.servers)));
    }
    mapping[c].assign(chosen.begin(), chosen.end());
    std::sort(mapping[c].begin(), mapping[c].end());
  }
  return mapping;
}

Workload run_pipeline(const std::vector<DayLog>& days,
                      const PipelineConfig& cfg) {
  Workload out;
  if (days.empty()) return out;

  // 1. Objects present in every day log, compacted to dense indices.
  out.object_ids = objects_in_all_days(days);
  std::unordered_map<ObjectId, std::uint32_t> object_index;
  object_index.reserve(out.object_ids.size());
  for (std::uint32_t k = 0; k < out.object_ids.size(); ++k) {
    object_index.emplace(out.object_ids[k], k);
  }

  // 2. Top-K clients, compacted likewise.
  const std::vector<ClientId> clients = top_clients(days, cfg.top_clients);
  std::unordered_map<ClientId, std::uint32_t> client_index;
  client_index.reserve(clients.size());
  for (std::uint32_t c = 0; c < clients.size(); ++c) {
    client_index.emplace(clients[c], c);
  }

  // 3. Per-object delivered-size statistics (Welford) and per
  //    (client, object) request counts over the surviving records.
  const std::size_t n = out.object_ids.size();
  std::vector<std::uint64_t> size_count(n, 0);
  std::vector<double> size_mean(n, 0.0), size_m2(n, 0.0);
  // Sparse (client, object) counts: flat key c * n + k.
  std::unordered_map<std::uint64_t, std::uint64_t> demand;
  for (const DayLog& day : days) {
    for (const Request& r : day.requests) {
      const auto oit = object_index.find(r.object);
      if (oit == object_index.end()) continue;
      const std::uint32_t k = oit->second;
      ++size_count[k];
      const double delta = static_cast<double>(r.units) - size_mean[k];
      size_mean[k] += delta / static_cast<double>(size_count[k]);
      size_m2[k] += delta * (static_cast<double>(r.units) - size_mean[k]);

      const auto cit = client_index.find(r.client);
      if (cit == client_index.end()) continue;
      ++demand[static_cast<std::uint64_t>(cit->second) * n + k];
      ++out.total_requests;
    }
  }

  out.object_units.resize(n);
  out.size_variance.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    out.object_units[k] = static_cast<std::uint32_t>(
        std::max(1.0, std::round(size_mean[k])));
    out.size_variance[k] =
        size_count[k] > 1
            ? size_m2[k] / static_cast<double>(size_count[k] - 1)
            : 0.0;
  }

  // 4. Client -> servers (1-to-many) mapping, then spread each client's
  //    per-object demand across its servers as evenly as possible, with the
  //    remainder assigned pseudo-randomly (deterministic in the seed).
  const auto mapping = map_clients_to_servers(clients, cfg);
  std::vector<std::unordered_map<std::uint32_t, std::uint64_t>> per_object(n);
  Rng rng(cfg.seed ^ 0xabcdef1234567890ULL);
  for (const auto& [key, count] : demand) {
    const auto c = static_cast<std::uint32_t>(key / n);
    const auto k = static_cast<std::uint32_t>(key % n);
    const auto& servers = mapping[c];
    const std::uint64_t base = count / servers.size();
    std::uint64_t remainder = count % servers.size();
    for (std::uint32_t s : servers) {
      std::uint64_t share = base;
      if (remainder > 0 && rng.chance(0.5)) {
        ++share;
        --remainder;
      }
      if (share > 0) per_object[k][s] += share;
    }
    // Any leftover goes to the client's first server.
    if (remainder > 0) per_object[k][servers.front()] += remainder;
  }

  out.reads.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    auto& rows = out.reads[k];
    rows.reserve(per_object[k].size());
    for (const auto& [server, reads] : per_object[k]) {
      rows.push_back(ServerReads{server, reads});
    }
    std::sort(rows.begin(), rows.end(),
              [](const ServerReads& a, const ServerReads& b) {
                return a.server < b.server;
              });
  }
  return out;
}

}  // namespace agtram::trace
