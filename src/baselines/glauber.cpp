#include "baselines/glauber.hpp"

#include <cmath>
#include <optional>
#include <utility>

#include "common/prng.hpp"
#include "drp/cost_model.hpp"
#include "drp/delta_evaluator.hpp"
#include "obs/obs.hpp"

namespace agtram::baselines {

GlauberResult run_glauber(const drp::Problem& problem,
                          const GlauberConfig& config) {
  AGTRAM_OBS_SPAN("glauber.run");
  const bool delta_path = config.eval == EvalPath::Delta;
  common::Rng rng(config.seed);

  // Heat-bath temperature anchored to the primaries-only OTC, like SA's
  // auto-scaled schedule; the floor keeps exp(delta / T) well-defined.
  double temperature =
      std::max(config.initial_temperature_fraction *
                   drp::CostModel::initial_cost(problem),
               1e-12);

  std::optional<drp::DeltaEvaluator> evaluator;
  std::optional<drp::ReplicaPlacement> naive;
  if (delta_path) {
    evaluator.emplace(drp::ReplicaPlacement(problem));
  } else {
    naive.emplace(problem);
  }
  const auto& placement = [&]() -> const drp::ReplicaPlacement& {
    return delta_path ? evaluator->placement() : *naive;
  };

  GlauberResult result{drp::ReplicaPlacement(problem), 0.0, 0, 0, 0};
  const std::size_t m = problem.server_count();
  for (std::size_t sweep = 0; sweep < config.sweeps; ++sweep) {
    std::uint64_t sweep_proposals = 0;
    // Every server with demand proposes one flip per sweep, in id order —
    // the chain is deterministic in (seed) because the single rng stream is
    // drawn in (sweep, server) order on identical placement states.
    for (drp::ServerId i = 0; i < m; ++i) {
      const auto local = problem.access.server_objects(i);
      if (local.empty()) continue;
      const drp::ObjectIndex k = local[rng.below(local.size())].object;

      // Flip direction from the server's current membership; proposals the
      // placement model forbids (primary drop, no capacity) are withheld
      // locally and never reach the wire.
      bool drop = false;
      if (placement().is_replicator(i, k)) {
        if (problem.primary[k] == i) continue;
        drop = true;
      } else if (!placement().can_replicate(i, k)) {
        continue;
      }

      // Local pricing: the exact OTC delta of the flip.  The naive oracle
      // measures mutate-undo around a real mutation; DeltaEvaluator's core
      // invariant is that its read-only delta carries the same bits.
      double delta = 0.0;
      if (delta_path) {
        delta = drop ? evaluator->delta_of_drop(i, k)
                     : evaluator->delta_of_add(i, k);
      } else {
        const double before = drp::CostModel::object_cost(*naive, k);
        if (drop) {
          naive->remove_replica(i, k);
        } else {
          naive->add_replica(i, k);
        }
        delta = drp::CostModel::object_cost(*naive, k) - before;
        if (drop) {
          naive->add_replica(i, k);
        } else {
          naive->remove_replica(i, k);
        }
      }

      ++sweep_proposals;
      const double accept_probability =
          1.0 / (1.0 + std::exp(delta / temperature));
      if (rng.uniform() < accept_probability) {
        ++result.accepted;
        if (delta_path) {
          if (drop) {
            evaluator->remove_replica(i, k);
          } else {
            evaluator->add_replica(i, k);
          }
        } else {
          if (drop) {
            naive->remove_replica(i, k);
          } else {
            naive->add_replica(i, k);
          }
        }
      }
    }

    result.proposals += sweep_proposals;
    ++result.sweeps;
    AGTRAM_OBS_COUNT("glauber.sweeps", 1);
    if (config.bus != nullptr) {
      // One proposal up, one decision back per evaluated flip.
      config.bus->account_glauber_proposals(sweep_proposals);
      config.bus->account_glauber_decisions(sweep_proposals);
    }
    temperature = std::max(temperature * config.cooling_rate, 1e-12);
  }

  AGTRAM_OBS_COUNT("glauber.proposals", result.proposals);
  AGTRAM_OBS_COUNT("glauber.accepted", result.accepted);
  result.final_cost = delta_path ? evaluator->total()
                                 : drp::CostModel::total_cost(*naive);
  result.placement = delta_path ? std::move(*evaluator).take_placement()
                                : std::move(*naive);
  return result;
}

}  // namespace agtram::baselines
