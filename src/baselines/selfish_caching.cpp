#include "baselines/selfish_caching.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/prng.hpp"
#include "drp/cost_model.hpp"

namespace agtram::baselines {

SelfishCachingResult run_selfish_caching(const drp::Problem& problem,
                                         const SelfishCachingConfig& config) {
  common::Rng rng(config.seed);
  SelfishCachingResult result{drp::ReplicaPlacement(problem)};

  std::vector<drp::ServerId> order(problem.server_count());
  std::iota(order.begin(), order.end(), 0);

  bool anyone_moved = true;
  while (anyone_moved) {
    if (config.max_sweeps != 0 && result.sweeps >= config.max_sweeps) break;
    anyone_moved = false;
    // Fisher-Yates reshuffle: asynchronous, unordered best responses.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    for (const drp::ServerId i : order) {
      // Best response: replicate every object with positive private
      // benefit that still fits, greedily by benefit.
      for (;;) {
        double best = 0.0;
        drp::ObjectIndex best_k = 0;
        for (const auto& access : problem.access.server_objects(i)) {
          if (access.reads == 0) continue;
          if (!result.placement.can_replicate(i, access.object)) continue;
          const double benefit =
              drp::CostModel::agent_benefit(result.placement, i, access.object);
          if (benefit > best) {
            best = benefit;
            best_k = access.object;
          }
        }
        if (best <= 0.0) break;
        result.placement.add_replica(i, best_k);
        ++result.moves;
        anyone_moved = true;
      }
    }
    ++result.sweeps;
  }
  result.equilibrium_reached = !anyone_moved;
  return result;
}

}  // namespace agtram::baselines
