#include "baselines/selfish_caching.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/prng.hpp"
#include "common/thread_pool.hpp"
#include "drp/cost_model.hpp"
#include "obs/obs.hpp"

namespace agtram::baselines {

namespace {

/// One best-response turn, naive oracle: rescan every candidate after each
/// placement, first strict maximum in ascending-object order.
bool naive_turn(const drp::Problem& problem, drp::ReplicaPlacement& placement,
                drp::ServerId i, std::size_t& moves) {
  bool moved = false;
  for (;;) {
    double best = 0.0;
    drp::ObjectIndex best_k = 0;
    std::size_t scanned = 0;
    std::size_t pruned = 0;
    for (const auto& access : problem.access.server_objects(i)) {
      if (access.reads == 0 || !placement.can_replicate(i, access.object)) {
        ++pruned;
        continue;
      }
      ++scanned;
      const double benefit =
          drp::CostModel::agent_benefit(placement, i, access.object);
      if (benefit > best) {
        best = benefit;
        best_k = access.object;
      }
    }
    AGTRAM_OBS_COUNT("selfish.candidates_scanned", scanned);
    AGTRAM_OBS_COUNT("selfish.candidates_pruned", pruned);
    if (best <= 0.0) break;
    placement.add_replica(i, best_k);
    ++moves;
    moved = true;
  }
  return moved;
}

/// Delta turn: server i's benefit for object k only depends on k's own NN
/// structure and i's free capacity, and i's adds never touch another
/// object's NN row — so all benefits are computed once, sorted descending
/// (ties to the lowest object, matching the naive first-strict-max over
/// ascending objects), and walked with a feasibility re-check.  Capacity
/// only shrinks within a turn, so the walk replays the naive pick sequence
/// exactly.
bool delta_turn(const drp::Problem& problem, drp::ReplicaPlacement& placement,
                drp::ServerId i, const std::vector<std::size_t>& slots,
                std::vector<std::pair<double, drp::ObjectIndex>>& candidates,
                std::size_t& moves) {
  candidates.clear();
  const auto objects = problem.access.server_objects(i);
  std::size_t scanned = 0;
  for (std::size_t c = 0; c < objects.size(); ++c) {
    const auto& access = objects[c];
    if (access.reads == 0) continue;
    if (!placement.can_replicate(i, access.object)) continue;
    ++scanned;
    const double benefit = drp::CostModel::agent_benefit_at(
        placement, i, access.object, slots[c]);
    if (benefit > 0.0) candidates.emplace_back(benefit, access.object);
  }
  AGTRAM_OBS_COUNT("selfish.candidates_scanned", scanned);
  AGTRAM_OBS_COUNT("selfish.candidates_pruned", objects.size() - scanned);
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  bool moved = false;
  for (const auto& [benefit, k] : candidates) {
    if (!placement.can_replicate(i, k)) continue;
    placement.add_replica(i, k);
    ++moves;
    moved = true;
  }
  return moved;
}

}  // namespace

SelfishCachingResult run_selfish_caching(const drp::Problem& problem,
                                         const SelfishCachingConfig& config) {
  common::Rng rng(config.seed);
  SelfishCachingResult result{drp::ReplicaPlacement(problem)};

  std::vector<drp::ServerId> order(problem.server_count());
  std::iota(order.begin(), order.end(), 0);

  // Delta path: resolve each (server, object) demand cell's accessor slot
  // once up front, so per-turn benefit gathering skips the binary search
  // agent_benefit performs on every call.
  std::vector<std::vector<std::size_t>> slots;
  std::vector<std::pair<double, drp::ObjectIndex>> candidates;
  if (config.eval == EvalPath::Delta) {
    slots.resize(problem.server_count());
    common::ThreadPool::shared().parallel_for(
        0, problem.server_count(),
        [&](std::size_t first, std::size_t last) {
          for (std::size_t i = first; i < last; ++i) {
            const auto objects =
                problem.access.server_objects(static_cast<drp::ServerId>(i));
            slots[i].resize(objects.size());
            for (std::size_t c = 0; c < objects.size(); ++c) {
              slots[i][c] = problem.access.accessor_slot(
                  static_cast<drp::ServerId>(i), objects[c].object);
            }
          }
        },
        /*min_grain=*/64);
  }

  bool anyone_moved = true;
  while (anyone_moved) {
    if (config.max_sweeps != 0 && result.sweeps >= config.max_sweeps) break;
    anyone_moved = false;
    // Fisher-Yates reshuffle: asynchronous, unordered best responses.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    for (const drp::ServerId i : order) {
      const bool moved =
          config.eval == EvalPath::Delta
              ? delta_turn(problem, result.placement, i, slots[i], candidates,
                           result.moves)
              : naive_turn(problem, result.placement, i, result.moves);
      anyone_moved = anyone_moved || moved;
      if (moved) AGTRAM_OBS_COUNT("selfish.moves", 1);
    }
    ++result.sweeps;
    AGTRAM_OBS_COUNT("selfish.sweeps", 1);
  }
  result.equilibrium_reached = !anyone_moved;
  return result;
}

}  // namespace agtram::baselines
