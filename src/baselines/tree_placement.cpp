#include "baselines/tree_placement.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

namespace agtram::baselines {

namespace {

// The tree rooted at one object's primary: parent/children/depth plus each
// node's full ancestor chain (anc[v][t] = v's ancestor at depth t), which is
// what indexes the DP's (node, nearest-open-ancestor) states.
struct Rooted {
  std::vector<drp::ServerId> parent;
  std::vector<std::uint32_t> depth;
  std::vector<drp::ServerId> preorder;  ///< parents before children
  std::vector<std::vector<drp::ServerId>> children;
  std::vector<std::vector<drp::ServerId>> anc;
};

Rooted root_tree(const net::Graph& tree, drp::ServerId root) {
  const std::size_t n = tree.node_count();
  Rooted r;
  r.parent.assign(n, root);
  r.depth.assign(n, 0);
  r.children.resize(n);
  r.anc.resize(n);
  r.preorder.reserve(n);
  std::vector<char> seen(n, 0);
  std::vector<drp::ServerId> stack{root};
  seen[root] = 1;
  while (!stack.empty()) {
    const drp::ServerId v = stack.back();
    stack.pop_back();
    r.preorder.push_back(v);
    for (const net::Edge& e : tree.neighbors(v)) {
      if (seen[e.to]) continue;
      seen[e.to] = 1;
      r.parent[e.to] = v;
      r.depth[e.to] = r.depth[v] + 1;
      r.children[v].push_back(e.to);
      r.anc[e.to] = r.anc[v];
      r.anc[e.to].push_back(v);
      stack.push_back(e.to);
    }
  }
  return r;
}

// Per-object demand scattered dense (reset between objects by the caller
// re-filling): read load R_v = r_vk * o_k, per-server writes, and the
// placement-independent write-to-primary term.
struct ObjectDemand {
  std::vector<double> read_load;  ///< r_vk * o_k
  std::vector<double> writes;     ///< w_vk
  double total_writes = 0.0;      ///< w_k
  double units = 0.0;             ///< o_k
  double write_constant = 0.0;    ///< sum w_vk * o_k * d(v, P_k)
};

ObjectDemand object_demand(const drp::Problem& problem, drp::ObjectIndex k) {
  const std::size_t n = problem.server_count();
  ObjectDemand d;
  d.read_load.assign(n, 0.0);
  d.writes.assign(n, 0.0);
  d.units = static_cast<double>(problem.object_units[k]);
  d.total_writes = static_cast<double>(problem.access.total_writes(k));
  const drp::ServerId primary = problem.primary[k];
  for (const drp::Access& cell : problem.access.accessors(k)) {
    d.read_load[cell.server] = static_cast<double>(cell.reads) * d.units;
    d.writes[cell.server] = static_cast<double>(cell.writes);
    d.write_constant += static_cast<double>(cell.writes) * d.units *
                        static_cast<double>(problem.distance(cell.server,
                                                             primary));
  }
  return d;
}

// Replica maintenance cost of opening v: the broadcast of everyone else's
// updates from the primary — the X_ik * (w_k - w_ik) * o_k * c(P_k, i) term
// of the OTC.
double facility_cost(const drp::Problem& problem, const ObjectDemand& d,
                     drp::ObjectIndex k, drp::ServerId v) {
  return (d.total_writes - d.writes[v]) * d.units *
         static_cast<double>(problem.distance(problem.primary[k], v));
}

// Closest-ancestor policy cost of serving object k through the open set
// given as a dense mask (must include the primary/root).
double policy_cost_masked(const drp::Problem& problem, const Rooted& rooted,
                          const ObjectDemand& d, drp::ObjectIndex k,
                          const std::vector<char>& open) {
  const drp::ServerId root = problem.primary[k];
  double cost = d.write_constant;
  for (const drp::Access& cell : problem.access.accessors(k)) {
    if (cell.reads == 0) continue;
    drp::ServerId server = cell.server;
    while (open[server] == 0) server = rooted.parent[server];
    cost += d.read_load[cell.server] *
            static_cast<double>(problem.distance(cell.server, server));
  }
  for (drp::ServerId v = 0; v < open.size(); ++v) {
    if (open[v] != 0 && v != root) cost += facility_cost(problem, d, k, v);
  }
  return cost;
}

TreeObjectChoice exact_for_object(const drp::Problem& problem,
                                  const Rooted& rooted,
                                  const ObjectDemand& d, drp::ObjectIndex k) {
  const std::size_t n = problem.server_count();
  const drp::ServerId root = problem.primary[k];

  // best[v][t]: min policy cost of subtree(v) given the nearest open
  // ancestor is anc[v][t]; choice records whether opening v achieved it.
  std::vector<std::vector<double>> best(n);
  std::vector<std::vector<char>> choice(n);
  double root_open = 0.0;
  for (std::size_t idx = rooted.preorder.size(); idx-- > 0;) {
    const drp::ServerId v = rooted.preorder[idx];
    const std::uint32_t dv = rooted.depth[v];
    double open_v = v == root ? 0.0 : facility_cost(problem, d, k, v);
    for (const drp::ServerId c : rooted.children[v]) open_v += best[c][dv];
    if (v == root) {
      root_open = open_v;
      continue;
    }
    best[v].resize(dv);
    choice[v].resize(dv);
    for (std::uint32_t t = 0; t < dv; ++t) {
      const drp::ServerId a = rooted.anc[v][t];
      double closed =
          d.read_load[v] * static_cast<double>(problem.distance(v, a));
      for (const drp::ServerId c : rooted.children[v]) closed += best[c][t];
      // Ties keep the node closed (fewer replicas, deterministic).
      if (open_v < closed) {
        best[v][t] = open_v;
        choice[v][t] = 1;
      } else {
        best[v][t] = closed;
        choice[v][t] = 0;
      }
    }
  }

  TreeObjectChoice result;
  result.policy_cost = root_open + d.write_constant;
  result.open.push_back(root);
  std::vector<std::pair<drp::ServerId, std::uint32_t>> stack;
  for (const drp::ServerId c : rooted.children[root]) stack.push_back({c, 0});
  while (!stack.empty()) {
    const auto [v, t] = stack.back();
    stack.pop_back();
    if (choice[v][t] != 0) {
      result.open.push_back(v);
      for (const drp::ServerId c : rooted.children[v]) {
        stack.push_back({c, rooted.depth[v]});
      }
    } else {
      for (const drp::ServerId c : rooted.children[v]) stack.push_back({c, t});
    }
  }
  std::sort(result.open.begin(), result.open.end());
  return result;
}

TreeObjectChoice greedy_for_object(const drp::Problem& problem,
                                   const Rooted& rooted,
                                   const ObjectDemand& d, drp::ObjectIndex k) {
  const std::size_t n = problem.server_count();
  const drp::ServerId root = problem.primary[k];
  std::vector<char> open(n, 0);
  open[root] = 1;
  double current = policy_cost_masked(problem, rooted, d, k, open);
  while (true) {
    double best_cost = current;
    drp::ServerId best_v = static_cast<drp::ServerId>(n);
    for (drp::ServerId v = 0; v < n; ++v) {
      if (open[v] != 0) continue;
      open[v] = 1;
      const double cost = policy_cost_masked(problem, rooted, d, k, open);
      open[v] = 0;
      if (cost < best_cost) {
        best_cost = cost;
        best_v = v;
      }
    }
    if (best_v == static_cast<drp::ServerId>(n)) break;
    open[best_v] = 1;
    current = best_cost;
  }

  TreeObjectChoice result;
  result.policy_cost = current;
  for (drp::ServerId v = 0; v < n; ++v) {
    if (open[v] != 0) result.open.push_back(v);
  }
  return result;
}

void validate_tree(const drp::Problem& problem, const net::Graph& tree) {
  if (tree.node_count() != problem.server_count()) {
    throw std::invalid_argument("tree_placement: graph/problem size mismatch");
  }
  if (tree.edge_count() + 1 != tree.node_count() || !tree.connected()) {
    throw std::invalid_argument(
        "tree_placement: topology is not a tree (need exactly n-1 edges and "
        "connectivity)");
  }
}

}  // namespace

TreePlacementResult run_tree_placement(const drp::Problem& problem,
                                       const net::Graph& tree,
                                       const TreePlacementConfig& config) {
  validate_tree(problem, tree);
  const std::size_t objects = problem.object_count();

  // Objects share primaries, and the rooting is per root, not per object.
  std::vector<std::unique_ptr<Rooted>> rooted_cache(problem.server_count());

  TreePlacementResult result{drp::ReplicaPlacement(problem), {}, 0.0, 0};
  result.per_object.reserve(objects);
  for (drp::ObjectIndex k = 0; k < objects; ++k) {
    const drp::ServerId root = problem.primary[k];
    if (!rooted_cache[root]) {
      rooted_cache[root] = std::make_unique<Rooted>(root_tree(tree, root));
    }
    const Rooted& rooted = *rooted_cache[root];
    const ObjectDemand demand = object_demand(problem, k);
    TreeObjectChoice choice =
        config.exact ? exact_for_object(problem, rooted, demand, k)
                     : greedy_for_object(problem, rooted, demand, k);
    result.policy_cost += choice.policy_cost;
    for (const drp::ServerId v : choice.open) {
      if (v == root) continue;
      if (result.placement.can_replicate(v, k)) {
        result.placement.add_replica(v, k);
      } else {
        ++result.skipped_infeasible;
      }
    }
    result.per_object.push_back(std::move(choice));
  }
  return result;
}

double tree_policy_cost(const drp::Problem& problem, const net::Graph& tree,
                        drp::ObjectIndex k,
                        const std::vector<drp::ServerId>& open) {
  validate_tree(problem, tree);
  const drp::ServerId root = problem.primary[k];
  std::vector<char> mask(problem.server_count(), 0);
  for (const drp::ServerId v : open) mask[v] = 1;
  if (mask[root] == 0) {
    throw std::invalid_argument("tree_policy_cost: open set must contain the "
                                "primary");
  }
  const Rooted rooted = root_tree(tree, root);
  const ObjectDemand demand = object_demand(problem, k);
  return policy_cost_masked(problem, rooted, demand, k, mask);
}

}  // namespace agtram::baselines
