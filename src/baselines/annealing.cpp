#include "baselines/annealing.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/selfish_caching.hpp"
#include "common/prng.hpp"
#include "drp/cost_model.hpp"

namespace agtram::baselines {

using common::Rng;

namespace {

/// Applies a random move to object k; returns the cost delta of object k
/// (+: worse) and an undo closure kind, or declines (returns nullopt-like
/// flag) when no move was applicable.
struct Move {
  enum class Kind { None, Add, Drop, Swap } kind = Kind::None;
  drp::ServerId a = 0;  // added/dropped/swap-from
  drp::ServerId b = 0;  // swap-to
  drp::ObjectIndex object = 0;
  double delta = 0.0;
};

Move propose(const drp::Problem& p, drp::ReplicaPlacement& placement,
             drp::ObjectIndex k, Rng& rng) {
  Move move;
  move.object = k;
  const double before = drp::CostModel::object_cost(placement, k);
  switch (rng.below(3)) {
    case 0: {  // add at a reader (biased) or anywhere
      const auto accessors = p.access.accessors(k);
      const drp::ServerId i =
          !accessors.empty() && rng.chance(0.8)
              ? accessors[rng.below(accessors.size())].server
              : static_cast<drp::ServerId>(rng.below(p.server_count()));
      if (!placement.can_replicate(i, k)) return move;
      placement.add_replica(i, k);
      move.kind = Move::Kind::Add;
      move.a = i;
      break;
    }
    case 1: {  // drop a non-primary replica
      const auto reps = placement.replicators(k);
      const drp::ServerId i = reps[rng.below(reps.size())];
      if (i == p.primary[k]) return move;
      placement.remove_replica(i, k);
      move.kind = Move::Kind::Drop;
      move.a = i;
      break;
    }
    default: {  // swap a replica to another server
      const auto reps = placement.replicators(k);
      const drp::ServerId from = reps[rng.below(reps.size())];
      const drp::ServerId to =
          static_cast<drp::ServerId>(rng.below(p.server_count()));
      if (from == p.primary[k] || from == to ||
          placement.is_replicator(to, k)) {
        return move;
      }
      placement.remove_replica(from, k);
      if (!placement.can_replicate(to, k)) {
        placement.add_replica(from, k);
        return move;
      }
      placement.add_replica(to, k);
      move.kind = Move::Kind::Swap;
      move.a = from;
      move.b = to;
      break;
    }
  }
  move.delta = drp::CostModel::object_cost(placement, k) - before;
  return move;
}

void undo(drp::ReplicaPlacement& placement, const Move& move) {
  switch (move.kind) {
    case Move::Kind::Add:
      placement.remove_replica(move.a, move.object);
      break;
    case Move::Kind::Drop:
      placement.add_replica(move.a, move.object);
      break;
    case Move::Kind::Swap:
      placement.remove_replica(move.b, move.object);
      placement.add_replica(move.a, move.object);
      break;
    case Move::Kind::None:
      break;
  }
}

}  // namespace

drp::ReplicaPlacement run_annealing(const drp::Problem& problem,
                                    const AnnealingConfig& config) {
  Rng rng(config.seed);
  drp::ReplicaPlacement placement = [&] {
    if (config.seed_from_equilibrium) {
      SelfishCachingConfig seed_cfg;
      seed_cfg.seed = config.seed ^ 0x5a5a;
      return run_selfish_caching(problem, seed_cfg).placement;
    }
    return drp::ReplicaPlacement(problem);
  }();
  double current_cost = drp::CostModel::total_cost(placement);
  drp::ReplicaPlacement best = placement;
  double best_cost = current_cost;

  double temperature = current_cost * config.initial_temperature_fraction;
  const double floor_temperature = temperature * 1e-6 + 1e-12;

  for (std::size_t proposal = 0; proposal < config.proposals; ++proposal) {
    const auto k =
        static_cast<drp::ObjectIndex>(rng.below(problem.object_count()));
    const Move move = propose(problem, placement, k, rng);
    if (move.kind == Move::Kind::None) continue;

    const bool accept =
        move.delta < 0.0 ||
        (temperature > floor_temperature &&
         rng.uniform() < std::exp(-move.delta / temperature));
    if (accept) {
      current_cost += move.delta;
      if (current_cost < best_cost) {
        best_cost = current_cost;
        best = placement;
      }
    } else {
      undo(placement, move);
    }

    if ((proposal + 1) % config.cooling_interval == 0) {
      temperature *= config.cooling_rate;
    }
  }
  return best;
}

}  // namespace agtram::baselines
