#include "baselines/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "baselines/selfish_caching.hpp"
#include "common/prng.hpp"
#include "common/thread_pool.hpp"
#include "drp/cost_model.hpp"
#include "drp/delta_evaluator.hpp"
#include "obs/obs.hpp"

namespace agtram::baselines {

using common::Rng;

namespace {

/// A fully-drawn proposal: the move (or None when the draw was infeasible)
/// plus the proposal's rng stream positioned after the move draws, from
/// which the acceptance test takes its uniform.
struct MoveSpec {
  enum class Kind { None, Add, Drop, Swap } kind = Kind::None;
  drp::ServerId a = 0;  // added/dropped/swap-from
  drp::ServerId b = 0;  // swap-to
  drp::ObjectIndex object = 0;
  Rng accept_rng{0};
};

/// Draws proposal j read-only against the current placement.  The stream is
/// seeded from (seed, j) alone; the draw sequence mirrors the historical
/// mutate-first proposer: object, move kind, then the kind's site picks,
/// with infeasible draws collapsing to None.
MoveSpec draw_spec(const drp::Problem& p,
                   const drp::ReplicaPlacement& placement, std::uint64_t seed,
                   std::uint64_t j) {
  Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (j + 1)));
  MoveSpec spec;
  const auto k = static_cast<drp::ObjectIndex>(rng.below(p.object_count()));
  spec.object = k;
  switch (rng.below(3)) {
    case 0: {  // add at a reader (biased) or anywhere
      const auto accessors = p.access.accessors(k);
      const drp::ServerId i =
          !accessors.empty() && rng.chance(0.8)
              ? accessors[rng.below(accessors.size())].server
              : static_cast<drp::ServerId>(rng.below(p.server_count()));
      if (placement.can_replicate(i, k)) {
        spec.kind = MoveSpec::Kind::Add;
        spec.a = i;
      }
      break;
    }
    case 1: {  // drop a non-primary replica
      const auto reps = placement.replicators(k);
      const drp::ServerId i = reps[rng.below(reps.size())];
      if (i != p.primary[k]) {
        spec.kind = MoveSpec::Kind::Drop;
        spec.a = i;
      }
      break;
    }
    default: {  // swap a replica to another server
      const auto reps = placement.replicators(k);
      const drp::ServerId from = reps[rng.below(reps.size())];
      const drp::ServerId to =
          static_cast<drp::ServerId>(rng.below(p.server_count()));
      if (from == p.primary[k] || from == to ||
          placement.is_replicator(to, k)) {
        break;
      }
      // Capacity at `to` is unaffected by dropping `from`, so this equals
      // the drop-then-check feasibility test a mutating proposer would run.
      if (!placement.can_replicate(to, k)) break;
      spec.kind = MoveSpec::Kind::Swap;
      spec.a = from;
      spec.b = to;
      break;
    }
  }
  spec.accept_rng = rng;
  return spec;
}

double delta_of(const drp::DeltaEvaluator& eval, const MoveSpec& spec) {
  switch (spec.kind) {
    case MoveSpec::Kind::Add:
      return eval.delta_of_add(spec.a, spec.object);
    case MoveSpec::Kind::Drop:
      return eval.delta_of_drop(spec.a, spec.object);
    case MoveSpec::Kind::Swap:
      return eval.delta_of_swap(spec.a, spec.b, spec.object);
    case MoveSpec::Kind::None:
      break;
  }
  return 0.0;
}

/// Naive oracle pricing: apply, measure, leave applied (the caller keeps the
/// mutation on accept and undoes on reject).
double measure_applied(drp::ReplicaPlacement& placement, const MoveSpec& spec) {
  const double before = drp::CostModel::object_cost(placement, spec.object);
  switch (spec.kind) {
    case MoveSpec::Kind::Add:
      placement.add_replica(spec.a, spec.object);
      break;
    case MoveSpec::Kind::Drop:
      placement.remove_replica(spec.a, spec.object);
      break;
    case MoveSpec::Kind::Swap:
      placement.remove_replica(spec.a, spec.object);
      placement.add_replica(spec.b, spec.object);
      break;
    case MoveSpec::Kind::None:
      break;
  }
  return drp::CostModel::object_cost(placement, spec.object) - before;
}

void undo(drp::ReplicaPlacement& placement, const MoveSpec& spec) {
  switch (spec.kind) {
    case MoveSpec::Kind::Add:
      placement.remove_replica(spec.a, spec.object);
      break;
    case MoveSpec::Kind::Drop:
      placement.add_replica(spec.a, spec.object);
      break;
    case MoveSpec::Kind::Swap:
      placement.remove_replica(spec.b, spec.object);
      placement.add_replica(spec.a, spec.object);
      break;
    case MoveSpec::Kind::None:
      break;
  }
}

void apply(drp::DeltaEvaluator& eval, const MoveSpec& spec) {
  switch (spec.kind) {
    case MoveSpec::Kind::Add:
      eval.add_replica(spec.a, spec.object);
      break;
    case MoveSpec::Kind::Drop:
      eval.remove_replica(spec.a, spec.object);
      break;
    case MoveSpec::Kind::Swap:
      eval.remove_replica(spec.a, spec.object);
      eval.add_replica(spec.b, spec.object);
      break;
    case MoveSpec::Kind::None:
      break;
  }
}

}  // namespace

drp::ReplicaPlacement run_annealing(const drp::Problem& problem,
                                    const AnnealingConfig& config) {
  drp::ReplicaPlacement start = [&] {
    if (config.seed_from_equilibrium) {
      SelfishCachingConfig seed_cfg;
      seed_cfg.seed = config.seed ^ 0x5a5a;
      return run_selfish_caching(problem, seed_cfg).placement;
    }
    return drp::ReplicaPlacement(problem);
  }();

  const bool use_delta = config.eval == EvalPath::Delta;
  std::optional<drp::DeltaEvaluator> eval;
  drp::ReplicaPlacement placement(problem);
  if (use_delta) {
    eval.emplace(std::move(start));
  } else {
    placement = std::move(start);
  }
  const auto current = [&]() -> const drp::ReplicaPlacement& {
    return use_delta ? eval->placement() : placement;
  };

  double current_cost =
      use_delta ? eval->total() : drp::CostModel::total_cost(placement);
  drp::ReplicaPlacement best = current();
  double best_cost = current_cost;

  double temperature = current_cost * config.initial_temperature_fraction;
  const double floor_temperature = temperature * 1e-6 + 1e-12;

  const std::size_t batch = use_delta ? std::max<std::size_t>(1, config.batch)
                                      : 1;
  std::vector<MoveSpec> specs;
  std::vector<double> deltas;
  specs.reserve(batch);

  std::size_t consumed = 0;
  while (consumed < config.proposals) {
    const std::size_t batch_start = consumed;
    const std::size_t batch_end =
        std::min(batch_start + batch, config.proposals);
    specs.clear();
    std::size_t work = 0;
    for (std::size_t j = batch_start; j < batch_end; ++j) {
      specs.push_back(draw_spec(problem, current(), config.seed, j));
      if (specs.back().kind != MoveSpec::Kind::None) {
        work += problem.access.accessors(specs.back().object).size();
      }
    }
    if (use_delta) {
      // Every spec was drawn against — and is priced against — the same
      // placement, so the batch evaluates read-only in parallel; after an
      // accepted move the remaining (now stale) tail is thrown away below.
      deltas.assign(specs.size(), 0.0);
      const auto price = [&](std::size_t first, std::size_t last) {
        for (std::size_t s = first; s < last; ++s) {
          deltas[s] = delta_of(*eval, specs[s]);
        }
      };
      if (config.parallel_scan && specs.size() > 1 &&
          work >= config.parallel_min_work) {
        common::ThreadPool::shared().parallel_for(0, specs.size(), price,
                                                  /*min_grain=*/1);
      } else {
        price(0, specs.size());
      }
    }

    bool accepted_in_batch = false;
    for (std::size_t j = batch_start; j < batch_end; ++j) {
      MoveSpec& spec = specs[j - batch_start];
      AGTRAM_OBS_COUNT("sa.proposals", 1);
      if (spec.kind != MoveSpec::Kind::None) {
        const double delta = use_delta ? deltas[j - batch_start]
                                       : measure_applied(placement, spec);
        const bool accept =
            delta < 0.0 ||
            (temperature > floor_temperature &&
             spec.accept_rng.uniform() < std::exp(-delta / temperature));
        if (accept) {
          AGTRAM_OBS_COUNT("sa.accepted", 1);
          if (use_delta) apply(*eval, spec);
          current_cost += delta;
          if (current_cost < best_cost) {
            best_cost = current_cost;
            best = current();
          }
          accepted_in_batch = true;
        } else if (!use_delta) {
          undo(placement, spec);
        }
      }
      if ((j + 1) % config.cooling_interval == 0) {
        temperature *= config.cooling_rate;
      }
      consumed = j + 1;
      if (accepted_in_batch) {  // tail specs are stale — redraw
        AGTRAM_OBS_COUNT("sa.stale_discarded", batch_end - consumed);
        break;
      }
    }
  }
  return best;
}

}  // namespace agtram::baselines
