// Local search over replication schemes — the classical file-allocation
// refinement heuristic (the FAP lineage of the paper's Section 6: Chu 1969,
// Casey 1972, Mahmoud & Riordon 1976 all refine allocations by local
// exchange arguments).
//
// Moves: add a replica, drop a replica, or swap a replica between two
// servers; a move is accepted iff it strictly lowers the global OTC.  The
// search starts from the selfish-caching equilibrium (a good, cheap seed)
// and runs randomised move proposals until a proposal budget is exhausted
// or a full quiet streak proves local optimality.
#pragma once

#include <cstdint>

#include "baselines/eval_path.hpp"
#include "drp/placement.hpp"
#include "drp/problem.hpp"

namespace agtram::baselines {

struct LocalSearchConfig {
  std::uint64_t seed = 1;
  /// Total move proposals (the time budget).
  std::size_t max_proposals = 20000;
  /// Stop early after this many consecutive rejected proposals.
  std::size_t quiet_streak = 2000;
  /// Delta: proposals priced read-only through drp::DeltaEvaluator (the
  /// placement is only mutated on acceptance).  Naive: the original
  /// mutate-measure-rollback loop.  Same rng stream, same bits either way.
  EvalPath eval = EvalPath::Delta;
};

drp::ReplicaPlacement run_local_search(const drp::Problem& problem,
                                       const LocalSearchConfig& config = {});

}  // namespace agtram::baselines
