// Dutch (DA) and English (EA) auction replica allocation (comparison
// baselines; Khan & Ahmad, "Internet Content Replication: A Solution from
// Game Theory", UTA tech report CSE-2004-5).
//
// Both methods share AGT-RAM's round structure — every round auctions off
// one replica slot, agents value objects by the same Eq.-5 benefit — but
// replace the sealed-bid argmax of AGT-RAM with an open-outcry price clock,
// which is where their quality and running time diverge:
//
//  * English (ascending): the price rises from zero in fixed increments;
//    agents drop out when the price passes their valuation; the last
//    bidder standing wins at the hammer price.  The coarse increment
//    quantises valuations, so near-tied agents are separated arbitrarily
//    (the jump-bidding effect) and every round costs O(steps x agents) —
//    EA lands at "low performance", slower than DA.
//
//  * Dutch (descending): the price falls from just above the highest
//    estimate; the first agent to shout "mine" wins at the current price.
//    Rational Dutch bidders shade below their true valuation (first-price
//    equivalence), and heterogeneous shading occasionally lets a
//    second-best agent grab the slot — "medium performance", but fewer
//    clock ticks per round than EA.
#pragma once

#include <cstdint>

#include "drp/placement.hpp"
#include "drp/problem.hpp"

namespace agtram::baselines {

struct EnglishAuctionConfig {
  /// Clock increments per round: the price rises by (top estimate / steps).
  std::uint32_t price_steps = 12;
  std::uint64_t seed = 3;
};

struct DutchAuctionConfig {
  /// Clock decrements per round.
  std::uint32_t price_steps = 24;
  /// Bid-shading band: each agent accepts at price <= shade * valuation with
  /// shade drawn uniformly from [shade_lo, shade_hi] per agent.
  double shade_lo = 0.85;
  double shade_hi = 0.98;
  std::uint64_t seed = 5;
};

drp::ReplicaPlacement run_english_auction(const drp::Problem& problem,
                                          const EnglishAuctionConfig& config = {});

drp::ReplicaPlacement run_dutch_auction(const drp::Problem& problem,
                                        const DutchAuctionConfig& config = {});

}  // namespace agtram::baselines
