// GRA — Genetic Replication Algorithm (comparison baseline; Loukopoulos &
// Ahmad, "Static and Adaptive Distributed Data Replication using Genetic
// Algorithms", JPDC 64(11), 2004).
//
// A chromosome is a full replication scheme (per-server sets of extra
// replicas on top of the primaries).  Fitness is the OTC of Equation 4.
// Selection is k-tournament with elitism; crossover swaps whole server rows
// between parents (one-point over server ids) followed by a capacity-repair
// pass; mutation flips random replicas in or out.
//
// The paper's observations reproduce naturally from this design: GRA's
// quality depends heavily on the initial gene population and it keeps a
// "localized network perception" (row-level recombination never reasons
// about global read routing), so it trails the other methods — while paying
// population x generations full-cost evaluations, making it the slowest.
#pragma once

#include <cstdint>

#include "baselines/eval_path.hpp"
#include "drp/placement.hpp"
#include "drp/problem.hpp"

namespace agtram::baselines {

struct GraConfig {
  std::uint32_t population = 20;
  std::uint32_t generations = 40;
  std::uint32_t tournament = 3;
  double crossover_rate = 0.9;
  /// Expected number of add/remove flips applied to each offspring.
  double mutations_per_child = 4.0;
  /// Fraction of each random initial genome's free capacity to fill.
  double init_fill = 0.2;
  std::uint32_t elites = 2;
  std::uint64_t seed = 1;
  /// Delta: genome fitness evaluated straight off the chromosome rows
  /// (object_cost_with_replicators over the per-object replicator sets,
  /// untouched objects priced from the precomputed primaries-only base) —
  /// no placement materialisation, elites keep their scores.  Naive: the
  /// original materialise + total_cost per genome.  Same bits either way.
  EvalPath eval = EvalPath::Delta;
  /// Delta path only: fan population scoring out over the shared pool.
  bool parallel_scan = true;
};

drp::ReplicaPlacement run_gra(const drp::Problem& problem,
                              const GraConfig& config = {});

}  // namespace agtram::baselines
