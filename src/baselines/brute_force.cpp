#include "baselines/brute_force.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "drp/cost_model.hpp"

namespace agtram::baselines {

namespace {

struct Cell {
  drp::ServerId server;
  drp::ObjectIndex object;
};

void enumerate(const drp::Problem& problem, const std::vector<Cell>& cells,
               std::size_t index, drp::ReplicaPlacement& current,
               BruteForceResult& best) {
  if (index == cells.size()) {
    ++best.schemes_evaluated;
    const double cost = drp::CostModel::total_cost(current);
    if (cost < best.cost) {
      best.cost = cost;
      best.placement = current;
    }
    return;
  }
  const Cell& cell = cells[index];
  // Branch 1: do not replicate.
  enumerate(problem, cells, index + 1, current, best);
  // Branch 2: replicate if feasible.
  if (current.can_replicate(cell.server, cell.object)) {
    current.add_replica(cell.server, cell.object);
    enumerate(problem, cells, index + 1, current, best);
    current.remove_replica(cell.server, cell.object);
  }
}

}  // namespace

BruteForceResult run_brute_force(const drp::Problem& problem,
                                 std::size_t max_cells) {
  std::vector<Cell> cells;
  for (drp::ServerId i = 0; i < problem.server_count(); ++i) {
    for (drp::ObjectIndex k = 0; k < problem.object_count(); ++k) {
      if (problem.primary[k] != i) {
        cells.push_back(Cell{i, static_cast<drp::ObjectIndex>(k)});
      }
    }
  }
  if (cells.size() > max_cells) {
    throw std::invalid_argument(
        "brute force: instance too large (2^" +
        std::to_string(cells.size()) + " schemes)");
  }

  drp::ReplicaPlacement current(problem);
  BruteForceResult best{current, drp::CostModel::total_cost(current), 0};
  enumerate(problem, cells, 0, current, best);
  return best;
}

}  // namespace agtram::baselines
