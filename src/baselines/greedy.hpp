// Centralised Greedy replica placement (comparison algorithm of Qiu,
// Padmanabhan & Voelker, INFOCOM 2001 — the paper's strongest conventional
// baseline, itself shown there to beat four other heuristics).
//
// Each step places the single replica with the largest *global* OTC
// reduction (drp::CostModel::global_benefit) anywhere in the system, until
// no placement reduces the cost.  Unlike AGT-RAM it may use servers with no
// demand of their own (hub placement) and it requires global knowledge of
// all demand — that is precisely the centralisation the paper argues
// against; it serves as the solution-quality yardstick.
//
// Implementation: a lazy max-heap keyed by object.  Placing a replica of k
// only changes k's own candidate values (NN distances of k's accessors) and
// the chosen server's free capacity; both changes are monotone decreases,
// so stale heap entries are safely re-validated on pop.
#pragma once

#include <cstdint>

#include "baselines/eval_path.hpp"
#include "drp/placement.hpp"
#include "drp/problem.hpp"

namespace agtram::baselines {

struct GreedyConfig {
  /// Stop after this many placements (0 = run to exhaustion).
  std::size_t max_replicas = 0;
  /// Optional site mask: replicas may only be placed on servers whose
  /// entry is true (size M).  Used e.g. for global-view repair after a
  /// regional outage, where the dead region's servers cannot host.
  const std::vector<bool>* allowed_sites = nullptr;
  /// Delta: loop-swapped candidate scans through drp::DeltaEvaluator
  /// (byte-identical placements, ~order-of-magnitude faster at paper
  /// scale).  Naive: the original per-server global_benefit rescan.
  EvalPath eval = EvalPath::Delta;
  /// Parallelise the delta path's scans on the shared pool: the initial
  /// heap build fans out over objects, each re-validation scan over
  /// servers.  Round-size-aware cutoffs keep small instances inline, so
  /// parallel never loses to serial.  Ignored by the naive path.
  bool parallel_scan = true;
};

drp::ReplicaPlacement run_greedy(const drp::Problem& problem,
                                 const GreedyConfig& config = {});

/// Greedy continuation from an existing scheme (repair/completion): applies
/// the same lazy global-delta loop starting from `start`.
drp::ReplicaPlacement run_greedy_from(const drp::Problem& problem,
                                      drp::ReplicaPlacement start,
                                      const GreedyConfig& config = {});

}  // namespace agtram::baselines
