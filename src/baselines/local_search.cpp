#include "baselines/local_search.hpp"

#include <algorithm>

#include "baselines/selfish_caching.hpp"
#include "common/prng.hpp"
#include "drp/cost_model.hpp"

namespace agtram::baselines {

using common::Rng;

namespace {

/// A proposal only ever touches one object, so acceptance is decided on
/// that object's cost contribution alone.
struct MoveEvaluator {
  const drp::Problem& p;
  drp::ReplicaPlacement& placement;

  bool try_add(drp::ServerId i, drp::ObjectIndex k) {
    if (!placement.can_replicate(i, k)) return false;
    const double before = drp::CostModel::object_cost(placement, k);
    placement.add_replica(i, k);
    if (drp::CostModel::object_cost(placement, k) < before) return true;
    placement.remove_replica(i, k);
    return false;
  }

  bool try_drop(drp::ServerId i, drp::ObjectIndex k) {
    if (i == p.primary[k] || !placement.is_replicator(i, k)) return false;
    const double before = drp::CostModel::object_cost(placement, k);
    placement.remove_replica(i, k);
    if (drp::CostModel::object_cost(placement, k) < before) return true;
    placement.add_replica(i, k);
    return false;
  }

  bool try_swap(drp::ServerId from, drp::ServerId to, drp::ObjectIndex k) {
    if (from == to || from == p.primary[k]) return false;
    if (!placement.is_replicator(from, k)) return false;
    if (placement.is_replicator(to, k)) return false;
    const double before = drp::CostModel::object_cost(placement, k);
    placement.remove_replica(from, k);
    if (!placement.can_replicate(to, k)) {  // capacity at the target
      placement.add_replica(from, k);
      return false;
    }
    placement.add_replica(to, k);
    if (drp::CostModel::object_cost(placement, k) < before) return true;
    placement.remove_replica(to, k);
    placement.add_replica(from, k);
    return false;
  }
};

drp::ServerId random_reader_or_any(const drp::Problem& p, drp::ObjectIndex k,
                                   Rng& rng) {
  const auto accessors = p.access.accessors(k);
  if (!accessors.empty() && rng.chance(0.8)) {
    return accessors[rng.below(accessors.size())].server;
  }
  return static_cast<drp::ServerId>(rng.below(p.server_count()));
}

}  // namespace

drp::ReplicaPlacement run_local_search(const drp::Problem& problem,
                                       const LocalSearchConfig& config) {
  Rng rng(config.seed);
  // Seed from the selfish equilibrium — cheap and already decent.
  SelfishCachingConfig seed_cfg;
  seed_cfg.seed = config.seed ^ 0xdecaf;
  drp::ReplicaPlacement placement =
      run_selfish_caching(problem, seed_cfg).placement;

  MoveEvaluator evaluator{problem, placement};
  std::size_t quiet = 0;
  for (std::size_t proposal = 0;
       proposal < config.max_proposals && quiet < config.quiet_streak;
       ++proposal) {
    const auto k =
        static_cast<drp::ObjectIndex>(rng.below(problem.object_count()));
    bool accepted = false;
    switch (rng.below(3)) {
      case 0:
        accepted = evaluator.try_add(random_reader_or_any(problem, k, rng), k);
        break;
      case 1: {
        const auto reps = placement.replicators(k);
        accepted = evaluator.try_drop(reps[rng.below(reps.size())], k);
        break;
      }
      default: {
        const auto reps = placement.replicators(k);
        accepted = evaluator.try_swap(reps[rng.below(reps.size())],
                                      random_reader_or_any(problem, k, rng), k);
        break;
      }
    }
    quiet = accepted ? 0 : quiet + 1;
  }
  return placement;
}

}  // namespace agtram::baselines
