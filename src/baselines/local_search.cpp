#include "baselines/local_search.hpp"

#include <algorithm>

#include "baselines/selfish_caching.hpp"
#include "common/prng.hpp"
#include "drp/cost_model.hpp"
#include "drp/delta_evaluator.hpp"
#include "obs/obs.hpp"

namespace agtram::baselines {

using common::Rng;

namespace {

/// A proposal only ever touches one object, so acceptance is decided on
/// that object's cost contribution alone.  Naive oracle: mutate, measure,
/// roll back on rejection.
struct NaiveMoveEvaluator {
  const drp::Problem& p;
  drp::ReplicaPlacement& placement;

  const drp::ReplicaPlacement& current() const { return placement; }

  bool try_add(drp::ServerId i, drp::ObjectIndex k) {
    if (!placement.can_replicate(i, k)) return false;
    const double before = drp::CostModel::object_cost(placement, k);
    placement.add_replica(i, k);
    if (drp::CostModel::object_cost(placement, k) < before) return true;
    placement.remove_replica(i, k);
    return false;
  }

  bool try_drop(drp::ServerId i, drp::ObjectIndex k) {
    if (i == p.primary[k] || !placement.is_replicator(i, k)) return false;
    const double before = drp::CostModel::object_cost(placement, k);
    placement.remove_replica(i, k);
    if (drp::CostModel::object_cost(placement, k) < before) return true;
    placement.add_replica(i, k);
    return false;
  }

  bool try_swap(drp::ServerId from, drp::ServerId to, drp::ObjectIndex k) {
    if (from == to || from == p.primary[k]) return false;
    if (!placement.is_replicator(from, k)) return false;
    if (placement.is_replicator(to, k)) return false;
    const double before = drp::CostModel::object_cost(placement, k);
    placement.remove_replica(from, k);
    if (!placement.can_replicate(to, k)) {  // capacity at the target
      placement.add_replica(from, k);
      return false;
    }
    placement.add_replica(to, k);
    if (drp::CostModel::object_cost(placement, k) < before) return true;
    placement.remove_replica(to, k);
    placement.add_replica(from, k);
    return false;
  }
};

/// Delta twin: prices every proposal read-only against the evaluator's
/// cached object cost and mutates only on acceptance.  The hypothetical
/// costs are bit-identical to the naive post-mutation measurements
/// (DESIGN.md §8), so accept/reject decisions — and hence the rng-driven
/// trajectory — match the oracle exactly.
struct DeltaMoveEvaluator {
  const drp::Problem& p;
  drp::DeltaEvaluator& eval;

  const drp::ReplicaPlacement& current() const { return eval.placement(); }

  bool try_add(drp::ServerId i, drp::ObjectIndex k) {
    if (!eval.can_replicate(i, k)) return false;
    if (!(eval.cost_if_added(i, k) < eval.object_cost(k))) return false;
    eval.add_replica(i, k);
    return true;
  }

  bool try_drop(drp::ServerId i, drp::ObjectIndex k) {
    if (i == p.primary[k] || !eval.placement().is_replicator(i, k)) {
      return false;
    }
    if (!(eval.cost_if_dropped(i, k) < eval.object_cost(k))) return false;
    eval.remove_replica(i, k);
    return true;
  }

  bool try_swap(drp::ServerId from, drp::ServerId to, drp::ObjectIndex k) {
    if (from == to || from == p.primary[k]) return false;
    if (!eval.placement().is_replicator(from, k)) return false;
    if (eval.placement().is_replicator(to, k)) return false;
    // Capacity at the target is unaffected by dropping `from`, so the plain
    // can_replicate test equals the naive drop-then-check sequence.
    if (!eval.can_replicate(to, k)) return false;
    if (!(eval.cost_if_swapped(from, to, k) < eval.object_cost(k))) {
      return false;
    }
    eval.remove_replica(from, k);
    eval.add_replica(to, k);
    return true;
  }
};

drp::ServerId random_reader_or_any(const drp::Problem& p, drp::ObjectIndex k,
                                   Rng& rng) {
  const auto accessors = p.access.accessors(k);
  if (!accessors.empty() && rng.chance(0.8)) {
    return accessors[rng.below(accessors.size())].server;
  }
  return static_cast<drp::ServerId>(rng.below(p.server_count()));
}

/// The proposal loop, shared verbatim by both evaluators so the rng stream
/// cannot diverge between paths.
template <typename Evaluator>
void propose_loop(const drp::Problem& problem, const LocalSearchConfig& config,
                  Evaluator& evaluator, Rng& rng) {
  std::size_t quiet = 0;
  for (std::size_t proposal = 0;
       proposal < config.max_proposals && quiet < config.quiet_streak;
       ++proposal) {
    const auto k =
        static_cast<drp::ObjectIndex>(rng.below(problem.object_count()));
    bool accepted = false;
    switch (rng.below(3)) {
      case 0:
        accepted = evaluator.try_add(random_reader_or_any(problem, k, rng), k);
        break;
      case 1: {
        const auto reps = evaluator.current().replicators(k);
        accepted = evaluator.try_drop(reps[rng.below(reps.size())], k);
        break;
      }
      default: {
        const auto reps = evaluator.current().replicators(k);
        accepted = evaluator.try_swap(reps[rng.below(reps.size())],
                                      random_reader_or_any(problem, k, rng), k);
        break;
      }
    }
    AGTRAM_OBS_COUNT("local_search.proposals", 1);
    if (accepted) AGTRAM_OBS_COUNT("local_search.accepted", 1);
    quiet = accepted ? 0 : quiet + 1;
  }
}

}  // namespace

drp::ReplicaPlacement run_local_search(const drp::Problem& problem,
                                       const LocalSearchConfig& config) {
  Rng rng(config.seed);
  // Seed from the selfish equilibrium — cheap and already decent.
  SelfishCachingConfig seed_cfg;
  seed_cfg.seed = config.seed ^ 0xdecaf;
  drp::ReplicaPlacement placement =
      run_selfish_caching(problem, seed_cfg).placement;

  if (config.eval == EvalPath::Naive) {
    NaiveMoveEvaluator evaluator{problem, placement};
    propose_loop(problem, config, evaluator, rng);
    return placement;
  }
  drp::DeltaEvaluator eval(std::move(placement));
  DeltaMoveEvaluator evaluator{problem, eval};
  propose_loop(problem, config, evaluator, rng);
  return std::move(eval).take_placement();
}

}  // namespace agtram::baselines
