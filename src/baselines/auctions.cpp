#include "baselines/auctions.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/prng.hpp"
#include "core/agent.hpp"

namespace agtram::baselines {

using common::Rng;

namespace {

/// Shared auction scaffolding: agents with lazy candidate heaps (the same
/// core::Agent the mechanism uses), a round loop placing one replica per
/// auction, and a pluggable winner-selection clock.
template <typename PickWinner>
drp::ReplicaPlacement run_auction_rounds(const drp::Problem& problem,
                                         PickWinner&& pick_winner) {
  drp::ReplicaPlacement placement(problem);
  std::vector<core::Agent> agents;
  agents.reserve(problem.server_count());
  for (drp::ServerId i = 0; i < problem.server_count(); ++i) {
    agents.emplace_back(problem, i);
  }
  std::vector<std::uint32_t> live;
  for (std::uint32_t i = 0; i < problem.server_count(); ++i) {
    if (!agents[i].retired()) live.push_back(i);
  }

  struct Bid {
    std::uint32_t agent;
    drp::ObjectIndex object;
    double valuation;
  };
  while (!live.empty()) {
    std::vector<Bid> bids;
    std::vector<std::uint32_t> next_live;
    bids.reserve(live.size());
    next_live.reserve(live.size());
    for (const std::uint32_t i : live) {
      const core::Report report = agents[i].make_report(placement, nullptr);
      if (report.has_candidate) {
        bids.push_back(Bid{i, report.object, report.true_value});
        next_live.push_back(i);
      }
    }
    if (bids.empty()) break;

    const std::size_t winner = pick_winner(bids);
    assert(winner < bids.size());
    placement.add_replica(bids[winner].agent, bids[winner].object);
    live = std::move(next_live);
  }
  return placement;
}

}  // namespace

drp::ReplicaPlacement run_english_auction(const drp::Problem& problem,
                                          const EnglishAuctionConfig& config) {
  Rng rng(config.seed);
  const std::uint32_t steps = std::max<std::uint32_t>(2, config.price_steps);

  return run_auction_rounds(problem, [&rng, steps](const auto& bids) {
    // Ascending clock.  All valuations are positive; the increment is a
    // fixed fraction of the top estimate, so close valuations fall in the
    // same final bracket and the hammer falls on a random one of them.
    double top = 0.0;
    for (const auto& b : bids) top = std::max(top, b.valuation);
    const double increment = top / static_cast<double>(steps);

    std::vector<std::size_t> active(bids.size());
    for (std::size_t i = 0; i < active.size(); ++i) active[i] = i;
    double price = 0.0;
    while (active.size() > 1) {
      const double next_price = price + increment;
      std::vector<std::size_t> still_in;
      still_in.reserve(active.size());
      for (const std::size_t i : active) {
        if (bids[i].valuation >= next_price) still_in.push_back(i);
      }
      if (still_in.empty()) break;  // everyone quit this tick: tie bracket
      price = next_price;
      active = std::move(still_in);
    }
    return active[rng.below(active.size())];
  });
}

drp::ReplicaPlacement run_dutch_auction(const drp::Problem& problem,
                                        const DutchAuctionConfig& config) {
  Rng rng(config.seed);
  const std::uint32_t steps = std::max<std::uint32_t>(2, config.price_steps);

  // Per-agent shading factors, fixed for the whole game.
  std::vector<double> shade(problem.server_count());
  for (double& s : shade) s = rng.uniform(config.shade_lo, config.shade_hi);

  return run_auction_rounds(problem, [&](const auto& bids) {
    double top = 0.0;
    for (const auto& b : bids) top = std::max(top, b.valuation);
    // Descending clock from just above the best estimate; the first agent
    // whose shaded acceptance threshold meets the price claims the slot.
    double price = top * 1.05;
    const double decrement = price / static_cast<double>(steps);
    for (std::uint32_t tick = 0; tick < 2 * steps; ++tick) {
      price -= decrement;
      std::vector<std::size_t> takers;
      for (std::size_t i = 0; i < bids.size(); ++i) {
        if (shade[bids[i].agent] * bids[i].valuation >= price) {
          takers.push_back(i);
        }
      }
      if (!takers.empty()) {
        return takers[rng.below(takers.size())];
      }
    }
    // Clock ran out (numerical corner): highest valuation wins.
    std::size_t best = 0;
    for (std::size_t i = 1; i < bids.size(); ++i) {
      if (bids[i].valuation > bids[best].valuation) best = i;
    }
    return best;
  });
}

}  // namespace agtram::baselines
