// Aε-Star — ε-admissible best-first branch-and-bound (comparison baseline;
// Khan & Ahmad, "Heuristic-based Replication Schemas for Fast Information
// Retrieval over the Internet", PDCS 2004).
//
// Search space: sequences of replica additions starting from the
// primaries-only scheme.  Each node carries its placement, the current cost
// g, and an admissible optimistic bound h on the further achievable saving
// (every remaining read served at distance zero, for free).  Nodes are
// expanded best-first by f = g - h; a node's children are its top-B
// global-benefit moves.  The ε-relaxation (the "Aε" of the name) prunes any
// node whose f exceeds (1+ε) times the best f seen, trading optimality for
// tractability exactly as the original technique does; a hard expansion
// budget bounds the worst case.
//
// With the defaults this lands where the paper puts it: solution quality in
// the Greedy neighbourhood, execution time well above Greedy/AGT-RAM.
#pragma once

#include <cstdint>

#include "baselines/eval_path.hpp"
#include "drp/placement.hpp"
#include "drp/problem.hpp"

namespace agtram::baselines {

struct AeStarConfig {
  /// ε-admissibility factor (0 = pure best-first A*).
  double epsilon = 0.15;
  /// Children generated per expanded node (top global-benefit moves).
  std::uint32_t branching = 3;
  /// Hard cap on node expansions; the best partial solution found within
  /// the budget is completed greedily (reader sites only).
  std::size_t max_expansions = 150;
  /// Open-list size cap (worst nodes evicted).
  std::size_t max_open = 256;
  /// Delta: nodes carry a drp::DeltaEvaluator, so each child's h bound is an
  /// O(N) re-sum of cached per-object savings instead of a full accessor
  /// sweep, and leaf costs come from the cache.  Naive: full recomputation.
  EvalPath eval = EvalPath::Delta;
  /// Delta path only: parallelise the per-object candidate shortlist scan.
  bool parallel_scan = true;
};

drp::ReplicaPlacement run_aestar(const drp::Problem& problem,
                                 const AeStarConfig& config = {});

}  // namespace agtram::baselines
