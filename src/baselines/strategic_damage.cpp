#include "baselines/strategic_damage.hpp"

#include "drp/cost_model.hpp"
#include "drp/placement.hpp"
#include "obs/obs.hpp"

namespace agtram::baselines {

std::vector<MisreportDamageRow> misreport_damage(
    const drp::Problem& problem, const core::StrategyProfile& profile,
    const std::vector<std::string>& algorithms, std::uint64_t seed,
    const AlgoOptions& options) {
  const drp::Problem distorted = core::distorted_problem(problem, profile);

  std::vector<MisreportDamageRow> rows;
  rows.reserve(algorithms.size());
  for (const std::string& name : algorithms) {
    const AlgorithmEntry entry = find_algorithm(name, options);

    const drp::ReplicaPlacement truthful = entry.run(problem, seed);

    // Plan on the lie, then replay the chosen replicas onto the true
    // instance (identical capacities, so the plan fits).
    const drp::ReplicaPlacement planned = entry.run(distorted, seed);
    drp::ReplicaPlacement replay(problem);
    MisreportDamageRow row;
    for (drp::ObjectIndex k = 0; k < problem.object_count(); ++k) {
      for (const drp::ServerId i : planned.replicators(k)) {
        if (i == problem.primary[k]) continue;
        if (replay.can_replicate(i, k)) {
          replay.add_replica(i, k);
        } else {
          ++row.skipped_infeasible;
        }
      }
    }

    row.algorithm = name;
    row.truthful_savings = drp::CostModel::savings(truthful);
    row.misreport_savings = drp::CostModel::savings(replay);
    rows.push_back(std::move(row));
    AGTRAM_OBS_COUNT("audit.damage_rows", 1);
  }
  return rows;
}

}  // namespace agtram::baselines
