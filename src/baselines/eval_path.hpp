// Evaluation-path switch shared by every baseline: each algorithm keeps its
// original full-recomputation loop as a differential oracle (the same
// pattern ReportMode follows for the mechanism, DESIGN.md §6a/§8) and gains
// a delta path built on drp::DeltaEvaluator.  Results are byte-identical by
// construction; tests/baselines_delta_test.cpp enforces it.
#pragma once

namespace agtram::baselines {

enum class EvalPath {
  Naive,  ///< full object_cost / total_cost recomputation (oracle)
  Delta,  ///< incremental deltas through drp::DeltaEvaluator
};

}  // namespace agtram::baselines
