#include "baselines/gra.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "common/prng.hpp"
#include "common/thread_pool.hpp"
#include "drp/cost_model.hpp"
#include "obs/obs.hpp"

namespace agtram::baselines {

using common::Rng;

namespace {

/// A chromosome: for every server, the sorted set of extra replicas it
/// hosts (primaries are implicit and immutable).
struct Genome {
  std::vector<std::vector<drp::ObjectIndex>> rows;
};

bool row_contains(const std::vector<drp::ObjectIndex>& row,
                  drp::ObjectIndex k) {
  return std::binary_search(row.begin(), row.end(), k);
}

void row_insert(std::vector<drp::ObjectIndex>& row, drp::ObjectIndex k) {
  row.insert(std::upper_bound(row.begin(), row.end(), k), k);
}

std::uint64_t row_units(const drp::Problem& p,
                        const std::vector<drp::ObjectIndex>& row) {
  std::uint64_t units = 0;
  for (drp::ObjectIndex k : row) units += p.object_units[k];
  return units;
}

/// Drops random replicas until the row fits the server's replica headroom.
void repair_row(const drp::Problem& p, drp::ServerId i,
                std::vector<drp::ObjectIndex>& row,
                const std::vector<std::uint64_t>& headroom, Rng& rng) {
  std::uint64_t units = row_units(p, row);
  while (units > headroom[i] && !row.empty()) {
    const std::size_t victim = rng.below(row.size());
    units -= p.object_units[row[victim]];
    row.erase(row.begin() + static_cast<std::ptrdiff_t>(victim));
  }
}

drp::ReplicaPlacement materialise(const drp::Problem& p, const Genome& g) {
  drp::ReplicaPlacement placement(p);
  for (drp::ServerId i = 0; i < p.server_count(); ++i) {
    for (drp::ObjectIndex k : g.rows[i]) {
      if (placement.can_replicate(i, k)) placement.add_replica(i, k);
    }
  }
  return placement;
}

double fitness(const drp::Problem& p, const Genome& g) {
  AGTRAM_OBS_COUNT("gra.fitness_evals", 1);
  return drp::CostModel::total_cost(materialise(p, g));
}

/// Reusable buffers for delta_fitness (caller-owned so concurrent scoring
/// chunks each bring their own).  The per-object replicator sets live in a
/// flat CSR-style pool (`rset_data` sliced by `offset`) rather than one
/// vector per object: a paper-scale genome touches tens of thousands of
/// objects, and per-object vectors meant that many mallocs per fitness
/// call — enough allocator traffic to serialise the parallel scoring pass.
struct GraScratch {
  std::vector<std::uint32_t> count;     ///< replicas per object (pass 1)
  std::vector<std::uint32_t> offset;    ///< CSR offsets, size n+1
  std::vector<drp::ServerId> rset_data; ///< server ids, object-major
  std::vector<drp::ServerId> merged;    ///< one rset + primary, reused
  std::vector<double> partial;

  /// Per-object memo of replicator sets priced so far.
  /// object_cost_with_replicators is a pure function of (object, rset), so
  /// a remembered cost is the identical double bit for bit — and the GA
  /// re-prices the same sets constantly (elites survive verbatim, children
  /// inherit most parent rows), so by the later generations most touched
  /// objects hit the memo instead of walking their accessors again.
  /// Capped per object: the sets priced first come from the seed genomes
  /// and early elite lineages, exactly the ones that keep recurring.
  struct MemoEntry {
    std::uint32_t off;
    std::uint32_t len;
    double cost;
  };
  static constexpr std::size_t kMemoCap = 16;
  std::vector<std::vector<MemoEntry>> memo;            ///< per object
  std::vector<std::vector<drp::ServerId>> memo_keys;   ///< per-object pool
};

/// Chromosome fitness without materialising a placement: gathers each
/// object's replicator set straight from the (server-major, hence
/// server-sorted) genome rows, prices touched objects through
/// object_cost_with_replicators and untouched ones from the precomputed
/// primaries-only `base`, then re-sums in object order — the association
/// total_cost uses, so the result is bit-identical to the naive path.
/// Rows that violate the genome invariants (sorted, duplicate-free, no
/// primaries, within headroom — guaranteed post-repair) fall back to the
/// naive materialise, whose can_replicate guard defines the semantics.
double delta_fitness(const drp::Problem& p, const Genome& g,
                     const std::vector<double>& base,
                     const std::vector<std::uint64_t>& headroom,
                     GraScratch& s) {
  AGTRAM_OBS_COUNT("gra.delta_fitness_evals", 1);
  const std::size_t n = p.object_count();
  s.count.assign(n, 0);
  std::size_t replicas = 0;

  for (drp::ServerId i = 0; i < p.server_count(); ++i) {
    std::uint64_t units = 0;
    drp::ObjectIndex prev = 0;
    bool first = true;
    for (drp::ObjectIndex k : g.rows[i]) {
      if ((!first && k <= prev) || p.primary[k] == i) {
        AGTRAM_OBS_COUNT("gra.naive_fallbacks", 1);
        return fitness(p, g);
      }
      units += p.object_units[k];
      ++s.count[k];
      ++replicas;
      prev = k;
      first = false;
    }
    if (units > headroom[i]) {
      AGTRAM_OBS_COUNT("gra.naive_fallbacks", 1);
      return fitness(p, g);
    }
  }

  s.offset.resize(n + 1);
  s.offset[0] = 0;
  for (std::size_t k = 0; k < n; ++k) s.offset[k + 1] = s.offset[k] + s.count[k];
  s.rset_data.resize(replicas);
  s.count.assign(n, 0);  // reuse as per-object fill cursor
  for (drp::ServerId i = 0; i < p.server_count(); ++i) {
    // Server-major fill keeps each object's slice in ascending server order.
    for (drp::ObjectIndex k : g.rows[i]) {
      s.rset_data[s.offset[k] + s.count[k]++] = i;
    }
  }

  if (s.memo.size() != n) {
    s.memo.resize(n);
    s.memo_keys.resize(n);
  }
  s.partial.assign(base.begin(), base.end());
  for (std::size_t k = 0; k < n; ++k) {
    if (s.count[k] == 0) continue;
    // Merge the primary into the (ascending-server) slice; a real
    // materialise leaves replicators(k) in exactly this sorted order.
    const drp::ServerId primary = p.primary[k];
    const auto* first_rep = s.rset_data.data() + s.offset[k];
    const auto* last_rep = s.rset_data.data() + s.offset[k + 1];
    s.merged.assign(first_rep, last_rep);
    s.merged.insert(
        std::upper_bound(s.merged.begin(), s.merged.end(), primary), primary);

    auto& entries = s.memo[k];
    auto& keys = s.memo_keys[k];
    double cost = 0.0;
    bool found = false;
    for (const auto& e : entries) {
      if (e.len == s.merged.size() &&
          std::equal(s.merged.begin(), s.merged.end(),
                     keys.begin() + e.off)) {
        cost = e.cost;
        found = true;
        break;
      }
    }
    if (found) {
      AGTRAM_OBS_COUNT("gra.memo_hits", 1);
    } else {
      AGTRAM_OBS_COUNT("gra.memo_misses", 1);
    }
    if (!found) {
      cost = drp::CostModel::object_cost_with_replicators(
          p, static_cast<drp::ObjectIndex>(k), s.merged);
      if (entries.size() < GraScratch::kMemoCap) {
        const auto off = static_cast<std::uint32_t>(keys.size());
        keys.insert(keys.end(), s.merged.begin(), s.merged.end());
        entries.push_back(
            {off, static_cast<std::uint32_t>(s.merged.size()), cost});
      }
    }
    s.partial[k] = cost;
  }
  double total = 0.0;
  for (const double v : s.partial) total += v;
  return total;
}

/// Demand-seeded genome: each server greedily packs its own most-read
/// objects.  The GRA literature seeds part of the population with such
/// heuristic solutions; pure random initialisation is what the paper blames
/// for GRA's weak showing, so we keep both kinds.
Genome demand_seeded_genome(const drp::Problem& p,
                            const std::vector<std::uint64_t>& headroom,
                            double fill, Rng& rng) {
  Genome g;
  g.rows.resize(p.server_count());
  for (drp::ServerId i = 0; i < p.server_count(); ++i) {
    auto objects = std::vector<drp::ServerSideAccess>(
        p.access.server_objects(i).begin(), p.access.server_objects(i).end());
    std::sort(objects.begin(), objects.end(),
              [](const drp::ServerSideAccess& a,
                 const drp::ServerSideAccess& b) { return a.reads > b.reads; });
    const auto budget = static_cast<std::uint64_t>(
        static_cast<double>(headroom[i]) * fill * rng.uniform(0.6, 1.0));
    std::uint64_t units = 0;
    for (const auto& access : objects) {
      if (access.reads == 0 || p.primary[access.object] == i) continue;
      // Only pack objects whose local read demand beats the system-wide
      // update volume — a public-knowledge proxy for a profitable replica.
      if (access.reads <= p.access.total_writes(access.object)) continue;
      if (units + p.object_units[access.object] > budget) continue;
      row_insert(g.rows[i], access.object);
      units += p.object_units[access.object];
    }
  }
  return g;
}

Genome random_genome(const drp::Problem& p,
                     const std::vector<std::uint64_t>& headroom,
                     double fill, Rng& rng) {
  Genome g;
  g.rows.resize(p.server_count());
  for (drp::ServerId i = 0; i < p.server_count(); ++i) {
    const auto budget =
        static_cast<std::uint64_t>(static_cast<double>(headroom[i]) * fill);
    std::uint64_t units = 0;
    std::uint32_t stall = 0;
    while (units < budget && stall < 32) {
      const auto k =
          static_cast<drp::ObjectIndex>(rng.below(p.object_count()));
      if (p.primary[k] == i || row_contains(g.rows[i], k) ||
          units + p.object_units[k] > headroom[i]) {
        ++stall;
        continue;
      }
      row_insert(g.rows[i], k);
      units += p.object_units[k];
      stall = 0;
    }
  }
  return g;
}

void mutate(const drp::Problem& p, Genome& g,
            const std::vector<std::uint64_t>& headroom, double flips,
            Rng& rng) {
  const auto count = static_cast<std::uint32_t>(
      std::max(0.0, std::round(flips * (0.5 + rng.uniform()))));
  for (std::uint32_t f = 0; f < count; ++f) {
    const auto i = static_cast<drp::ServerId>(rng.below(p.server_count()));
    auto& row = g.rows[i];
    if (!row.empty() && rng.chance(0.5)) {
      row.erase(row.begin() + static_cast<std::ptrdiff_t>(rng.below(row.size())));
    } else {
      const auto k =
          static_cast<drp::ObjectIndex>(rng.below(p.object_count()));
      if (p.primary[k] == i || row_contains(row, k)) continue;
      if (row_units(p, row) + p.object_units[k] > headroom[i]) continue;
      row_insert(row, k);
    }
  }
}

}  // namespace

drp::ReplicaPlacement run_gra(const drp::Problem& problem,
                              const GraConfig& config) {
  assert(config.population >= 2);
  Rng rng(config.seed);

  // Replica headroom per server (capacity minus immutable primary load).
  const auto primary_load = problem.primary_load();
  std::vector<std::uint64_t> headroom(problem.server_count());
  for (std::size_t i = 0; i < headroom.size(); ++i) {
    headroom[i] = problem.capacity[i] - primary_load[i];
  }

  std::vector<Genome> population;
  std::vector<double> scores;
  population.reserve(config.population);
  // Seed one primaries-only genome (so the search never regresses below the
  // initial network), a handful of demand-seeded heuristic genomes, and
  // random genomes for diversity.
  population.push_back(Genome{std::vector<std::vector<drp::ObjectIndex>>(
      problem.server_count())});
  const std::uint32_t seeded = std::min<std::uint32_t>(
      config.population / 4, config.population - 1);
  for (std::uint32_t g = 0; g < seeded; ++g) {
    population.push_back(
        demand_seeded_genome(problem, headroom, config.init_fill, rng));
  }
  while (population.size() < config.population) {
    population.push_back(
        random_genome(problem, headroom, config.init_fill, rng));
  }
  // Primaries-only per-object costs: the delta fitness prices every object a
  // genome does not touch straight from this table.
  std::vector<double> base;
  if (config.eval == EvalPath::Delta) {
    base.resize(problem.object_count());
    drp::CostModel::object_costs(drp::ReplicaPlacement(problem), base);
  }

  // Scratches persist across generations (checked out per scoring chunk, so
  // concurrent chunks never share one): the per-object memo they carry is
  // what turns repeat rset pricing into a lookup, and the big flat buffers
  // stop being reallocated every generation.
  std::vector<std::unique_ptr<GraScratch>> scratch_pool;
  std::mutex scratch_mutex;

  /// Scores population[from..) into scores[from..); entries below `from`
  /// (elites) keep their carried-over values.
  const auto score_range = [&](std::size_t from) {
    if (config.eval == EvalPath::Naive) {
      for (std::size_t i = from; i < population.size(); ++i) {
        scores[i] = fitness(problem, population[i]);
      }
      return;
    }
    const auto body = [&](std::size_t first, std::size_t last) {
      std::unique_ptr<GraScratch> scratch;
      {
        const std::lock_guard<std::mutex> lock(scratch_mutex);
        if (!scratch_pool.empty()) {
          scratch = std::move(scratch_pool.back());
          scratch_pool.pop_back();
        }
      }
      if (!scratch) scratch = std::make_unique<GraScratch>();
      for (std::size_t i = first; i < last; ++i) {
        scores[i] = delta_fitness(problem, population[i], base, headroom,
                                  *scratch);
      }
      const std::lock_guard<std::mutex> lock(scratch_mutex);
      scratch_pool.push_back(std::move(scratch));
    };
    if (config.parallel_scan) {
      common::ThreadPool::shared().parallel_for(from, population.size(), body,
                                                /*min_grain=*/1);
    } else {
      body(from, population.size());
    }
  };

  scores.resize(config.population);
  score_range(0);

  const auto best_index = [&scores] {
    std::size_t best = 0;
    for (std::size_t i = 1; i < scores.size(); ++i) {
      if (scores[i] < scores[best]) best = i;
    }
    return best;
  };

  Genome best_ever = population[best_index()];
  double best_score = scores[best_index()];

  const auto tournament_pick = [&]() -> const Genome& {
    std::size_t winner = rng.below(population.size());
    for (std::uint32_t t = 1; t < config.tournament; ++t) {
      const std::size_t challenger = rng.below(population.size());
      if (scores[challenger] < scores[winner]) winner = challenger;
    }
    return population[winner];
  };

  for (std::uint32_t gen = 0; gen < config.generations; ++gen) {
    std::vector<Genome> next;
    next.reserve(config.population);

    // Elitism: carry over the best genomes unchanged.
    std::vector<std::size_t> order(population.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&scores](std::size_t a, std::size_t b) {
      return scores[a] < scores[b];
    });
    const std::uint32_t elite_count =
        std::min<std::uint32_t>(config.elites, config.population);
    std::vector<double> elite_scores;
    elite_scores.reserve(elite_count);
    for (std::uint32_t e = 0; e < elite_count; ++e) {
      next.push_back(population[order[e]]);
      elite_scores.push_back(scores[order[e]]);
    }

    while (next.size() < config.population) {
      Genome child = tournament_pick();
      if (rng.chance(config.crossover_rate)) {
        const Genome& other = tournament_pick();
        const std::size_t cut = rng.below(problem.server_count());
        for (std::size_t i = cut; i < problem.server_count(); ++i) {
          child.rows[i] = other.rows[i];
        }
      }
      mutate(problem, child, headroom, config.mutations_per_child, rng);
      for (drp::ServerId i = 0; i < problem.server_count(); ++i) {
        repair_row(problem, i, child.rows[i], headroom, rng);
      }
      next.push_back(std::move(child));
    }

    population = std::move(next);
    // Elites carry their scores (fitness is pure, so the cached value is
    // bitwise the recomputation); the naive oracle rescoring everything from
    // 0 would produce the same doubles.
    std::size_t rescore_from = 0;
    if (config.eval == EvalPath::Delta) {
      for (std::size_t e = 0; e < elite_scores.size(); ++e) {
        scores[e] = elite_scores[e];
      }
      rescore_from = elite_scores.size();
    }
    score_range(rescore_from);
    for (std::size_t i = 0; i < population.size(); ++i) {
      if (scores[i] < best_score) {
        best_score = scores[i];
        best_ever = population[i];
      }
    }
  }
  return materialise(problem, best_ever);
}

}  // namespace agtram::baselines
