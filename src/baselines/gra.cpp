#include "baselines/gra.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "common/prng.hpp"
#include "drp/cost_model.hpp"

namespace agtram::baselines {

using common::Rng;

namespace {

/// A chromosome: for every server, the sorted set of extra replicas it
/// hosts (primaries are implicit and immutable).
struct Genome {
  std::vector<std::vector<drp::ObjectIndex>> rows;
};

bool row_contains(const std::vector<drp::ObjectIndex>& row,
                  drp::ObjectIndex k) {
  return std::binary_search(row.begin(), row.end(), k);
}

void row_insert(std::vector<drp::ObjectIndex>& row, drp::ObjectIndex k) {
  row.insert(std::upper_bound(row.begin(), row.end(), k), k);
}

std::uint64_t row_units(const drp::Problem& p,
                        const std::vector<drp::ObjectIndex>& row) {
  std::uint64_t units = 0;
  for (drp::ObjectIndex k : row) units += p.object_units[k];
  return units;
}

/// Drops random replicas until the row fits the server's replica headroom.
void repair_row(const drp::Problem& p, drp::ServerId i,
                std::vector<drp::ObjectIndex>& row,
                const std::vector<std::uint64_t>& headroom, Rng& rng) {
  std::uint64_t units = row_units(p, row);
  while (units > headroom[i] && !row.empty()) {
    const std::size_t victim = rng.below(row.size());
    units -= p.object_units[row[victim]];
    row.erase(row.begin() + static_cast<std::ptrdiff_t>(victim));
  }
}

drp::ReplicaPlacement materialise(const drp::Problem& p, const Genome& g) {
  drp::ReplicaPlacement placement(p);
  for (drp::ServerId i = 0; i < p.server_count(); ++i) {
    for (drp::ObjectIndex k : g.rows[i]) {
      if (placement.can_replicate(i, k)) placement.add_replica(i, k);
    }
  }
  return placement;
}

double fitness(const drp::Problem& p, const Genome& g) {
  return drp::CostModel::total_cost(materialise(p, g));
}

/// Demand-seeded genome: each server greedily packs its own most-read
/// objects.  The GRA literature seeds part of the population with such
/// heuristic solutions; pure random initialisation is what the paper blames
/// for GRA's weak showing, so we keep both kinds.
Genome demand_seeded_genome(const drp::Problem& p,
                            const std::vector<std::uint64_t>& headroom,
                            double fill, Rng& rng) {
  Genome g;
  g.rows.resize(p.server_count());
  for (drp::ServerId i = 0; i < p.server_count(); ++i) {
    auto objects = std::vector<drp::ServerSideAccess>(
        p.access.server_objects(i).begin(), p.access.server_objects(i).end());
    std::sort(objects.begin(), objects.end(),
              [](const drp::ServerSideAccess& a,
                 const drp::ServerSideAccess& b) { return a.reads > b.reads; });
    const auto budget = static_cast<std::uint64_t>(
        static_cast<double>(headroom[i]) * fill * rng.uniform(0.6, 1.0));
    std::uint64_t units = 0;
    for (const auto& access : objects) {
      if (access.reads == 0 || p.primary[access.object] == i) continue;
      // Only pack objects whose local read demand beats the system-wide
      // update volume — a public-knowledge proxy for a profitable replica.
      if (access.reads <= p.access.total_writes(access.object)) continue;
      if (units + p.object_units[access.object] > budget) continue;
      row_insert(g.rows[i], access.object);
      units += p.object_units[access.object];
    }
  }
  return g;
}

Genome random_genome(const drp::Problem& p,
                     const std::vector<std::uint64_t>& headroom,
                     double fill, Rng& rng) {
  Genome g;
  g.rows.resize(p.server_count());
  for (drp::ServerId i = 0; i < p.server_count(); ++i) {
    const auto budget =
        static_cast<std::uint64_t>(static_cast<double>(headroom[i]) * fill);
    std::uint64_t units = 0;
    std::uint32_t stall = 0;
    while (units < budget && stall < 32) {
      const auto k =
          static_cast<drp::ObjectIndex>(rng.below(p.object_count()));
      if (p.primary[k] == i || row_contains(g.rows[i], k) ||
          units + p.object_units[k] > headroom[i]) {
        ++stall;
        continue;
      }
      row_insert(g.rows[i], k);
      units += p.object_units[k];
      stall = 0;
    }
  }
  return g;
}

void mutate(const drp::Problem& p, Genome& g,
            const std::vector<std::uint64_t>& headroom, double flips,
            Rng& rng) {
  const auto count = static_cast<std::uint32_t>(
      std::max(0.0, std::round(flips * (0.5 + rng.uniform()))));
  for (std::uint32_t f = 0; f < count; ++f) {
    const auto i = static_cast<drp::ServerId>(rng.below(p.server_count()));
    auto& row = g.rows[i];
    if (!row.empty() && rng.chance(0.5)) {
      row.erase(row.begin() + static_cast<std::ptrdiff_t>(rng.below(row.size())));
    } else {
      const auto k =
          static_cast<drp::ObjectIndex>(rng.below(p.object_count()));
      if (p.primary[k] == i || row_contains(row, k)) continue;
      if (row_units(p, row) + p.object_units[k] > headroom[i]) continue;
      row_insert(row, k);
    }
  }
}

}  // namespace

drp::ReplicaPlacement run_gra(const drp::Problem& problem,
                              const GraConfig& config) {
  assert(config.population >= 2);
  Rng rng(config.seed);

  // Replica headroom per server (capacity minus immutable primary load).
  const auto primary_load = problem.primary_load();
  std::vector<std::uint64_t> headroom(problem.server_count());
  for (std::size_t i = 0; i < headroom.size(); ++i) {
    headroom[i] = problem.capacity[i] - primary_load[i];
  }

  std::vector<Genome> population;
  std::vector<double> scores;
  population.reserve(config.population);
  // Seed one primaries-only genome (so the search never regresses below the
  // initial network), a handful of demand-seeded heuristic genomes, and
  // random genomes for diversity.
  population.push_back(Genome{std::vector<std::vector<drp::ObjectIndex>>(
      problem.server_count())});
  const std::uint32_t seeded = std::min<std::uint32_t>(
      config.population / 4, config.population - 1);
  for (std::uint32_t g = 0; g < seeded; ++g) {
    population.push_back(
        demand_seeded_genome(problem, headroom, config.init_fill, rng));
  }
  while (population.size() < config.population) {
    population.push_back(
        random_genome(problem, headroom, config.init_fill, rng));
  }
  scores.reserve(config.population);
  for (const Genome& g : population) {
    scores.push_back(fitness(problem, g));
  }

  const auto best_index = [&scores] {
    std::size_t best = 0;
    for (std::size_t i = 1; i < scores.size(); ++i) {
      if (scores[i] < scores[best]) best = i;
    }
    return best;
  };

  Genome best_ever = population[best_index()];
  double best_score = scores[best_index()];

  const auto tournament_pick = [&]() -> const Genome& {
    std::size_t winner = rng.below(population.size());
    for (std::uint32_t t = 1; t < config.tournament; ++t) {
      const std::size_t challenger = rng.below(population.size());
      if (scores[challenger] < scores[winner]) winner = challenger;
    }
    return population[winner];
  };

  for (std::uint32_t gen = 0; gen < config.generations; ++gen) {
    std::vector<Genome> next;
    next.reserve(config.population);

    // Elitism: carry over the best genomes unchanged.
    std::vector<std::size_t> order(population.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&scores](std::size_t a, std::size_t b) {
      return scores[a] < scores[b];
    });
    for (std::uint32_t e = 0; e < std::min<std::uint32_t>(config.elites,
                                                          config.population);
         ++e) {
      next.push_back(population[order[e]]);
    }

    while (next.size() < config.population) {
      Genome child = tournament_pick();
      if (rng.chance(config.crossover_rate)) {
        const Genome& other = tournament_pick();
        const std::size_t cut = rng.below(problem.server_count());
        for (std::size_t i = cut; i < problem.server_count(); ++i) {
          child.rows[i] = other.rows[i];
        }
      }
      mutate(problem, child, headroom, config.mutations_per_child, rng);
      for (drp::ServerId i = 0; i < problem.server_count(); ++i) {
        repair_row(problem, i, child.rows[i], headroom, rng);
      }
      next.push_back(std::move(child));
    }

    population = std::move(next);
    for (std::size_t i = 0; i < population.size(); ++i) {
      scores[i] = fitness(problem, population[i]);
      if (scores[i] < best_score) {
        best_score = scores[i];
        best_ever = population[i];
      }
    }
  }
  return materialise(problem, best_ever);
}

}  // namespace agtram::baselines
