// Uniform access to all six replica-placement methods, in the paper's
// comparison order.  The bench harness sweeps this list to regenerate every
// figure/table.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "drp/placement.hpp"
#include "drp/problem.hpp"

namespace agtram::baselines {

struct AlgorithmEntry {
  std::string name;  ///< paper label: GRA, Aε-Star, Greedy, AGT-RAM, DA, EA
  /// Runs the method to completion; `seed` feeds the stochastic methods
  /// (GRA, DA, EA) and is ignored by the deterministic ones.
  std::function<drp::ReplicaPlacement(const drp::Problem&, std::uint64_t seed)>
      run;
};

/// All six methods.  Order matches the paper's tables:
/// Greedy, GRA, Aε-Star, AGT-RAM, DA, EA.
std::vector<AlgorithmEntry> all_algorithms();

/// The paper's six plus the extended comparison set from the citation
/// lineage: Selfish (Chun et al. best-response Nash), LocalSearch, SA.
std::vector<AlgorithmEntry> extended_algorithms();

/// Lookup by name over the extended set (throws std::invalid_argument on
/// unknown names).
AlgorithmEntry find_algorithm(const std::string& name);

}  // namespace agtram::baselines
