// Uniform access to all six replica-placement methods, in the paper's
// comparison order.  The bench harness sweeps this list to regenerate every
// figure/table.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "baselines/eval_path.hpp"
#include "drp/placement.hpp"
#include "drp/problem.hpp"

namespace agtram::baselines {

/// Cross-cutting execution knobs applied to every baseline that supports
/// them (AGT-RAM and the auction mechanisms have their own runtime policy
/// and ignore these).
struct AlgoOptions {
  /// Naive forces the full-recomputation oracle paths; Delta (default) the
  /// incremental engine.  Placements and costs are bit-identical either way.
  EvalPath eval = EvalPath::Delta;
  /// Enables the delta paths' pool-parallel candidate scans.
  bool parallel_scans = true;
};

struct AlgorithmEntry {
  std::string name;  ///< paper label: GRA, Aε-Star, Greedy, AGT-RAM, DA, EA
  /// Runs the method to completion; `seed` feeds the stochastic methods
  /// (GRA, DA, EA) and is ignored by the deterministic ones.
  std::function<drp::ReplicaPlacement(const drp::Problem&, std::uint64_t seed)>
      run;
};

/// All six methods.  Order matches the paper's tables:
/// Greedy, GRA, Aε-Star, AGT-RAM, DA, EA.
std::vector<AlgorithmEntry> all_algorithms(const AlgoOptions& options = {});

/// The paper's six plus the extended comparison set from the citation
/// lineage: Glauber (Etesami heat-bath dynamics over the MessageBus),
/// Selfish (Chun et al. best-response Nash), LocalSearch, SA.
std::vector<AlgorithmEntry> extended_algorithms(
    const AlgoOptions& options = {});

/// Lookup by name over the extended set (throws std::invalid_argument on
/// unknown names).
AlgorithmEntry find_algorithm(const std::string& name,
                              const AlgoOptions& options = {});

}  // namespace agtram::baselines
