#include "baselines/registry.hpp"

#include <stdexcept>

#include "baselines/aestar.hpp"
#include "baselines/annealing.hpp"
#include "baselines/auctions.hpp"
#include "baselines/glauber.hpp"
#include "baselines/gra.hpp"
#include "baselines/greedy.hpp"
#include "baselines/local_search.hpp"
#include "baselines/selfish_caching.hpp"
#include "core/agt_ram.hpp"

namespace agtram::baselines {

std::vector<AlgorithmEntry> all_algorithms(const AlgoOptions& options) {
  std::vector<AlgorithmEntry> algorithms;
  algorithms.push_back(AlgorithmEntry{
      "Greedy", [options](const drp::Problem& p, std::uint64_t) {
        GreedyConfig cfg;
        cfg.eval = options.eval;
        cfg.parallel_scan = options.parallel_scans;
        return run_greedy(p, cfg);
      }});
  algorithms.push_back(AlgorithmEntry{
      "GRA", [options](const drp::Problem& p, std::uint64_t seed) {
        GraConfig cfg;
        cfg.seed = seed;
        cfg.eval = options.eval;
        cfg.parallel_scan = options.parallel_scans;
        return run_gra(p, cfg);
      }});
  algorithms.push_back(AlgorithmEntry{
      "Ae-Star", [options](const drp::Problem& p, std::uint64_t) {
        AeStarConfig cfg;
        cfg.eval = options.eval;
        cfg.parallel_scan = options.parallel_scans;
        return run_aestar(p, cfg);
      }});
  algorithms.push_back(AlgorithmEntry{
      "AGT-RAM", [](const drp::Problem& p, std::uint64_t) {
        return core::run_agt_ram(p).placement;
      }});
  algorithms.push_back(AlgorithmEntry{
      "DA", [](const drp::Problem& p, std::uint64_t seed) {
        DutchAuctionConfig cfg;
        cfg.seed = seed;
        return run_dutch_auction(p, cfg);
      }});
  algorithms.push_back(AlgorithmEntry{
      "EA", [](const drp::Problem& p, std::uint64_t seed) {
        EnglishAuctionConfig cfg;
        cfg.seed = seed;
        return run_english_auction(p, cfg);
      }});
  return algorithms;
}

std::vector<AlgorithmEntry> extended_algorithms(const AlgoOptions& options) {
  std::vector<AlgorithmEntry> algorithms = all_algorithms(options);
  // The seventh baseline: genuinely distributed Glauber dynamics (the
  // paper's six stay in all_algorithms so its tables keep their shape).
  algorithms.push_back(AlgorithmEntry{
      "Glauber", [options](const drp::Problem& p, std::uint64_t seed) {
        GlauberConfig cfg;
        cfg.seed = seed;
        cfg.eval = options.eval;
        return run_glauber(p, cfg).placement;
      }});
  algorithms.push_back(AlgorithmEntry{
      "Selfish", [options](const drp::Problem& p, std::uint64_t seed) {
        SelfishCachingConfig cfg;
        cfg.seed = seed;
        cfg.eval = options.eval;
        return run_selfish_caching(p, cfg).placement;
      }});
  algorithms.push_back(AlgorithmEntry{
      "LocalSearch", [options](const drp::Problem& p, std::uint64_t seed) {
        LocalSearchConfig cfg;
        cfg.seed = seed;
        cfg.eval = options.eval;
        return run_local_search(p, cfg);
      }});
  algorithms.push_back(AlgorithmEntry{
      "SA", [options](const drp::Problem& p, std::uint64_t seed) {
        AnnealingConfig cfg;
        cfg.seed = seed;
        cfg.eval = options.eval;
        cfg.parallel_scan = options.parallel_scans;
        return run_annealing(p, cfg);
      }});
  return algorithms;
}

AlgorithmEntry find_algorithm(const std::string& name,
                              const AlgoOptions& options) {
  for (auto& entry : extended_algorithms(options)) {
    if (entry.name == name) return entry;
  }
  throw std::invalid_argument("unknown algorithm: " + name);
}

}  // namespace agtram::baselines
