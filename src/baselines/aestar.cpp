#include "baselines/aestar.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <queue>
#include <vector>

#include "drp/cost_model.hpp"

namespace agtram::baselines {

namespace {

struct Move {
  double benefit;
  drp::ServerId server;
  drp::ObjectIndex object;
};

/// Optimistic remaining saving: every non-local read could, at best, become
/// free without any added broadcast cost.  Admissible by construction.
double optimistic_saving(const drp::ReplicaPlacement& placement) {
  const drp::Problem& p = placement.problem();
  double saving = 0.0;
  for (drp::ObjectIndex k = 0; k < p.object_count(); ++k) {
    const double o = static_cast<double>(p.object_units[k]);
    const auto accessors = p.access.accessors(k);
    for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
      const auto& a = accessors[slot];
      if (a.reads == 0 || placement.is_replicator(a.server, k)) continue;
      saving += static_cast<double>(a.reads) * o *
                static_cast<double>(placement.nn_distance_by_slot(k, slot));
    }
  }
  return saving;
}

/// Cheap candidate generator: for each object, score its hungriest
/// non-replicator reader (r * o * nn); evaluate exact global benefit only
/// for the highest-scoring shortlist and return the top `want` moves.
std::vector<Move> candidate_moves(const drp::ReplicaPlacement& placement,
                                  std::uint32_t want) {
  const drp::Problem& p = placement.problem();
  struct Scored {
    double score;
    drp::ServerId server;
    drp::ObjectIndex object;
  };
  std::vector<Scored> shortlist;
  shortlist.reserve(p.object_count());
  for (drp::ObjectIndex k = 0; k < p.object_count(); ++k) {
    const double o = static_cast<double>(p.object_units[k]);
    const auto accessors = p.access.accessors(k);
    double best_score = 0.0;
    drp::ServerId best_server = 0;
    for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
      const auto& a = accessors[slot];
      if (a.reads == 0 || placement.is_replicator(a.server, k)) continue;
      if (!placement.can_replicate(a.server, k)) continue;
      const double score =
          static_cast<double>(a.reads) * o *
          static_cast<double>(placement.nn_distance_by_slot(k, slot));
      if (score > best_score) {
        best_score = score;
        best_server = a.server;
      }
    }
    if (best_score > 0.0) shortlist.push_back(Scored{best_score, best_server, k});
  }
  std::sort(shortlist.begin(), shortlist.end(),
            [](const Scored& a, const Scored& b) { return a.score > b.score; });
  // Walk the shortlist in score order, evaluating exact global benefits.
  // The walk goes deeper than 4x`want` only while it has not yet found
  // `want` positive moves, so "no moves returned" really means exhaustion.
  std::vector<Move> moves;
  for (std::size_t s = 0; s < shortlist.size(); ++s) {
    if (s >= std::size_t{4} * want && moves.size() >= want) break;
    const double benefit = drp::CostModel::global_benefit(
        placement, shortlist[s].server, shortlist[s].object);
    if (benefit > 0.0) {
      moves.push_back(Move{benefit, shortlist[s].server, shortlist[s].object});
    }
  }
  std::sort(moves.begin(), moves.end(), [](const Move& a, const Move& b) {
    return a.benefit > b.benefit;
  });
  if (moves.size() > want) moves.resize(want);
  return moves;
}

/// Best reader-site move for one object by exact global benefit.
Move best_reader_move(const drp::ReplicaPlacement& placement,
                      drp::ObjectIndex k) {
  const drp::Problem& p = placement.problem();
  Move best{0.0, 0, k};
  for (const auto& a : p.access.accessors(k)) {
    if (a.reads == 0 || !placement.can_replicate(a.server, k)) continue;
    const double benefit =
        drp::CostModel::global_benefit(placement, a.server, k);
    if (benefit > best.benefit) {
      best.benefit = benefit;
      best.server = a.server;
    }
  }
  return best;
}

/// Exhausts all remaining positive reader-site moves with a lazy per-object
/// max-heap (benefits only decrease, so stale tops are re-validated on pop).
void complete_greedily(drp::ReplicaPlacement& placement) {
  struct HeapEntry {
    double benefit;
    drp::ObjectIndex object;
    bool operator<(const HeapEntry& other) const noexcept {
      if (benefit != other.benefit) return benefit < other.benefit;
      return object > other.object;
    }
  };
  std::priority_queue<HeapEntry> heap;
  const std::size_t n = placement.problem().object_count();
  for (drp::ObjectIndex k = 0; k < n; ++k) {
    const Move move = best_reader_move(placement, k);
    if (move.benefit > 0.0) heap.push(HeapEntry{move.benefit, k});
  }
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const Move fresh = best_reader_move(placement, top.object);
    if (fresh.benefit <= 0.0) continue;
    if (!heap.empty() && fresh.benefit < heap.top().benefit) {
      heap.push(HeapEntry{fresh.benefit, top.object});
      continue;
    }
    placement.add_replica(fresh.server, fresh.object);
    const Move next = best_reader_move(placement, top.object);
    if (next.benefit > 0.0) heap.push(HeapEntry{next.benefit, top.object});
  }
}

struct Node {
  drp::ReplicaPlacement placement;
  double g;  ///< current OTC
  double f;  ///< g - optimistic_saving  (lower bound on reachable OTC)
};

}  // namespace

drp::ReplicaPlacement run_aestar(const drp::Problem& problem,
                                 const AeStarConfig& config) {
  drp::ReplicaPlacement root(problem);
  const double root_cost = drp::CostModel::total_cost(root);

  std::vector<std::unique_ptr<Node>> open;
  open.push_back(std::make_unique<Node>(
      Node{root, root_cost, root_cost - optimistic_saving(root)}));

  // Incumbent: best complete (move-exhausted) solution seen so far.
  std::unique_ptr<drp::ReplicaPlacement> incumbent;
  double incumbent_cost = root_cost;
  // Best partial node by g, used for greedy completion at budget exhaustion.
  drp::ReplicaPlacement best_partial = root;
  double best_partial_cost = root_cost;

  std::size_t expansions = 0;
  while (!open.empty() && expansions < config.max_expansions) {
    // FOCAL rule of Aε-Star: among nodes with f <= (1+eps) * f_min, expand
    // the one with the smallest g (most progress).
    std::size_t min_f = 0;
    for (std::size_t i = 1; i < open.size(); ++i) {
      if (open[i]->f < open[min_f]->f) min_f = i;
    }
    const double focal_bound = open[min_f]->f * (1.0 + config.epsilon) +
                               1e-9;
    std::size_t pick = min_f;
    for (std::size_t i = 0; i < open.size(); ++i) {
      if (open[i]->f <= focal_bound && open[i]->g < open[pick]->g) pick = i;
    }

    std::unique_ptr<Node> node = std::move(open[pick]);
    open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
    ++expansions;

    // Bound: a node that cannot beat the incumbent is pruned.
    if (incumbent && node->f >= incumbent_cost) continue;

    const auto moves = candidate_moves(node->placement, config.branching);
    if (moves.empty()) {
      // The shortlist dried up: polish with the exhaustive reader-site
      // greedy pass before scoring the leaf as an incumbent.
      drp::ReplicaPlacement leaf = node->placement;
      complete_greedily(leaf);
      const double leaf_cost = drp::CostModel::total_cost(leaf);
      if (!incumbent || leaf_cost < incumbent_cost) {
        incumbent_cost = leaf_cost;
        incumbent = std::make_unique<drp::ReplicaPlacement>(std::move(leaf));
      }
      continue;
    }
    for (const Move& move : moves) {
      auto child = std::make_unique<Node>(*node);
      child->placement.add_replica(move.server, move.object);
      child->g = node->g - move.benefit;
      child->f = child->g - optimistic_saving(child->placement);
      if (incumbent && child->f >= incumbent_cost) continue;
      if (child->g < best_partial_cost) {
        best_partial_cost = child->g;
        best_partial = child->placement;
      }
      open.push_back(std::move(child));
    }
    if (open.size() > config.max_open) {
      // Evict the worst-f tail to bound memory.
      std::sort(open.begin(), open.end(),
                [](const auto& a, const auto& b) { return a->f < b->f; });
      open.resize(config.max_open);
    }
  }

  if (incumbent && incumbent_cost <= best_partial_cost) {
    return std::move(*incumbent);
  }
  // Budget exhausted on a promising partial: complete it greedily.
  complete_greedily(best_partial);
  if (incumbent &&
      incumbent_cost < drp::CostModel::total_cost(best_partial)) {
    return std::move(*incumbent);
  }
  return best_partial;
}

}  // namespace agtram::baselines
