#include "baselines/aestar.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "drp/cost_model.hpp"
#include "drp/delta_evaluator.hpp"
#include "obs/obs.hpp"

namespace agtram::baselines {

namespace {

struct Move {
  double benefit;
  drp::ServerId server;
  drp::ObjectIndex object;
};

struct Scored {
  double score;
  drp::ServerId server;
  drp::ObjectIndex object;
};

/// Optimistic remaining saving: every non-local read could, at best, become
/// free without any added broadcast cost.  Admissible by construction.
/// Accumulated as per-object subtotals summed in object order — the same
/// association DeltaEvaluator::optimistic_saving re-sums from its cache, so
/// the two paths see bit-identical f values.
double optimistic_saving(const drp::ReplicaPlacement& placement) {
  const drp::Problem& p = placement.problem();
  double saving = 0.0;
  for (drp::ObjectIndex k = 0; k < p.object_count(); ++k) {
    const double o = static_cast<double>(p.object_units[k]);
    const auto accessors = p.access.accessors(k);
    double s_k = 0.0;
    for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
      const auto& a = accessors[slot];
      if (a.reads == 0 || placement.is_replicator(a.server, k)) continue;
      s_k += static_cast<double>(a.reads) * o *
             static_cast<double>(placement.nn_distance_by_slot(k, slot));
    }
    saving += s_k;
  }
  return saving;
}

/// Hungriest feasible non-replicator reader of object k (r * o * nn), the
/// cheap per-object score behind the candidate shortlist.
Scored shortlist_entry(const drp::ReplicaPlacement& placement,
                       drp::ObjectIndex k) {
  const drp::Problem& p = placement.problem();
  const double o = static_cast<double>(p.object_units[k]);
  const auto accessors = p.access.accessors(k);
  Scored best{0.0, 0, k};
  for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
    const auto& a = accessors[slot];
    if (a.reads == 0 || placement.is_replicator(a.server, k)) continue;
    if (!placement.can_replicate(a.server, k)) continue;
    const double score =
        static_cast<double>(a.reads) * o *
        static_cast<double>(placement.nn_distance_by_slot(k, slot));
    if (score > best.score) {
      best.score = score;
      best.server = a.server;
    }
  }
  return best;
}

/// Cheap candidate generator: for each object, score its hungriest
/// non-replicator reader; evaluate exact global benefit only for the
/// highest-scoring shortlist and return the top `want` moves.  When
/// `parallel` is set the per-object scoring fans out over the pool; the
/// compaction, sorts and exact walk stay serial in deterministic order, so
/// the returned moves are byte-identical either way.
std::vector<Move> candidate_moves(const drp::ReplicaPlacement& placement,
                                  std::uint32_t want, bool parallel) {
  const drp::Problem& p = placement.problem();
  const std::size_t n = p.object_count();
  std::vector<Scored> scored(n);
  const auto score_chunk = [&](std::size_t first, std::size_t last) {
    for (std::size_t k = first; k < last; ++k) {
      scored[k] = shortlist_entry(placement, static_cast<drp::ObjectIndex>(k));
    }
  };
  if (parallel) {
    common::ThreadPool::shared().parallel_for(0, n, score_chunk,
                                              /*min_grain=*/512);
  } else {
    score_chunk(0, n);
  }

  AGTRAM_OBS_COUNT("aestar.shortlist_scored", n);
  std::vector<Scored> shortlist;
  shortlist.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    if (scored[k].score > 0.0) shortlist.push_back(scored[k]);
  }
  std::sort(shortlist.begin(), shortlist.end(),
            [](const Scored& a, const Scored& b) { return a.score > b.score; });
  // Walk the shortlist in score order, evaluating exact global benefits.
  // The walk goes deeper than 4x`want` only while it has not yet found
  // `want` positive moves, so "no moves returned" really means exhaustion.
  std::vector<Move> moves;
  for (std::size_t s = 0; s < shortlist.size(); ++s) {
    if (s >= std::size_t{4} * want && moves.size() >= want) break;
    AGTRAM_OBS_COUNT("aestar.exact_evals", 1);
    const double benefit = drp::CostModel::global_benefit(
        placement, shortlist[s].server, shortlist[s].object);
    if (benefit > 0.0) {
      moves.push_back(Move{benefit, shortlist[s].server, shortlist[s].object});
    }
  }
  std::sort(moves.begin(), moves.end(), [](const Move& a, const Move& b) {
    return a.benefit > b.benefit;
  });
  if (moves.size() > want) moves.resize(want);
  AGTRAM_OBS_COUNT("aestar.moves_returned", moves.size());
  return moves;
}

/// Best reader-site move for one object by exact global benefit.
Move best_reader_move(const drp::ReplicaPlacement& placement,
                      drp::ObjectIndex k) {
  const drp::Problem& p = placement.problem();
  Move best{0.0, 0, k};
  for (const auto& a : p.access.accessors(k)) {
    if (a.reads == 0 || !placement.can_replicate(a.server, k)) continue;
    const double benefit =
        drp::CostModel::global_benefit(placement, a.server, k);
    if (benefit > best.benefit) {
      best.benefit = benefit;
      best.server = a.server;
    }
  }
  return best;
}

/// Exhausts all remaining positive reader-site moves with a lazy per-object
/// max-heap (benefits only decrease, so stale tops are re-validated on pop).
/// `State` is either a bare ReplicaPlacement (naive) or a DeltaEvaluator
/// (delta); both expose the same benefits bit for bit, so the two paths walk
/// identical move sequences.
template <typename State>
void complete_greedily(State& state) {
  struct HeapEntry {
    double benefit;
    drp::ObjectIndex object;
    bool operator<(const HeapEntry& other) const noexcept {
      if (benefit != other.benefit) return benefit < other.benefit;
      return object > other.object;
    }
  };
  const auto best_move = [&](drp::ObjectIndex k) {
    if constexpr (std::is_same_v<State, drp::ReplicaPlacement>) {
      return best_reader_move(state, k);
    } else {
      return best_reader_move(state.placement(), k);
    }
  };
  std::priority_queue<HeapEntry> heap;
  const std::size_t n = state.problem().object_count();
  for (drp::ObjectIndex k = 0; k < n; ++k) {
    const Move move = best_move(k);
    if (move.benefit > 0.0) heap.push(HeapEntry{move.benefit, k});
  }
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const Move fresh = best_move(top.object);
    if (fresh.benefit <= 0.0) continue;
    if (!heap.empty() && fresh.benefit < heap.top().benefit) {
      heap.push(HeapEntry{fresh.benefit, top.object});
      continue;
    }
    state.add_replica(fresh.server, fresh.object);
    const Move next = best_move(top.object);
    if (next.benefit > 0.0) heap.push(HeapEntry{next.benefit, top.object});
  }
}

struct Node {
  drp::ReplicaPlacement placement;
  double g;  ///< current OTC
  double f;  ///< g - optimistic_saving  (lower bound on reachable OTC)
};

struct DeltaNode {
  drp::DeltaEvaluator eval;
  double g;
  double f;
};

/// Shared Aε-Star search loop.  `NodeT` carries the placement state; the
/// accessor lambdas bridge the naive/delta representations so the FOCAL
/// selection, pruning and eviction logic is written once.
template <typename NodeT, typename MakeRoot, typename Expand, typename Leaf,
          typename MakeChild>
drp::ReplicaPlacement search(const AeStarConfig& config, MakeRoot make_root,
                             Expand expand, Leaf handle_leaf,
                             MakeChild make_child) {
  std::vector<std::unique_ptr<NodeT>> open;
  open.push_back(make_root());
  const double root_cost = open.front()->g;

  // Incumbent: best complete (move-exhausted) solution seen so far.
  std::unique_ptr<drp::ReplicaPlacement> incumbent;
  double incumbent_cost = root_cost;

  std::size_t expansions = 0;
  // Best partial node by g, used for greedy completion at budget exhaustion.
  auto best_partial = std::make_unique<NodeT>(*open.front());
  double best_partial_cost = root_cost;

  while (!open.empty() && expansions < config.max_expansions) {
    // FOCAL rule of Aε-Star: among nodes with f <= (1+eps) * f_min, expand
    // the one with the smallest g (most progress).
    std::size_t min_f = 0;
    for (std::size_t i = 1; i < open.size(); ++i) {
      if (open[i]->f < open[min_f]->f) min_f = i;
    }
    const double focal_bound = open[min_f]->f * (1.0 + config.epsilon) +
                               1e-9;
    std::size_t pick = min_f;
    for (std::size_t i = 0; i < open.size(); ++i) {
      if (open[i]->f <= focal_bound && open[i]->g < open[pick]->g) pick = i;
    }

    std::unique_ptr<NodeT> node = std::move(open[pick]);
    open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
    ++expansions;

    // Bound: a node that cannot beat the incumbent is pruned.
    if (incumbent && node->f >= incumbent_cost) continue;

    const std::vector<Move> moves = expand(*node);
    if (moves.empty()) {
      // The shortlist dried up: polish with the exhaustive reader-site
      // greedy pass before scoring the leaf as an incumbent.
      auto [leaf, leaf_cost] = handle_leaf(*node);
      if (!incumbent || leaf_cost < incumbent_cost) {
        incumbent_cost = leaf_cost;
        incumbent = std::make_unique<drp::ReplicaPlacement>(std::move(leaf));
      }
      continue;
    }
    for (const Move& move : moves) {
      std::unique_ptr<NodeT> child = make_child(*node, move);
      if (incumbent && child->f >= incumbent_cost) continue;
      if (child->g < best_partial_cost) {
        best_partial_cost = child->g;
        best_partial = std::make_unique<NodeT>(*child);
      }
      open.push_back(std::move(child));
    }
    if (open.size() > config.max_open) {
      // Evict the worst-f tail to bound memory.
      std::sort(open.begin(), open.end(),
                [](const auto& a, const auto& b) { return a->f < b->f; });
      open.resize(config.max_open);
    }
  }

  if (incumbent && incumbent_cost <= best_partial_cost) {
    return std::move(*incumbent);
  }
  // Budget exhausted on a promising partial: complete it greedily.
  auto [completed, completed_cost] = handle_leaf(*best_partial);
  if (incumbent && incumbent_cost < completed_cost) {
    return std::move(*incumbent);
  }
  return completed;
}

drp::ReplicaPlacement run_aestar_naive(const drp::Problem& problem,
                                       const AeStarConfig& config) {
  return search<Node>(
      config,
      [&] {
        drp::ReplicaPlacement root(problem);
        const double root_cost = drp::CostModel::total_cost(root);
        return std::make_unique<Node>(
            Node{root, root_cost, root_cost - optimistic_saving(root)});
      },
      [&](const Node& node) {
        return candidate_moves(node.placement, config.branching,
                               /*parallel=*/false);
      },
      [&](const Node& node) {
        drp::ReplicaPlacement leaf = node.placement;
        complete_greedily(leaf);
        const double leaf_cost = drp::CostModel::total_cost(leaf);
        return std::pair(std::move(leaf), leaf_cost);
      },
      [&](const Node& node, const Move& move) {
        auto child = std::make_unique<Node>(node);
        child->placement.add_replica(move.server, move.object);
        child->g = node.g - move.benefit;
        child->f = child->g - optimistic_saving(child->placement);
        return child;
      });
}

drp::ReplicaPlacement run_aestar_delta(const drp::Problem& problem,
                                       const AeStarConfig& config) {
  return search<DeltaNode>(
      config,
      [&] {
        drp::DeltaEvaluator eval{drp::ReplicaPlacement(problem)};
        const double root_cost = eval.total();
        const double f = root_cost - eval.optimistic_saving();
        return std::make_unique<DeltaNode>(
            DeltaNode{std::move(eval), root_cost, f});
      },
      [&](const DeltaNode& node) {
        return candidate_moves(node.eval.placement(), config.branching,
                               config.parallel_scan);
      },
      [&](const DeltaNode& node) {
        drp::DeltaEvaluator leaf = node.eval;
        complete_greedily(leaf);
        const double leaf_cost = leaf.total();
        return std::pair(std::move(leaf).take_placement(), leaf_cost);
      },
      [&](const DeltaNode& node, const Move& move) {
        auto child = std::make_unique<DeltaNode>(node);
        child->eval.add_replica(move.server, move.object);
        child->g = node.g - move.benefit;
        child->f = child->g - child->eval.optimistic_saving();
        return child;
      });
}

}  // namespace

drp::ReplicaPlacement run_aestar(const drp::Problem& problem,
                                 const AeStarConfig& config) {
  if (config.eval == EvalPath::Naive) {
    return run_aestar_naive(problem, config);
  }
  return run_aestar_delta(problem, config);
}

}  // namespace agtram::baselines
