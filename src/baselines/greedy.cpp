#include "baselines/greedy.hpp"

#include <queue>

#include "common/thread_pool.hpp"
#include "drp/cost_model.hpp"
#include "drp/delta_evaluator.hpp"
#include "obs/obs.hpp"

namespace agtram::baselines {

namespace {

struct Candidate {
  double benefit;
  drp::ObjectIndex object;
  drp::ServerId server;
  bool operator<(const Candidate& other) const noexcept {
    if (benefit != other.benefit) return benefit < other.benefit;
    if (object != other.object) return object > other.object;
    return server > other.server;  // deterministic tie-break
  }
};

/// Best feasible (server, benefit) for object k under the current placement;
/// benefit <= 0 means no useful move remains for k.  This is the naive
/// oracle: per-server global_benefit calls striding down distance-matrix
/// columns.
Candidate best_move_for_object(const drp::Problem& problem,
                               const drp::ReplicaPlacement& placement,
                               drp::ObjectIndex k,
                               const std::vector<bool>* allowed_sites) {
  Candidate best{0.0, k, 0};
  const std::size_t m = problem.server_count();
  std::size_t scanned = 0;
  for (drp::ServerId i = 0; i < m; ++i) {
    if (allowed_sites && !(*allowed_sites)[i]) continue;
    if (!placement.can_replicate(i, k)) continue;
    ++scanned;
    const double benefit = drp::CostModel::global_benefit(placement, i, k);
    if (benefit > best.benefit) {
      best.benefit = benefit;
      best.server = i;
    }
  }
  AGTRAM_OBS_COUNT("greedy.candidates_scanned", scanned);
  AGTRAM_OBS_COUNT("greedy.candidates_pruned", m - scanned);
  return best;
}

/// Shared lazy max-heap loop, parameterised over the candidate-scan
/// implementation so the naive and delta paths run the byte-identical
/// selection logic.  `scan(k)` must replicate best_move_for_object's
/// semantics (feasibility mask, strict >, benefit/server floor {0, 0}).
template <typename ScanFn, typename ApplyFn>
void greedy_loop(std::size_t object_count, const GreedyConfig& config,
                 ScanFn&& scan, ApplyFn&& apply,
                 std::priority_queue<Candidate>& heap) {
  std::size_t placed = 0;
  while (!heap.empty()) {
    if (config.max_replicas != 0 && placed >= config.max_replicas) break;
    const Candidate top = heap.top();
    heap.pop();
    AGTRAM_OBS_COUNT("greedy.heap_pops", 1);
    // Re-validate: capacities and NN tables may have moved underneath this
    // entry.  Benefits only decrease, so if the fresh value still dominates
    // the heap it is the true global max.
    const Candidate fresh = scan(top.object);
    if (fresh.benefit <= 0.0) {
      AGTRAM_OBS_COUNT("greedy.objects_exhausted", 1);
      continue;
    }
    if (!heap.empty() && fresh.benefit < heap.top().benefit) {
      AGTRAM_OBS_COUNT("greedy.repushes", 1);
      heap.push(fresh);
      continue;
    }
    apply(fresh);
    ++placed;
    const Candidate next = scan(fresh.object);
    if (next.benefit > 0.0) heap.push(next);
  }
  (void)object_count;
}

drp::ReplicaPlacement run_greedy_naive(const drp::Problem& problem,
                                       drp::ReplicaPlacement start,
                                       const GreedyConfig& config) {
  drp::ReplicaPlacement placement = std::move(start);
  const std::vector<bool>* sites = config.allowed_sites;

  std::priority_queue<Candidate> heap;
  for (drp::ObjectIndex k = 0; k < problem.object_count(); ++k) {
    const Candidate c = best_move_for_object(problem, placement, k, sites);
    if (c.benefit > 0.0) heap.push(c);
  }

  greedy_loop(
      problem.object_count(), config,
      [&](drp::ObjectIndex k) {
        return best_move_for_object(problem, placement, k, sites);
      },
      [&](const Candidate& c) { placement.add_replica(c.server, c.object); },
      heap);
  return placement;
}

drp::ReplicaPlacement run_greedy_delta(const drp::Problem& problem,
                                       drp::ReplicaPlacement start,
                                       const GreedyConfig& config) {
  drp::DeltaEvaluator eval(std::move(start));
  const std::vector<bool>* sites = config.allowed_sites;
  const std::size_t n = problem.object_count();

  // Seed scan: one loop-swapped best_add per object.  The per-object scans
  // are independent, so the object axis fans out over the pool (each chunk
  // brings its own scratch; the inner server loop stays serial — nested
  // parallel_for would degrade inline anyway).
  std::vector<drp::DeltaEvaluator::BestAdd> seed(n);
  const auto seed_scan = [&](std::size_t first, std::size_t last) {
    drp::DeltaEvaluator::ScanScratch scratch;
    for (std::size_t k = first; k < last; ++k) {
      seed[k] = eval.best_add_for_object(static_cast<drp::ObjectIndex>(k),
                                         sites, scratch, /*parallel=*/false);
    }
  };
  if (config.parallel_scan) {
    common::ThreadPool::shared().parallel_for(0, n, seed_scan,
                                              /*min_grain=*/16);
  } else {
    seed_scan(0, n);
  }

  std::priority_queue<Candidate> heap;
  for (drp::ObjectIndex k = 0; k < n; ++k) {
    if (seed[k].benefit > 0.0) {
      heap.push(Candidate{seed[k].benefit, k, seed[k].server});
    }
  }

  // Pop re-validation touches one object at a time, so parallelism moves to
  // the server axis inside best_add_for_object (cutoff-guarded there).
  drp::DeltaEvaluator::ScanScratch scratch;
  greedy_loop(
      n, config,
      [&](drp::ObjectIndex k) {
        const auto best =
            eval.best_add_for_object(k, sites, scratch, config.parallel_scan);
        return Candidate{best.benefit, k, best.server};
      },
      [&](const Candidate& c) { eval.add_replica(c.server, c.object); },
      heap);
  return std::move(eval).take_placement();
}

}  // namespace

drp::ReplicaPlacement run_greedy(const drp::Problem& problem,
                                 const GreedyConfig& config) {
  return run_greedy_from(problem, drp::ReplicaPlacement(problem), config);
}

drp::ReplicaPlacement run_greedy_from(const drp::Problem& problem,
                                      drp::ReplicaPlacement start,
                                      const GreedyConfig& config) {
  if (config.eval == EvalPath::Naive) {
    return run_greedy_naive(problem, std::move(start), config);
  }
  return run_greedy_delta(problem, std::move(start), config);
}

}  // namespace agtram::baselines
