#include "baselines/greedy.hpp"

#include <queue>

#include "drp/cost_model.hpp"

namespace agtram::baselines {

namespace {

struct Candidate {
  double benefit;
  drp::ObjectIndex object;
  drp::ServerId server;
  bool operator<(const Candidate& other) const noexcept {
    if (benefit != other.benefit) return benefit < other.benefit;
    if (object != other.object) return object > other.object;
    return server > other.server;  // deterministic tie-break
  }
};

/// Best feasible (server, benefit) for object k under the current placement;
/// benefit <= 0 means no useful move remains for k.
Candidate best_move_for_object(const drp::Problem& problem,
                               const drp::ReplicaPlacement& placement,
                               drp::ObjectIndex k,
                               const std::vector<bool>* allowed_sites) {
  Candidate best{0.0, k, 0};
  const std::size_t m = problem.server_count();
  for (drp::ServerId i = 0; i < m; ++i) {
    if (allowed_sites && !(*allowed_sites)[i]) continue;
    if (!placement.can_replicate(i, k)) continue;
    const double benefit = drp::CostModel::global_benefit(placement, i, k);
    if (benefit > best.benefit) {
      best.benefit = benefit;
      best.server = i;
    }
  }
  return best;
}

}  // namespace

drp::ReplicaPlacement run_greedy(const drp::Problem& problem,
                                 const GreedyConfig& config) {
  return run_greedy_from(problem, drp::ReplicaPlacement(problem), config);
}

drp::ReplicaPlacement run_greedy_from(const drp::Problem& problem,
                                      drp::ReplicaPlacement start,
                                      const GreedyConfig& config) {
  drp::ReplicaPlacement placement = std::move(start);
  const std::vector<bool>* sites = config.allowed_sites;

  std::priority_queue<Candidate> heap;
  for (drp::ObjectIndex k = 0; k < problem.object_count(); ++k) {
    const Candidate c = best_move_for_object(problem, placement, k, sites);
    if (c.benefit > 0.0) heap.push(c);
  }

  std::size_t placed = 0;
  while (!heap.empty()) {
    if (config.max_replicas != 0 && placed >= config.max_replicas) break;
    const Candidate top = heap.top();
    heap.pop();
    // Re-validate: capacities and NN tables may have moved underneath this
    // entry.  Benefits only decrease, so if the fresh value still dominates
    // the heap it is the true global max.
    const Candidate fresh =
        best_move_for_object(problem, placement, top.object, sites);
    if (fresh.benefit <= 0.0) continue;  // object exhausted
    if (!heap.empty() && fresh.benefit < heap.top().benefit) {
      heap.push(fresh);
      continue;
    }
    placement.add_replica(fresh.server, fresh.object);
    ++placed;
    const Candidate next =
        best_move_for_object(problem, placement, fresh.object, sites);
    if (next.benefit > 0.0) heap.push(next);
  }
  return placement;
}

}  // namespace agtram::baselines
