// Selfish caching — best-response dynamics without a mechanism (Chun,
// Chaudhuri, Wee, Barreno, Papadimitriou & Kubiatowicz, "Selfish Caching in
// Distributed Systems: A Game-Theoretic Analysis", PODC 2004 — the paper's
// reference [8] and its closest game-theoretic relative).
//
// Every server unilaterally best-responds to the current configuration:
// replicate the object with the highest positive private benefit (the same
// Eq.-5 valuation AGT-RAM elicits), in randomised round-robin order, until
// no server wants to move — a pure Nash equilibrium.  The contrast with
// AGT-RAM isolates what the *mechanism* adds on top of the game: ordered
// (value-priority) convergence, payments, and the centre's single point of
// truth — the equilibrium itself is reachable without any of it, only more
// slowly and with no truthfulness story.
#pragma once

#include <cstdint>

#include "baselines/eval_path.hpp"
#include "drp/placement.hpp"
#include "drp/problem.hpp"

namespace agtram::baselines {

struct SelfishCachingConfig {
  /// Order in which servers take best-response turns is reshuffled each
  /// sweep with this seed.
  std::uint64_t seed = 1;
  /// Safety valve on best-response sweeps (0 = until equilibrium).
  std::size_t max_sweeps = 0;
  /// Delta: each turn gathers agent benefits once and walks them in sorted
  /// order (benefits of a server's other objects are invariant under its own
  /// adds, so the naive per-add rescan re-derives the same numbers).  Naive:
  /// the original full rescan after every placement.  Same bits either way.
  EvalPath eval = EvalPath::Delta;
};

struct SelfishCachingResult {
  drp::ReplicaPlacement placement;
  std::size_t sweeps = 0;          ///< sweeps until quiescence
  std::size_t moves = 0;           ///< replicas placed by best responses
  bool equilibrium_reached = false;
};

SelfishCachingResult run_selfish_caching(
    const drp::Problem& problem, const SelfishCachingConfig& config = {});

}  // namespace agtram::baselines
