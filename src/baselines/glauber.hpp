// Glauber-dynamics placement (Etesami, "Distributed Computation for the
// Non-metric Data Placement Problem using Glauber Dynamics and Auctions",
// arXiv:2210.07461) — the seventh baseline, and the first that genuinely
// runs over runtime::MessageBus rather than a centralized loop.
//
// Protocol: in each sweep every server with demand proposes flipping its
// membership in one randomly drawn object's replica set (add if it has the
// capacity, drop if it is a non-primary replicator).  The server prices the
// flip locally through drp::DeltaEvaluator — O(affected readers), the exact
// cost delta bit for bit — and sends (object, flip, delta) to the
// coordinator, which accepts with the heat-bath probability
//
//   P(accept) = 1 / (1 + exp(delta / T))
//
// under a geometric annealing schedule T_s = T_0 * cooling^s, and answers
// with an accept/reject decision message.  Every proposal and decision is
// accounted on the MessageBus (per-kind wire bytes, bus.glauber_* obs
// counters), so the baseline's convergence traffic is measurable the same
// way the mechanism's report/broadcast traffic is.
//
// Determinism: a single common::Rng stream drawn in (sweep, server id)
// order; identical seeds give identical trajectories.  EvalPath::Naive
// replaces the DeltaEvaluator pricing with mutate-measure-undo full
// re-evaluation — the deltas are bit-identical (DeltaEvaluator's core
// invariant), so the naive oracle walks the exact same accept/reject
// sequence and lands on the exact same placement (tests assert this).
#pragma once

#include <cstdint>

#include "baselines/eval_path.hpp"
#include "drp/placement.hpp"
#include "drp/problem.hpp"
#include "runtime/message_bus.hpp"

namespace agtram::baselines {

struct GlauberConfig {
  std::uint64_t seed = 1;
  /// Full passes over the servers; each live server proposes once per sweep.
  std::size_t sweeps = 64;
  /// T_0 as a fraction of the primaries-only OTC (auto-scaled, like SA).
  double initial_temperature_fraction = 2e-5;
  /// Geometric cooling applied every sweep.
  double cooling_rate = 0.85;
  /// Delta: flips priced read-only by drp::DeltaEvaluator.  Naive: one
  /// mutate-measure-undo full evaluation per proposal (the differential
  /// oracle; bit-identical trajectory).
  EvalPath eval = EvalPath::Delta;
  /// Optional wire accounting; proposals/decisions are charged per sweep.
  runtime::MessageBus* bus = nullptr;
};

struct GlauberResult {
  drp::ReplicaPlacement placement;
  double final_cost = 0.0;  ///< OTC of `placement` (bit-exact total)
  std::size_t sweeps = 0;
  std::size_t proposals = 0;  ///< evaluated flips (= wire proposals)
  std::size_t accepted = 0;
};

GlauberResult run_glauber(const drp::Problem& problem,
                          const GlauberConfig& config = {});

}  // namespace agtram::baselines
