// Allocation damage from misreports, measured against the non-truthful
// baselines.  Greedy, GRA, and the auctions consume demand instead of
// elicited reports, so a strategic agent's lie enters them as distorted
// read volumes (core::distorted_problem); each algorithm plans on the lie
// and the resulting placement is then scored on the *true* instance.  The
// truthful-input run of the same algorithm is the reference: the savings
// gap is the damage the misreport inflicted — the quantity AGT-RAM's
// dominant-strategy property makes irrational to inflict in the first
// place (core::strategic_audit).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/registry.hpp"
#include "core/strategy.hpp"
#include "drp/problem.hpp"

namespace agtram::baselines {

struct MisreportDamageRow {
  std::string algorithm;
  /// OTC savings of the algorithm planning on truthful demand.
  double truthful_savings = 0.0;
  /// OTC savings (scored on the true instance) when it plans on the lie.
  double misreport_savings = 0.0;
  /// Replicas from the distorted plan that did not fit the true instance
  /// (capacities are shared, so this stays 0 in practice).
  std::size_t skipped_infeasible = 0;
  double damage() const noexcept {
    return truthful_savings - misreport_savings;
  }
};

/// Runs each named algorithm (registry names) twice — on `problem` and on
/// distorted_problem(problem, profile) — replaying the distorted plan's
/// replicas onto the true instance for scoring.  Deterministic in (seed).
std::vector<MisreportDamageRow> misreport_damage(
    const drp::Problem& problem, const core::StrategyProfile& profile,
    const std::vector<std::string>& algorithms, std::uint64_t seed,
    const AlgoOptions& options = {});

}  // namespace agtram::baselines
