// Exhaustive optimal solver for tiny instances — the test oracle.
//
// The DRP is NP-complete (Eswaran 1974 via the paper's Section 6), so this
// enumerates every feasible replication matrix X.  Feasible only for
// M * N around 20; tests use it to confirm that the heuristics land within
// a bounded factor of the true optimum and that Greedy/AGT-RAM are exact on
// instances engineered to be easy.
#pragma once

#include <cstddef>

#include "drp/placement.hpp"
#include "drp/problem.hpp"

namespace agtram::baselines {

struct BruteForceResult {
  drp::ReplicaPlacement placement;
  double cost;
  std::size_t schemes_evaluated;
};

/// Throws std::invalid_argument if M * N exceeds `max_cells` (guard against
/// accidental exponential blow-ups in tests).
BruteForceResult run_brute_force(const drp::Problem& problem,
                                 std::size_t max_cells = 24);

}  // namespace agtram::baselines
