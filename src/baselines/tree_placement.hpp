// Replica placement on tree networks — the exact and greedy single-server-
// per-client strategies of Benoit, Rehn & Robert ("Strategies for Replica
// Placement in Tree Networks", cs/0611034), as an optimality reference for
// the TopologyKind::Tree instance family.
//
// Policy ("Closest"): the tree is rooted at the object's primary, and every
// client is served by the nearest *open* server on its path to the root —
// not the globally nearest replica.  Under that restriction the per-object
// optimum is computable exactly by a dynamic program over (node, nearest
// open ancestor) states in O(n * depth); the greedy variant opens servers
// one best-marginal-gain at a time under the same policy.  Both are
// uncapacitated references; the replay onto a ReplicaPlacement skips adds
// the capacity model forbids (counted in skipped_infeasible).
//
// Policy cost is the OTC of drp::CostModel with NN_ik replaced by the
// closest-open-ancestor distance, so policy_cost >= OTC of the same replica
// set, and the exact DP's per-object cost lower-bounds every placement that
// obeys the ancestor policy (tests brute-force this on tiny trees).
#pragma once

#include <cstdint>
#include <vector>

#include "drp/placement.hpp"
#include "drp/problem.hpp"
#include "net/graph.hpp"

namespace agtram::baselines {

struct TreePlacementConfig {
  /// true: the exact (node, ancestor) DP; false: greedy best-marginal-gain
  /// openings under the same closest-ancestor policy.
  bool exact = true;
};

/// Chosen servers for one object (always contains the primary) plus the
/// policy cost of serving that object through them.
struct TreeObjectChoice {
  std::vector<drp::ServerId> open;
  double policy_cost = 0.0;
};

struct TreePlacementResult {
  drp::ReplicaPlacement placement;  ///< replayed with the capacity guard
  std::vector<TreeObjectChoice> per_object;
  double policy_cost = 0.0;  ///< sum of per-object policy costs
  std::size_t skipped_infeasible = 0;
};

/// Runs the strategy over every object of `problem`.  `tree` must be the
/// topology make_instance built the metric closure from (drp::make_topology
/// regenerates it): exactly n-1 edges and connected, so closure distances
/// equal tree-path distances.  Throws std::invalid_argument otherwise.
TreePlacementResult run_tree_placement(const drp::Problem& problem,
                                       const net::Graph& tree,
                                       const TreePlacementConfig& config = {});

/// Closest-ancestor policy cost of serving object `k` through `open` (which
/// must contain the primary).  Exposed so tests can brute-force tiny trees
/// against the DP.
double tree_policy_cost(const drp::Problem& problem, const net::Graph& tree,
                        drp::ObjectIndex k,
                        const std::vector<drp::ServerId>& open);

}  // namespace agtram::baselines
