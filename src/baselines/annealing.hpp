// Simulated annealing over replication schemes — the standard stochastic
// metaheuristic counterpart to GRA in the FAP literature; included so the
// extended comparison has a hill-climbing-with-escapes reference alongside
// the genetic search.
//
// Same add/drop/swap move set as local search; worsening moves are
// accepted with probability exp(-delta / T) under a geometric cooling
// schedule.  The incumbent (best-ever) scheme is returned.
#pragma once

#include <cstdint>

#include "drp/placement.hpp"
#include "drp/problem.hpp"

namespace agtram::baselines {

struct AnnealingConfig {
  std::uint64_t seed = 1;
  std::size_t proposals = 30000;
  /// Start from the selfish-caching equilibrium instead of primaries-only
  /// (a cold random walk cannot reach the ~10^3-replica region of good
  /// schemes within any reasonable proposal budget).
  bool seed_from_equilibrium = true;
  /// Initial temperature as a fraction of the starting OTC (auto-scaled).
  double initial_temperature_fraction = 2e-5;
  /// Geometric cooling applied every `cooling_interval` proposals.
  double cooling_rate = 0.95;
  std::size_t cooling_interval = 500;
};

drp::ReplicaPlacement run_annealing(const drp::Problem& problem,
                                    const AnnealingConfig& config = {});

}  // namespace agtram::baselines
