// Simulated annealing over replication schemes — the standard stochastic
// metaheuristic counterpart to GRA in the FAP literature; included so the
// extended comparison has a hill-climbing-with-escapes reference alongside
// the genetic search.
//
// Same add/drop/swap move set as local search; worsening moves are
// accepted with probability exp(-delta / T) under a geometric cooling
// schedule.  The incumbent (best-ever) scheme is returned.
#pragma once

#include <cstdint>

#include "baselines/eval_path.hpp"
#include "drp/placement.hpp"
#include "drp/problem.hpp"

namespace agtram::baselines {

// Proposals are drawn from per-proposal rng streams (stream j is seeded from
// `seed` and j alone), so proposal j's moves and acceptance draw do not
// depend on how many proposals came before it in the same batch.  That makes
// the trajectory independent of the speculative batch size — delta batches
// of any size, the naive path, and any proposal budget all walk the same
// accepted prefix.
struct AnnealingConfig {
  std::uint64_t seed = 1;
  std::size_t proposals = 30000;
  /// Start from the selfish-caching equilibrium instead of primaries-only
  /// (a cold random walk cannot reach the ~10^3-replica region of good
  /// schemes within any reasonable proposal budget).
  bool seed_from_equilibrium = true;
  /// Initial temperature as a fraction of the starting OTC (auto-scaled).
  double initial_temperature_fraction = 2e-5;
  /// Geometric cooling applied every `cooling_interval` proposals.
  double cooling_rate = 0.95;
  std::size_t cooling_interval = 500;
  /// Delta: proposal deltas priced read-only through drp::DeltaEvaluator in
  /// speculative batches (the tail after an accepted move is discarded, so
  /// every consumed proposal saw the placement it was drawn against).
  /// Naive: one mutate-measure-undo evaluation per proposal.
  EvalPath eval = EvalPath::Delta;
  /// Speculative batch size for the delta path (1 = no speculation).
  std::size_t batch = 32;
  /// Delta path only: price a batch's proposals in parallel when the
  /// batch touches enough demand cells to amortise the pool fork.
  bool parallel_scan = true;
  std::size_t parallel_min_work = 4096;
};

drp::ReplicaPlacement run_annealing(const drp::Problem& problem,
                                    const AnnealingConfig& config = {});

}  // namespace agtram::baselines
