// Structural statistics of generated topologies.
//
// The topology generators substitute for GT-ITM and Inet (DESIGN.md); this
// module provides the measurements that substantiate the substitution:
// degree distributions (binomial for G(M,p), power-law for the Inet-style
// generator), clustering, and a log-log power-law exponent fit.  Tests and
// the topology ablation bench consume these.
#pragma once

#include <cstddef>
#include <vector>

#include "net/graph.hpp"

namespace agtram::net {

struct DegreeStats {
  double mean = 0.0;
  double variance = 0.0;
  std::size_t min = 0;
  std::size_t max = 0;
  /// degree -> node count (index = degree).
  std::vector<std::size_t> histogram;
};

DegreeStats degree_stats(const Graph& graph);

/// Global clustering coefficient (3 x triangles / connected triples);
/// 0 for degenerate graphs.
double clustering_coefficient(const Graph& graph);

/// Least-squares slope of log(count) over log(degree) for degrees with
/// nonzero counts — ~ -2..-3 for preferential-attachment graphs, strongly
/// concave (not a line at all) for binomial random graphs.  Returns 0 when
/// fewer than 3 distinct degrees exist.
double degree_power_law_slope(const Graph& graph);

/// Mean link cost over all edges.
double mean_edge_cost(const Graph& graph);

}  // namespace agtram::net
