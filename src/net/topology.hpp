// Network topology generators.
//
// The paper's experimental setup (Section 5) draws topologies from GT-ITM
// ("a random graph G(M, P(edge=p)) with p in {0.4 ... 0.8}") and uses the
// Inet generator to size the AS-level Internet of 1998 at M = 3718 nodes.
// Neither tool is redistributable here, so this module implements the same
// graph families from their published definitions:
//
//  * FlatRandom     — GT-ITM "pure random" model: every edge independently
//                     present with probability p; uniform link costs.
//  * Waxman         — GT-ITM's distance-biased random model on a unit square:
//                     P(u,v) = a * exp(-d(u,v) / (b * L)).
//  * TransitStub    — GT-ITM's hierarchical Internet model: a small transit
//                     core, each transit node sponsoring stub domains; intra-
//                     domain links cheap, transit links expensive.
//  * PowerLaw       — Inet-style AS topology: preferential attachment
//                     (Barabási–Albert) producing a power-law degree
//                     distribution.
//
// All generators guarantee a connected result (components are patched with
// max-cost edges, mirroring GT-ITM's resample-until-connected behaviour
// without unbounded retries) and reverse-map Euclidean/hop distance onto the
// integer cost of transferring one data unit, as described in the paper
// ("the distance between two servers was reverse mapped to the communication
// cost of transmitting 1 kB").
#pragma once

#include <cstdint>
#include <string>

#include "common/prng.hpp"
#include "net/graph.hpp"

namespace agtram::net {

enum class TopologyKind { FlatRandom, Waxman, TransitStub, PowerLaw, Tree };

/// Shape of the Tree family (the replica-placement-on-trees setting of
/// Benoit–Rehn–Robert, cs/0611034):
///  * Random      — uniform recursive tree: node v attaches to a uniformly
///                  random earlier node (expected depth O(log n)).
///  * Balanced    — complete `tree_arity`-ary tree (minimal depth).
///  * Caterpillar — a path spine with the remaining nodes as legs hanging
///                  off it round-robin (depth Θ(n): the worst case for the
///                  closest-ancestor placement policy).
enum class TreeShape { Random, Balanced, Caterpillar };

/// Parse "random" | "waxman" | "transit-stub" | "power-law" | "tree" |
/// "tree-balanced" | "tree-caterpillar" (throws on junk).  The tree aliases
/// select the kind only; the shape lives in TopologyConfig::tree_shape.
TopologyKind parse_topology_kind(const std::string& name);
std::string to_string(TopologyKind kind);

struct TopologyConfig {
  TopologyKind kind = TopologyKind::FlatRandom;
  std::uint32_t nodes = 100;
  std::uint64_t seed = 1;

  /// FlatRandom: independent edge probability.
  double edge_probability = 0.5;

  /// Waxman parameters (alpha: edge density, beta: long-link affinity).
  double waxman_alpha = 0.25;
  double waxman_beta = 0.35;

  /// TransitStub: number of transit-core nodes; each sponsors
  /// (nodes / transit_nodes - 1) stub nodes split into stub_domains domains.
  std::uint32_t transit_nodes = 8;
  std::uint32_t stub_domains_per_transit = 3;

  /// PowerLaw: edges attached per arriving node.
  std::uint32_t attachment_edges = 2;

  /// Tree family: shape and (Balanced only) the branching factor.
  TreeShape tree_shape = TreeShape::Random;
  std::uint32_t tree_arity = 3;

  /// Link costs are drawn uniformly from [min_cost, max_cost] and scaled by
  /// the model-specific distance factor.
  Cost min_cost = 1;
  Cost max_cost = 10;
};

/// Builds a connected topology per the config.  Deterministic in (config).
Graph generate_topology(const TopologyConfig& config);

}  // namespace agtram::net
