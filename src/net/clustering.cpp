#include "net/clustering.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "common/prng.hpp"

namespace agtram::net {

std::vector<NodeId> Clustering::members(std::uint32_t region) const {
  std::vector<NodeId> result;
  for (NodeId node = 0; node < assignment.size(); ++node) {
    if (assignment[node] == region) result.push_back(node);
  }
  return result;
}

namespace {

/// Assigns every node to its nearest medoid; returns the within-distance.
double assign_all(const DistanceMatrix& d, const std::vector<NodeId>& medoids,
                  std::vector<std::uint32_t>& assignment) {
  double total = 0.0;
  for (NodeId node = 0; node < d.node_count(); ++node) {
    std::uint32_t best_region = 0;
    Cost best = kUnreachable;
    for (std::uint32_t r = 0; r < medoids.size(); ++r) {
      const Cost dist = d(node, medoids[r]);
      if (dist < best) {
        best = dist;
        best_region = r;
      }
    }
    assignment[node] = best_region;
    total += static_cast<double>(best);
  }
  return total;
}

/// Best medoid for a fixed member set: the member minimising the summed
/// distance to the others.
NodeId best_medoid(const DistanceMatrix& d, const std::vector<NodeId>& members) {
  NodeId best = members.front();
  double best_total = std::numeric_limits<double>::max();
  for (NodeId candidate : members) {
    double total = 0.0;
    for (NodeId other : members) {
      total += static_cast<double>(d(candidate, other));
    }
    if (total < best_total) {
      best_total = total;
      best = candidate;
    }
  }
  return best;
}

}  // namespace

Clustering cluster_servers(const DistanceMatrix& distances,
                           const ClusteringConfig& config) {
  if (config.regions == 0) {
    throw std::invalid_argument("cluster_servers: need >= 1 region");
  }
  const std::size_t n = distances.node_count();
  const std::uint32_t k =
      std::min<std::uint32_t>(config.regions, static_cast<std::uint32_t>(n));

  // Seed medoids: k distinct random nodes.
  common::Rng rng(config.seed);
  std::unordered_set<NodeId> chosen;
  while (chosen.size() < k) {
    chosen.insert(static_cast<NodeId>(rng.below(n)));
  }
  Clustering result;
  result.medoids.assign(chosen.begin(), chosen.end());
  std::sort(result.medoids.begin(), result.medoids.end());
  result.assignment.resize(n);
  result.total_within_distance =
      assign_all(distances, result.medoids, result.assignment);

  // Lloyd-style PAM refinement: recompute each region's medoid, reassign,
  // stop at a fixed point (or the iteration cap).
  for (std::uint32_t iter = 0; iter < config.max_iterations; ++iter) {
    bool changed = false;
    for (std::uint32_t r = 0; r < k; ++r) {
      const auto members = result.members(r);
      if (members.empty()) continue;  // region emptied out: keep old medoid
      const NodeId medoid = best_medoid(distances, members);
      if (medoid != result.medoids[r]) {
        result.medoids[r] = medoid;
        changed = true;
      }
    }
    const double total =
        assign_all(distances, result.medoids, result.assignment);
    if (!changed && total == result.total_within_distance) break;
    result.total_within_distance = total;
    if (!changed) break;
  }
  return result;
}

}  // namespace agtram::net
