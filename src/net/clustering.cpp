#include "net/clustering.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "common/prng.hpp"
#include "common/thread_pool.hpp"

namespace agtram::net {

std::vector<NodeId> Clustering::members(std::uint32_t region) const {
  std::vector<NodeId> result;
  for (NodeId node = 0; node < assignment.size(); ++node) {
    if (assignment[node] == region) result.push_back(node);
  }
  return result;
}

namespace {

/// Assigns every node to its nearest medoid; returns the within-distance.
double assign_all(const DistanceMatrix& d, const std::vector<NodeId>& medoids,
                  std::vector<std::uint32_t>& assignment) {
  double total = 0.0;
  for (NodeId node = 0; node < d.node_count(); ++node) {
    std::uint32_t best_region = 0;
    Cost best = kUnreachable;
    for (std::uint32_t r = 0; r < medoids.size(); ++r) {
      const Cost dist = d(node, medoids[r]);
      if (dist < best) {
        best = dist;
        best_region = r;
      }
    }
    assignment[node] = best_region;
    total += static_cast<double>(best);
  }
  return total;
}

/// Best medoid for a fixed member set: the member minimising the summed
/// distance to the others.
NodeId best_medoid(const DistanceMatrix& d, const std::vector<NodeId>& members) {
  NodeId best = members.front();
  double best_total = std::numeric_limits<double>::max();
  for (NodeId candidate : members) {
    double total = 0.0;
    for (NodeId other : members) {
      total += static_cast<double>(d(candidate, other));
    }
    if (total < best_total) {
      best_total = total;
      best = candidate;
    }
  }
  return best;
}

}  // namespace

Clustering cluster_servers(const DistanceMatrix& distances,
                           const ClusteringConfig& config) {
  if (config.regions == 0) {
    throw std::invalid_argument("cluster_servers: need >= 1 region");
  }
  const std::size_t n = distances.node_count();
  const std::uint32_t k =
      std::min<std::uint32_t>(config.regions, static_cast<std::uint32_t>(n));

  // Seed medoids: k distinct random nodes.
  common::Rng rng(config.seed);
  std::unordered_set<NodeId> chosen;
  while (chosen.size() < k) {
    chosen.insert(static_cast<NodeId>(rng.below(n)));
  }
  Clustering result;
  result.medoids.assign(chosen.begin(), chosen.end());
  std::sort(result.medoids.begin(), result.medoids.end());
  result.assignment.resize(n);
  result.total_within_distance =
      assign_all(distances, result.medoids, result.assignment);

  // Lloyd-style PAM refinement: recompute each region's medoid, reassign,
  // stop at a fixed point (or the iteration cap).
  for (std::uint32_t iter = 0; iter < config.max_iterations; ++iter) {
    bool changed = false;
    for (std::uint32_t r = 0; r < k; ++r) {
      const auto members = result.members(r);
      if (members.empty()) continue;  // region emptied out: keep old medoid
      const NodeId medoid = best_medoid(distances, members);
      if (medoid != result.medoids[r]) {
        result.medoids[r] = medoid;
        changed = true;
      }
    }
    const double total =
        assign_all(distances, result.medoids, result.assignment);
    if (!changed && total == result.total_within_distance) break;
    result.total_within_distance = total;
    if (!changed) break;
  }
  return result;
}

namespace {

/// Distance a candidate medoid offers a member: the better of the
/// region-subgraph path and the route through the incumbent centre (both
/// are real paths, so the score never undershoots the true distance).
std::uint64_t candidate_distance(Cost subgraph, Cost via_centre_a,
                                 Cost via_centre_b) {
  const std::uint64_t routed = static_cast<std::uint64_t>(via_centre_a) +
                               static_cast<std::uint64_t>(via_centre_b);
  return std::min<std::uint64_t>(subgraph, routed);
}

}  // namespace

Clustering cluster_servers_sampled(const Graph& graph,
                                   const SampledClusteringConfig& config) {
  if (config.regions == 0) {
    throw std::invalid_argument("cluster_servers_sampled: need >= 1 region");
  }
  const std::size_t n = graph.node_count();
  const std::uint32_t k =
      std::min<std::uint32_t>(config.regions, static_cast<std::uint32_t>(n));
  const std::size_t balanced = (n + k - 1) / k;
  const std::size_t cap =
      config.max_members == 0
          ? n
          : std::max<std::size_t>(config.max_members, balanced);

  common::Rng rng(config.seed);
  std::unordered_set<NodeId> chosen;
  while (chosen.size() < k) {
    chosen.insert(static_cast<NodeId>(rng.below(n)));
  }
  Clustering result;
  result.medoids.assign(chosen.begin(), chosen.end());
  std::sort(result.medoids.begin(), result.medoids.end());
  result.assignment.resize(n);

  // One Dijkstra strip per region and sweep instead of the M x M closure.
  std::vector<std::vector<Cost>> strips(k);
  const auto compute_strips = [&] {
    common::ThreadPool::shared().parallel_for(
        0, k,
        [&](std::size_t b, std::size_t e) {
          for (std::size_t r = b; r < e; ++r) {
            strips[r] = dijkstra(graph, result.medoids[r]);
          }
        },
        1);
  };

  // Capacitated greedy assignment in ascending node order: medoids are
  // pinned to their own region, every other node takes the nearest centre
  // that still has room (ties to the lowest region id).
  const auto assign = [&]() -> double {
    std::vector<std::size_t> count(k, 0);
    std::vector<char> pinned(n, 0);
    for (std::uint32_t r = 0; r < k; ++r) {
      result.assignment[result.medoids[r]] = r;
      count[r] += 1;
      pinned[result.medoids[r]] = 1;
    }
    double total = 0.0;
    for (NodeId node = 0; node < n; ++node) {
      if (pinned[node]) continue;
      std::uint32_t best_region = k;
      Cost best = kUnreachable;
      for (std::uint32_t r = 0; r < k; ++r) {
        if (count[r] >= cap) continue;
        const Cost dist = strips[r][node];
        if (dist < best) {
          best = dist;
          best_region = r;
        }
      }
      if (best_region == k) {
        // Unreachable from every open centre (disconnected graph): park the
        // node in the first region with room.  cap >= ceil(n/k) guarantees
        // one exists.
        for (std::uint32_t r = 0; r < k; ++r) {
          if (count[r] < cap) {
            best_region = r;
            break;
          }
        }
        best = 0;
      }
      result.assignment[node] = best_region;
      count[best_region] += 1;
      total += static_cast<double>(best);
    }
    return total;
  };

  // One refinement sweep: per region, score the incumbent medoid plus a
  // sampled candidate set on the region subgraph and keep the argmin.
  constexpr std::uint32_t kNoLocal = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> local(n, kNoLocal);
  const auto refine = [&]() -> bool {
    bool changed = false;
    std::vector<std::vector<NodeId>> members(k);
    for (NodeId node = 0; node < n; ++node) {
      members[result.assignment[node]].push_back(node);
    }
    for (std::uint32_t r = 0; r < k; ++r) {
      const std::vector<NodeId>& mem = members[r];
      if (mem.size() <= 1) continue;
      for (std::uint32_t i = 0; i < mem.size(); ++i) local[mem[i]] = i;
      Graph sub(mem.size());
      for (const NodeId node : mem) {
        for (const Edge& edge : graph.neighbors(node)) {
          if (edge.to > node && result.assignment[edge.to] == r) {
            sub.add_edge(local[node], local[edge.to], edge.cost);
          }
        }
      }
      // Incumbent first, then up to medoid_candidates distinct samples.
      std::vector<NodeId> candidates{result.medoids[r]};
      const std::uint32_t tries = config.medoid_candidates * 3;
      for (std::uint32_t t = 0;
           t < tries && candidates.size() < config.medoid_candidates + 1u;
           ++t) {
        const NodeId pick = mem[rng.below(mem.size())];
        if (std::find(candidates.begin(), candidates.end(), pick) ==
            candidates.end()) {
          candidates.push_back(pick);
        }
      }
      std::sort(candidates.begin(), candidates.end());
      NodeId best_node = result.medoids[r];
      std::uint64_t best_score = std::numeric_limits<std::uint64_t>::max();
      for (const NodeId candidate : candidates) {
        const std::vector<Cost> subd = dijkstra(sub, local[candidate]);
        std::uint64_t score = 0;
        for (const NodeId node : mem) {
          score += candidate_distance(subd[local[node]], strips[r][candidate],
                                      strips[r][node]);
        }
        if (score < best_score) {
          best_score = score;
          best_node = candidate;
        }
      }
      if (best_node != result.medoids[r]) {
        result.medoids[r] = best_node;
        changed = true;
      }
    }
    return changed;
  };

  compute_strips();
  result.total_within_distance = assign();
  for (std::uint32_t iter = 0; iter < config.refine_iterations; ++iter) {
    if (!refine()) break;
    compute_strips();
    result.total_within_distance = assign();
  }
  return result;
}

}  // namespace agtram::net
