#include "net/tiled_distances.hpp"

#include <algorithm>
#include <limits>

#include "common/thread_pool.hpp"

namespace agtram::net {

namespace {

/// Path cost through the region centre, saturating at kUnreachable.
Cost routed_via_centre(Cost to_centre_a, Cost to_centre_b) {
  if (to_centre_a == kUnreachable || to_centre_b == kUnreachable) {
    return kUnreachable;
  }
  const std::uint64_t sum = static_cast<std::uint64_t>(to_centre_a) +
                            static_cast<std::uint64_t>(to_centre_b);
  return sum >= kUnreachable ? kUnreachable : static_cast<Cost>(sum);
}

}  // namespace

std::uint64_t TiledDistances::estimate_bytes(const Clustering& clustering) {
  const std::size_t n = clustering.assignment.size();
  const std::size_t k = clustering.region_count();
  std::vector<std::uint64_t> counts(k, 0);
  for (const std::uint32_t region : clustering.assignment) counts[region] += 1;
  std::uint64_t bytes = 0;
  for (const std::uint64_t n_r : counts) {
    const std::uint64_t side = n_r + k;
    bytes += side * side * sizeof(Cost);
  }
  bytes += static_cast<std::uint64_t>(k) * n * sizeof(Cost);
  return bytes;
}

TiledDistances TiledDistances::build(const Graph& graph,
                                     const Clustering& clustering) {
  const std::size_t k = clustering.region_count();
  TiledDistances tiles;
  tiles.members_.resize(k);
  tiles.blocks_.resize(k);
  tiles.strips_.resize(k);
  for (NodeId node = 0; node < clustering.assignment.size(); ++node) {
    tiles.members_[clustering.assignment[node]].push_back(node);
  }

  auto& pool = common::ThreadPool::shared();
  pool.parallel_for(
      0, k,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t r = b; r < e; ++r) {
          tiles.strips_[r] = dijkstra(graph, clustering.medoids[r]);
        }
      },
      1);

  constexpr std::uint32_t kNoLocal = std::numeric_limits<std::uint32_t>::max();
  pool.parallel_for(
      0, k,
      [&](std::size_t rb, std::size_t re) {
        for (std::size_t r = rb; r < re; ++r) {
          const std::vector<NodeId>& mem = tiles.members_[r];
          const std::size_t n = mem.size();
          const std::size_t side = n + k;
          const std::span<const Cost> own = tiles.strips_[r];

          std::vector<std::uint32_t> local(graph.node_count(), kNoLocal);
          for (std::uint32_t i = 0; i < n; ++i) local[mem[i]] = i;
          Graph sub(std::max<std::size_t>(n, 1));
          for (const NodeId node : mem) {
            for (const Edge& edge : graph.neighbors(node)) {
              if (edge.to > node && local[edge.to] != kNoLocal) {
                sub.add_edge(local[node], local[edge.to], edge.cost);
              }
            }
          }

          std::vector<Cost> rows(side * side, 0);
          for (std::uint32_t la = 0; la < n; ++la) {
            const NodeId ga = mem[la];
            const std::vector<Cost> subd = dijkstra(sub, la);
            Cost* row = rows.data() + static_cast<std::size_t>(la) * side;
            for (std::uint32_t lb = 0; lb < n; ++lb) {
              row[lb] = std::min(subd[lb],
                                 routed_via_centre(own[ga], own[mem[lb]]));
            }
            for (std::uint32_t q = 0; q < k; ++q) {
              row[n + q] = tiles.strips_[q][ga];
            }
          }
          for (std::uint32_t q = 0; q < k; ++q) {
            Cost* row = rows.data() + (n + q) * side;
            const std::span<const Cost> strip = tiles.strips_[q];
            for (std::uint32_t lb = 0; lb < n; ++lb) row[lb] = strip[mem[lb]];
            for (std::uint32_t p = 0; p < k; ++p) {
              row[n + p] = strip[clustering.medoids[p]];
            }
          }
          tiles.blocks_[r] = std::make_shared<const DistanceMatrix>(
              DistanceMatrix::from_rows(side, std::move(rows)));
        }
      },
      1);

  tiles.bytes_ = estimate_bytes(clustering);
  return tiles;
}

}  // namespace agtram::net
