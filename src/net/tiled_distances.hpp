// Tiled distance state for the large-M regional engine.
//
// The dense metric closure is O(M^2) and stops fitting in memory around
// M ~ 50k (a 50k x 50k Cost matrix is 10 GB).  The regional mechanism never
// needs it: a region's auction only prices member<->member transfers plus
// routes through the regional centres (cross-region coherence goes through
// the regional broadcast).  So we materialise, per region, a small
// DistanceMatrix "block" over the region's members plus one gateway node
// per region, and keep R full-graph Dijkstra strips (one per centre) for
// the gateway rows:
//
//   * member a <-> member b   = min(region-subgraph distance,
//                                   route via own centre)
//   * member a <-> gateway q  = exact full-graph distance to centre q
//   * gateway q <-> gateway p = exact centre-to-centre distance
//
// Both member<->member terms are real path lengths, so blocks never
// undershoot the true metric.  Total footprint is sum_r (n_r + R)^2 + R*M
// Cost entries — estimate_bytes() lets callers enforce a budget before
// anything is materialised.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "net/clustering.hpp"
#include "net/graph.hpp"
#include "net/shortest_paths.hpp"

namespace agtram::net {

class TiledDistances {
 public:
  /// Footprint of the blocks + strips for this partition, in bytes, without
  /// building anything.  Exact for build() on the same clustering.
  static std::uint64_t estimate_bytes(const Clustering& clustering);

  /// Materialises the per-region blocks (regions in parallel on the shared
  /// pool) and the centre strips.  Deterministic in (graph, clustering).
  static TiledDistances build(const Graph& graph, const Clustering& clustering);

  TiledDistances() = default;

  std::size_t region_count() const noexcept { return members_.size(); }

  /// Members of region r, ascending global node ids.  Block-local id i maps
  /// to members(r)[i]; local ids [n_r, n_r + R) are the gateways, region q's
  /// gateway at local id n_r + q.
  const std::vector<NodeId>& members(std::uint32_t r) const {
    return members_[r];
  }

  /// The (n_r + R)-node distance block of region r.
  const DistanceMatrixPtr& block(std::uint32_t r) const { return blocks_[r]; }

  /// Full-graph distances from every node to centre r.
  std::span<const Cost> centre_strip(std::uint32_t r) const {
    return strips_[r];
  }

  std::uint64_t bytes() const noexcept { return bytes_; }

 private:
  std::vector<std::vector<NodeId>> members_;
  std::vector<DistanceMatrixPtr> blocks_;
  std::vector<std::vector<Cost>> strips_;
  std::uint64_t bytes_ = 0;
};

}  // namespace agtram::net
