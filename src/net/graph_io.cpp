#include "net/graph_io.hpp"

#include <cstdint>
#include <istream>
#include <limits>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace agtram::net {

void write_graph(std::ostream& os, const Graph& graph) {
  os << "# agtram topology: " << graph.node_count() << " nodes, "
     << graph.edge_count() << " edges\n";
  os << "nodes " << graph.node_count() << '\n';
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    for (const Edge& e : graph.neighbors(u)) {
      if (e.to > u) os << u << ' ' << e.to << ' ' << e.cost << '\n';
    }
  }
}

Graph read_graph(std::istream& is) {
  std::optional<Graph> graph;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const auto fail = [&](const std::string& what) {
      throw std::runtime_error("topology line " + std::to_string(line_number) +
                               ": " + what);
    };
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t") == std::string::npos) continue;

    std::istringstream fields(line);
    if (!graph) {
      std::string keyword;
      std::size_t nodes = 0;
      if (!(fields >> keyword >> nodes) || keyword != "nodes" || nodes == 0) {
        fail("expected 'nodes <M>' header");
      }
      graph.emplace(nodes);
      continue;
    }
    std::uint64_t a = 0, b = 0, cost = 0;
    if (!(fields >> a >> b >> cost)) fail("expected '<a> <b> <cost>'");
    if (a >= graph->node_count() || b >= graph->node_count()) {
      fail("endpoint out of range");
    }
    if (cost == 0 || cost > std::numeric_limits<Cost>::max()) {
      fail("cost out of range");
    }
    graph->add_edge(static_cast<NodeId>(a), static_cast<NodeId>(b),
                    static_cast<Cost>(cost));
  }
  if (!graph) throw std::runtime_error("topology: missing 'nodes' header");
  return std::move(*graph);
}

}  // namespace agtram::net
