// All-pairs shortest-path metric closure c(i,j).
//
// The DRP cost model (paper Equations 1-4) is defined over path costs, not
// links: "if the two servers are not directly connected ... the cost is given
// by the sum of the costs of all the links in a chosen path".  We
// materialise the full M x M matrix once (thread-parallel Dijkstra from each
// source) and share it read-only across every algorithm; at the paper's
// M = 3718 this is ~55 MB.
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "net/graph.hpp"

namespace agtram::net {

inline constexpr Cost kUnreachable = std::numeric_limits<Cost>::max();

/// Single-source Dijkstra; returns distances (kUnreachable when disconnected).
std::vector<Cost> dijkstra(const Graph& graph, NodeId source);

/// Immutable, row-major M x M distance matrix.
class DistanceMatrix {
 public:
  /// Computes the metric closure of `graph`, running sources in parallel on
  /// the shared thread pool.  Throws if the graph is disconnected.
  static DistanceMatrix compute(const Graph& graph);

  /// Builds directly from a row-major matrix (tests / hand-made instances).
  /// Validates symmetry and a zero diagonal.
  static DistanceMatrix from_rows(std::size_t nodes, std::vector<Cost> rows);

  std::size_t node_count() const noexcept { return nodes_; }

  Cost operator()(NodeId a, NodeId b) const {
    return data_[static_cast<std::size_t>(a) * nodes_ + b];
  }

  /// Row `a` as a contiguous span: row(a)[b] == (*this)(a, b).  The matrix
  /// is symmetric, so hot loops that scan distances to a fixed node `a`
  /// should walk row(a) sequentially instead of striding down column `a`.
  std::span<const Cost> row(NodeId a) const {
    return {data_.data() + static_cast<std::size_t>(a) * nodes_, nodes_};
  }

  /// Largest pairwise distance (network diameter in cost units).  Cached at
  /// construction: both factories derive it from per-row partials folded
  /// into the pass that already visits every entry.
  Cost diameter() const noexcept { return diameter_; }

  /// Mean pairwise distance over distinct pairs, cached like diameter().
  /// Pairwise sums are exact in uint64, so the cached value equals the
  /// historical on-demand upper-triangle accumulation.
  double mean_distance() const noexcept { return mean_distance_; }

 private:
  DistanceMatrix(std::size_t nodes, std::vector<Cost> data, Cost diameter,
                 double mean_distance)
      : nodes_(nodes),
        data_(std::move(data)),
        diameter_(diameter),
        mean_distance_(mean_distance) {}

  std::size_t nodes_;
  std::vector<Cost> data_;
  Cost diameter_ = 0;
  double mean_distance_ = 0.0;
};

using DistanceMatrixPtr = std::shared_ptr<const DistanceMatrix>;

}  // namespace agtram::net
