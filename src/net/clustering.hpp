// Metric-space clustering of servers into regions.
//
// The paper's future-work section proposes "regional autonomous,
// self-governed and self-repairing mechanisms ... regional or hierarchical
// mechanisms".  The regional mechanism (src/core/regional.hpp) needs a
// partition of the servers into latency-coherent regions; this module
// provides k-medoids (PAM-style) over the metric closure — medoids double
// as the natural hosts for the regional decision bodies.
#pragma once

#include <cstdint>
#include <vector>

#include "net/shortest_paths.hpp"

namespace agtram::net {

struct Clustering {
  /// region id of every node, in [0, medoids.size()).
  std::vector<std::uint32_t> assignment;
  /// the medoid node of each region (the regional centre).
  std::vector<NodeId> medoids;
  /// sum over nodes of the distance to their medoid.
  double total_within_distance = 0.0;

  std::size_t region_count() const noexcept { return medoids.size(); }

  /// Members of one region, sorted ascending.
  std::vector<NodeId> members(std::uint32_t region) const;
};

struct ClusteringConfig {
  std::uint32_t regions = 4;
  std::uint32_t max_iterations = 32;  ///< PAM refinement sweeps
  std::uint64_t seed = 1;             ///< initial medoid choice
};

/// k-medoids over the metric closure.  Deterministic in the config; clamps
/// the region count to the node count.  Throws on zero regions.
Clustering cluster_servers(const DistanceMatrix& distances,
                           const ClusteringConfig& config);

struct SampledClusteringConfig {
  std::uint32_t regions = 8;
  std::uint64_t seed = 1;
  /// Medoid-refinement sweeps after the initial assignment (each sweep is
  /// R full-graph Dijkstras plus sampled per-region candidate scoring).
  std::uint32_t refine_iterations = 2;
  /// Sampled medoid candidates per region per sweep (besides the incumbent).
  std::uint32_t medoid_candidates = 4;
  /// Hard cap on members per region; 0 leaves regions uncapped.  A cap
  /// bounds the per-region distance-block footprint on skewed topologies
  /// (clamped up to ceil(n/k) so the assignment always stays feasible).
  std::uint32_t max_members = 0;
};

/// Closure-free k-medoids for large M: clusters directly on the graph with
/// R single-source Dijkstra strips per sweep instead of the O(M^2) metric
/// closure.  Assignment is capacitated greedy in ascending node order
/// (medoids pinned to their own region; ties to the lowest region id), so
/// the result is deterministic in the config.  Medoid refinement scores a
/// sampled candidate set per region against min(region-subgraph distance,
/// route via the incumbent centre).  Throws on zero regions.
Clustering cluster_servers_sampled(const Graph& graph,
                                   const SampledClusteringConfig& config);

}  // namespace agtram::net
