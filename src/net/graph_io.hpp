// Topology serialisation: a plain edge-list format so generated networks
// can be persisted, inspected, and fed back into the tools (or replaced
// with externally measured topologies of the same shape).
//
// Format:
//   # comments
//   nodes <M>
//   <a> <b> <cost>          one line per undirected edge
#pragma once

#include <iosfwd>

#include "net/graph.hpp"

namespace agtram::net {

void write_graph(std::ostream& os, const Graph& graph);

/// Throws std::runtime_error on malformed input, out-of-range endpoints, or
/// zero costs.
Graph read_graph(std::istream& is);

}  // namespace agtram::net
