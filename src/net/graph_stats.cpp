#include "net/graph_stats.hpp"

#include <algorithm>
#include <cmath>

namespace agtram::net {

DegreeStats degree_stats(const Graph& graph) {
  DegreeStats stats;
  const std::size_t n = graph.node_count();
  if (n == 0) return stats;
  stats.min = graph.degree(0);
  double sum = 0.0;
  std::size_t max_degree = 0;
  for (NodeId i = 0; i < n; ++i) {
    const std::size_t d = graph.degree(i);
    sum += static_cast<double>(d);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
    max_degree = std::max(max_degree, d);
  }
  stats.mean = sum / static_cast<double>(n);
  double m2 = 0.0;
  stats.histogram.assign(max_degree + 1, 0);
  for (NodeId i = 0; i < n; ++i) {
    const double delta = static_cast<double>(graph.degree(i)) - stats.mean;
    m2 += delta * delta;
    ++stats.histogram[graph.degree(i)];
  }
  stats.variance = n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
  return stats;
}

double clustering_coefficient(const Graph& graph) {
  const std::size_t n = graph.node_count();
  std::uint64_t triangles = 0;  // counted 3x (once per corner ordering below)
  std::uint64_t triples = 0;
  for (NodeId u = 0; u < n; ++u) {
    const auto neighbors = graph.neighbors(u);
    const std::size_t d = neighbors.size();
    if (d < 2) continue;
    triples += static_cast<std::uint64_t>(d) * (d - 1) / 2;
    for (std::size_t a = 0; a < d; ++a) {
      for (std::size_t b = a + 1; b < d; ++b) {
        if (graph.has_edge(neighbors[a].to, neighbors[b].to)) ++triangles;
      }
    }
  }
  // Each triangle was found at all 3 corners; each corner contributes one
  // closed triple, so the ratio is direct.
  return triples == 0 ? 0.0
                      : static_cast<double>(triangles) /
                            static_cast<double>(triples);
}

double degree_power_law_slope(const Graph& graph) {
  const DegreeStats stats = degree_stats(graph);
  std::vector<double> xs, ys;
  for (std::size_t degree = 1; degree < stats.histogram.size(); ++degree) {
    if (stats.histogram[degree] == 0) continue;
    xs.push_back(std::log(static_cast<double>(degree)));
    ys.push_back(std::log(static_cast<double>(stats.histogram[degree])));
  }
  if (xs.size() < 3) return 0.0;
  double mean_x = 0.0, mean_y = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mean_x += xs[i];
    mean_y += ys[i];
  }
  mean_x /= static_cast<double>(xs.size());
  mean_y /= static_cast<double>(xs.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    num += (xs[i] - mean_x) * (ys[i] - mean_y);
    den += (xs[i] - mean_x) * (xs[i] - mean_x);
  }
  return den > 0.0 ? num / den : 0.0;
}

double mean_edge_cost(const Graph& graph) {
  double sum = 0.0;
  std::size_t edges = 0;
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    for (const Edge& e : graph.neighbors(u)) {
      if (e.to > u) {  // count each undirected edge once
        sum += static_cast<double>(e.cost);
        ++edges;
      }
    }
  }
  return edges ? sum / static_cast<double>(edges) : 0.0;
}

}  // namespace agtram::net
