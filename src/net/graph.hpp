// Weighted undirected graph of servers.  The replica-placement algorithms
// never touch the graph directly — they consume its metric closure (the
// DistanceMatrix in shortest_paths.hpp) — but the topology generators and
// the trace pipeline build instances on top of it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace agtram::net {

using NodeId = std::uint32_t;
using Cost = std::uint32_t;  ///< per-data-unit transfer cost of a link/path

struct Edge {
  NodeId to;
  Cost cost;
};

class Graph {
 public:
  explicit Graph(std::size_t node_count);

  std::size_t node_count() const noexcept { return adjacency_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }

  /// Adds an undirected edge; parallel edges keep the cheaper cost.
  /// Self-loops are ignored (cost to self is always 0).
  void add_edge(NodeId a, NodeId b, Cost cost);

  bool has_edge(NodeId a, NodeId b) const;

  std::span<const Edge> neighbors(NodeId node) const {
    return adjacency_[node];
  }

  std::size_t degree(NodeId node) const { return adjacency_[node].size(); }

  /// True iff every node can reach every other node.
  bool connected() const;

  /// Adds minimum-cost "patch" edges chaining together connected components
  /// so the graph becomes connected; returns the number of edges added.
  /// Topology generators use this to guarantee a usable metric closure.
  std::size_t make_connected(Cost patch_cost);

 private:
  std::vector<std::vector<Edge>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace agtram::net
