#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace agtram::net {

using common::Rng;

namespace {

Cost draw_cost(Rng& rng, const TopologyConfig& cfg, double scale = 1.0) {
  const auto span = static_cast<std::uint64_t>(cfg.max_cost - cfg.min_cost);
  const Cost base = cfg.min_cost + static_cast<Cost>(rng.below(span + 1));
  const double scaled = std::max(1.0, std::round(static_cast<double>(base) * scale));
  return static_cast<Cost>(scaled);
}

/// GT-ITM "pure random": G(M, P(edge = p)).
Graph flat_random(const TopologyConfig& cfg, Rng& rng) {
  Graph g(cfg.nodes);
  for (NodeId a = 0; a < cfg.nodes; ++a) {
    for (NodeId b = a + 1; b < cfg.nodes; ++b) {
      if (rng.chance(cfg.edge_probability)) {
        g.add_edge(a, b, draw_cost(rng, cfg));
      }
    }
  }
  return g;
}

/// Waxman on a unit square; link cost scales with Euclidean distance, the
/// paper's "distance reverse-mapped to the cost of transmitting 1 kB".
Graph waxman(const TopologyConfig& cfg, Rng& rng) {
  Graph g(cfg.nodes);
  std::vector<double> x(cfg.nodes), y(cfg.nodes);
  for (NodeId i = 0; i < cfg.nodes; ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  const double max_dist = std::sqrt(2.0);
  for (NodeId a = 0; a < cfg.nodes; ++a) {
    for (NodeId b = a + 1; b < cfg.nodes; ++b) {
      const double d = std::hypot(x[a] - x[b], y[a] - y[b]);
      const double p =
          cfg.waxman_alpha * std::exp(-d / (cfg.waxman_beta * max_dist));
      if (rng.chance(p)) {
        g.add_edge(a, b, draw_cost(rng, cfg, 0.5 + d / max_dist));
      }
    }
  }
  return g;
}

/// GT-ITM transit-stub: a clique-ish transit core; each transit node
/// sponsors stub domains (small dense clusters).  Transit links cost more
/// than stub links, giving the hierarchical cost structure of the Internet.
Graph transit_stub(const TopologyConfig& cfg, Rng& rng) {
  const std::uint32_t transit =
      std::max<std::uint32_t>(2, std::min(cfg.transit_nodes, cfg.nodes / 2));
  Graph g(cfg.nodes);

  // Transit core: random graph with high connectivity and expensive links.
  for (NodeId a = 0; a < transit; ++a) {
    for (NodeId b = a + 1; b < transit; ++b) {
      if (rng.chance(0.6)) g.add_edge(a, b, draw_cost(rng, cfg, 3.0));
    }
  }

  // Distribute the remaining nodes into stub domains hanging off transit
  // nodes round-robin.
  const std::uint32_t stubs = cfg.nodes - transit;
  const std::uint32_t domains =
      std::max<std::uint32_t>(1, transit * cfg.stub_domains_per_transit);
  std::vector<std::vector<NodeId>> domain_members(domains);
  for (std::uint32_t s = 0; s < stubs; ++s) {
    domain_members[s % domains].push_back(transit + s);
  }
  for (std::uint32_t d = 0; d < domains; ++d) {
    const auto& members = domain_members[d];
    if (members.empty()) continue;
    // Gateway link into the sponsoring transit node (medium cost).
    const NodeId gateway = static_cast<NodeId>(d % transit);
    g.add_edge(members.front(), gateway, draw_cost(rng, cfg, 2.0));
    // Dense cheap intra-domain mesh.
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (rng.chance(0.7)) {
          g.add_edge(members[i], members[j], draw_cost(rng, cfg, 1.0));
        }
      }
    }
  }
  return g;
}

/// Inet-style AS topology: Barabási–Albert preferential attachment.
Graph power_law(const TopologyConfig& cfg, Rng& rng) {
  const std::uint32_t m = std::max<std::uint32_t>(1, cfg.attachment_edges);
  Graph g(cfg.nodes);
  // Repeated-node trick: targets proportional to degree.
  std::vector<NodeId> endpoint_pool;
  const std::uint32_t seed_nodes = std::min(cfg.nodes, m + 1);
  for (NodeId a = 0; a < seed_nodes; ++a) {
    for (NodeId b = a + 1; b < seed_nodes; ++b) {
      g.add_edge(a, b, draw_cost(rng, cfg));
      endpoint_pool.push_back(a);
      endpoint_pool.push_back(b);
    }
  }
  for (NodeId v = seed_nodes; v < cfg.nodes; ++v) {
    std::uint32_t added = 0;
    std::uint32_t attempts = 0;
    while (added < m && attempts < 16 * m) {
      ++attempts;
      const NodeId target =
          endpoint_pool[rng.below(endpoint_pool.size())];
      if (target == v || g.has_edge(v, target)) continue;
      g.add_edge(v, target, draw_cost(rng, cfg));
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(target);
      ++added;
    }
    if (added == 0) {
      // Degenerate fallback: attach to a uniformly random earlier node.
      const NodeId target = static_cast<NodeId>(rng.below(v));
      g.add_edge(v, target, draw_cost(rng, cfg));
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(target);
    }
  }
  return g;
}

/// Tree family (Benoit–Rehn–Robert's setting): exactly n-1 edges, connected
/// by construction, so the metric closure equals the unique tree-path
/// distances — what baselines::tree_placement's ancestor DP relies on.
Graph tree(const TopologyConfig& cfg, Rng& rng) {
  Graph g(cfg.nodes);
  switch (cfg.tree_shape) {
    case TreeShape::Random:
      // Uniform recursive tree.
      for (NodeId v = 1; v < cfg.nodes; ++v) {
        g.add_edge(v, static_cast<NodeId>(rng.below(v)), draw_cost(rng, cfg));
      }
      break;
    case TreeShape::Balanced: {
      const std::uint32_t arity = std::max<std::uint32_t>(1, cfg.tree_arity);
      for (NodeId v = 1; v < cfg.nodes; ++v) {
        g.add_edge(v, (v - 1) / arity, draw_cost(rng, cfg));
      }
      break;
    }
    case TreeShape::Caterpillar: {
      // Spine of ceil(n/2) nodes; the rest hang off it round-robin.
      const NodeId spine = (cfg.nodes + 1) / 2;
      for (NodeId v = 1; v < spine; ++v) {
        g.add_edge(v, v - 1, draw_cost(rng, cfg));
      }
      for (NodeId v = spine; v < cfg.nodes; ++v) {
        g.add_edge(v, (v - spine) % spine, draw_cost(rng, cfg));
      }
      break;
    }
  }
  return g;
}

}  // namespace

TopologyKind parse_topology_kind(const std::string& name) {
  if (name == "random" || name == "flat-random" || name == "gt-itm") {
    return TopologyKind::FlatRandom;
  }
  if (name == "waxman") return TopologyKind::Waxman;
  if (name == "transit-stub" || name == "ts") return TopologyKind::TransitStub;
  if (name == "power-law" || name == "inet" || name == "ba") {
    return TopologyKind::PowerLaw;
  }
  if (name == "tree" || name == "tree-balanced" || name == "tree-caterpillar") {
    return TopologyKind::Tree;
  }
  throw std::invalid_argument("unknown topology kind: " + name);
}

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::FlatRandom: return "random";
    case TopologyKind::Waxman: return "waxman";
    case TopologyKind::TransitStub: return "transit-stub";
    case TopologyKind::PowerLaw: return "power-law";
    case TopologyKind::Tree: return "tree";
  }
  return "?";
}

Graph generate_topology(const TopologyConfig& cfg) {
  if (cfg.nodes == 0) throw std::invalid_argument("topology needs >= 1 node");
  if (cfg.min_cost == 0 || cfg.min_cost > cfg.max_cost) {
    throw std::invalid_argument("require 0 < min_cost <= max_cost");
  }
  if (cfg.kind == TopologyKind::FlatRandom &&
      (cfg.edge_probability <= 0.0 || cfg.edge_probability > 1.0)) {
    throw std::invalid_argument("edge_probability must be in (0, 1]");
  }

  Rng rng(cfg.seed);
  Graph g = [&] {
    switch (cfg.kind) {
      case TopologyKind::FlatRandom: return flat_random(cfg, rng);
      case TopologyKind::Waxman: return waxman(cfg, rng);
      case TopologyKind::TransitStub: return transit_stub(cfg, rng);
      case TopologyKind::PowerLaw: return power_law(cfg, rng);
      case TopologyKind::Tree: return tree(cfg, rng);
    }
    throw std::logic_error("unreachable");
  }();
  g.make_connected(cfg.max_cost);
  assert(g.connected());
  return g;
}

}  // namespace agtram::net
