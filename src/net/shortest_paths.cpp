#include "net/shortest_paths.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hpp"

namespace agtram::net {

std::vector<Cost> dijkstra(const Graph& graph, NodeId source) {
  std::vector<Cost> dist(graph.node_count(), kUnreachable);
  using Item = std::pair<Cost, NodeId>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0;
  heap.emplace(0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) continue;  // stale entry
    for (const Edge& e : graph.neighbors(u)) {
      const Cost candidate = d + e.cost;
      if (candidate < dist[e.to]) {
        dist[e.to] = candidate;
        heap.emplace(candidate, e.to);
      }
    }
  }
  return dist;
}

DistanceMatrix DistanceMatrix::compute(const Graph& graph) {
  const std::size_t n = graph.node_count();
  std::vector<Cost> data(n * n, kUnreachable);
  common::ThreadPool::shared().parallel_for(
      0, n,
      [&](std::size_t first, std::size_t last) {
        for (std::size_t src = first; src < last; ++src) {
          const auto row = dijkstra(graph, static_cast<NodeId>(src));
          std::copy(row.begin(), row.end(), data.begin() + src * n);
        }
      },
      /*min_grain=*/1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (data[i * n + j] == kUnreachable) {
        throw std::runtime_error(
            "DistanceMatrix::compute: graph is disconnected");
      }
    }
  }
  return DistanceMatrix(n, std::move(data));
}

DistanceMatrix DistanceMatrix::from_rows(std::size_t nodes,
                                         std::vector<Cost> rows) {
  if (rows.size() != nodes * nodes) {
    throw std::invalid_argument("from_rows: size mismatch");
  }
  for (std::size_t i = 0; i < nodes; ++i) {
    if (rows[i * nodes + i] != 0) {
      throw std::invalid_argument("from_rows: non-zero diagonal");
    }
    for (std::size_t j = 0; j < nodes; ++j) {
      if (rows[i * nodes + j] != rows[j * nodes + i]) {
        throw std::invalid_argument("from_rows: asymmetric matrix");
      }
    }
  }
  return DistanceMatrix(nodes, std::move(rows));
}

Cost DistanceMatrix::diameter() const {
  Cost best = 0;
  for (Cost c : data_) best = std::max(best, c);
  return best;
}

double DistanceMatrix::mean_distance() const {
  if (nodes_ < 2) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < nodes_; ++i) {
    for (std::size_t j = i + 1; j < nodes_; ++j) {
      sum += static_cast<double>(data_[i * nodes_ + j]);
    }
  }
  const double pairs =
      static_cast<double>(nodes_) * static_cast<double>(nodes_ - 1) / 2.0;
  return sum / pairs;
}

}  // namespace agtram::net
