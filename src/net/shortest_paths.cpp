#include "net/shortest_paths.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <queue>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hpp"

namespace agtram::net {

std::vector<Cost> dijkstra(const Graph& graph, NodeId source) {
  std::vector<Cost> dist(graph.node_count(), kUnreachable);
  using Item = std::pair<Cost, NodeId>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0;
  heap.emplace(0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) continue;  // stale entry
    for (const Edge& e : graph.neighbors(u)) {
      const Cost candidate = d + e.cost;
      if (candidate < dist[e.to]) {
        dist[e.to] = candidate;
        heap.emplace(candidate, e.to);
      }
    }
  }
  return dist;
}

namespace {

/// Mean over distinct pairs from the full-matrix entry sum.  The matrix is
/// symmetric with a zero diagonal, so the upper-triangle sum is half the
/// total; integer sums are exact, matching a direct double accumulation of
/// the triangle for any realistic matrix (triangle sums below 2^53).
double mean_from_total(std::size_t nodes, std::uint64_t total) {
  if (nodes < 2) return 0.0;
  const double pairs =
      static_cast<double>(nodes) * static_cast<double>(nodes - 1) / 2.0;
  return static_cast<double>(total / 2) / pairs;
}

}  // namespace

DistanceMatrix DistanceMatrix::compute(const Graph& graph) {
  const std::size_t n = graph.node_count();
  std::vector<Cost> data(n * n, kUnreachable);
  // Per-row partials folded into the fill pass: each source's Dijkstra row
  // is scanned once, right after it is written, for reachability plus the
  // row's max and sum — the former O(n^2) serial validation sweep and the
  // separate diameter()/mean_distance() walks disappear into this loop.
  std::vector<Cost> row_max(n, 0);
  std::vector<std::uint64_t> row_sum(n, 0);
  std::atomic<bool> disconnected{false};
  common::ThreadPool::shared().parallel_for(
      0, n,
      [&](std::size_t first, std::size_t last) {
        for (std::size_t src = first; src < last; ++src) {
          const auto row = dijkstra(graph, static_cast<NodeId>(src));
          std::copy(row.begin(), row.end(), data.begin() + src * n);
          Cost max = 0;
          std::uint64_t sum = 0;
          for (const Cost c : row) {
            max = std::max(max, c);
            sum += c;
          }
          row_max[src] = max;
          row_sum[src] = sum;
          if (max == kUnreachable) {
            disconnected.store(true, std::memory_order_relaxed);
          }
        }
      },
      /*min_grain=*/1);
  if (disconnected.load(std::memory_order_relaxed)) {
    throw std::runtime_error("DistanceMatrix::compute: graph is disconnected");
  }
  Cost diameter = 0;
  std::uint64_t total = 0;
  for (std::size_t src = 0; src < n; ++src) {
    diameter = std::max(diameter, row_max[src]);
    total += row_sum[src];
  }
  return DistanceMatrix(n, std::move(data), diameter,
                        mean_from_total(n, total));
}

DistanceMatrix DistanceMatrix::from_rows(std::size_t nodes,
                                         std::vector<Cost> rows) {
  if (rows.size() != nodes * nodes) {
    throw std::invalid_argument("from_rows: size mismatch");
  }
  Cost diameter = 0;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < nodes; ++i) {
    if (rows[i * nodes + i] != 0) {
      throw std::invalid_argument("from_rows: non-zero diagonal");
    }
    for (std::size_t j = 0; j < nodes; ++j) {
      const Cost c = rows[i * nodes + j];
      if (c != rows[j * nodes + i]) {
        throw std::invalid_argument("from_rows: asymmetric matrix");
      }
      diameter = std::max(diameter, c);
      total += c;
    }
  }
  return DistanceMatrix(nodes, std::move(rows), diameter,
                        mean_from_total(nodes, total));
}

}  // namespace agtram::net
