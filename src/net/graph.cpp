#include "net/graph.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace agtram::net {

Graph::Graph(std::size_t node_count) : adjacency_(node_count) {
  assert(node_count > 0);
}

void Graph::add_edge(NodeId a, NodeId b, Cost cost) {
  assert(a < node_count() && b < node_count());
  if (a == b) return;
  for (Edge& e : adjacency_[a]) {
    if (e.to == b) {  // parallel edge: keep the cheaper one
      if (cost < e.cost) {
        e.cost = cost;
        for (Edge& back : adjacency_[b]) {
          if (back.to == a) back.cost = cost;
        }
      }
      return;
    }
  }
  adjacency_[a].push_back(Edge{b, cost});
  adjacency_[b].push_back(Edge{a, cost});
  ++edge_count_;
}

bool Graph::has_edge(NodeId a, NodeId b) const {
  assert(a < node_count() && b < node_count());
  const auto& adj = adjacency_[a];
  return std::any_of(adj.begin(), adj.end(),
                     [b](const Edge& e) { return e.to == b; });
}

bool Graph::connected() const {
  std::vector<bool> seen(node_count(), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const Edge& e : adjacency_[u]) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        ++visited;
        frontier.push(e.to);
      }
    }
  }
  return visited == node_count();
}

std::size_t Graph::make_connected(Cost patch_cost) {
  std::vector<NodeId> component(node_count(), 0);
  std::vector<NodeId> representatives;
  std::vector<bool> seen(node_count(), false);
  for (NodeId start = 0; start < node_count(); ++start) {
    if (seen[start]) continue;
    representatives.push_back(start);
    std::queue<NodeId> frontier;
    frontier.push(start);
    seen[start] = true;
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      component[u] = start;
      for (const Edge& e : adjacency_[u]) {
        if (!seen[e.to]) {
          seen[e.to] = true;
          frontier.push(e.to);
        }
      }
    }
  }
  for (std::size_t i = 1; i < representatives.size(); ++i) {
    add_edge(representatives[i - 1], representatives[i], patch_cost);
  }
  return representatives.size() - 1;
}

}  // namespace agtram::net
