// Request streams for the serving engine (DESIGN.md §13).
//
// A Request addresses a structural demand cell — (object, accessor slot) in
// the AccessMatrix slot scheme — because the serving engine folds observed
// traffic back into the demand matrix through the checked
// AccessMatrix::apply_demand_delta, whose fixed-universe contract admits
// demand movement only on existing cells (and reads only on structural
// reader cells).  `count` carries multiplicity so a million-request window
// replays in tens of thousands of routed entries without losing the
// request-weighted latency distribution.
//
// SyntheticWorkload samples cells proportionally to a drifting copy of the
// instance's own read/write rates: stationary with drift_interval = 0 (the
// matrix mix — i.e. a replay of the aggregated trace the instance was built
// from), or with periodic concentration drift that moves a fraction of each
// chosen object's read mass onto one hot reader (mean-field drift in the
// manner of runtime::OnlineEventModel) — the regime the drift trigger and
// the eviction pass exist for.  from_day_log adapts a trace::DayLog onto
// the structural support for externally supplied logs.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "drp/problem.hpp"
#include "trace/access_log.hpp"

namespace agtram::srv {

/// One routed request group: `count` reads (or writes) issued from the
/// server at accessor slot `slot` of object `object`.
struct Request {
  drp::ObjectIndex object;
  std::uint32_t slot;
  std::uint32_t count;
  bool write;
};

struct WorkloadConfig {
  /// Request groups per batch (each carries a sampled multiplicity).
  std::size_t requests_per_batch = 4096;
  /// Mean multiplicity per group; actual counts are uniform in
  /// [1, 2*mean_count - 1] so batch volume is stable but not constant.
  std::uint32_t mean_count = 8;
  /// Batches between drift steps; 0 disables drift (stationary replay).
  std::size_t drift_interval = 8;
  /// Fraction of a drifted object's read (and write) mass moved onto the
  /// chosen hot cell per step.
  double drift_fraction = 0.35;
  /// Objects redirected per drift step.
  std::size_t drift_objects = 16;
  std::uint64_t seed = 1;
};

class SyntheticWorkload {
 public:
  SyntheticWorkload(const drp::Problem& problem, WorkloadConfig config);

  /// Fills `out` (cleared first) with config.requests_per_batch groups drawn
  /// from the current rates, then advances the drift clock.  Deterministic
  /// per seed.
  void next_batch(std::vector<Request>& out);

  std::size_t batches_emitted() const noexcept { return batches_; }
  std::size_t drift_steps() const noexcept { return drift_steps_; }

 private:
  void drift_step();
  void rebuild_cumulative();

  const drp::Problem* problem_;
  WorkloadConfig config_;
  std::mt19937_64 rng_;
  /// Current per-cell sampling rates, slot scheme; reads then writes in one
  /// cumulative array so a single uniform draw picks cell *and* kind.
  std::vector<double> read_rate_;
  std::vector<double> write_rate_;
  std::vector<double> cum_;  ///< size 2*nnz; cum_[i] = prefix sum
  double total_rate_ = 0.0;
  std::vector<drp::ObjectIndex> cell_object_;  ///< slot scheme -> object
  std::vector<drp::ObjectIndex> readable_;     ///< objects with >= 2 readers
  std::size_t batches_ = 0;
  std::size_t drift_steps_ = 0;
};

/// Aggregates a trace::DayLog onto `problem`'s structural support: objects
/// map onto the catalogue modulo N, each request lands on a reader cell of
/// its object chosen by hashing the client id (a fixed client therefore
/// always enters at the same server — the pipeline's 1-M client mapping in
/// miniature).  Objects without readers are skipped.  Returns request
/// groups sorted by (object, slot) with counts merged.
std::vector<Request> from_day_log(const drp::Problem& problem,
                                  const trace::DayLog& log);

}  // namespace agtram::srv
