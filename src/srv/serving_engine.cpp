#include "srv/serving_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/timer.hpp"
#include "obs/obs.hpp"

namespace agtram::srv {

double ServingStats::mean_read_cost() const noexcept {
  std::uint64_t total = 0;
  double weighted = 0.0;
  for (std::size_t d = 0; d < read_cost_histogram.size(); ++d) {
    total += read_cost_histogram[d];
    weighted += static_cast<double>(read_cost_histogram[d]) *
                static_cast<double>(d);
  }
  return total == 0 ? 0.0 : weighted / static_cast<double>(total);
}

ServingEngine::ServingEngine(drp::Problem problem, ServingConfig config)
    : config_(std::move(config)) {
  pool_ = config_.pool ? config_.pool : &common::ThreadPool::shared();
  shard_count_ = config_.shards != 0
                     ? config_.shards
                     : std::max<std::size_t>(1, pool_->thread_count());

  if (config_.policy == ReconvergePolicy::OnDrift) {
    core::OnlineConfig online;
    online.mechanism = config_.mechanism;
    online.max_repair_rounds = config_.max_repair_rounds;
    online.eviction_limit = config_.eviction_limit;
    online.differential_oracle = config_.differential_oracle;
    online_ = std::make_unique<core::OnlineMechanism>(std::move(problem),
                                                      online);
  } else {
    problem_ = std::make_unique<drp::Problem>(std::move(problem));
    problem_->validate();
    core::MechanismResult initial =
        core::run_agt_ram(*problem_, config_.mechanism);
    if (!initial.drained) {
      throw std::invalid_argument(
          "ServingEngine: initial solve hit max_rounds — serving needs a "
          "quiescent placement");
    }
    placement_.emplace(std::move(initial.placement));
  }

  const drp::Problem& inst = this->problem();
  const drp::AccessMatrix& access = inst.access;
  const std::size_t nnz = access.nonzeros();
  window_reads_.assign(nnz, 0);
  window_writes_.assign(nnz, 0);
  window_touched_flag_.assign(nnz, 0);
  cell_object_.resize(nnz);
  const std::size_t n = inst.object_count();
  for (drp::ObjectIndex k = 0; k < n; ++k) {
    const std::size_t base = access.accessor_base(k);
    const std::size_t width = access.accessors(k).size();
    for (std::size_t slot = 0; slot < width; ++slot) {
      cell_object_[base + slot] = k;
    }
  }

  const std::size_t hist_size =
      static_cast<std::size_t>(inst.distances->diameter()) + 1;
  stats_.read_cost_histogram.assign(hist_size, 0);
  shards_.resize(shard_count_);
  for (Shard& shard : shards_) shard.hist.assign(hist_size, 0);

  table_.install(
      std::make_shared<const RoutingSnapshot>(placement(), epoch_));
  install_mean_read_cost_ = expected_mean_read_cost();
}

const drp::Problem& ServingEngine::problem() const {
  return online_ ? online_->problem() : *problem_;
}

const drp::ReplicaPlacement& ServingEngine::placement() const {
  return online_ ? online_->placement() : *placement_;
}

void ServingEngine::route_shard(const RoutingSnapshot& snap,
                                std::span<const Request> part,
                                Shard& shard) const {
  const std::size_t stride = config_.latency_sample_every;
  std::size_t until_sample = stride;
  for (const Request& req : part) {
    const std::size_t idx =
        snap.problem().access.accessor_base(req.object) + req.slot;
    const double count = static_cast<double>(req.count);
    shard.cell.push_back(idx);
    if (req.write) {
      shard.dr.push_back(0);
      shard.dw.push_back(req.count);
      shard.writes += req.count;
      shard.write_units += snap.write_units(req.object, req.slot) * count;
      continue;
    }
    RouteDecision route;
    if (stride != 0 && --until_sample == 0) {
      until_sample = stride;
      const auto t0 = std::chrono::steady_clock::now();
      route = snap.route_read(req.object, req.slot);
      const auto t1 = std::chrono::steady_clock::now();
      shard.query_ns.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
    } else {
      route = snap.route_read(req.object, req.slot);
    }
    shard.dr.push_back(req.count);
    shard.dw.push_back(0);
    shard.reads += req.count;
    if (route.distance == 0) shard.local_reads += req.count;
    shard.hist[route.distance] += req.count;
    shard.read_cost += static_cast<double>(route.distance) * count;
    shard.read_units += snap.read_units(req.object, req.slot) * count;
  }
}

void ServingEngine::merge_shard(Shard& shard) {
  for (std::size_t e = 0; e < shard.cell.size(); ++e) {
    const std::uint64_t idx = shard.cell[e];
    window_reads_[idx] += shard.dr[e];
    window_writes_[idx] += shard.dw[e];
    if (window_touched_flag_[idx] == 0) {
      window_touched_flag_[idx] = 1;
      window_touched_.push_back(idx);
    }
  }
  for (std::size_t d = 0; d < shard.hist.size(); ++d) {
    stats_.read_cost_histogram[d] += shard.hist[d];
    shard.hist[d] = 0;
  }
  stats_.query_ns.insert(stats_.query_ns.end(), shard.query_ns.begin(),
                         shard.query_ns.end());
  stats_.reads += shard.reads;
  stats_.writes += shard.writes;
  stats_.local_reads += shard.local_reads;
  stats_.read_units += shard.read_units;
  stats_.write_units += shard.write_units;
  window_requests_ += shard.reads + shard.writes;
  window_groups_ += shard.cell.size();
  window_read_cost_ += shard.read_cost;
  window_read_count_ += shard.reads;

  shard.cell.clear();
  shard.dr.clear();
  shard.dw.clear();
  shard.query_ns.clear();
  shard.reads = shard.writes = shard.local_reads = 0;
  shard.read_units = shard.write_units = shard.read_cost = 0.0;
}

void ServingEngine::run_batch(std::span<const Request> batch) {
  AGTRAM_OBS_SPAN("srv.batch");
  common::Timer timer;
  // Pin one snapshot for the whole batch; shards share it (installs landing
  // mid-batch take effect next batch — a batch is one coherent epoch).
  const RoutingSnapshot* snap = table_.acquire();

  const std::size_t parts = batch.empty()
                                ? 0
                                : std::min(shard_count_, batch.size());
  if (parts != 0) {
    pool_->parallel_for(
        0, parts,
        [&](std::size_t first, std::size_t last) {
          for (std::size_t s = first; s < last; ++s) {
            const std::size_t lo = batch.size() * s / parts;
            const std::size_t hi = batch.size() * (s + 1) / parts;
            route_shard(*snap, batch.subspan(lo, hi - lo), shards_[s]);
          }
        },
        1);
    std::uint64_t batch_reads = 0;
    std::uint64_t batch_writes = 0;
    for (std::size_t s = 0; s < parts; ++s) {
      batch_reads += shards_[s].reads;
      batch_writes += shards_[s].writes;
      merge_shard(shards_[s]);
    }
    const std::uint64_t routed = batch_reads + batch_writes;
    stats_.requests += routed;
    AGTRAM_OBS_COUNT("srv.requests", routed);
    AGTRAM_OBS_COUNT("srv.reads_routed", batch_reads);
    AGTRAM_OBS_COUNT("srv.writes_routed", batch_writes);
    if (config_.bus) config_.bus->account_routes(routed);
  }
  ++stats_.batches;
  AGTRAM_OBS_COUNT("srv.batches", 1);
  stats_.serve_seconds += timer.seconds();

  if (config_.policy == ReconvergePolicy::EveryBatch) {
    reconverge_now();
  } else if (config_.policy == ReconvergePolicy::OnDrift && drift_crossed()) {
    ++stats_.drift_triggers;
    AGTRAM_OBS_COUNT("srv.drift_triggers", 1);
    reconverge_now();
  }
}

bool ServingEngine::drift_crossed() const {
  if (window_requests_ < config_.min_window_requests) return false;

  // Routing-cost regression: observed mean read distance vs the expectation
  // computed when the current snapshot was installed.
  if (install_mean_read_cost_ > 0.0 && window_read_count_ > 0) {
    const double observed =
        window_read_cost_ / static_cast<double>(window_read_count_);
    if (observed >=
        install_mean_read_cost_ * config_.cost_regression_threshold) {
      return true;
    }
  }

  // L1 volume drift over the window's touched cells: how far the observed
  // traffic shares moved from the registered demand shares.  Untouched
  // cells are skipped — their |0 - share| mass is implicit in the touched
  // cells' excess, and the threshold is calibrated for this one-sided sum.
  const drp::AccessMatrix& access = problem().access;
  const double grand = static_cast<double>(access.grand_total_reads() +
                                           access.grand_total_writes());
  const double window = static_cast<double>(window_requests_);
  if (grand <= 0.0 || window_groups_ == 0) return false;
  double drift = 0.0;
  for (const std::uint64_t idx : window_touched_) {
    const drp::ObjectIndex k = cell_object_[idx];
    const std::size_t slot = idx - access.accessor_base(k);
    const drp::Access& cell = access.accessors(k)[slot];
    const double observed_share =
        static_cast<double>(window_reads_[idx] + window_writes_[idx]) / window;
    const double registered_share =
        static_cast<double>(cell.reads + cell.writes) / grand;
    drift += std::abs(observed_share - registered_share);
  }
  // Multinomial sampling-noise floor: a stationary replay of n uniform
  // draws over K cells shows E[L1] <= sqrt(2K/(pi*n)) even with zero real
  // drift (Cauchy-Schwarz bound; tight in the uniform case, which is the
  // worst).  With cells ~ draws per batch that floor is O(1), so the raw L1
  // would fire on noise; subtracting it makes the trigger consistent — a
  // stationary window grows n, the floor decays, the signal stays near 0.
  const double noise_floor =
      std::sqrt(2.0 * static_cast<double>(window_touched_.size()) /
                (3.14159265358979323846 * static_cast<double>(window_groups_)));
  return drift - noise_floor >= config_.volume_drift_threshold;
}

void ServingEngine::reconverge_now() {
  AGTRAM_OBS_SPAN("srv.reconverge");
  common::Timer timer;
  const drp::AccessMatrix& access = problem().access;

  // Fold the observed window into the registered demand as an
  // evidence-weighted blend.  The observation is first scaled onto the
  // matrix's registered volume (the demand *mix* follows the traffic, the
  // total stays comparable, so OTC trajectories across policies measure
  // placement quality, not volume), then blended with weight
  // window/(window + grand): a window as large as the registered volume
  // moves cells halfway to the observation, while a single sparse batch —
  // whose per-cell counts are mostly 0 or 1 and would be amplified by the
  // grand/window rescale into solver-visible noise — only nudges them.  The
  // product alpha * scale = grand/(window + grand) < 1, so a cell's update
  // never exceeds its raw observed count.
  std::uint64_t window_reads = 0;
  std::uint64_t window_writes = 0;
  for (const std::uint64_t idx : window_touched_) {
    window_reads += window_reads_[idx];
    window_writes += window_writes_[idx];
  }
  const auto grand_reads = static_cast<double>(access.grand_total_reads());
  const auto grand_writes = static_cast<double>(access.grand_total_writes());
  const double read_scale =
      window_reads == 0 ? 0.0
                        : grand_reads / static_cast<double>(window_reads);
  const double write_scale =
      window_writes == 0 ? 0.0
                         : grand_writes / static_cast<double>(window_writes);
  const double read_alpha =
      window_reads == 0 ? 0.0
                        : static_cast<double>(window_reads) /
                              (static_cast<double>(window_reads) + grand_reads);
  const double write_alpha =
      window_writes == 0
          ? 0.0
          : static_cast<double>(window_writes) /
                (static_cast<double>(window_writes) + grand_writes);

  // Deterministic delta order regardless of shard merge interleaving.
  std::sort(window_touched_.begin(), window_touched_.end());

  std::vector<core::DemandDelta> deltas;
  deltas.reserve(window_touched_.size());
  for (const std::uint64_t idx : window_touched_) {
    const drp::ObjectIndex k = cell_object_[idx];
    const std::size_t slot = idx - access.accessor_base(k);
    const drp::Access& cell = access.accessors(k)[slot];
    // Only re-target the kinds the window actually observed on this cell; a
    // write-only window on a read/write cell says nothing about its reads.
    std::int64_t delta_reads = 0;
    if (window_reads_[idx] != 0) {
      const double observed =
          static_cast<double>(window_reads_[idx]) * read_scale;
      const double old = static_cast<double>(cell.reads);
      const std::int64_t target = static_cast<std::int64_t>(
          std::llround(old + read_alpha * (observed - old)));
      delta_reads = target - static_cast<std::int64_t>(cell.reads);
    }
    std::int64_t delta_writes = 0;
    if (window_writes_[idx] != 0) {
      const double observed =
          static_cast<double>(window_writes_[idx]) * write_scale;
      const double old = static_cast<double>(cell.writes);
      const std::int64_t target = static_cast<std::int64_t>(
          std::llround(old + write_alpha * (observed - old)));
      delta_writes = target - static_cast<std::int64_t>(cell.writes);
    }
    if (delta_reads == 0 && delta_writes == 0) continue;
    deltas.push_back(core::DemandDelta{
        static_cast<drp::ServerId>(access.accessor_servers(k)[slot]), k,
        delta_reads, delta_writes});
  }

  stats_.demand_delta_cells += deltas.size();
  AGTRAM_OBS_COUNT("srv.demand_delta_cells", deltas.size());
  if (config_.bus) config_.bus->account_demand_batch(deltas.size());

  std::uint64_t changed_entries = 0;
  if (online_) {
    std::vector<core::OnlineEvent> events(deltas.begin(), deltas.end());
    const core::BatchOutcome outcome = online_->apply_events(events);
    stats_.repair_rounds += outcome.repair_rounds;
    stats_.replicas_evicted += outcome.replicas_evicted;
    // Incremental install: only the added/evicted entries ship.
    changed_entries = outcome.replicas_added + outcome.replicas_evicted +
                      outcome.replicas_lost;
  } else {
    for (const core::DemandDelta& d : deltas) {
      problem_->access.apply_demand_delta(d.server, d.object, d.delta_reads,
                                          d.delta_writes);
    }
    core::MechanismResult result =
        core::run_agt_ram(*problem_, config_.mechanism);
    stats_.repair_rounds += result.rounds.size();
    placement_.emplace(std::move(result.placement));
    // Cold re-solve: the whole routing table ships.
    changed_entries = placement_->replica_count();
  }

  ++stats_.reconverges;
  AGTRAM_OBS_COUNT("srv.reconverges", 1);
  install_snapshot(changed_entries);
  reset_window();
  stats_.reconverge_seconds += timer.seconds();
}

void ServingEngine::install_snapshot(std::uint64_t changed_entries) {
  ++epoch_;
  table_.install(
      std::make_shared<const RoutingSnapshot>(placement(), epoch_));
  ++stats_.installs;
  if (config_.bus) {
    config_.bus->account_install(changed_entries == 0 ? 1 : changed_entries);
  }
  install_mean_read_cost_ = expected_mean_read_cost();
}

void ServingEngine::reset_window() {
  for (const std::uint64_t idx : window_touched_) {
    window_reads_[idx] = 0;
    window_writes_[idx] = 0;
    window_touched_flag_[idx] = 0;
  }
  window_touched_.clear();
  window_requests_ = 0;
  window_groups_ = 0;
  window_read_cost_ = 0.0;
  window_read_count_ = 0;
}

double ServingEngine::expected_mean_read_cost() const {
  const drp::Problem& inst = problem();
  const drp::AccessMatrix& access = inst.access;
  const drp::ReplicaPlacement& place = placement();
  const std::size_t n = inst.object_count();
  double weighted = 0.0;
  double total = 0.0;
  for (drp::ObjectIndex k = 0; k < n; ++k) {
    const auto reads = access.accessor_reads_d(k);
    const auto dist = place.nn_row(k);
    for (std::size_t slot = 0; slot < reads.size(); ++slot) {
      weighted += reads[slot] * static_cast<double>(dist[slot]);
      total += reads[slot];
    }
  }
  return total == 0.0 ? 0.0 : weighted / total;
}

}  // namespace agtram::srv
