#include "srv/workload.hpp"

#include <algorithm>
#include <stdexcept>

namespace agtram::srv {

SyntheticWorkload::SyntheticWorkload(const drp::Problem& problem,
                                     WorkloadConfig config)
    : problem_(&problem), config_(config), rng_(config.seed) {
  const drp::AccessMatrix& access = problem.access;
  const std::size_t n = problem.object_count();
  const std::size_t nnz = access.nonzeros();
  if (nnz == 0) {
    throw std::invalid_argument("SyntheticWorkload: instance has no demand");
  }
  read_rate_.assign(nnz, 0.0);
  write_rate_.assign(nnz, 0.0);
  cell_object_.resize(nnz);
  for (drp::ObjectIndex k = 0; k < n; ++k) {
    const std::size_t base = access.accessor_base(k);
    const auto reads = access.accessor_reads_d(k);
    const auto writes = access.accessor_writes_d(k);
    for (std::size_t slot = 0; slot < reads.size(); ++slot) {
      read_rate_[base + slot] = reads[slot];
      write_rate_[base + slot] = writes[slot];
      cell_object_[base + slot] = k;
    }
    if (access.readers(k).size() >= 2) readable_.push_back(k);
  }
  rebuild_cumulative();
  if (total_rate_ <= 0.0) {
    throw std::invalid_argument("SyntheticWorkload: instance demand is zero");
  }
}

void SyntheticWorkload::rebuild_cumulative() {
  const std::size_t nnz = read_rate_.size();
  cum_.resize(2 * nnz);
  double acc = 0.0;
  for (std::size_t i = 0; i < nnz; ++i) {
    acc += read_rate_[i];
    cum_[i] = acc;
  }
  for (std::size_t i = 0; i < nnz; ++i) {
    acc += write_rate_[i];
    cum_[nnz + i] = acc;
  }
  total_rate_ = acc;
}

void SyntheticWorkload::drift_step() {
  if (readable_.empty()) return;
  ++drift_steps_;
  const drp::AccessMatrix& access = problem_->access;
  std::uniform_int_distribution<std::size_t> pick_obj(0,
                                                      readable_.size() - 1);
  for (std::size_t d = 0; d < config_.drift_objects; ++d) {
    const drp::ObjectIndex k = readable_[pick_obj(rng_)];
    const std::size_t base = access.accessor_base(k);
    const auto readers = access.readers(k);
    // Reads concentrate onto one hot reader; its slot is found by id (the
    // readers list is a subset of the sorted accessor row).
    const drp::ServerId hot =
        readers[std::uniform_int_distribution<std::size_t>(
            0, readers.size() - 1)(rng_)];
    const std::size_t hot_idx = base + access.accessor_slot(hot, k);
    const auto servers = access.accessor_servers(k);
    double moved_reads = 0.0;
    double moved_writes = 0.0;
    for (std::size_t slot = 0; slot < servers.size(); ++slot) {
      const std::size_t idx = base + slot;
      if (idx == hot_idx) continue;
      const double dr = read_rate_[idx] * config_.drift_fraction;
      read_rate_[idx] -= dr;
      moved_reads += dr;
      const double dw = write_rate_[idx] * config_.drift_fraction;
      write_rate_[idx] -= dw;
      moved_writes += dw;
    }
    // The hot cell is a structural reader, so both kinds may land on it.
    read_rate_[hot_idx] += moved_reads;
    write_rate_[hot_idx] += moved_writes;
  }
  rebuild_cumulative();
}

void SyntheticWorkload::next_batch(std::vector<Request>& out) {
  out.clear();
  out.reserve(config_.requests_per_batch);
  const std::size_t nnz = read_rate_.size();
  std::uniform_real_distribution<double> pick(0.0, total_rate_);
  const std::uint32_t count_span =
      config_.mean_count > 1 ? 2 * config_.mean_count - 1 : 1;
  std::uniform_int_distribution<std::uint32_t> pick_count(1, count_span);
  for (std::size_t r = 0; r < config_.requests_per_batch; ++r) {
    const double u = pick(rng_);
    const std::size_t i = static_cast<std::size_t>(
        std::upper_bound(cum_.begin(), cum_.end(), u) - cum_.begin());
    const std::size_t idx = i < nnz ? i : i - nnz;
    // Degenerate draw past the last positive rate (floating-point edge):
    // clamp to the final cell.
    const std::size_t cell = idx < nnz ? idx : nnz - 1;
    const drp::ObjectIndex k = cell_object_[cell];
    Request req;
    req.object = k;
    req.slot = static_cast<std::uint32_t>(
        cell - problem_->access.accessor_base(k));
    req.count = pick_count(rng_);
    req.write = i >= nnz;
    out.push_back(req);
  }
  ++batches_;
  if (config_.drift_interval > 0 && batches_ % config_.drift_interval == 0) {
    drift_step();
  }
}

std::vector<Request> from_day_log(const drp::Problem& problem,
                                  const trace::DayLog& log) {
  const drp::AccessMatrix& access = problem.access;
  const std::size_t n = problem.object_count();
  std::vector<Request> out;
  // Merge repeated (object, slot) hits through a map keyed on the global
  // slot index; day logs are read-only traffic (reads land on reader cells).
  std::vector<std::uint32_t> counts(access.nonzeros(), 0);
  for (const trace::Request& req : log.requests) {
    const drp::ObjectIndex k =
        static_cast<drp::ObjectIndex>(req.object % n);
    const auto readers = access.readers(k);
    if (readers.empty()) continue;
    // splitmix64 finalizer: a fixed client always hashes to the same reader.
    std::uint64_t h = req.client + 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
    const drp::ServerId server = readers[h % readers.size()];
    ++counts[access.accessor_base(k) + access.accessor_slot(server, k)];
  }
  for (drp::ObjectIndex k = 0; k < n; ++k) {
    const std::size_t base = access.accessor_base(k);
    const std::size_t width = access.accessors(k).size();
    for (std::size_t slot = 0; slot < width; ++slot) {
      if (counts[base + slot] == 0) continue;
      out.push_back(Request{k, static_cast<std::uint32_t>(slot),
                            counts[base + slot], false});
    }
  }
  return out;
}

}  // namespace agtram::srv
