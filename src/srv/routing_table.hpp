// Serving-side routing table (DESIGN.md §13): the read/write fast path of
// the replica-placement service.
//
// A RoutingSnapshot is an immutable, flat, per-object nearest-replica index
// derived from the live drp::ReplicaPlacement: for every structural demand
// cell (the AccessMatrix slot scheme — accessor_base(k) + slot) it holds the
// serving replica's identity and distance, and for writes a precomputed
// per-cell data-unit cost (ship to primary + version broadcast to the other
// replicators, minus the writer's own incoming copy when it is itself a
// replicator — the exact accounting of sim::replay).  Routing one request is
// two contiguous array loads; nothing on the serve path chases the
// placement's replicator sets or the distance matrix.
//
// RoutingTable publishes snapshots RCU-style through one raw
// std::atomic<const RoutingSnapshot*>: worker threads `acquire()` a snapshot
// once per shard (a single acquire load — no refcount traffic on the serve
// path) and then route lock-free off its immutable arrays, while the control
// thread `install()`s a rebuilt snapshot after every re-convergence.  A
// worker therefore always serves a *coherent* placement — the epoch it
// pinned — never a torn mix of two.  Reclamation is deferred: the table
// keeps ownership of every installed snapshot until it is destroyed, so an
// acquired pointer stays valid for the table's lifetime with no per-reader
// grace-period bookkeeping.  Installs are drift-triggered and rare, so the
// retired set is bounded by the install count, not the request count
// (tests/serving_test.cpp hammers acquire-vs-install under TSan).
//
// std::atomic<std::shared_ptr> is deliberately not used here: libstdc++'s
// _Sp_atomic releases its internal bit-lock with a relaxed RMW on the load
// path, so the reader's read of the pointer field is not formally ordered
// against the next installer's write — TSan (correctly, per the memory
// model) reports that as a race.  The raw-pointer + deferred-ownership
// scheme is both cleanly ordered and cheaper.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "drp/placement.hpp"
#include "drp/problem.hpp"
#include "net/shortest_paths.hpp"

namespace agtram::srv {

/// Where a read was routed: the serving replica and the path cost of the
/// serving hop (0 when the reader holds a replica itself).
struct RouteDecision {
  drp::ServerId server;
  net::Cost distance;
};

class RoutingSnapshot {
 public:
  /// Copies the placement's flat NN caches and precomputes the per-cell
  /// write cost.  O(nnz + total replicas); the snapshot holds no reference
  /// to the placement afterwards (it may mutate freely), only to the
  /// Problem, whose structural support is immutable (fixed-universe model,
  /// DESIGN.md §12) — demand *values* may drift, routing never reads them.
  RoutingSnapshot(const drp::ReplicaPlacement& placement, std::uint64_t epoch);

  const drp::Problem& problem() const noexcept { return *problem_; }
  std::uint64_t epoch() const noexcept { return epoch_; }
  std::size_t replica_count() const noexcept { return replica_count_; }

  /// Routes a read issued from accessor slot `slot` of object k.
  RouteDecision route_read(drp::ObjectIndex k, std::uint32_t slot) const {
    const std::size_t idx = problem_->access.accessor_base(k) + slot;
    return {nn_node_[idx], nn_dist_[idx]};
  }

  /// Data units moved by one read from that cell: o_k x serving distance.
  double read_units(drp::ObjectIndex k, std::uint32_t slot) const {
    const std::size_t idx = problem_->access.accessor_base(k) + slot;
    return static_cast<double>(problem_->object_units[k]) *
           static_cast<double>(nn_dist_[idx]);
  }

  /// Data units moved by one write from that cell: ship to the primary plus
  /// the primary's version broadcast to every other replicator, excluding
  /// the writer's own incoming copy when it replicates k (sim::replay's
  /// accounting).  Precomputed at build time, one load at serve time.
  double write_units(drp::ObjectIndex k, std::uint32_t slot) const {
    return write_units_[problem_->access.accessor_base(k) + slot];
  }

  /// Object k's serving distances / replica identities, parallel to
  /// access.accessors(k) — the oracle tests compare these rows wholesale.
  std::span<const net::Cost> nn_row(drp::ObjectIndex k) const {
    const std::size_t base = problem_->access.accessor_base(k);
    return {nn_dist_.data() + base,
            problem_->access.accessor_base(k + 1) - base};
  }
  std::span<const drp::ServerId> nn_node_row(drp::ObjectIndex k) const {
    const std::size_t base = problem_->access.accessor_base(k);
    return {nn_node_.data() + base,
            problem_->access.accessor_base(k + 1) - base};
  }

 private:
  const drp::Problem* problem_;
  std::uint64_t epoch_;
  std::size_t replica_count_;
  std::vector<net::Cost> nn_dist_;      ///< per cell, slot scheme
  std::vector<drp::ServerId> nn_node_;  ///< per cell, slot scheme
  std::vector<double> write_units_;     ///< per cell, slot scheme
};

/// Epoch-published routing state.  acquire() is one atomic load; install()
/// is one atomic store plus a mutex-guarded append to the retire list.  The
/// per-request route itself never touches the atomic (workers pin a snapshot
/// per shard), so serving throughput is independent of install frequency.
class RoutingTable {
 public:
  /// Empty table: acquire() returns null until the first install().
  RoutingTable() = default;
  explicit RoutingTable(std::shared_ptr<const RoutingSnapshot> initial);

  /// Pins the current snapshot (one atomic load).  The pointer stays valid
  /// for the table's lifetime (deferred reclamation); hold it for the
  /// duration of a routing shard and re-acquire for the next batch.
  const RoutingSnapshot* acquire() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Publishes a new snapshot without stalling readers: shards already
  /// routing keep their pinned epoch, subsequent acquires see the new one.
  /// The superseded snapshot is retained (owned by the table) so in-flight
  /// readers never dangle.
  void install(std::shared_ptr<const RoutingSnapshot> next);

  /// Snapshots installed so far, including the initial one.
  std::uint64_t installs() const noexcept {
    return installs_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<const RoutingSnapshot*> current_{nullptr};
  std::atomic<std::uint64_t> installs_{0};
  /// Every snapshot ever installed, in install order; the deferred-RCU
  /// grace period is the table's lifetime.  Guarded by install_mu_ (installs
  /// come from the control thread; readers never touch this).
  mutable std::mutex install_mu_;
  std::vector<std::shared_ptr<const RoutingSnapshot>> owned_;
};

}  // namespace agtram::srv
