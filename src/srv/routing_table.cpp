#include "srv/routing_table.hpp"

#include <algorithm>
#include <utility>

#include "obs/obs.hpp"

namespace agtram::srv {

RoutingSnapshot::RoutingSnapshot(const drp::ReplicaPlacement& placement,
                                 std::uint64_t epoch)
    : problem_(&placement.problem()),
      epoch_(epoch),
      replica_count_(placement.replica_count()) {
  AGTRAM_OBS_SPAN("srv.snapshot_build");
  const drp::AccessMatrix& access = problem_->access;
  const std::size_t n = problem_->object_count();
  const std::size_t nnz = access.nonzeros();
  nn_dist_.resize(nnz);
  nn_node_.resize(nnz);
  write_units_.resize(nnz);

  for (drp::ObjectIndex k = 0; k < n; ++k) {
    const std::size_t base = access.accessor_base(k);
    const auto dist_row = placement.nn_row(k);
    const auto node_row = placement.nn_node_row(k);
    std::copy(dist_row.begin(), dist_row.end(), nn_dist_.begin() + base);
    std::copy(node_row.begin(), node_row.end(), nn_node_.begin() + base);

    // Version-broadcast base: the primary pushes each update to every other
    // replicator.  A writer that itself replicates k does not ship its own
    // incoming copy, so its per-cell cost subtracts that leg below.
    const drp::ServerId primary = problem_->primary[k];
    const auto closure_row = problem_->distances->row(primary);
    double broadcast = 0.0;
    for (const drp::ServerId r : placement.replicators(k)) {
      if (r != primary) broadcast += static_cast<double>(closure_row[r]);
    }

    const double units = static_cast<double>(problem_->object_units[k]);
    const auto servers = access.accessor_servers(k);
    for (std::size_t slot = 0; slot < servers.size(); ++slot) {
      const drp::ServerId writer = servers[slot];
      const double ship = static_cast<double>(closure_row[writer]);
      double cost = ship + broadcast;
      if (writer != primary && placement.is_replicator(writer, k)) {
        cost -= ship;  // closure_row[writer] == c(P_k, writer), symmetric
      }
      write_units_[base + slot] = units * cost;
    }
  }
  AGTRAM_OBS_COUNT("srv.snapshot_builds", 1);
}

RoutingTable::RoutingTable(std::shared_ptr<const RoutingSnapshot> initial) {
  install(std::move(initial));
}

void RoutingTable::install(std::shared_ptr<const RoutingSnapshot> next) {
  const RoutingSnapshot* raw = next.get();
  {
    // Take ownership first: the snapshot must already be retained when its
    // pointer becomes visible to readers.
    const std::lock_guard<std::mutex> lock(install_mu_);
    owned_.push_back(std::move(next));
  }
  current_.store(raw, std::memory_order_release);
  installs_.fetch_add(1, std::memory_order_relaxed);
  AGTRAM_OBS_COUNT("srv.snapshot_installs", 1);
}

}  // namespace agtram::srv
