// The serving engine (DESIGN.md §13, ROADMAP item 3): a long-running
// request front-end over the live replica placement.
//
// Per batch it (1) routes every request off the pinned RoutingSnapshot on
// the shared thread pool — shard-local scratch, no serve-path locks — while
// accumulating per-cell demand observations, a dense read-latency histogram
// (distances are bounded by the network diameter, so percentiles are exact)
// and sampled wall-clock placement-query timings; (2) merges the shards and
// feeds a drift trigger that watches two aggregated signals: the L1 volume
// drift of the observed traffic mix against the registered demand matrix,
// and a routing-cost regression estimate (observed mean read cost over the
// expectation computed at the last install); (3) on a threshold crossing —
// or every batch / never, per policy — folds the observed window back into
// the demand matrix as checked AccessMatrix::apply_demand_delta batches,
// re-converges, and installs a fresh snapshot without stalling serving.
//
// Re-convergence policies (the bench's three-way comparison):
//  * OnDrift    — core::OnlineMechanism dirty-set repair (+ the bounded
//                 eviction pass) only when the trigger fires; the system
//                 this PR exists to measure.
//  * EveryBatch — cold run_agt_ram re-solve after every batch: what a
//                 system without the online engine pays to stay converged.
//  * Static     — solve once, never re-converge: the placement-quality
//                 floor under drift.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/agt_ram.hpp"
#include "core/online.hpp"
#include "drp/problem.hpp"
#include "runtime/message_bus.hpp"
#include "srv/routing_table.hpp"
#include "srv/workload.hpp"

namespace agtram::srv {

enum class ReconvergePolicy { Static, EveryBatch, OnDrift };

struct ServingConfig {
  ReconvergePolicy policy = ReconvergePolicy::OnDrift;
  /// Solver configuration shared by the initial solve and every
  /// re-convergence (all report modes allocate identically).
  core::AgtRamConfig mechanism;
  /// OnDrift: repair-round bound per re-convergence (0 = drain).
  std::size_t max_repair_rounds = 0;
  /// OnDrift: forwarded to OnlineConfig::eviction_limit — replicas whose
  /// delta-OTC drop benefit went negative under the drifted demand are
  /// dropped, at most this many per re-convergence (0 = off).
  std::size_t eviction_limit = 0;
  /// OnDrift: forwarded to OnlineConfig::differential_oracle (tests only —
  /// every re-convergence is then byte-checked against a full re-solve).
  bool differential_oracle = false;
  /// Trigger: fire when sum |observed share - registered share| over the
  /// window's touched cells — minus the multinomial sampling-noise floor
  /// sqrt(2*cells/(pi*groups)), so a stationary replay with cells ~ draws
  /// does not fire on noise — exceeds this fraction (read+write volume).
  double volume_drift_threshold = 0.30;
  /// Trigger: fire when observed mean read cost exceeds the at-install
  /// expectation by this factor.
  double cost_regression_threshold = 1.10;
  /// Trigger: minimum routed requests in the window before it may fire
  /// (small windows are noise).
  std::uint64_t min_window_requests = 2048;
  /// Sample every Nth routed request's wall-clock query latency (0 = off).
  std::size_t latency_sample_every = 64;
  /// Routing shards per batch; 0 = pool thread count.
  std::size_t shards = 0;
  /// Pool to fan routing out on; nullptr = ThreadPool::shared().
  common::ThreadPool* pool = nullptr;
  /// Optional wire accounting: route queries, demand-delta batches, and
  /// placement installs are charged per MessageBus::WireFormat.
  runtime::MessageBus* bus = nullptr;
};

struct ServingStats {
  std::uint64_t batches = 0;
  std::uint64_t requests = 0;  ///< individual reads+writes (count-weighted)
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t local_reads = 0;  ///< served at distance 0
  double read_units = 0.0;        ///< data-unit-cost moved by reads
  double write_units = 0.0;       ///< ship + broadcast units moved by writes
  std::uint64_t installs = 0;     ///< snapshots published after construction
  std::uint64_t drift_triggers = 0;
  std::uint64_t reconverges = 0;
  std::uint64_t repair_rounds = 0;
  std::uint64_t replicas_evicted = 0;
  std::uint64_t demand_delta_cells = 0;
  double serve_seconds = 0.0;       ///< routing + aggregation wall time
  double reconverge_seconds = 0.0;  ///< deltas + solve + snapshot + install
  /// Request-weighted read serving distances, index = path cost (exact
  /// percentiles; size = diameter + 1).
  std::vector<std::uint64_t> read_cost_histogram;
  /// Sampled placement-query wall latencies, nanoseconds.
  std::vector<std::uint64_t> query_ns;

  double total_seconds() const noexcept {
    return serve_seconds + reconverge_seconds;
  }
  double mean_read_cost() const noexcept;
};

class ServingEngine {
 public:
  /// Takes ownership of the instance, runs the initial solve, and installs
  /// the first routing snapshot.
  ServingEngine(drp::Problem problem, ServingConfig config);

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Routes one request batch, then re-converges per policy.
  void run_batch(std::span<const Request> batch);

  /// Folds the current window into the demand matrix and re-converges now,
  /// regardless of the trigger (test hook; also what EveryBatch calls).
  void reconverge_now();

  const ServingStats& stats() const noexcept { return stats_; }
  const RoutingTable& routing() const noexcept { return table_; }
  /// Valid for the engine's lifetime (the table retains every epoch).
  const RoutingSnapshot* snapshot() const { return table_.acquire(); }
  const drp::Problem& problem() const;
  const drp::ReplicaPlacement& placement() const;
  /// Non-null only under ReconvergePolicy::OnDrift.
  const core::OnlineMechanism* online() const noexcept {
    return online_.get();
  }

 private:
  struct Shard {
    std::vector<std::uint64_t> hist;      ///< read distance histogram
    std::vector<std::uint64_t> query_ns;  ///< sampled query latencies
    /// (global cell index, reads, writes) per touched request group;
    /// duplicates allowed, merged serially after the join.
    std::vector<std::uint64_t> cell;
    std::vector<std::uint64_t> dr;
    std::vector<std::uint64_t> dw;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t local_reads = 0;
    double read_units = 0.0;
    double write_units = 0.0;
    double read_cost = 0.0;  ///< sum of serving distance x count (unitless)
  };

  void route_shard(const RoutingSnapshot& snap, std::span<const Request> part,
                   Shard& shard) const;
  void merge_shard(Shard& shard);
  bool drift_crossed() const;
  void install_snapshot(std::uint64_t changed_entries);
  void reset_window();
  /// Expected request-weighted mean read cost of the current snapshot under
  /// the current demand matrix (the trigger's regression baseline).
  double expected_mean_read_cost() const;

  ServingConfig config_;
  /// OnDrift owns an OnlineMechanism; Static/EveryBatch own the problem and
  /// placement directly (EveryBatch mutates demand and re-solves cold).
  std::unique_ptr<core::OnlineMechanism> online_;
  std::unique_ptr<drp::Problem> problem_;
  std::optional<drp::ReplicaPlacement> placement_;

  RoutingTable table_;
  std::uint64_t epoch_ = 0;
  common::ThreadPool* pool_ = nullptr;
  std::size_t shard_count_ = 1;
  std::vector<Shard> shards_;
  std::vector<drp::ObjectIndex> cell_object_;  ///< global cell -> object

  // Observation window (reset at each install).
  std::vector<std::uint64_t> window_reads_;   ///< per cell, slot scheme
  std::vector<std::uint64_t> window_writes_;  ///< per cell, slot scheme
  std::vector<char> window_touched_flag_;
  std::vector<std::uint64_t> window_touched_;  ///< global cell indices
  std::uint64_t window_requests_ = 0;
  std::uint64_t window_groups_ = 0;  ///< routed Request entries (draws)
  double window_read_cost_ = 0.0;  ///< sum over routed reads of distance
  std::uint64_t window_read_count_ = 0;
  double install_mean_read_cost_ = 0.0;

  ServingStats stats_;
};

}  // namespace agtram::srv
