#include "obs/obs.hpp"

#include <deque>
#include <map>
#include <mutex>

namespace agtram::obs {

// Counters and spans live in deques so handed-out references stay valid as
// the registry grows; the map only indexes into them.  The instance itself
// is leaked (function-local static pointer) so handles cached in static
// locals of other TUs stay safe during static destruction.
struct Registry::Impl {
  mutable std::mutex mutex;
  std::deque<Counter> counters;
  std::deque<Span> spans;
  std::map<std::string, Counter*, std::less<>> counter_index;
  std::map<std::string, Span*, std::less<>> span_index;
};

Registry& Registry::instance() {
  static Registry* registry = new Registry();
  return *registry;
}

Registry::Impl& Registry::impl() {
  if (impl_ == nullptr) {
    impl_ = new Impl();
  }
  return *impl_;
}

Counter& Registry::counter(std::string_view name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (auto it = state.counter_index.find(name);
      it != state.counter_index.end()) {
    return *it->second;
  }
  Counter& created = state.counters.emplace_back(std::string(name));
  state.counter_index.emplace(created.name(), &created);
  return created;
}

Span& Registry::span(std::string_view name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (auto it = state.span_index.find(name); it != state.span_index.end()) {
    return *it->second;
  }
  Span& created = state.spans.emplace_back(std::string(name));
  state.span_index.emplace(created.name(), &created);
  return created;
}

Counter* Registry::find_counter(std::string_view name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.counter_index.find(name);
  return it == state.counter_index.end() ? nullptr : it->second;
}

Span* Registry::find_span(std::string_view name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.span_index.find(name);
  return it == state.span_index.end() ? nullptr : it->second;
}

std::vector<CounterSnapshot> Registry::counters() const {
  Impl& state = const_cast<Registry*>(this)->impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<CounterSnapshot> out;
  out.reserve(state.counters.size());
  for (const Counter& counter : state.counters) {
    out.push_back({counter.name(), counter.value()});
  }
  return out;
}

std::vector<SpanSnapshot> Registry::spans() const {
  Impl& state = const_cast<Registry*>(this)->impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::vector<SpanSnapshot> out;
  out.reserve(state.spans.size());
  for (const Span& span : state.spans) {
    out.push_back({span.name(), span.count(), span.total_ns()});
  }
  return out;
}

void Registry::reset() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (Counter& counter : state.counters) {
    counter.reset();
  }
  for (Span& span : state.spans) {
    span.reset();
  }
}

namespace {
// Installed sink.  Relaxed suffices: the contract is single-threaded
// install/emit from the centre thread; the atomic only keeps concurrent
// readers (e.g. a counter site racing an uninstall in tests) well-defined.
std::atomic<TraceSink*> g_trace_sink{nullptr};
}  // namespace

void install_trace(TraceSink* sink) noexcept {
  g_trace_sink.store(sink, std::memory_order_release);
}

TraceSink* active_trace() noexcept {
  return g_trace_sink.load(std::memory_order_acquire);
}

}  // namespace agtram::obs
