// agtram::obs — header-first observability: named monotonic counters,
// scoped span timers, and per-round trace gauges.
//
// The subsystem exists to make the auto-tuned policies visible (DESIGN.md
// §9): ReportMode::Auto, the baselines' EvalPath, and the round-size-aware
// PARFOR all take decisions per instance/round that used to be invisible in
// BENCH_mechanism.json.  Counters expose the internal work those decisions
// trade off (dirty-set re-polls, heap pops, delta-cache refreshes, chunks
// claimed, wire bytes); spans time coarse phases; the trace sink records
// per-round gauge snapshots next to the decision that produced them.
//
// Cost contract (enforced by tools/bench_gate.sh and tests/obs_test.cpp):
//
//  * `AGTRAM_OBS` unset or 0 (the default): every macro below expands to a
//    statement whose arguments are never evaluated — a true no-op, so the
//    hot paths carry zero instrumentation cost and the bench gate numbers
//    are those of the uninstrumented binary.
//  * `AGTRAM_OBS=1` (cmake -DAGTRAM_OBS=ON): a counter hit is one relaxed
//    atomic add on a cached reference (the registry lookup happens once per
//    site, at static-local initialisation).  Spans add two steady_clock
//    reads and sit only at coarse boundaries.  Gauges are a relaxed pointer
//    load and branch unless a trace sink is installed.
//
// Invariant: instrumentation must have no observable effect on mechanism or
// baseline output — allocations, payments, and round sequences are byte-
// identical with the layer on, off, or traced (tests/obs_test.cpp, and the
// hexfloat goldens of tests/layout_test.cpp running under -DAGTRAM_OBS=ON).
//
// The macros are gated per translation unit: a TU may `#define AGTRAM_OBS 1`
// before including this header to opt in locally (the obs tests do), while
// the class API below is always compiled so handles can cross TU
// boundaries regardless of the build default.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef AGTRAM_OBS
#define AGTRAM_OBS 0
#endif

#if AGTRAM_OBS
#define AGTRAM_OBS_ENABLED 1
#else
#define AGTRAM_OBS_ENABLED 0
#endif

namespace agtram::obs {

/// Named monotonic counter.  Registry-owned; addresses are stable for the
/// process lifetime, so call sites cache a reference once and pay one
/// relaxed fetch_add per hit afterwards.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  const std::string& name() const noexcept { return name_; }

  void add(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Named span aggregate: invocation count plus total wall nanoseconds.
/// Recorded through ScopedSpan; both fields are relaxed atomics so spans on
/// pool workers stay TSan-clean.
class Span {
 public:
  explicit Span(std::string name) : name_(std::move(name)) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  const std::string& name() const noexcept { return name_; }

  void record(std::uint64_t ns) noexcept {
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    count_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
};

/// RAII timer feeding a Span on scope exit.
class ScopedSpan {
 public:
  explicit ScopedSpan(Span& span) noexcept
      : span_(span), start_(std::chrono::steady_clock::now()) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    span_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

 private:
  Span& span_;
  std::chrono::steady_clock::time_point start_;
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value;
};

struct SpanSnapshot {
  std::string name;
  std::uint64_t count;
  std::uint64_t total_ns;
};

/// Process-wide registry of counters and spans.  Get-or-create is
/// mutex-guarded (cold: once per call site); reads of the handed-out
/// handles never take the lock.
class Registry {
 public:
  static Registry& instance();

  /// Get-or-create; the returned reference is valid forever.
  Counter& counter(std::string_view name);
  Span& span(std::string_view name);

  /// Lookup without creation (nullptr when the name was never registered —
  /// how the no-op tests prove a site compiled out).
  Counter* find_counter(std::string_view name);
  Span* find_span(std::string_view name);

  /// Snapshots in registration order (deterministic within one binary run).
  std::vector<CounterSnapshot> counters() const;
  std::vector<SpanSnapshot> spans() const;

  /// Zeroes every counter and span; handles stay valid.
  void reset();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl();
  Impl* impl_ = nullptr;
};

/// Per-round trace consumer.  The mechanism emits `round_begin` once per
/// round and then gauges for that round; a sink is driven from the centre's
/// thread only (single-threaded contract — the PARFOR bodies never gauge).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void round_begin(std::uint64_t round) = 0;
  virtual void gauge(std::string_view key, double value) = 0;
  virtual void gauge(std::string_view key, std::uint64_t value) = 0;
  virtual void gauge(std::string_view key, std::string_view value) = 0;
};

/// Installs (or, with nullptr, removes) the process-wide trace sink.  The
/// caller owns the sink and must keep it alive until uninstalled.
void install_trace(TraceSink* sink) noexcept;
TraceSink* active_trace() noexcept;

}  // namespace agtram::obs

#define AGTRAM_OBS_CONCAT_IMPL_(a, b) a##b
#define AGTRAM_OBS_CONCAT_(a, b) AGTRAM_OBS_CONCAT_IMPL_(a, b)

#if AGTRAM_OBS

/// One relaxed atomic add on a per-site cached counter reference.  `name`
/// is resolved once per call site (static-local init) and must therefore be
/// a constant — a runtime-varying name would silently keep hitting whatever
/// counter the first execution registered.
#define AGTRAM_OBS_COUNT(name, delta)                        \
  do {                                                       \
    static ::agtram::obs::Counter& agtram_obs_counter_ =     \
        ::agtram::obs::Registry::instance().counter(name);   \
    agtram_obs_counter_.add(                                 \
        static_cast<std::uint64_t>(delta));                  \
  } while (0)

/// Times the enclosing scope into the named span (two clock reads).
#define AGTRAM_OBS_SPAN(name)                                             \
  static ::agtram::obs::Span& AGTRAM_OBS_CONCAT_(agtram_obs_span_ref_,    \
                                                 __LINE__) =              \
      ::agtram::obs::Registry::instance().span(name);                     \
  const ::agtram::obs::ScopedSpan AGTRAM_OBS_CONCAT_(                     \
      agtram_obs_span_, __LINE__) {                                       \
    AGTRAM_OBS_CONCAT_(agtram_obs_span_ref_, __LINE__)                    \
  }

/// Opens round `round` on the installed trace sink, if any.
#define AGTRAM_OBS_ROUND(round)                                  \
  do {                                                           \
    if (::agtram::obs::TraceSink* agtram_obs_sink_ =             \
            ::agtram::obs::active_trace()) {                     \
      agtram_obs_sink_->round_begin(                             \
          static_cast<std::uint64_t>(round));                    \
    }                                                            \
  } while (0)

/// Records a gauge on the current round of the installed sink, if any.
#define AGTRAM_OBS_GAUGE(key, value)                             \
  do {                                                           \
    if (::agtram::obs::TraceSink* agtram_obs_sink_ =             \
            ::agtram::obs::active_trace()) {                     \
      agtram_obs_sink_->gauge(key, value);                       \
    }                                                            \
  } while (0)

#else  // !AGTRAM_OBS — true no-ops; arguments are type-checked but never
       // evaluated (the dead branch is removed by every compiler, and the
       // no-op tests assert side-effecting arguments do not fire).

#define AGTRAM_OBS_COUNT(name, delta)  \
  do {                                 \
    if (false) {                       \
      static_cast<void>(name);         \
      static_cast<void>(delta);        \
    }                                  \
  } while (0)

#define AGTRAM_OBS_SPAN(name) \
  do {                        \
    if (false) {              \
      static_cast<void>(name); \
    }                         \
  } while (0)

#define AGTRAM_OBS_ROUND(round)  \
  do {                           \
    if (false) {                 \
      static_cast<void>(round);  \
    }                            \
  } while (0)

#define AGTRAM_OBS_GAUGE(key, value) \
  do {                               \
    if (false) {                     \
      static_cast<void>(key);        \
      static_cast<void>(value);      \
    }                                \
  } while (0)

#endif  // AGTRAM_OBS
