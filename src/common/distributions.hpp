// Samplers for the heavy-tailed distributions that characterise web
// workloads: Zipf (object popularity), lognormal (object/body sizes) and
// bounded Pareto (per-client activity).  These are the statistical building
// blocks of the synthetic WorldCup'98 trace generator (src/trace).
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/prng.hpp"

namespace agtram::common {

/// Zipf(s) sampler over ranks {0, ..., n-1}: P(rank = i) ∝ 1/(i+1)^s.
///
/// Uses an inverted-CDF table (O(n) memory, O(log n) per sample), which is
/// exact and fast for the n ≤ a few hundred thousand used here.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent) : cdf_(n), exponent_(exponent) {
    assert(n > 0);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[i] = acc;
    }
    const double norm = 1.0 / acc;
    for (double& v : cdf_) v *= norm;
    cdf_.back() = 1.0;  // guard against rounding
  }

  std::size_t size() const noexcept { return cdf_.size(); }
  double exponent() const noexcept { return exponent_; }

  /// Probability mass of a given rank.
  double pmf(std::size_t rank) const {
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
  }

  std::size_t operator()(Rng& rng) const {
    const double u = rng.uniform();
    // Binary search for the first cdf entry >= u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
  double exponent_;
};

/// Lognormal sampler: exp(N(mu, sigma^2)); Box–Muller on our Rng so results
/// are identical across standard libraries.
class LognormalSampler {
 public:
  LognormalSampler(double mu, double sigma) : mu_(mu), sigma_(sigma) {}

  double mu() const noexcept { return mu_; }
  double sigma() const noexcept { return sigma_; }

  double operator()(Rng& rng) const {
    // Box–Muller; discard the second variate for simplicity/determinism.
    double u1 = rng.uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = rng.uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    return std::exp(mu_ + sigma_ * z);
  }

 private:
  double mu_;
  double sigma_;
};

/// Bounded Pareto sampler on [lo, hi] with shape alpha (heavy-tailed client
/// request counts; Arlitt & Jin report strongly skewed per-client activity).
class BoundedParetoSampler {
 public:
  BoundedParetoSampler(double alpha, double lo, double hi)
      : alpha_(alpha), lo_(lo), hi_(hi) {
    assert(alpha > 0.0 && lo > 0.0 && hi > lo);
  }

  double operator()(Rng& rng) const {
    const double u = rng.uniform();
    const double la = std::pow(lo_, alpha_);
    const double ha = std::pow(hi_, alpha_);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
  }

 private:
  double alpha_;
  double lo_;
  double hi_;
};

}  // namespace agtram::common
