// Minimal `--flag value` command-line parser for the bench/example binaries.
// Unknown flags abort with a usage message so typos never silently run the
// default experiment.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace agtram::common {

class Cli {
 public:
  Cli(std::string program_description);

  /// Register a flag with a default value and help text.  Must be called
  /// before parse().
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parse argv; returns false (after printing usage) on error or --help.
  bool parse(int argc, const char* const* argv);

  /// True when parse() returned false because of --help/-h rather than an
  /// error — callers should exit 0 in that case.
  bool help_requested() const noexcept { return help_requested_; }

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Comma-separated list of doubles, e.g. --caps 0.1,0.2,0.3
  std::vector<double> get_double_list(const std::string& name) const;

  void print_usage(std::ostream& os) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };

  std::string description_;
  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace agtram::common
