#include "common/table.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace agtram::common {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto rule = [&os, &widths] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto emit = [&os, &widths](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
}

void Table::write_csv(std::ostream& os) const {
  const auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace agtram::common
