// Streaming summary statistics and percentile helpers used throughout the
// bench harness (per-algorithm OTC savings, timing distributions, etc.).
#pragma once

#include <cstddef>
#include <vector>

namespace agtram::common {

/// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< sample variance (n-1 denominator)
  double stddev() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile over a copied sample (linear interpolation between
/// order statistics).  q in [0, 100].
double percentile(std::vector<double> sample, double q);

/// Pearson correlation of two equal-length series; 0 when degenerate.
double correlation(const std::vector<double>& xs, const std::vector<double>& ys);

/// Simple fixed-width histogram for diagnostics.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);
  void add(double x) noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t total() const noexcept { return total_; }
  double bucket_low(std::size_t bucket) const;
  double bucket_high(std::size_t bucket) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace agtram::common
