#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace agtram::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_mutex;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?????";
  }
}

double elapsed_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load()) ||
      message.empty()) {
    return;
  }
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[%9.3fs] %s %s\n", elapsed_seconds(), tag(level),
               message.c_str());
}

}  // namespace agtram::common
