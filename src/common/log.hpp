// Tiny leveled logger.  Benches use it to narrate sweeps; the library itself
// logs nothing above Debug so that it stays quiet when embedded.
#pragma once

#include <sstream>
#include <string>

namespace agtram::common {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are dropped.  Default: Info.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Thread-safe single-line emission with a level tag and elapsed time stamp.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::Debug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::Info); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::Warn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::Error); }

}  // namespace agtram::common
