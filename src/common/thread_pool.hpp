// A small work-stealing-free thread pool with a blocking parallel_for.
//
// This is the shared-memory stand-in for the PARFOR loops in the paper's
// Figure 2 pseudo-code: each AGT-RAM round evaluates all agents' candidate
// lists in parallel and reduces their bids at the central mechanism.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace agtram::common {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a task; fire-and-forget (use parallel_for for joined work).
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has completed.
  void wait_idle();

  /// Evenly split [begin, end) into chunks and run `body(first, last)` on the
  /// pool, blocking until all chunks complete.  Chunk count defaults to
  /// 4x threads for load balance.  Falls back to inline execution for tiny
  /// ranges, so it is safe (and cheap) to call unconditionally.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t min_grain = 64);

  /// Process-wide shared pool (lazily constructed, sized to the machine).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace agtram::common
