// A small work-stealing-free thread pool with a blocking parallel_for.
//
// This is the shared-memory stand-in for the PARFOR loops in the paper's
// Figure 2 pseudo-code: each AGT-RAM round evaluates all agents' candidate
// lists in parallel and reduces their bids at the central mechanism.
//
// parallel_for uses a lock-lean design tuned for the mechanism's small
// per-round dirty sets: one stack-allocated job descriptor per call, chunks
// claimed with a single atomic fetch_add, completion signalled through a
// C++20 atomic wait (no per-call mutex+condition_variable pair, no
// per-chunk std::function heap allocation).  The calling thread claims
// chunks alongside the workers, so small ranges finish without a single
// context switch.  Nested or concurrent parallel_for calls degrade to
// inline execution of the whole range — correct, just not parallel.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace agtram::common {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a task; fire-and-forget (use parallel_for for joined work).
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has completed.  Covers
  /// submit()ed tasks only; parallel_for blocks on its own completion.
  void wait_idle();

  /// Evenly split [begin, end) into chunks and run `body(first, last)` on
  /// the pool (caller included), blocking until all chunks complete.  Chunk
  /// count defaults to 4x threads for load balance.  Falls back to inline
  /// execution for tiny ranges, for nested/concurrent calls, and on
  /// single-worker pools (where forking can never overlap with the caller),
  /// so it is safe (and cheap) to call unconditionally.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t min_grain = 64);

  /// Process-wide shared pool (lazily constructed, sized to the machine).
  static ThreadPool& shared();

 private:
  /// One parallel_for invocation.  Lives on the caller's stack; workers
  /// hold it only between an entrants increment (taken under mutex_ while
  /// the job is still published) and the matching decrement, which the
  /// caller drains before returning.
  struct ParallelJob {
    const std::function<void(std::size_t, std::size_t)>* body;
    std::size_t begin;
    std::size_t end;
    std::size_t step;
    std::size_t chunk_count;
    std::atomic<std::size_t> next_chunk{0};   ///< chunk claim ticket
    std::atomic<std::size_t> chunks_done{0};  ///< completion latch
    std::atomic<std::size_t> entrants{0};     ///< workers touching the job
  };

  void worker_loop();
  static void run_chunks(ParallelJob& job);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;

  /// Serialises parallel_for callers (one active job at a time; losers run
  /// inline).  Distinct from mutex_ so job publication stays cheap.
  std::mutex job_owner_mutex_;
  std::atomic<ParallelJob*> job_{nullptr};  ///< published under mutex_
  std::uint64_t job_generation_ = 0;        ///< guarded by mutex_
};

}  // namespace agtram::common
