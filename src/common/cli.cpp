#include "common/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace agtram::common {

Cli::Cli(std::string program_description)
    : description_(std::move(program_description)) {}

void Cli::add_flag(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  flags_[name] = Flag{default_value, default_value, help};
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      print_usage(std::cout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::cerr << "unexpected positional argument: " << arg << "\n";
      print_usage(std::cerr);
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      std::cerr << "missing value for flag --" << name << "\n";
      print_usage(std::cerr);
      return false;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::cerr << "unknown flag --" << name << "\n";
      print_usage(std::cerr);
      return false;
    }
    it->second.value = value;
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::invalid_argument("unregistered flag: " + name);
  }
  return it->second.value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  return std::stoll(get(name));
}

double Cli::get_double(const std::string& name) const {
  return std::stod(get(name));
}

bool Cli::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<double> Cli::get_double_list(const std::string& name) const {
  std::vector<double> out;
  std::stringstream ss(get(name));
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(std::stod(token));
  }
  return out;
}

void Cli::print_usage(std::ostream& os) const {
  os << description_ << "\n\nflags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")\n      "
       << flag.help << "\n";
  }
}

}  // namespace agtram::common
