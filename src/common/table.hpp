// ASCII table and CSV emission for the bench harness.  Every figure/table
// reproduction prints a paper-style table through this class and can also
// dump machine-readable CSV next to it.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace agtram::common {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Optional caption printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Pretty box-drawing output.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting needed for our content).
  void write_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace agtram::common
