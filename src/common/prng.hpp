// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in this repository draws from an explicitly
// seeded Rng so that a (seed, parameters) pair fully determines an
// experiment.  The generator is xoshiro256** (Blackman & Vigna), seeded via
// splitmix64 — both tiny, fast, and statistically strong for simulation use.
#pragma once

#include <cstdint>
#include <limits>

namespace agtram::common {

/// splitmix64 step; used to expand a single 64-bit seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — satisfies std::uniform_random_bit_generator, usable with
/// <random> distributions and directly through the helpers below.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Unbiased uniform integer in [0, bound) via Lemire's method.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // Rejection-free in the common case; retries are vanishingly rare.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Derive an independent child generator (for per-thread / per-entity
  /// streams).  Mixing the label through splitmix decorrelates children.
  constexpr Rng fork(std::uint64_t label) noexcept {
    std::uint64_t sm = (*this)() ^ (label * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace agtram::common
