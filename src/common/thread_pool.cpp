#include "common/thread_pool.hpp"

#include <algorithm>
#include <cassert>

#include "obs/obs.hpp"

namespace agtram::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    assert(!stopping_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::run_chunks(ParallelJob& job) {
  for (;;) {
    const std::size_t c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.chunk_count) return;
    AGTRAM_OBS_COUNT("pool.chunks_claimed", 1);
    const std::size_t first = job.begin + c * job.step;
    const std::size_t last = std::min(job.end, first + job.step);
    if (first < last) (*job.body)(first, last);
    if (job.chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.chunk_count) {
      job.chunks_done.notify_one();  // wake the owning caller, if parked
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_grain) {
  if (begin >= end) return;
  AGTRAM_OBS_COUNT("pool.parallel_for_calls", 1);
  const std::size_t n = end - begin;
  // A single-worker pool can never overlap chunks with the caller, so the
  // fork/join handshake (publish, wake, claim, drain) is pure overhead —
  // run the whole range inline.
  if (thread_count() <= 1) {
    AGTRAM_OBS_COUNT("pool.inline_single_worker", 1);
    body(begin, end);
    return;
  }
  const std::size_t max_chunks = std::max<std::size_t>(1, n / min_grain);
  const std::size_t chunks =
      std::min(max_chunks, std::max<std::size_t>(1, thread_count() * 4));
  if (chunks <= 1) {
    AGTRAM_OBS_COUNT("pool.inline_small_range", 1);
    body(begin, end);
    return;
  }

  // One job at a time: a nested call (a chunk body calling parallel_for) or
  // a concurrent caller must not block on the active job — the active job
  // may be waiting on *this* thread's chunk — so losers run inline.
  std::unique_lock owner(job_owner_mutex_, std::try_to_lock);
  if (!owner.owns_lock()) {
    AGTRAM_OBS_COUNT("pool.inline_nested", 1);
    body(begin, end);
    return;
  }
  AGTRAM_OBS_COUNT("pool.forked_jobs", 1);

  ParallelJob job;
  job.body = &body;
  job.begin = begin;
  job.end = end;
  job.step = (n + chunks - 1) / chunks;
  job.chunk_count = chunks;

  {
    std::lock_guard lock(mutex_);
    job_.store(&job, std::memory_order_release);
    ++job_generation_;
  }
  task_available_.notify_all();

  // The caller claims chunks too; by the time it runs dry, at most
  // thread_count() chunks remain in flight on the workers.
  run_chunks(job);

  std::size_t done = job.chunks_done.load(std::memory_order_acquire);
  while (done < chunks) {
    AGTRAM_OBS_COUNT("pool.idle_waits", 1);
    job.chunks_done.wait(done, std::memory_order_acquire);
    done = job.chunks_done.load(std::memory_order_acquire);
  }

  // Unpublish, then drain the workers still holding a reference so the
  // stack-allocated job cannot be touched after we return.  A worker either
  // incremented entrants before this store (we wait for its decrement) or
  // observes job_ == nullptr and never touches the job — both transitions
  // happen under mutex_.
  {
    std::lock_guard lock(mutex_);
    job_.store(nullptr, std::memory_order_release);
  }
  std::size_t entrants = job.entrants.load(std::memory_order_acquire);
  while (entrants != 0) {
    job.entrants.wait(entrants, std::memory_order_acquire);
    entrants = job.entrants.load(std::memory_order_acquire);
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    ParallelJob* job = nullptr;
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [&] {
        return stopping_ || !tasks_.empty() ||
               (job_.load(std::memory_order_relaxed) != nullptr &&
                job_generation_ != seen_generation);
      });
      job = job_.load(std::memory_order_relaxed);
      if (job != nullptr && job_generation_ != seen_generation) {
        // Joining the published job: the entrants increment shares mutex_
        // with the owner's unpublish, which is what makes the owner's
        // entrants drain race-free.
        seen_generation = job_generation_;
        job->entrants.fetch_add(1, std::memory_order_relaxed);
      } else if (!tasks_.empty()) {
        job = nullptr;
        task = std::move(tasks_.front());
        tasks_.pop();
      } else {
        return;  // stopping, queue drained
      }
    }
    if (job != nullptr) {
      run_chunks(*job);
      if (job->entrants.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        job->entrants.notify_one();
      }
    } else {
      task();
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace agtram::common
