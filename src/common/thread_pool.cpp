#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace agtram::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    assert(!stopping_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t max_chunks = std::max<std::size_t>(1, n / min_grain);
  const std::size_t chunks =
      std::min(max_chunks, std::max<std::size_t>(1, thread_count() * 4));
  if (chunks <= 1) {
    body(begin, end);
    return;
  }

  std::atomic<std::size_t> remaining{chunks};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  const std::size_t step = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t first = begin + c * step;
    const std::size_t last = std::min(end, first + step);
    if (first >= last) {
      remaining.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    submit([&, first, last] {
      body(first, last);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace agtram::common
