#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace agtram::common {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> sample, double q) {
  if (sample.empty()) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  std::sort(sample.begin(), sample.end());
  const double pos = q / 100.0 * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double correlation(const std::vector<double>& xs, const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  RunningStats sx, sy;
  for (double x : xs) sx.add(x);
  for (double y : ys) sy.add(y);
  if (sx.stddev() == 0.0 || sy.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - sx.mean()) * (ys[i] - sy.mean());
  }
  cov /= static_cast<double>(xs.size() - 1);
  return cov / (sx.stddev() * sy.stddev());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double x) noexcept {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bucket = static_cast<std::ptrdiff_t>(
      frac * static_cast<double>(counts_.size()));
  bucket = std::clamp<std::ptrdiff_t>(
      bucket, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bucket)];
  ++total_;
}

double Histogram::bucket_low(std::size_t bucket) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bucket) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_high(std::size_t bucket) const {
  return bucket_low(bucket + 1);
}

}  // namespace agtram::common
