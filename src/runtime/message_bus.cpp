#include "runtime/message_bus.hpp"

#include <algorithm>
#include <limits>

#include "obs/obs.hpp"

namespace agtram::runtime {

MessageBus::MessageBus(const drp::Problem& problem, drp::ServerId centre,
                       double seconds_per_cost_unit, WireFormat wire)
    : problem_(&problem),
      centre_(centre),
      seconds_per_cost_unit_(seconds_per_cost_unit),
      wire_(wire) {}

double MessageBus::latency(drp::ServerId server) const {
  return static_cast<double>(problem_->distance(server, centre_)) *
         seconds_per_cost_unit_;
}

void MessageBus::on_round_begin(std::size_t) {
  ++stats_.rounds;
  AGTRAM_OBS_COUNT("bus.rounds", 1);
  round_slowest_report_ = 0.0;
}

void MessageBus::on_report(drp::ServerId agent, const core::Report& report,
                           bool fresh) {
  // Cached standing reports live at the centre; only fresh ones travel.
  if (!fresh) return;
  // Even an empty report is a protocol message ("nothing for me") so the
  // centre can retire the agent from LS.
  ++stats_.report_messages;
  stats_.report_bytes += report.has_candidate ? wire_.report : 4;
  AGTRAM_OBS_COUNT("bus.report_msgs", 1);
  AGTRAM_OBS_COUNT("bus.report_bytes",
                   report.has_candidate ? wire_.report : 4);
  round_slowest_report_ = std::max(round_slowest_report_, latency(agent));
}

void MessageBus::on_allocation(drp::ServerId winner, drp::ObjectIndex,
                               double) {
  ++stats_.allocation_messages;
  stats_.allocation_bytes += wire_.allocation;
  AGTRAM_OBS_COUNT("bus.alloc_msgs", 1);
  AGTRAM_OBS_COUNT("bus.alloc_bytes", wire_.allocation);
  // Reports travel concurrently; the round cannot close before the slowest
  // one lands, then the allocation goes back out to the winner.
  stats_.simulated_seconds += round_slowest_report_ + latency(winner);
}

void MessageBus::on_broadcast(drp::ServerId, drp::ObjectIndex,
                              std::size_t notified) {
  // Fan-out to `notified` agents: every reporter under the naive sweep, the
  // next round's dirty set under the incremental protocol.
  stats_.broadcast_messages += notified;
  stats_.broadcast_bytes +=
      static_cast<std::uint64_t>(wire_.broadcast) * notified;
  AGTRAM_OBS_COUNT("bus.broadcast_msgs", notified);
  AGTRAM_OBS_COUNT("bus.broadcast_bytes",
                   static_cast<std::uint64_t>(wire_.broadcast) * notified);
  // The fan-out completes when the farthest agent hears about OMAX; bound
  // it by the diameter leg from the centre (conservative, O(1) to compute).
  double slowest = round_slowest_report_;
  stats_.simulated_seconds += slowest;
}

void MessageBus::account_routes(std::uint64_t requests) {
  stats_.route_messages += requests;
  stats_.route_bytes += static_cast<std::uint64_t>(wire_.route) * requests;
  AGTRAM_OBS_COUNT("bus.route_msgs", requests);
  AGTRAM_OBS_COUNT("bus.route_bytes",
                   static_cast<std::uint64_t>(wire_.route) * requests);
}

void MessageBus::account_demand_batch(std::uint64_t cells) {
  stats_.delta_messages += cells;
  stats_.delta_bytes += static_cast<std::uint64_t>(wire_.delta_cell) * cells;
  AGTRAM_OBS_COUNT("bus.delta_msgs", cells);
  AGTRAM_OBS_COUNT("bus.delta_bytes",
                   static_cast<std::uint64_t>(wire_.delta_cell) * cells);
}

void MessageBus::account_install(std::uint64_t entries) {
  stats_.install_messages += entries;
  stats_.install_bytes +=
      static_cast<std::uint64_t>(wire_.install_entry) * entries;
  AGTRAM_OBS_COUNT("bus.install_msgs", entries);
  AGTRAM_OBS_COUNT("bus.install_bytes",
                   static_cast<std::uint64_t>(wire_.install_entry) * entries);
}

void MessageBus::account_glauber_proposals(std::uint64_t proposals) {
  stats_.glauber_proposal_messages += proposals;
  stats_.glauber_proposal_bytes +=
      static_cast<std::uint64_t>(wire_.glauber_proposal) * proposals;
  AGTRAM_OBS_COUNT("bus.glauber_proposal_msgs", proposals);
  AGTRAM_OBS_COUNT("bus.glauber_proposal_bytes",
                   static_cast<std::uint64_t>(wire_.glauber_proposal) *
                       proposals);
}

void MessageBus::account_glauber_decisions(std::uint64_t decisions) {
  stats_.glauber_decision_messages += decisions;
  stats_.glauber_decision_bytes +=
      static_cast<std::uint64_t>(wire_.glauber_decision) * decisions;
  AGTRAM_OBS_COUNT("bus.glauber_decision_msgs", decisions);
  AGTRAM_OBS_COUNT("bus.glauber_decision_bytes",
                   static_cast<std::uint64_t>(wire_.glauber_decision) *
                       decisions);
}

drp::ServerId MessageBus::pick_centre(const drp::Problem& problem) {
  const std::size_t m = problem.server_count();
  drp::ServerId best = 0;
  double best_total = std::numeric_limits<double>::max();
  for (drp::ServerId candidate = 0; candidate < m; ++candidate) {
    double total = 0.0;
    for (drp::ServerId other = 0; other < m; ++other) {
      total += static_cast<double>(problem.distance(candidate, other));
    }
    if (total < best_total) {
      best_total = total;
      best = candidate;
    }
  }
  return best;
}

}  // namespace agtram::runtime
