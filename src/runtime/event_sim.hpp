// Discrete-event simulation of the AGT-RAM wire protocol.
//
// The paper deployed AGT-RAM on Ada + GLADE over a real network; we
// substitute a discrete-event simulator of the same protocol (Figure 2):
//
//   round r:
//     centre   --(poll)-->            every live agent          [latency]
//     agent i  computes its report                              [compute]
//     agent i  --(report)-->          centre                    [latency]
//     centre   waits for all reports (a barrier), decides       [decide]
//     centre   --(allocate)-->        winner                    [latency]
//     centre   --(broadcast OMAX)-->  every live agent          [latency]
//
// Per-message latency is distance-proportional plus a fixed overhead;
// per-agent compute time scales with the candidate evaluations the lazy
// heap actually performs.  Optional straggler inflation and message loss
// (with timeout + retransmit) model real-network misbehaviour.  The output
// is the protocol *makespan* and its critical-path breakdown — the
// quantity behind the paper's "solutions converge in a fast turn-around
// time" claim — for both the flat mechanism and the regional variant
// (whose regions progress independently and therefore overlap).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "core/online.hpp"
#include "drp/problem.hpp"

namespace agtram::runtime {

struct ProtocolModel {
  /// Seconds per metric-closure cost unit of distance.
  double seconds_per_cost_unit = 1e-4;
  /// Fixed per-message overhead (serialisation, kernel, queueing).
  double message_overhead = 2e-4;
  /// Seconds per candidate evaluation inside an agent.
  double seconds_per_evaluation = 5e-7;
  /// Centre decision time per received report (scalar comparison).
  double seconds_per_report_at_centre = 1e-7;

  /// Each (agent, round) compute step is inflated by a factor drawn
  /// uniformly from [1, 1 + straggler_factor].
  double straggler_factor = 0.0;
  /// Probability that any message is lost; lost messages are retransmitted
  /// after `retransmit_timeout` seconds.
  double loss_probability = 0.0;
  double retransmit_timeout = 0.05;

  std::uint64_t seed = 1;
};

struct ProtocolTrace {
  double makespan_seconds = 0.0;    ///< simulated end-to-end protocol time
  double network_seconds = 0.0;     ///< critical-path share spent in flight
  double compute_seconds = 0.0;     ///< critical-path share spent computing
  double centre_seconds = 0.0;      ///< critical-path share at the centre
  std::size_t rounds = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t retransmissions = 0;
  std::size_t replicas_placed = 0;
  /// Mean round makespan (seconds).
  double mean_round_seconds() const {
    return rounds ? makespan_seconds / static_cast<double>(rounds) : 0.0;
  }
};

/// Simulates the flat (single-centre) protocol to quiescence.  The
/// allocation decisions are exactly those of core::run_agt_ram — the DES
/// wraps the same agents — so quality is unchanged and only time is
/// modelled.  `centre < 0` picks the metric medoid.
ProtocolTrace simulate_protocol(const drp::Problem& problem,
                                const ProtocolModel& model = {},
                                std::int64_t centre = -1);

/// Simulates the regional variant: each region runs the same protocol
/// against its medoid concurrently; the makespan is the slowest region's
/// finish time (regions share the placement state, synchronised per epoch
/// as in core::run_regional).
ProtocolTrace simulate_regional_protocol(const drp::Problem& problem,
                                         std::uint32_t regions,
                                         const ProtocolModel& model = {});

/// Free-running regional simulation: a true event-queue DES in which each
/// region starts its next round the moment its previous one finishes — no
/// global epoch barrier.  Placement state is shared and mutated in event
/// (simulated-time) order, so fast nearby regions are never held hostage
/// by a distant straggler region; the makespan is a lower envelope of the
/// barrier variant's (tested).  Note: with overlapping rounds the
/// network/compute/centre fields accumulate *per-round* critical paths and
/// may exceed the wall-clock makespan.
ProtocolTrace simulate_regional_protocol_async(const drp::Problem& problem,
                                               std::uint32_t regions,
                                               const ProtocolModel& model = {});

/// Mean-field event model for the online engine (DESIGN.md §12), after the
/// stochastic replication dynamics of Sun et al. (arXiv:1701.00335): per
/// step every surviving extra replica is lost independently with a small
/// rate, servers fail and recover as a two-state Markov chain, and demand
/// drifts by moving read volume between an object's readers (with
/// occasional flash crowds and object churn).  Rates are per generated
/// batch.
struct OnlineEventModel {
  /// P(any one extra replica is lost this step).
  double replica_loss_rate = 0.002;
  /// P(a live server's replica storage fails this step).
  double server_fail_rate = 0.0005;
  /// P(a failed server recovers this step).
  double server_recover_rate = 0.25;
  /// Read-drift moves per step: each picks an object and shifts a fraction
  /// of one reader's read volume onto another structural reader.
  std::size_t demand_drift_moves = 8;
  /// Fraction of the source cell's reads moved per drift (at least 1 unit).
  double drift_fraction = 0.25;
  /// P(one drift move also shifts write volume between two accessor cells) —
  /// write deltas reprice every reader, the expensive-dirty case.
  double write_drift_probability = 0.25;
  /// P(a flash crowd this step): one object's readers multiply their reads.
  double flash_crowd_probability = 0.05;
  double flash_crowd_multiplier = 4.0;
  /// P(one active object is deleted this step) and P(one previously deleted
  /// object is recreated this step).
  double object_churn_probability = 0.02;
  std::uint64_t seed = 1;
};

/// Deterministic (seeded) generator of valid event batches against the live
/// engine state.  Events inside a batch are ordered so each is valid when
/// the engine applies them sequentially: demand deltas, then replica
/// losses, then server fails, joins, object deletes, creates.  Batches may
/// be empty (a quiet step — the engine's no-op path).
class OnlineEventSource {
 public:
  OnlineEventSource(const core::OnlineMechanism& engine,
                    OnlineEventModel model);

  std::vector<core::OnlineEvent> next_batch();

 private:
  const core::OnlineMechanism* engine_;
  OnlineEventModel model_;
  std::mt19937_64 rng_;
};

}  // namespace agtram::runtime
