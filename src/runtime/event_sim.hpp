// Discrete-event simulation of the AGT-RAM wire protocol.
//
// The paper deployed AGT-RAM on Ada + GLADE over a real network; we
// substitute a discrete-event simulator of the same protocol (Figure 2):
//
//   round r:
//     centre   --(poll)-->            every live agent          [latency]
//     agent i  computes its report                              [compute]
//     agent i  --(report)-->          centre                    [latency]
//     centre   waits for all reports (a barrier), decides       [decide]
//     centre   --(allocate)-->        winner                    [latency]
//     centre   --(broadcast OMAX)-->  every live agent          [latency]
//
// Per-message latency is distance-proportional plus a fixed overhead;
// per-agent compute time scales with the candidate evaluations the lazy
// heap actually performs.  Optional straggler inflation and message loss
// (with timeout + retransmit) model real-network misbehaviour.  The output
// is the protocol *makespan* and its critical-path breakdown — the
// quantity behind the paper's "solutions converge in a fast turn-around
// time" claim — for both the flat mechanism and the regional variant
// (whose regions progress independently and therefore overlap).
#pragma once

#include <cstdint>

#include "drp/problem.hpp"

namespace agtram::runtime {

struct ProtocolModel {
  /// Seconds per metric-closure cost unit of distance.
  double seconds_per_cost_unit = 1e-4;
  /// Fixed per-message overhead (serialisation, kernel, queueing).
  double message_overhead = 2e-4;
  /// Seconds per candidate evaluation inside an agent.
  double seconds_per_evaluation = 5e-7;
  /// Centre decision time per received report (scalar comparison).
  double seconds_per_report_at_centre = 1e-7;

  /// Each (agent, round) compute step is inflated by a factor drawn
  /// uniformly from [1, 1 + straggler_factor].
  double straggler_factor = 0.0;
  /// Probability that any message is lost; lost messages are retransmitted
  /// after `retransmit_timeout` seconds.
  double loss_probability = 0.0;
  double retransmit_timeout = 0.05;

  std::uint64_t seed = 1;
};

struct ProtocolTrace {
  double makespan_seconds = 0.0;    ///< simulated end-to-end protocol time
  double network_seconds = 0.0;     ///< critical-path share spent in flight
  double compute_seconds = 0.0;     ///< critical-path share spent computing
  double centre_seconds = 0.0;      ///< critical-path share at the centre
  std::size_t rounds = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t retransmissions = 0;
  std::size_t replicas_placed = 0;
  /// Mean round makespan (seconds).
  double mean_round_seconds() const {
    return rounds ? makespan_seconds / static_cast<double>(rounds) : 0.0;
  }
};

/// Simulates the flat (single-centre) protocol to quiescence.  The
/// allocation decisions are exactly those of core::run_agt_ram — the DES
/// wraps the same agents — so quality is unchanged and only time is
/// modelled.  `centre < 0` picks the metric medoid.
ProtocolTrace simulate_protocol(const drp::Problem& problem,
                                const ProtocolModel& model = {},
                                std::int64_t centre = -1);

/// Simulates the regional variant: each region runs the same protocol
/// against its medoid concurrently; the makespan is the slowest region's
/// finish time (regions share the placement state, synchronised per epoch
/// as in core::run_regional).
ProtocolTrace simulate_regional_protocol(const drp::Problem& problem,
                                         std::uint32_t regions,
                                         const ProtocolModel& model = {});

/// Free-running regional simulation: a true event-queue DES in which each
/// region starts its next round the moment its previous one finishes — no
/// global epoch barrier.  Placement state is shared and mutated in event
/// (simulated-time) order, so fast nearby regions are never held hostage
/// by a distant straggler region; the makespan is a lower envelope of the
/// barrier variant's (tested).  Note: with overlapping rounds the
/// network/compute/centre fields accumulate *per-round* critical paths and
/// may exceed the wall-clock makespan.
ProtocolTrace simulate_regional_protocol_async(const drp::Problem& problem,
                                               std::uint32_t regions,
                                               const ProtocolModel& model = {});

}  // namespace agtram::runtime
