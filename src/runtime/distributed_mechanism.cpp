#include "runtime/distributed_mechanism.hpp"

#include "common/timer.hpp"

namespace agtram::runtime {

DistributedRunReport run_distributed(const drp::Problem& problem,
                                     const DistributedConfig& config) {
  const drp::ServerId centre =
      config.centre >= 0 ? static_cast<drp::ServerId>(config.centre)
                         : MessageBus::pick_centre(problem);
  MessageBus bus(problem, centre, config.seconds_per_cost_unit);

  core::AgtRamConfig mech;
  mech.payment_rule = config.payment_rule;
  mech.parallel_agents = true;
  mech.report_mode = config.report_mode;
  mech.observer = &bus;

  common::Timer timer;
  core::MechanismResult result = core::run_agt_ram(problem, mech);

  DistributedRunReport report{std::move(result), bus.stats(), centre,
                              timer.seconds()};
  return report;
}

}  // namespace agtram::runtime
