// The semi-distributed execution of AGT-RAM: agents evaluate their candidate
// lists concurrently on the shared thread pool (the PARFOR loops of
// Figure 2) while a MessageBus accounts the protocol traffic.  The allocation
// is byte-identical to the serial run — the centre reduces reports with a
// deterministic tie-break — which tests assert.
#pragma once

#include "core/agt_ram.hpp"
#include "runtime/message_bus.hpp"

namespace agtram::runtime {

struct DistributedConfig {
  core::PaymentRule payment_rule = core::PaymentRule::SecondPrice;
  /// Latency per metric-closure cost unit (copper-wire scale by default).
  double seconds_per_cost_unit = 1e-4;
  /// Pin the central body to a server; -1 picks the metric medoid.
  std::int64_t centre = -1;
  /// Dirty-set protocol (core::ReportMode::Incremental): the centre caches
  /// standing reports, re-polls only the agents the last allocation could
  /// have touched, and multicasts OMAX to that set — far fewer messages,
  /// byte-identical allocation.  ReportMode::Naive accounts the paper's
  /// literal every-agent-every-round traffic; Auto picks per instance.
  core::ReportMode report_mode = core::ReportMode::Incremental;
};

struct DistributedRunReport {
  core::MechanismResult result;
  MessageStats messages;
  drp::ServerId centre;
  double wall_seconds = 0.0;
};

/// Runs the mechanism with parallel agents and full message accounting.
DistributedRunReport run_distributed(const drp::Problem& problem,
                                     const DistributedConfig& config = {});

}  // namespace agtram::runtime
