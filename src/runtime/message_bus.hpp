// Message accounting for the semi-distributed deployment model.
//
// The paper's central claim about control structure: "all the heavy
// processing is done on the servers of the distributed system and the
// central body is only required to take a binary decision".  This bus
// observes a mechanism run and accounts every message the protocol of
// Figure 2 would put on the wire:
//
//   round r:  each *dirty* agent --(report: object id + valuation)--> centre
//             centre             --(allocation + payment)-->          winner
//             centre             --(broadcast: OMAX)-->               dirty set
//
// plus a latency model mapping the metric closure to per-message delay, so
// benches can report simulated convergence time and the centre-vs-agents
// traffic split that substantiates the scalability argument.
//
// Under the incremental protocol (core::ReportMode::Incremental) the
// centre caches standing reports, so only agents whose valuation the last
// allocation could have changed re-report, and the OMAX broadcast is a
// targeted multicast to that same dirty set — the bus counts exactly those
// wire messages (cached reports never travel).  Under the naive sweep every
// live agent reports and hears the broadcast every round, reproducing the
// paper's literal Figure 2 traffic.
#pragma once

#include <cstdint>

#include "core/agt_ram.hpp"
#include "drp/problem.hpp"

namespace agtram::runtime {

struct MessageStats {
  std::uint64_t report_messages = 0;     ///< agent -> centre
  std::uint64_t report_bytes = 0;
  std::uint64_t allocation_messages = 0; ///< centre -> winner (incl. payment)
  std::uint64_t allocation_bytes = 0;
  std::uint64_t broadcast_messages = 0;  ///< centre -> every live agent
  std::uint64_t broadcast_bytes = 0;
  std::size_t rounds = 0;

  // Serving-plane traffic (srv::ServingEngine, DESIGN.md §13), accounted
  // separately from the protocol kinds above so obs blocks can split
  // mechanism bytes from serving bytes.
  std::uint64_t route_messages = 0;    ///< client -> serving replica reads
  std::uint64_t route_bytes = 0;
  std::uint64_t delta_messages = 0;    ///< demand-delta batch cells -> centre
  std::uint64_t delta_bytes = 0;
  std::uint64_t install_messages = 0;  ///< placement-install table entries
  std::uint64_t install_bytes = 0;

  // Glauber-dynamics baseline traffic (baselines::glauber): per-server flip
  // proposals carrying the locally priced cost delta, and the coordinator's
  // accept/reject decisions back.  Accounted separately so obs blocks can
  // attribute the distributed baseline's chatter.
  std::uint64_t glauber_proposal_messages = 0;  ///< server -> coordinator
  std::uint64_t glauber_proposal_bytes = 0;
  std::uint64_t glauber_decision_messages = 0;  ///< coordinator -> server
  std::uint64_t glauber_decision_bytes = 0;

  /// Simulated end-to-end protocol time: per round, the slowest report in
  /// flight plus the slowest broadcast leg (reports travel in parallel).
  double simulated_seconds = 0.0;

  std::uint64_t total_messages() const noexcept {
    return report_messages + allocation_messages + broadcast_messages;
  }
  std::uint64_t total_bytes() const noexcept {
    return report_bytes + allocation_bytes + broadcast_bytes;
  }
  std::uint64_t serving_messages() const noexcept {
    return route_messages + delta_messages + install_messages;
  }
  std::uint64_t serving_bytes() const noexcept {
    return route_bytes + delta_bytes + install_bytes;
  }
  std::uint64_t glauber_messages() const noexcept {
    return glauber_proposal_messages + glauber_decision_messages;
  }
  std::uint64_t glauber_bytes() const noexcept {
    return glauber_proposal_bytes + glauber_decision_bytes;
  }
};

/// Wire-format sizes (bytes) for the protocol and serving message kinds.
struct WireFormat {
  std::uint32_t report = 16;      ///< object id + fixed-point valuation
  std::uint32_t allocation = 16;  ///< object id + payment
  std::uint32_t broadcast = 12;   ///< object id + winner id
  std::uint32_t route = 8;        ///< object id + requested version floor
  std::uint32_t delta_cell = 24;  ///< server + object + dr + dw
  std::uint32_t install_entry = 8;  ///< object id + replica server id
  std::uint32_t glauber_proposal = 24;  ///< object + flip kind + priced delta
  std::uint32_t glauber_decision = 12;  ///< object + accept flag + sweep
};

class MessageBus : public core::MechanismObserver {
 public:
  /// `centre` is the server hosting the central decision body;
  /// `seconds_per_cost_unit` converts metric-closure cost into latency.
  MessageBus(const drp::Problem& problem, drp::ServerId centre,
             double seconds_per_cost_unit = 1e-4, WireFormat wire = {});

  void on_round_begin(std::size_t round) override;
  void on_report(drp::ServerId agent, const core::Report& report,
                 bool fresh) override;
  void on_allocation(drp::ServerId winner, drp::ObjectIndex object,
                     double payment) override;
  void on_broadcast(drp::ServerId winner, drp::ObjectIndex object,
                    std::size_t notified) override;

  // Serving-plane accounting (not MechanismObserver callbacks): the
  // ServingEngine charges its own wire kinds here from the control thread.
  void account_routes(std::uint64_t requests);
  void account_demand_batch(std::uint64_t cells);
  void account_install(std::uint64_t entries);

  // Glauber-baseline accounting (baselines::glauber): one proposal per
  // evaluated flip, one decision back per proposal.
  void account_glauber_proposals(std::uint64_t proposals);
  void account_glauber_decisions(std::uint64_t decisions);

  const MessageStats& stats() const noexcept { return stats_; }
  drp::ServerId centre() const noexcept { return centre_; }

  /// Medoid of the metric closure: the natural place for the central body.
  static drp::ServerId pick_centre(const drp::Problem& problem);

 private:
  double latency(drp::ServerId server) const;

  const drp::Problem* problem_;
  drp::ServerId centre_;
  double seconds_per_cost_unit_;
  WireFormat wire_;
  MessageStats stats_;
  double round_slowest_report_ = 0.0;
};

}  // namespace agtram::runtime
