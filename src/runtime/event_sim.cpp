#include "runtime/event_sim.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "common/prng.hpp"
#include "core/agent.hpp"
#include "net/clustering.hpp"
#include "obs/obs.hpp"
#include "runtime/message_bus.hpp"

namespace agtram::runtime {

using common::Rng;

namespace {

/// One message's effective delivery time under the loss model: base latency
/// plus one retransmit timeout per loss (geometric retries).
struct Wire {
  const drp::Problem* problem;
  const ProtocolModel* model;
  Rng* rng;
  ProtocolTrace* trace;

  double send(drp::ServerId from, drp::ServerId to) {
    double delay =
        static_cast<double>(problem->distance(from, to)) *
            model->seconds_per_cost_unit +
        model->message_overhead;
    ++trace->messages_sent;
    AGTRAM_OBS_COUNT("event_sim.messages", 1);
    while (model->loss_probability > 0.0 &&
           rng->chance(model->loss_probability)) {
      ++trace->messages_lost;
      ++trace->retransmissions;
      ++trace->messages_sent;
      AGTRAM_OBS_COUNT("event_sim.losses", 1);
      AGTRAM_OBS_COUNT("event_sim.retransmits", 1);
      AGTRAM_OBS_COUNT("event_sim.messages", 1);
      delay += model->retransmit_timeout;
    }
    return delay;
  }
};

/// Simulates the rounds of one mechanism group (the whole system, or one
/// region).  `live` holds indices into `agents`; the group's centre is
/// `centre`.  Runs exactly one allocation per call; returns false when the
/// group has quiesced.  Accumulates the round's duration and critical-path
/// breakdown into `trace` via the returned duration (the caller decides how
/// rounds overlap across groups).
struct GroupSim {
  const drp::Problem* problem;
  const ProtocolModel* model;
  drp::ServerId centre;
  std::vector<std::uint32_t> live;  ///< agent indices

  struct RoundResult {
    bool allocated = false;
    double duration = 0.0;
    double network = 0.0;
    double compute = 0.0;
    double centre_time = 0.0;
  };

  RoundResult run_round(std::vector<core::Agent>& agents,
                        drp::ReplicaPlacement& placement, Wire& wire,
                        Rng& rng, ProtocolTrace& trace) {
    RoundResult result;
    if (live.empty()) return result;
    AGTRAM_OBS_COUNT("event_sim.rounds", 1);

    // Poll + compute + report, all agents in parallel; the barrier closes
    // on the slowest (poll -> compute -> report) chain.
    double slowest_chain = 0.0;
    double critical_network = 0.0;
    double critical_compute = 0.0;
    std::vector<std::uint32_t> bidders;
    std::vector<double> values;
    std::vector<core::Report> reports(agents.size());
    std::vector<std::uint32_t> next_live;
    for (const std::uint32_t a : live) {
      const drp::ServerId id = agents[a].id();
      const double poll = wire.send(centre, id);
      reports[a] = agents[a].make_report(placement, nullptr);
      double compute = static_cast<double>(reports[a].evaluations) *
                       model->seconds_per_evaluation;
      if (model->straggler_factor > 0.0) {
        compute *= 1.0 + rng.uniform() * model->straggler_factor;
      }
      const double reply = wire.send(id, centre);
      const double chain = poll + compute + reply;
      if (chain > slowest_chain) {
        slowest_chain = chain;
        critical_network = poll + reply;
        critical_compute = compute;
      }
      if (reports[a].has_candidate) {
        bidders.push_back(a);
        values.push_back(reports[a].claimed_value);
        next_live.push_back(a);
      }
    }
    live = std::move(next_live);
    if (bidders.empty()) {
      // The terminating round still costs a full barrier.
      AGTRAM_OBS_COUNT("event_sim.critical_legs", 1);
      result.duration = slowest_chain;
      result.network = critical_network;
      result.compute = critical_compute;
      return result;
    }

    // Centre decision: a scalar comparison per report.
    const double decide = static_cast<double>(values.size()) *
                          model->seconds_per_report_at_centre;

    std::size_t winner_slot = 0;
    for (std::size_t s = 1; s < values.size(); ++s) {
      if (values[s] > values[winner_slot]) winner_slot = s;
    }
    const std::uint32_t winner_agent = bidders[winner_slot];
    const drp::ServerId winner = agents[winner_agent].id();
    const core::Report& winning = reports[winner_agent];

    assert(placement.can_replicate(winner, winning.object));
    placement.add_replica(winner, winning.object);
    ++trace.replicas_placed;
    result.allocated = true;

    // Allocation to the winner and OMAX broadcast fan out concurrently;
    // the round closes when the slowest leg lands.
    double slowest_fanout = wire.send(centre, winner);
    for (const std::uint32_t a : live) {
      slowest_fanout =
          std::max(slowest_fanout, wire.send(centre, agents[a].id()));
    }

    // An allocating round's critical path has three legs: the slowest
    // poll→compute→reply chain, the centre's decide scan, and the slowest
    // fan-out message.
    AGTRAM_OBS_COUNT("event_sim.critical_legs", 3);
    result.duration = slowest_chain + decide + slowest_fanout;
    result.network = critical_network + slowest_fanout;
    result.compute = critical_compute;
    result.centre_time = decide;
    return result;
  }
};

}  // namespace

ProtocolTrace simulate_protocol(const drp::Problem& problem,
                                const ProtocolModel& model,
                                std::int64_t centre_choice) {
  const drp::ServerId centre =
      centre_choice >= 0 ? static_cast<drp::ServerId>(centre_choice)
                         : MessageBus::pick_centre(problem);

  ProtocolTrace trace;
  Rng rng(model.seed);
  Wire wire{&problem, &model, &rng, &trace};

  drp::ReplicaPlacement placement(problem);
  std::vector<core::Agent> agents;
  agents.reserve(problem.server_count());
  GroupSim group{&problem, &model, centre, {}};
  for (drp::ServerId i = 0; i < problem.server_count(); ++i) {
    agents.emplace_back(problem, i);
    if (!agents.back().retired()) {
      group.live.push_back(static_cast<std::uint32_t>(agents.size() - 1));
    }
  }

  for (;;) {
    const auto round = group.run_round(agents, placement, wire, rng, trace);
    trace.makespan_seconds += round.duration;
    trace.network_seconds += round.network;
    trace.compute_seconds += round.compute;
    trace.centre_seconds += round.centre_time;
    ++trace.rounds;
    if (!round.allocated) break;
  }
  return trace;
}

ProtocolTrace simulate_regional_protocol(const drp::Problem& problem,
                                         std::uint32_t regions,
                                         const ProtocolModel& model) {
  net::ClusteringConfig clustering_cfg;
  clustering_cfg.regions = regions;
  clustering_cfg.seed = model.seed;
  const net::Clustering clustering =
      net::cluster_servers(*problem.distances, clustering_cfg);

  ProtocolTrace trace;
  Rng rng(model.seed);
  Wire wire{&problem, &model, &rng, &trace};

  drp::ReplicaPlacement placement(problem);
  std::vector<core::Agent> agents;
  agents.reserve(problem.server_count());
  std::vector<GroupSim> groups;
  groups.reserve(clustering.region_count());
  for (std::uint32_t r = 0; r < clustering.region_count(); ++r) {
    groups.push_back(GroupSim{&problem, &model,
                              clustering.medoids[r], {}});
  }
  for (drp::ServerId i = 0; i < problem.server_count(); ++i) {
    agents.emplace_back(problem, i);
    if (!agents.back().retired()) {
      groups[clustering.assignment[i]].live.push_back(
          static_cast<std::uint32_t>(agents.size() - 1));
    }
  }

  // Epochs: regions run their rounds concurrently; the epoch closes with
  // the slowest active region (a conservative global barrier — a real
  // deployment would let regions free-run, making this an upper bound).
  bool any_progress = true;
  while (any_progress) {
    any_progress = false;
    double epoch_duration = 0.0;
    double epoch_network = 0.0;
    double epoch_compute = 0.0;
    double epoch_centre = 0.0;
    for (auto& group : groups) {
      if (group.live.empty()) continue;
      const auto round =
          group.run_round(agents, placement, wire, rng, trace);
      if (round.duration > epoch_duration) {
        epoch_duration = round.duration;
        epoch_network = round.network;
        epoch_compute = round.compute;
        epoch_centre = round.centre_time;
      }
      any_progress = any_progress || round.allocated;
    }
    if (epoch_duration == 0.0) break;
    trace.makespan_seconds += epoch_duration;
    trace.network_seconds += epoch_network;
    trace.compute_seconds += epoch_compute;
    trace.centre_seconds += epoch_centre;
    ++trace.rounds;
  }
  return trace;
}

ProtocolTrace simulate_regional_protocol_async(const drp::Problem& problem,
                                               std::uint32_t regions,
                                               const ProtocolModel& model) {
  net::ClusteringConfig clustering_cfg;
  clustering_cfg.regions = regions;
  clustering_cfg.seed = model.seed;
  const net::Clustering clustering =
      net::cluster_servers(*problem.distances, clustering_cfg);

  ProtocolTrace trace;
  Rng rng(model.seed);
  Wire wire{&problem, &model, &rng, &trace};

  drp::ReplicaPlacement placement(problem);
  std::vector<core::Agent> agents;
  agents.reserve(problem.server_count());
  std::vector<GroupSim> groups;
  groups.reserve(clustering.region_count());
  for (std::uint32_t r = 0; r < clustering.region_count(); ++r) {
    groups.push_back(GroupSim{&problem, &model, clustering.medoids[r], {}});
  }
  for (drp::ServerId i = 0; i < problem.server_count(); ++i) {
    agents.emplace_back(problem, i);
    if (!agents.back().retired()) {
      groups[clustering.assignment[i]].live.push_back(
          static_cast<std::uint32_t>(agents.size() - 1));
    }
  }

  // Event queue keyed by each region's next-round start time; ties break
  // towards the lower region index for determinism.  Events are processed
  // in simulated-time order, so the shared placement evolves exactly as a
  // free-running deployment's would.
  using Event = std::pair<double, std::uint32_t>;  // (start time, region)
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  for (std::uint32_t r = 0; r < groups.size(); ++r) {
    if (!groups[r].live.empty()) queue.emplace(0.0, r);
  }

  while (!queue.empty()) {
    const auto [start, r] = queue.top();
    queue.pop();
    const auto round =
        groups[r].run_round(agents, placement, wire, rng, trace);
    ++trace.rounds;
    const double finish = start + round.duration;
    trace.makespan_seconds = std::max(trace.makespan_seconds, finish);
    trace.network_seconds += round.network;
    trace.compute_seconds += round.compute;
    trace.centre_seconds += round.centre_time;
    if (round.allocated && !groups[r].live.empty()) {
      queue.emplace(finish, r);
    }
  }
  return trace;
}

// --------------------------------------------------- online event source

OnlineEventSource::OnlineEventSource(const core::OnlineMechanism& engine,
                                     OnlineEventModel model)
    : engine_(&engine), model_(model), rng_(model.seed) {}

std::vector<core::OnlineEvent> OnlineEventSource::next_batch() {
  const drp::Problem& p = engine_->problem();
  const drp::ReplicaPlacement& placement = engine_->placement();
  const std::size_t m = p.server_count();
  const std::size_t n = p.object_count();
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  const auto pick = [&](std::size_t bound) {
    return std::uniform_int_distribution<std::size_t>(0, bound - 1)(rng_);
  };

  // Events are generated against the pre-batch state and ordered so the
  // engine's sequential application never sees an invalid one: demand
  // deltas touch objects that are active now, losses reference replicas
  // that exist now (and precede the fail/delete events that would drop
  // them), joins never reference a server failed in this same batch.
  std::vector<core::OnlineEvent> demand;
  std::vector<core::OnlineEvent> losses;
  std::vector<core::OnlineEvent> fails;
  std::vector<core::OnlineEvent> joins;
  std::vector<core::OnlineEvent> churn;

  // --- Read drift (and occasional write drift) between structural cells.
  // Deltas within one batch stack on the same cell, so negative moves are
  // validated against pre-batch demand *plus* the batch's pending deltas —
  // the value the engine will actually see when it applies the event.
  std::map<std::pair<drp::ServerId, drp::ObjectIndex>,
           std::pair<std::int64_t, std::int64_t>>
      pending;
  for (std::size_t move = 0; move < model_.demand_drift_moves; ++move) {
    const auto k = static_cast<drp::ObjectIndex>(pick(n));
    if (engine_->object_deleted(k)) continue;
    const auto readers = p.access.readers(k);
    if (readers.size() < 2) continue;
    const drp::ServerId src = readers[pick(readers.size())];
    const drp::ServerId dst = readers[pick(readers.size())];
    if (src == dst) continue;
    auto& src_pending = pending[{src, k}];
    const std::int64_t avail =
        static_cast<std::int64_t>(p.access.reads(src, k)) + src_pending.first;
    if (avail <= 0) continue;
    const auto moved = std::min<std::int64_t>(
        avail, std::max<std::int64_t>(
                   1, static_cast<std::int64_t>(static_cast<double>(avail) *
                                                model_.drift_fraction)));
    src_pending.first -= moved;
    pending[{dst, k}].first += moved;
    demand.push_back(core::DemandDelta{src, k, -moved, 0});
    demand.push_back(core::DemandDelta{dst, k, moved, 0});
    if (coin(rng_) < model_.write_drift_probability) {
      // Writes may move to any structural cell (no reader restriction).
      const auto cells = p.access.accessors(k);
      const drp::Access from = cells[pick(cells.size())];
      const drp::Access to = cells[pick(cells.size())];
      if (from.server != to.server) {
        auto& from_pending = pending[{from.server, k}];
        const std::int64_t avail_w =
            static_cast<std::int64_t>(from.writes) + from_pending.second;
        if (avail_w > 0) {
          const auto w = std::min<std::int64_t>(
              avail_w,
              std::max<std::int64_t>(
                  1, static_cast<std::int64_t>(static_cast<double>(avail_w) *
                                               model_.drift_fraction)));
          from_pending.second -= w;
          pending[{to.server, k}].second += w;
          demand.push_back(core::DemandDelta{from.server, k, 0, -w});
          demand.push_back(core::DemandDelta{to.server, k, 0, w});
        }
      }
    }
  }

  // --- Flash crowd: every reader of one object multiplies its reads.
  if (coin(rng_) < model_.flash_crowd_probability) {
    const auto k = static_cast<drp::ObjectIndex>(pick(n));
    if (!engine_->object_deleted(k)) {
      for (const drp::ServerId i : p.access.readers(k)) {
        const std::uint64_t r = p.access.reads(i, k);
        if (r == 0) continue;
        const auto extra = static_cast<std::int64_t>(
            static_cast<double>(r) * (model_.flash_crowd_multiplier - 1.0));
        if (extra > 0) demand.push_back(core::DemandDelta{i, k, extra, 0});
      }
    }
  }

  // --- Mean-field replica loss: each surviving extra replica is an
  // independent Bernoulli trial.
  if (model_.replica_loss_rate > 0.0) {
    for (drp::ObjectIndex k = 0; k < n; ++k) {
      const drp::ServerId primary = p.primary[k];
      for (const drp::ServerId r : placement.replicators(k)) {
        if (r == primary) continue;
        if (coin(rng_) < model_.replica_loss_rate) {
          losses.push_back(core::ReplicaLoss{r, k});
        }
      }
    }
  }

  // --- Server fail/recover chain.  Servers failing this batch are tracked
  // so no join is emitted for them in the same batch.
  std::vector<char> failing(m, 0);
  if (model_.server_fail_rate > 0.0 || model_.server_recover_rate > 0.0) {
    for (drp::ServerId s = 0; s < m; ++s) {
      if (engine_->server_failed(s)) {
        if (coin(rng_) < model_.server_recover_rate) {
          joins.push_back(core::ServerJoin{s});
        }
      } else if (coin(rng_) < model_.server_fail_rate) {
        fails.push_back(core::ServerFail{s});
        failing[s] = 1;
      }
    }
  }

  // --- Object churn: at most one delete and one create per batch.
  if (coin(rng_) < model_.object_churn_probability) {
    const auto k = static_cast<drp::ObjectIndex>(pick(n));
    if (!engine_->object_deleted(k)) churn.push_back(core::ObjectDelete{k});
  }
  if (coin(rng_) < model_.object_churn_probability) {
    // Reservoir-pick a deleted object (there is no deleted-object index).
    std::size_t seen = 0;
    drp::ObjectIndex chosen = 0;
    for (drp::ObjectIndex k = 0; k < n; ++k) {
      if (!engine_->object_deleted(k)) continue;
      ++seen;
      if (pick(seen) == 0) chosen = k;
    }
    if (seen > 0) churn.push_back(core::ObjectCreate{chosen});
  }

  std::vector<core::OnlineEvent> batch;
  batch.reserve(demand.size() + losses.size() + fails.size() + joins.size() +
                churn.size());
  const auto append = [&](std::vector<core::OnlineEvent>& part) {
    for (core::OnlineEvent& e : part) batch.push_back(std::move(e));
  };
  append(demand);
  append(losses);
  append(fails);
  append(joins);
  append(churn);
  return batch;
}

}  // namespace agtram::runtime
