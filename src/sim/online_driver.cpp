#include "sim/online_driver.hpp"

#include <algorithm>

namespace agtram::sim {

OnlineStreamStats run_online_stream(core::OnlineMechanism& engine,
                                    runtime::OnlineEventSource& source,
                                    std::size_t batches) {
  OnlineStreamStats stats;
  for (std::size_t b = 0; b < batches; ++b) {
    const std::vector<core::OnlineEvent> batch = source.next_batch();
    const core::BatchOutcome out = engine.apply_events(batch);
    ++stats.batches;
    stats.events += out.events_applied;
    if (out.dirty_agents > 0) ++stats.batches_with_repair;
    if (out.oracle_checked) ++stats.oracle_checked;
    stats.dirty_agents += out.dirty_agents;
    stats.repair_rounds += out.repair_rounds;
    stats.replicas_added += out.replicas_added;
    stats.replicas_lost += out.replicas_lost;
    stats.reports_computed += out.reports_computed;
    stats.candidate_evaluations += out.candidate_evaluations;
    stats.max_dirty_agents = std::max(stats.max_dirty_agents, out.dirty_agents);
    stats.final_cost = out.total_cost;
  }
  return stats;
}

}  // namespace agtram::sim
