// Multi-day horizon simulation: the operational life of a replication
// deployment under drifting demand.
//
// The paper positions AGT-RAM as "a protocol for automatic replication and
// migration of objects in response to demand changes".  This driver makes
// that operational claim testable end to end: starting from an initial
// instance, each simulated day perturbs the demand (hotspot drift,
// popularity churn, write re-targeting) and a pluggable placement policy
// reacts; the driver records savings, user-perceived latency, and storage
// churn day by day.  The ablation bench and the cdn_week example are thin
// wrappers over this class.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/adaptive.hpp"
#include "drp/perturb.hpp"
#include "drp/problem.hpp"
#include "sim/replay.hpp"

namespace agtram::sim {

/// How the deployment reacts to each day's demand.
enum class HorizonPolicy {
  Stale,    ///< plan once on day 0, never touch the scheme again
  Rebuild,  ///< replan from scratch every day (quality ceiling, max churn)
  Adapt,    ///< the paper's protocol: evict + warm re-allocate
};

const char* to_string(HorizonPolicy policy);

struct HorizonConfig {
  std::uint32_t days = 7;
  HorizonPolicy policy = HorizonPolicy::Adapt;
  /// Per-day demand drift (applied with day-varying seeds).
  drp::PerturbConfig drift;
  core::AdaptiveConfig adaptive;
  std::uint64_t seed = 1;
};

struct DayRecord {
  std::uint32_t day = 0;
  double demand_moved = 0.0;     ///< L1 shift vs. the previous day
  double savings = 0.0;          ///< vs. that day's primaries-only OTC
  double mean_read_latency = 0.0;
  double local_read_fraction = 0.0;
  std::uint64_t churn_units = 0; ///< storage moved to react (0 for Stale)
  std::size_t replicas = 0;
};

struct HorizonResult {
  std::vector<DayRecord> days;
  double mean_savings = 0.0;
  std::uint64_t total_churn_units = 0;
};

/// Runs the horizon; deterministic in (problem, config).
HorizonResult run_horizon(const drp::Problem& initial,
                          const HorizonConfig& config);

}  // namespace agtram::sim
