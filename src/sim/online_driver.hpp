// Stream driver for the online engine: pulls batches from an event source,
// feeds them to core::OnlineMechanism, and aggregates the per-batch
// outcomes into the steady-state numbers the bench rows and tests consume
// (dirty-set sizes, repair work, churn volume).  Pure plumbing — all
// correctness lives in the engine; all timing lives in the caller.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/online.hpp"
#include "runtime/event_sim.hpp"

namespace agtram::sim {

struct OnlineStreamStats {
  std::size_t batches = 0;
  std::size_t events = 0;
  std::size_t batches_with_repair = 0;  ///< batches whose dirty set was non-empty
  std::size_t oracle_checked = 0;
  std::uint64_t dirty_agents = 0;
  std::uint64_t repair_rounds = 0;
  std::uint64_t replicas_added = 0;
  std::uint64_t replicas_lost = 0;
  std::uint64_t reports_computed = 0;
  std::uint64_t candidate_evaluations = 0;
  std::size_t max_dirty_agents = 0;
  double final_cost = 0.0;

  double mean_dirty_agents() const {
    return batches == 0
               ? 0.0
               : static_cast<double>(dirty_agents) /
                     static_cast<double>(batches);
  }
  double mean_repair_rounds() const {
    return batches == 0
               ? 0.0
               : static_cast<double>(repair_rounds) /
                     static_cast<double>(batches);
  }
};

/// Runs `batches` event batches from `source` through `engine`, returning
/// the aggregate.  Oracle mismatches (when the engine's differential oracle
/// is enabled) propagate as std::logic_error.
OnlineStreamStats run_online_stream(core::OnlineMechanism& engine,
                                    runtime::OnlineEventSource& source,
                                    std::size_t batches);

}  // namespace agtram::sim
