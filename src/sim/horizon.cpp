#include "sim/horizon.hpp"

#include <deque>
#include <stdexcept>

#include "core/agt_ram.hpp"
#include "drp/cost_model.hpp"

namespace agtram::sim {

const char* to_string(HorizonPolicy policy) {
  switch (policy) {
    case HorizonPolicy::Stale: return "stale";
    case HorizonPolicy::Rebuild: return "rebuild";
    case HorizonPolicy::Adapt: return "adapt";
  }
  return "?";
}

namespace {

/// Re-hosts `scheme` (built against another demand snapshot of the same
/// system) onto `problem`; replicas that no longer fit are dropped.
drp::ReplicaPlacement carry_over(const drp::Problem& problem,
                                 const drp::ReplicaPlacement& scheme) {
  drp::ReplicaPlacement carried(problem);
  for (drp::ObjectIndex k = 0; k < problem.object_count(); ++k) {
    for (const drp::ServerId i : scheme.replicators(k)) {
      if (i == problem.primary[k]) continue;
      if (carried.can_replicate(i, k)) carried.add_replica(i, k);
    }
  }
  return carried;
}

/// Storage units that differ between two schemes (replicas present in one
/// but not the other) — the bytes a deployment must move.
std::uint64_t churn_between(const drp::ReplicaPlacement& a,
                            const drp::ReplicaPlacement& b) {
  const drp::Problem& p = a.problem();
  std::uint64_t churn = 0;
  for (drp::ObjectIndex k = 0; k < p.object_count(); ++k) {
    const auto ra = a.replicators(k);
    const auto rb = b.replicators(k);
    std::size_t ia = 0, ib = 0;
    while (ia < ra.size() || ib < rb.size()) {
      if (ib == rb.size() || (ia < ra.size() && ra[ia] < rb[ib])) {
        churn += p.object_units[k];
        ++ia;
      } else if (ia == ra.size() || rb[ib] < ra[ia]) {
        churn += p.object_units[k];
        ++ib;
      } else {
        ++ia;
        ++ib;
      }
    }
  }
  return churn;
}

}  // namespace

HorizonResult run_horizon(const drp::Problem& initial,
                          const HorizonConfig& config) {
  if (config.days == 0) throw std::invalid_argument("horizon needs >= 1 day");

  HorizonResult result;
  // Each day's Problem must outlive every placement built against it;
  // std::deque::push_back never relocates existing elements, so references
  // into `timeline` stay valid for the whole horizon.
  std::deque<drp::Problem> timeline;
  timeline.push_back(initial);
  // Day 0 always plans fresh (there is nothing to carry over from).
  drp::ReplicaPlacement scheme = core::run_agt_ram(timeline.back()).placement;

  const auto record_day = [&](std::uint32_t day, double moved,
                              std::uint64_t churn) {
    DayRecord record;
    record.day = day;
    record.demand_moved = moved;
    record.churn_units = churn;
    const double initial_cost = drp::CostModel::initial_cost(timeline.back());
    record.savings =
        (initial_cost - drp::CostModel::total_cost(scheme)) / initial_cost;
    const ReplayStats stats = replay(scheme);
    record.mean_read_latency = stats.read_latency.mean;
    record.local_read_fraction = stats.read_latency.local_fraction;
    record.replicas = scheme.extra_replica_count();
    result.days.push_back(record);
  };

  record_day(0, 0.0, 0);
  for (std::uint32_t day = 1; day < config.days; ++day) {
    drp::PerturbConfig drift = config.drift;
    drift.seed = config.seed * 1000003ULL + day;
    const drp::Problem& yesterday = timeline.back();
    timeline.push_back(drp::perturb_demand(yesterday, drift));
    const drp::Problem& today = timeline.back();
    const double moved = drp::demand_shift_magnitude(yesterday, today);

    drp::ReplicaPlacement carried = carry_over(today, scheme);
    std::uint64_t churn = 0;
    switch (config.policy) {
      case HorizonPolicy::Stale:
        scheme = std::move(carried);
        break;
      case HorizonPolicy::Rebuild: {
        drp::ReplicaPlacement rebuilt = core::run_agt_ram(today).placement;
        churn = churn_between(carried, rebuilt);
        scheme = std::move(rebuilt);
        break;
      }
      case HorizonPolicy::Adapt: {
        const auto report =
            core::adapt_placement(today, scheme, config.adaptive);
        churn = report.units_evicted + report.units_added;
        scheme = report.placement;
        break;
      }
    }
    result.total_churn_units += churn;
    record_day(day, moved, churn);
  }

  for (const DayRecord& record : result.days) {
    result.mean_savings += record.savings;
  }
  result.mean_savings /= static_cast<double>(result.days.size());
  return result;
}

}  // namespace agtram::sim
