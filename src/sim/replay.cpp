#include "sim/replay.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace agtram::sim {

namespace {

/// Request-weighted percentile over (latency, weight) samples.
double weighted_percentile(std::vector<std::pair<double, std::uint64_t>>& s,
                           std::uint64_t total, double q) {
  if (s.empty() || total == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      q / 100.0 * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (const auto& [latency, weight] : s) {
    seen += weight;
    if (seen > target) return latency;
  }
  return s.back().first;
}

}  // namespace

ReplayStats replay(const drp::ReplicaPlacement& placement) {
  const drp::Problem& p = placement.problem();
  ReplayStats stats;

  std::vector<std::pair<double, std::uint64_t>> latency_samples;
  double latency_sum = 0.0;
  std::uint64_t local_reads = 0;
  std::vector<std::uint64_t> served(p.server_count(), 0);

  for (drp::ObjectIndex k = 0; k < p.object_count(); ++k) {
    const double o = static_cast<double>(p.object_units[k]);
    const drp::ServerId primary = p.primary[k];
    std::uint64_t writes_seen = 0;

    for (const auto& access : p.access.accessors(k)) {
      // --- Reads: each is served by the nearest replicator.  The routing
      // decision goes through nn_server (the protocol's NN table), and the
      // travelled distance is looked up independently in the metric.
      if (access.reads > 0) {
        const drp::ServerId serving = placement.nn_server(access.server, k);
        served[serving] += access.reads;
        const auto hop = static_cast<double>(p.distance(access.server, serving));
        stats.read_units += static_cast<double>(access.reads) * o * hop;
        stats.read_requests += access.reads;
        latency_samples.emplace_back(hop, access.reads);
        latency_sum += hop * static_cast<double>(access.reads);
        if (hop == 0.0) local_reads += access.reads;
      }
      // --- Writes: shipped to the primary...
      if (access.writes > 0) {
        stats.write_ship_units +=
            static_cast<double>(access.writes) * o *
            static_cast<double>(p.distance(access.server, primary));
        stats.write_requests += access.writes;
        writes_seen += access.writes;
      }
    }

    // ... and broadcast from the primary to every *other* replicator; a
    // writer that is itself a replicator does not receive its own update
    // back (Equation 2's j != i term).
    for (const drp::ServerId replicator : placement.replicators(k)) {
      if (replicator == primary) continue;
      const std::uint64_t incoming =
          p.access.total_writes(k) - p.access.writes(replicator, k);
      stats.broadcast_units += static_cast<double>(incoming) * o *
                               static_cast<double>(p.distance(primary, replicator));
    }
    (void)writes_seen;
  }

  // Latency distribution (request-weighted).
  std::sort(latency_samples.begin(), latency_samples.end());
  if (stats.read_requests > 0) {
    stats.read_latency.mean =
        latency_sum / static_cast<double>(stats.read_requests);
    stats.read_latency.p50 =
        weighted_percentile(latency_samples, stats.read_requests, 50.0);
    stats.read_latency.p90 =
        weighted_percentile(latency_samples, stats.read_requests, 90.0);
    stats.read_latency.p99 =
        weighted_percentile(latency_samples, stats.read_requests, 99.0);
    stats.read_latency.worst =
        latency_samples.empty() ? 0.0 : latency_samples.back().first;
    stats.read_latency.local_fraction =
        static_cast<double>(local_reads) /
        static_cast<double>(stats.read_requests);
  }

  // Server service-load distribution.
  if (stats.read_requests > 0 && !served.empty()) {
    std::sort(served.rbegin(), served.rend());
    std::uint64_t total = 0;
    for (const std::uint64_t s : served) total += s;
    stats.server_load.mean_served =
        static_cast<double>(total) / static_cast<double>(served.size());
    stats.server_load.max_served = static_cast<double>(served.front());
    stats.server_load.imbalance =
        stats.server_load.mean_served > 0.0
            ? stats.server_load.max_served / stats.server_load.mean_served
            : 0.0;
    const std::size_t top5 = std::max<std::size_t>(1, served.size() / 20);
    std::uint64_t top5_total = 0;
    for (std::size_t s = 0; s < top5; ++s) top5_total += served[s];
    stats.server_load.top5_share =
        static_cast<double>(top5_total) / static_cast<double>(total);
  }
  return stats;
}

double mean_latency_improvement(const drp::ReplicaPlacement& before,
                                const drp::ReplicaPlacement& after) {
  const double b = replay(before).read_latency.mean;
  const double a = replay(after).read_latency.mean;
  return a > 0.0 ? b / a : 0.0;
}

}  // namespace agtram::sim
