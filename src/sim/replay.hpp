// Request-replay simulator: an independent validation path for the OTC
// cost model and the paper's end-user motivation.
//
// The cost engine (drp::CostModel) computes Equation 4 analytically.  This
// module instead *routes* the workload against a placement the way the
// protocol of Section 2 would:
//
//   * a read from S_i for O_k is served by the nearest replicator NN_ik;
//   * a write is shipped to the primary P_k, which broadcasts the new
//     version to every other replicator.
//
// Every routed transfer is accounted in data-unit-cost terms; the grand
// total provably equals C_overall(X), which tests assert — two independent
// implementations of the paper's cost semantics agreeing is the strongest
// internal check we have.  The simulator additionally reports what the
// analytic model cannot: the distribution of user-perceived read latencies
// ("replicating data objects ... can alleviate access delays", paper §1).
#pragma once

#include <cstdint>
#include <vector>

#include "drp/placement.hpp"

namespace agtram::sim {

struct LatencySummary {
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double worst = 0.0;
  /// Fraction of reads served locally (distance 0).
  double local_fraction = 0.0;
};

/// Per-server service load: how many read requests each server ends up
/// serving (as the nearest replica of the objects it hosts).  The paper's
/// conclusion claims the mechanism places objects near demand "while
/// ensuring that no hosts become overloaded" — these numbers test it.
struct LoadSummary {
  double mean_served = 0.0;   ///< mean reads served per server
  double max_served = 0.0;    ///< hottest server's load
  /// max / mean — 1.0 would be a perfectly even spread.
  double imbalance = 0.0;
  /// Fraction of all reads served by the busiest 5% of servers.
  double top5_share = 0.0;
};

struct ReplayStats {
  // Data-unit-cost totals, by traffic class.
  double read_units = 0.0;        ///< reads -> nearest replica
  double write_ship_units = 0.0;  ///< writer -> primary
  double broadcast_units = 0.0;   ///< primary -> other replicators
  std::uint64_t read_requests = 0;
  std::uint64_t write_requests = 0;

  /// Per-read latency (path cost of the serving hop), request-weighted.
  LatencySummary read_latency;

  /// Read-service load distribution across servers.
  LoadSummary server_load;

  double total_units() const noexcept {
    return read_units + write_ship_units + broadcast_units;
  }
};

/// Routes the full aggregated workload of `placement.problem()` against
/// `placement`.  Deterministic; O(nnz + total replicas).
ReplayStats replay(const drp::ReplicaPlacement& placement);

/// Convenience: read-latency improvement of `after` over `before`
/// (mean latency ratio), e.g. primaries-only vs. a mechanism's output.
double mean_latency_improvement(const drp::ReplicaPlacement& before,
                                const drp::ReplicaPlacement& after);

}  // namespace agtram::sim
