// Serving-layer trace replay (DESIGN.md §13): millions of requests routed
// against the live placement, comparing re-convergence policies end to end.
//
// Each policy serves the same drifting synthetic stream:
//   static     — solve once, never re-converge (placement-quality floor),
//   resolve    — cold full re-solve after every batch (what staying
//                converged costs without the online engine),
//   ondrift    — drift-triggered OnlineMechanism repair + bounded eviction
//                (the system under test).
// Reported per policy: routing throughput, sampled placement-query wall
// latency, the exact request-weighted read-cost distribution, bytes moved,
// and how much wall time re-convergence consumed.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "percentiles.hpp"
#include "runtime/message_bus.hpp"
#include "srv/serving_engine.hpp"
#include "srv/workload.hpp"

namespace {

using namespace agtram;

struct PolicyRun {
  std::string name;
  srv::ServingStats stats;
  runtime::MessageStats wire;
  double mean_read_cost = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli("Serving-layer replay: policies under demand drift");
  bench::add_common_flags(cli);
  cli.add_flag("requests", "1000000", "total routed requests per policy");
  cli.add_flag("batch", "8192", "request groups per batch");
  cli.add_flag("mean-count", "8", "mean request multiplicity per group");
  cli.add_flag("drift-interval", "2", "batches between drift steps (0=off)");
  cli.add_flag("drift-fraction", "0.5", "read+write mass moved per drift step");
  cli.add_flag("policy", "all", "all | static | resolve | ondrift");
  cli.add_flag("eviction-limit", "32", "ondrift: max evictions per repair");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const bench::Dims dims = bench::resolve_dims(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto total_requests =
      static_cast<std::uint64_t>(cli.get_int("requests"));
  const std::string which = cli.get("policy");

  srv::WorkloadConfig wconfig;
  wconfig.requests_per_batch = static_cast<std::size_t>(cli.get_int("batch"));
  wconfig.mean_count = static_cast<std::uint32_t>(cli.get_int("mean-count"));
  wconfig.drift_interval =
      static_cast<std::size_t>(cli.get_int("drift-interval"));
  wconfig.drift_fraction = cli.get_double("drift-fraction");
  // Keep the drifted fraction of the catalogue constant across scales so
  // the trigger sees the same relative signal at any N.
  wconfig.drift_objects = std::max<std::size_t>(16, dims.objects / 4);
  wconfig.seed = seed + 1;

  const auto run_policy = [&](const std::string& name,
                              srv::ReconvergePolicy policy) {
    drp::Problem problem =
        bench::build_instance(dims, /*capacity=*/30.0, /*rw=*/0.90, seed);
    runtime::MessageBus bus(problem,
                            runtime::MessageBus::pick_centre(problem));
    srv::ServingConfig config;
    config.policy = policy;
    config.eviction_limit =
        static_cast<std::size_t>(cli.get_int("eviction-limit"));
    config.bus = &bus;
    srv::ServingEngine engine(std::move(problem), config);
    srv::SyntheticWorkload workload(engine.problem(), wconfig);
    std::vector<srv::Request> batch;
    while (engine.stats().requests < total_requests) {
      workload.next_batch(batch);
      engine.run_batch(batch);
    }
    PolicyRun run;
    run.name = name;
    run.stats = engine.stats();
    run.wire = bus.stats();
    run.mean_read_cost = engine.stats().mean_read_cost();
    std::cerr << "  " << name << " done (" << run.stats.requests
              << " requests, " << run.stats.reconverges << " reconverges)\n";
    return run;
  };

  std::vector<PolicyRun> runs;
  if (which == "all" || which == "static") {
    runs.push_back(run_policy("static", srv::ReconvergePolicy::Static));
  }
  if (which == "all" || which == "resolve") {
    runs.push_back(run_policy("resolve", srv::ReconvergePolicy::EveryBatch));
  }
  if (which == "all" || which == "ondrift") {
    runs.push_back(run_policy("ondrift", srv::ReconvergePolicy::OnDrift));
  }
  if (runs.empty()) {
    std::cerr << "unknown --policy " << which << "\n";
    return 1;
  }

  common::Table table({"policy", "req/s (serve)", "query p50ns", "p99ns",
                       "read cost mean", "p99", "local reads", "units moved",
                       "installs", "reconv", "evicted", "reconv s",
                       "wire MB"});
  table.set_title("serving replay under drift [M=" +
                  std::to_string(dims.servers) + ", N=" +
                  std::to_string(dims.objects) + ", " +
                  std::to_string(total_requests) + " requests/policy]");
  for (PolicyRun& run : runs) {
    const bench::PercentileSummary query =
        bench::summarize_samples(run.stats.query_ns);
    const bench::PercentileSummary cost =
        bench::summarize_histogram(run.stats.read_cost_histogram);
    const double serve_rate =
        run.stats.serve_seconds > 0.0
            ? static_cast<double>(run.stats.requests) / run.stats.serve_seconds
            : 0.0;
    table.add_row(
        {run.name, common::Table::num(serve_rate, 0),
         common::Table::num(query.p50, 0), common::Table::num(query.p99, 0),
         common::Table::num(cost.mean, 2), common::Table::num(cost.p99, 1),
         common::Table::pct(
             run.stats.reads == 0
                 ? 0.0
                 : static_cast<double>(run.stats.local_reads) /
                       static_cast<double>(run.stats.reads)),
         common::Table::num(run.stats.read_units + run.stats.write_units, 0),
         std::to_string(run.stats.installs),
         std::to_string(run.stats.reconverges),
         std::to_string(run.stats.replicas_evicted),
         common::Table::num(run.stats.reconverge_seconds, 3),
         common::Table::num(
             static_cast<double>(run.wire.serving_bytes()) / 1e6, 2)});
  }
  bench::emit(cli, table);
  std::cout << "\nread cost = metric-closure hops per routed read (exact, "
               "histogram-weighted); 'units moved' = data units x distance "
               "for reads + writes under each policy's placement "
               "trajectory.\n";
  return 0;
}
