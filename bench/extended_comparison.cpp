// Extended comparison: the paper's six methods plus the citation-lineage
// extras (Selfish caching best-response Nash — the paper's ref [8]; local
// search and simulated annealing from the FAP-heuristic tradition), with
// the mechanism's economics report alongside.
//
// The headline question this table answers: what does the *mechanism* add
// over the raw selfish game?  The Nash equilibrium is reachable without
// any centre (Selfish row) — AGT-RAM's contribution is reaching it with
// ordered convergence, truthfulness, and a payment story, not a better
// allocation; the global-view methods (Greedy/LocalSearch/SA) show what
// centralisation buys instead.
#include <iostream>

#include "bench_common.hpp"
#include "core/agt_ram.hpp"
#include "core/economics.hpp"
#include "sim/replay.hpp"

int main(int argc, char** argv) {
  using namespace agtram;

  common::Cli cli("Extended nine-method comparison + mechanism economics");
  bench::add_common_flags(cli);
  cli.add_flag("capacity", "30", "paper C%%");
  cli.add_flag("rw", "0.90", "read fraction");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const bench::Dims dims = bench::resolve_dims(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const drp::Problem problem = bench::build_instance(
      dims, cli.get_double("capacity"), cli.get_double("rw"), seed);
  const double initial = drp::CostModel::initial_cost(problem);

  {
    common::Table table({"method", "savings", "replicas", "time (s)",
                         "mean read latency"});
    table.set_title("nine-method comparison [M=" +
                    std::to_string(dims.servers) + ", N=" +
                    std::to_string(dims.objects) + "]");
    for (const auto& algorithm : baselines::extended_algorithms()) {
      common::Timer timer;
      const auto placement = algorithm.run(problem, seed);
      const double seconds = timer.seconds();
      const double cost = drp::CostModel::total_cost(placement);
      const auto stats = sim::replay(placement);
      table.add_row({algorithm.name,
                     common::Table::pct((initial - cost) / initial),
                     std::to_string(placement.extra_replica_count()),
                     common::Table::num(seconds, 3),
                     common::Table::num(stats.read_latency.mean, 2)});
      std::cerr << "  " << algorithm.name << " done\n";
    }
    bench::emit(cli, table);
  }

  // Mechanism economics (Axiom 5 quantified).
  {
    const auto result = core::run_agt_ram(problem);
    const auto econ = core::economics_report(result);
    common::Table table({"economic metric", "value"});
    table.set_title("AGT-RAM clearing economics");
    table.add_row({"welfare created (sum of winning valuations)",
                   common::Table::num(econ.welfare, 0)});
    table.add_row({"clearing charges", common::Table::num(econ.charges, 0)});
    table.add_row({"frugality ratio (charges / welfare)",
                   common::Table::pct(econ.frugality_ratio)});
    table.add_row({"agent surplus", common::Table::num(econ.total_surplus, 0)});
    table.add_row({"surplus Gini", common::Table::num(econ.utility_gini, 3)});
    table.add_row({"winning agents",
                   std::to_string(econ.winning_agents) + " of " +
                       std::to_string(problem.server_count())});
    table.add_row({"mean winner dominance (report / charge)",
                   common::Table::num(econ.mean_dominance, 2)});
    table.print(std::cout);
  }
  return 0;
}
