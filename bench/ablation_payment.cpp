// Payment-rule ablation (Axiom 5's justification): why the second-price
// rule matters.
//
// The paper argues (Section 4, Motivation remarks) that over-projection,
// under-projection and random projection all fail against the second-best
// payment.  This bench makes that executable:
//
//  1. one-shot dominance margins per payment rule (the exact Lemma-1 /
//     Theorem-5 property);
//  2. full-game utilities of a strategic agent population under each rule;
//  3. the system-level OTC damage when the whole population drifts to its
//     best response (mis-ordered allocations under first-price shading).
#include <iostream>

#include "bench_common.hpp"
#include "common/prng.hpp"
#include "common/stats.hpp"
#include "core/agt_ram.hpp"
#include "core/audit.hpp"

int main(int argc, char** argv) {
  using namespace agtram;
  using core::PaymentRule;

  common::Cli cli("Payment-rule ablation: second-price vs first-price vs none");
  bench::add_common_flags(cli);
  cli.add_flag("capacity", "30", "paper C%%");
  cli.add_flag("rw", "0.90", "read fraction");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  bench::Dims dims = bench::resolve_dims(cli);
  // This bench re-runs the full mechanism per (agent, distortion); keep the
  // default instance modest.
  if (cli.get("scale") != "paper") {
    dims.servers = std::min<std::uint32_t>(dims.servers, 80);
    dims.objects = std::min<std::uint32_t>(dims.objects, 800);
  }
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const drp::Problem problem = bench::build_instance(
      dims, cli.get_double("capacity"), cli.get_double("rw"), seed);
  const double initial = drp::CostModel::initial_cost(problem);

  const std::vector<PaymentRule> rules{
      PaymentRule::SecondPrice, PaymentRule::FirstPrice, PaymentRule::None};
  const std::vector<double> distortions{0.5, 0.8, 1.25, 2.0};

  // ---- 1. One-shot dominance margins.
  {
    common::Table table({"payment rule", "trials", "min margin",
                         "manipulable trials"});
    table.set_title("One-shot dominance (Lemma 1 / Theorem 5): margin >= 0 "
                    "means truth-telling was weakly better");
    for (const PaymentRule rule : rules) {
      const auto trials =
          core::audit_one_shot_truthfulness(problem, rule, distortions);
      double min_margin = 0.0;
      std::size_t manipulable = 0;
      for (const auto& t : trials) {
        min_margin = std::min(min_margin, t.margin());
        if (t.margin() < -1e-9) ++manipulable;
      }
      table.add_row({core::to_string(rule), std::to_string(trials.size()),
                     common::Table::num(min_margin, 1),
                     std::to_string(manipulable)});
    }
    table.print(std::cout);
  }

  // ---- 2. Full-game margins for a sample of agents.
  {
    common::Table table({"payment rule", "mean margin", "min margin",
                         "agents who gained"});
    table.set_title("Full sequential game: utility(truthful) - "
                    "utility(deviant), sampled agents x distortions");
    common::Rng rng(seed);
    std::vector<drp::ServerId> sample;
    for (int s = 0; s < 6; ++s) {
      sample.push_back(
          static_cast<drp::ServerId>(rng.below(problem.server_count())));
    }
    for (const PaymentRule rule : rules) {
      common::RunningStats margins;
      std::size_t gained = 0;
      for (const drp::ServerId agent : sample) {
        for (const auto& t :
             core::audit_truthfulness(problem, rule, agent, distortions)) {
          margins.add(t.margin());
          if (t.margin() < -1e-6) ++gained;
        }
      }
      table.add_row({core::to_string(rule),
                     common::Table::num(margins.mean(), 1),
                     common::Table::num(margins.min(), 1),
                     std::to_string(gained)});
    }
    table.print(std::cout);
  }

  // ---- 3. System-level damage from population-wide strategic drift.
  {
    common::Table table({"population strategy", "payment rule",
                         "OTC savings", "total charges"});
    table.set_title(
        "System quality and transfers under population-wide strategic drift "
        "(proportional shading keeps the argmax order, so allocation quality "
        "survives; the clearing transfers swing wildly)");
    struct Scenario {
      const char* name;
      PaymentRule rule;
      double factor;  // population-wide claim distortion
    };
    const Scenario scenarios[] = {
        {"truthful", PaymentRule::SecondPrice, 1.0},
        {"truthful", PaymentRule::FirstPrice, 1.0},
        {"shade x0.5 (first-price BR)", PaymentRule::FirstPrice, 0.5},
        {"inflate x2 (none-rule drift)", PaymentRule::None, 2.0},
        {"random projection", PaymentRule::SecondPrice, -1.0},
    };
    for (const Scenario& s : scenarios) {
      core::AgtRamConfig cfg;
      cfg.payment_rule = s.rule;
      common::Rng noise(seed ^ 0xfeed);
      if (s.factor < 0.0) {
        cfg.strategy = [&noise](drp::ServerId, double v) {
          return v * noise.uniform(0.25, 4.0);
        };
      } else if (s.factor != 1.0) {
        const double f = s.factor;
        cfg.strategy = [f](drp::ServerId, double v) { return v * f; };
      }
      const auto result = core::run_agt_ram(problem, cfg);
      const double cost = drp::CostModel::total_cost(result.placement);
      table.add_row({s.name, core::to_string(s.rule),
                     common::Table::pct((initial - cost) / initial),
                     common::Table::num(result.total_payments(), 0)});
    }
    table.print(std::cout);
  }
  return 0;
}
