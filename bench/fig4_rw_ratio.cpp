// Figure 4 reproduction: OTC savings versus read/write ratio.
//
// Paper setup: M = 3718, N = 25000, C = 45%, R/W swept upwards to 0.95.
// Observations to reproduce: savings rise with the read share (the update
// ratio caps the attainable traffic reduction), AGT-RAM/Greedy peaking
// near the read-share bound (~88% in the paper), GRA gaining least.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace agtram;

  common::Cli cli("Figure 4: OTC savings vs. read/write ratio "
                  "[M=3718; N=25,000; C=45% in the paper]");
  bench::add_common_flags(cli);
  cli.add_flag("capacity", "45", "paper C%% (paper: 45)");
  cli.add_flag("ratios", "0.30,0.40,0.50,0.60,0.70,0.80,0.90,0.95",
               "R/W sweep points (read fraction)");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const bench::Dims dims = bench::resolve_dims(cli);
  const double capacity = cli.get_double("capacity");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto ratios = cli.get_double_list("ratios");
  const auto algorithms = baselines::all_algorithms();

  std::vector<std::string> headers{"R/W"};
  for (const auto& a : algorithms) headers.push_back(a.name);
  headers.push_back("read-share bound");
  common::Table table(std::move(headers));
  table.set_title("Figure 4: OTC savings (%) vs. R/W ratio  [M=" +
                  std::to_string(dims.servers) + ", N=" +
                  std::to_string(dims.objects) + ", C=" +
                  common::Table::num(capacity, 0) + "%]");

  const std::int64_t trials = std::max<std::int64_t>(1, cli.get_int("trials"));
  for (const double rw : ratios) {
    const drp::Problem problem = bench::build_instance(dims, capacity, rw, seed);
    const double initial = drp::CostModel::initial_cost(problem);

    // Upper bound on savings: the fraction of the initial OTC that is read
    // traffic (write shipping to the primary is irreducible).
    const drp::ReplicaPlacement primaries_only(problem);
    double read_cost = 0.0;
    for (drp::ObjectIndex k = 0; k < problem.object_count(); ++k) {
      const double o = static_cast<double>(problem.object_units[k]);
      for (const auto& a : problem.access.accessors(k)) {
        if (a.server == problem.primary[k]) continue;
        read_cost += static_cast<double>(a.reads) * o *
                     static_cast<double>(primaries_only.nn_distance(a.server, k));
      }
    }

    std::vector<std::string> row{common::Table::num(rw, 2)};
    for (const auto& algorithm : algorithms) {
      const auto outcome = bench::run_trials(
          algorithm,
          [&](std::uint64_t s) {
            return bench::build_instance(dims, capacity, rw, s);
          },
          seed, trials);
      row.push_back(common::Table::pct(outcome.savings));
    }
    row.push_back(common::Table::pct(read_cost / initial));
    table.add_row(std::move(row));
    std::cerr << "  R/W=" << rw << " done\n";
  }
  bench::emit(cli, table);
  return 0;
}
