// Figure 3 reproduction: OTC savings versus server capacity.
//
// Paper setup: M = 3718, N = 25000, R/W = 0.95, capacity swept
// 10%..40%; all six methods plotted.  The paper's observations to
// reproduce: a steep initial rise in savings followed by a plateau ("the
// most beneficial objects are already replicated"), GRA trailing the
// field, AGT-RAM/Greedy leading, and a capacity increase from 10% to 18%
// multiplying the replica count severalfold.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace agtram;

  common::Cli cli("Figure 3: OTC savings vs. server capacity "
                  "[M=3718; N=25,000; R/W=0.95 in the paper]");
  bench::add_common_flags(cli);
  cli.add_flag("rw", "0.95", "read fraction (paper: 0.95)");
  cli.add_flag("capacities", "10,15,20,25,30,35,40",
               "paper C%% sweep points");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const bench::Dims dims = bench::resolve_dims(cli);
  const double rw = cli.get_double("rw");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto capacities = cli.get_double_list("capacities");
  const auto algorithms = baselines::all_algorithms();

  std::vector<std::string> headers{"C%"};
  for (const auto& a : algorithms) headers.push_back(a.name);
  headers.push_back("AGT-RAM replicas");
  common::Table table(std::move(headers));
  table.set_title("Figure 3: OTC savings (%) vs. increase in server capacity"
                  "  [M=" + std::to_string(dims.servers) +
                  ", N=" + std::to_string(dims.objects) +
                  ", R/W=" + common::Table::num(rw, 2) + "]");

  const std::int64_t trials = std::max<std::int64_t>(1, cli.get_int("trials"));
  for (const double c : capacities) {
    std::vector<std::string> row{common::Table::num(c, 0) + "%"};
    std::size_t agtram_replicas = 0;
    for (const auto& algorithm : algorithms) {
      const auto outcome = bench::run_trials(
          algorithm,
          [&](std::uint64_t s) { return bench::build_instance(dims, c, rw, s); },
          seed, trials);
      row.push_back(common::Table::pct(outcome.savings));
      if (algorithm.name == "AGT-RAM") agtram_replicas = outcome.replicas;
    }
    row.push_back(std::to_string(agtram_replicas));
    table.add_row(std::move(row));
    std::cerr << "  C=" << c << "% done\n";
  }
  bench::emit(cli, table);

  std::cout << "\npaper cross-check: capacity 10% -> 18% should multiply the"
               " replica count severalfold (paper reports ~4x on average).\n";
  const drp::Problem at10 = bench::build_instance(dims, 10.0, rw, seed);
  const drp::Problem at18 = bench::build_instance(dims, 18.0, rw, seed);
  const auto agtram = baselines::find_algorithm("AGT-RAM");
  const auto r10 = bench::run_algorithm(
      agtram, at10, drp::CostModel::initial_cost(at10), seed);
  const auto r18 = bench::run_algorithm(
      agtram, at18, drp::CostModel::initial_cost(at18), seed);
  std::cout << "measured: " << r10.replicas << " -> " << r18.replicas
            << " replicas (" << common::Table::num(
                   static_cast<double>(r18.replicas) /
                       static_cast<double>(std::max<std::size_t>(1, r10.replicas)),
                   2)
            << "x)\n";
  return 0;
}
