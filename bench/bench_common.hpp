// Shared support for the figure/table reproduction harness.
//
// Scale calibration (see DESIGN.md "Substitutions" and EXPERIMENTS.md):
//
//  * Dimensions.  The paper runs M = 3718 servers x N = 25000 objects; the
//    default bench scale divides both by ~10-15 so the full suite finishes
//    in minutes on a laptop.  Every binary takes --servers/--objects (and
//    --scale paper to restore the full size).
//
//  * Capacity axis.  The paper's C% is relative to its trace's per-server
//    demand density; in our synthetic instances the capacity constraint
//    stops binding at a much smaller fraction of the total object bytes
//    (each server's profitable set is ~1-2% of the catalogue).  The bench
//    therefore maps the paper's C% axis linearly onto the binding region:
//    capacity_fraction = C% * kCapacityPerPercent, which reproduces the
//    figure shapes (steep rise, then plateau) over the same 10%..45% axis.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "baselines/registry.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/agt_ram.hpp"
#include "drp/builder.hpp"
#include "drp/cost_model.hpp"

namespace agtram::bench {

/// Default sink for machine-readable mechanism results; successive PRs
/// append their runs' numbers here (manually, by re-running the bench) to
/// build a perf trajectory without parsing pretty-printed tables.
inline constexpr const char* kMechanismJsonPath = "BENCH_mechanism.json";

/// Minimal JSON emitter for bench results: a flat array of records under a
/// top-level object.  No external dependency, string values escaped, numbers
/// rendered with %.9g (doubles survive a round-trip at bench precision).
class JsonWriter {
 public:
  class Record {
   public:
    Record& field(const std::string& key, const std::string& value) {
      append_key(key);
      body_ += '"';
      body_ += escape(value);
      body_ += '"';
      return *this;
    }
    Record& field(const std::string& key, const char* value) {
      return field(key, std::string(value));
    }
    Record& field(const std::string& key, double value) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.9g", value);
      append_key(key);
      body_ += buf;
      return *this;
    }
    Record& field(const std::string& key, std::uint64_t value) {
      append_key(key);
      body_ += std::to_string(value);
      return *this;
    }
    Record& field(const std::string& key, bool value) {
      append_key(key);
      body_ += value ? "true" : "false";
      return *this;
    }
    /// Nests another record as an object value (e.g. the `obs` block a row
    /// carries when the binary was built with -DAGTRAM_OBS=ON).
    Record& object_field(const std::string& key, const Record& nested) {
      append_key(key);
      body_ += nested.body_.empty() ? "{" : nested.body_;
      body_ += '}';
      return *this;
    }
    /// The record as one standalone JSON object (used by the --obs-trace
    /// JSONL writer, which emits records outside a JsonWriter array).
    std::string json() const {
      return body_.empty() ? std::string("{}") : body_ + "}";
    }

   private:
    friend class JsonWriter;
    static std::string escape(const std::string& raw) {
      std::string out;
      out.reserve(raw.size());
      for (const char c : raw) {
        if (c == '"' || c == '\\') out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control
        out += c;
      }
      return out;
    }
    void append_key(const std::string& key) {
      body_ += body_.empty() ? "{" : ", ";
      body_ += '"';
      body_ += escape(key);
      body_ += "\": ";
    }
    std::string body_;
  };

  void add(Record record) { records_.push_back(std::move(record)); }
  std::size_t size() const noexcept { return records_.size(); }

  /// Writes {"source": ..., "results": [...]} to `path`; returns success.
  bool write_file(const std::string& path, const std::string& source) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "{\n  \"source\": \"" << Record::escape(source)
        << "\",\n  \"results\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const std::string& body = records_[i].body_;
      out << "    " << (body.empty() ? "{" : body.c_str()) << "}"
          << (i + 1 < records_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    return static_cast<bool>(out);
  }

 private:
  std::vector<Record> records_;
};

inline const char* report_mode_name(core::ReportMode mode) {
  switch (mode) {
    case core::ReportMode::Naive: return "naive";
    case core::ReportMode::Incremental: return "incremental";
    case core::ReportMode::Auto: return "auto";
  }
  return "?";
}

inline constexpr double kCapacityPerPercent = 0.0005;

/// Paper C% (e.g. 25.0) -> builder capacity fraction.
inline double capacity_fraction(double paper_percent) {
  return paper_percent * kCapacityPerPercent;
}

/// Registers the flags every reproduction binary shares.
inline void add_common_flags(common::Cli& cli) {
  cli.add_flag("servers", "160", "number of servers M (paper: 3718)");
  cli.add_flag("objects", "1600", "number of objects N (paper: 25000)");
  cli.add_flag("scale", "default",
               "'default' uses --servers/--objects; 'paper' restores the "
               "full M=3718, N=25000 (slow!)");
  cli.add_flag("seed", "2007", "experiment seed");
  cli.add_flag("trials", "1",
               "instances per cell (results averaged over seeds)");
  cli.add_flag("csv", "", "also write results as CSV to this file path");
}

/// Flag shared by the binaries that sweep the baseline registry: which
/// evaluation path the baselines use.  Both paths produce bit-identical
/// placements (enforced by tests/baselines_delta_test.cpp and the
/// micro_core baseline family); 'naive' exists to re-measure the oracle.
inline void add_baseline_eval_flag(common::Cli& cli) {
  cli.add_flag("baseline-eval", "delta",
               "baseline evaluation path: 'delta' (incremental engine) or "
               "'naive' (full-recompute oracle; identical results)");
  cli.add_flag("parallel-scans", "1",
               "enable pool-parallel candidate scans in the delta paths");
}

inline baselines::AlgoOptions resolve_algo_options(const common::Cli& cli) {
  baselines::AlgoOptions options;
  options.eval = cli.get("baseline-eval") == "naive"
                     ? baselines::EvalPath::Naive
                     : baselines::EvalPath::Delta;
  options.parallel_scans = cli.get_int("parallel-scans") != 0;
  return options;
}

struct Dims {
  std::uint32_t servers;
  std::uint32_t objects;
};

inline Dims resolve_dims(const common::Cli& cli) {
  if (cli.get("scale") == "paper") return Dims{3718, 25000};
  return Dims{static_cast<std::uint32_t>(cli.get_int("servers")),
              static_cast<std::uint32_t>(cli.get_int("objects"))};
}

/// Builds the experiment instance for a (C%, R/W) cell.
///
/// Topology choice mirrors the paper: GT-ITM-style flat random graphs at
/// bench scale, but the Inet-style power-law family once M reaches
/// AS-level size (the paper itself sizes M = 3718 with Inet; a dense
/// G(M, 0.5) of that order would also make the metric closure needlessly
/// expensive).
inline drp::Problem build_instance(Dims dims, double paper_capacity_percent,
                                   double rw, std::uint64_t seed) {
  drp::InstanceSpec spec;
  spec.servers = dims.servers;
  spec.objects = dims.objects;
  spec.seed = seed;
  if (dims.servers > 1000) spec.topology = net::TopologyKind::PowerLaw;
  spec.instance.capacity_fraction = capacity_fraction(paper_capacity_percent);
  spec.instance.rw_ratio = rw;
  return drp::make_instance(spec);
}

struct RunOutcome {
  double savings;       ///< OTC saved vs. primaries-only, fraction
  double seconds;       ///< wall time of the placement algorithm
  std::size_t replicas; ///< replicas placed beyond the primaries
};

inline RunOutcome run_algorithm(const baselines::AlgorithmEntry& algorithm,
                                const drp::Problem& problem,
                                double initial_cost, std::uint64_t seed) {
  common::Timer timer;
  const drp::ReplicaPlacement placement = algorithm.run(problem, seed);
  const double seconds = timer.seconds();
  const double cost = drp::CostModel::total_cost(placement);
  return RunOutcome{(initial_cost - cost) / initial_cost, seconds,
                    placement.extra_replica_count()};
}

/// Mean savings of `algorithm` over `trials` instances built by `make`.
/// `make(seed)` must return a fresh Problem per trial seed.
template <typename MakeInstance>
RunOutcome run_trials(const baselines::AlgorithmEntry& algorithm,
                      const MakeInstance& make, std::uint64_t base_seed,
                      std::int64_t trials) {
  RunOutcome mean{0.0, 0.0, 0};
  for (std::int64_t t = 0; t < trials; ++t) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(t);
    const drp::Problem problem = make(seed);
    const double initial = drp::CostModel::initial_cost(problem);
    const RunOutcome outcome = run_algorithm(algorithm, problem, initial, seed);
    mean.savings += outcome.savings / static_cast<double>(trials);
    mean.seconds += outcome.seconds / static_cast<double>(trials);
    mean.replicas += outcome.replicas / static_cast<std::size_t>(trials);
  }
  return mean;
}

/// Prints the table and honours --csv.
inline void emit(const common::Cli& cli, const common::Table& table) {
  table.print(std::cout);
  const std::string csv_path = cli.get("csv");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    table.write_csv(out);
    std::cout << "csv written to " << csv_path << "\n";
  }
}

}  // namespace agtram::bench
