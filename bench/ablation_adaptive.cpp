// Adaptive replication ablation: "AGT-RAM is a protocol for automatic
// replication and migration of objects in response to demand changes"
// (paper abstract / Section 7).
//
// Episodes of drifting demand compare three policies:
//   * stale   — keep yesterday's placement (what the paper's protocol fixes);
//   * adapt   — the evict/re-allocate migration protocol (core/adaptive);
//   * rebuild — tear everything down and replan from scratch (the quality
//               ceiling, at maximal storage churn).
#include <deque>
#include <iostream>

#include "bench_common.hpp"
#include "core/adaptive.hpp"
#include "core/agt_ram.hpp"
#include "drp/perturb.hpp"
#include "sim/replay.hpp"

int main(int argc, char** argv) {
  using namespace agtram;

  common::Cli cli("Adaptive migration ablation over demand-drift episodes");
  bench::add_common_flags(cli);
  cli.add_flag("capacity", "30", "paper C%%");
  cli.add_flag("rw", "0.90", "read fraction");
  cli.add_flag("episodes", "6", "number of drift episodes");
  cli.add_flag("drift", "0.25", "per-episode hotspot shift fraction");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const bench::Dims dims = bench::resolve_dims(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto episodes = static_cast<std::size_t>(cli.get_int("episodes"));
  const double drift = cli.get_double("drift");

  // Each episode's Problem must outlive the placements built on it; deque
  // push_back keeps references stable.
  std::deque<drp::Problem> timeline;
  timeline.push_back(bench::build_instance(
      dims, cli.get_double("capacity"), cli.get_double("rw"), seed));

  // Day 0: plan on the initial demand.
  auto current = core::run_agt_ram(timeline.back()).placement;
  auto stale = current;  // frozen copy, never adapted after day 0

  common::Table table({"episode", "demand moved", "stale savings",
                       "adapted savings", "rebuilt savings",
                       "migration churn (units)", "rebuild churn (units)"});
  table.set_title("savings under drifting demand [M=" +
                  std::to_string(dims.servers) + ", N=" +
                  std::to_string(dims.objects) + ", drift=" +
                  common::Table::num(drift, 2) + "/episode]");

  for (std::size_t e = 1; e <= episodes; ++e) {
    drp::PerturbConfig shift;
    shift.shift_fraction = drift;
    shift.churn_fraction = drift / 2.0;
    shift.seed = seed + e;
    const drp::Problem& previous = timeline.back();
    timeline.push_back(drp::perturb_demand(previous, shift));
    const drp::Problem& next = timeline.back();
    const double moved = drp::demand_shift_magnitude(previous, next);

    const double initial = drp::CostModel::initial_cost(next);

    // stale: carry the frozen day-0 placement onto the new demand.
    drp::ReplicaPlacement stale_on_next(next);
    for (drp::ObjectIndex k = 0; k < next.object_count(); ++k) {
      for (const drp::ServerId i : stale.replicators(k)) {
        if (i != next.primary[k] && stale_on_next.can_replicate(i, k)) {
          stale_on_next.add_replica(i, k);
        }
      }
    }
    const double stale_savings =
        (initial - drp::CostModel::total_cost(stale_on_next)) / initial;

    // adapt: migrate the current placement.
    const auto migration = core::adapt_placement(next, current);
    const double adapted_savings =
        (initial - drp::CostModel::total_cost(migration.placement)) / initial;

    // rebuild: replan from scratch.
    const auto rebuilt = core::run_agt_ram(next);
    const double rebuilt_savings =
        (initial - drp::CostModel::total_cost(rebuilt.placement)) / initial;
    std::uint64_t rebuild_churn = 0;  // every replica torn down + re-placed
    for (drp::ObjectIndex k = 0; k < next.object_count(); ++k) {
      for (const drp::ServerId i : current.replicators(k)) {
        if (i != next.primary[k]) rebuild_churn += next.object_units[k];
      }
      for (const drp::ServerId i : rebuilt.placement.replicators(k)) {
        if (i != next.primary[k]) rebuild_churn += next.object_units[k];
      }
    }

    table.add_row({std::to_string(e), common::Table::pct(moved),
                   common::Table::pct(stale_savings),
                   common::Table::pct(adapted_savings),
                   common::Table::pct(rebuilt_savings),
                   std::to_string(migration.units_evicted +
                                  migration.units_added),
                   std::to_string(rebuild_churn)});

    current = migration.placement;
    std::cerr << "  episode " << e << " done\n";
  }
  bench::emit(cli, table);
  return 0;
}
