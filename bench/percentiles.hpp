// Shared percentile machinery for the bench harness (DESIGN.md §13).
//
// Two sample shapes cover every latency surface the benches report:
//
//  * Dense integer histograms — the serving engine's read-cost histogram is
//    indexed by metric-closure path cost (bounded by the network diameter),
//    so request-weighted percentiles are *exact*, not sampled: walk the
//    cumulative counts.  sim::replay's per-read latency distribution has
//    the same shape.
//
//  * Raw sample vectors — wall-clock placement-query timings are sampled
//    every Nth request; classic sort-and-index percentiles.
//
// Both use the same rank convention as sim::replay's weighted_percentile
// (target rank = q/100 * (count - 1), first value whose cumulative weight
// exceeds it), so serving rows and latency_profile rows are comparable.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace agtram::bench {

struct PercentileSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Exact request-weighted percentiles of a dense histogram: hist[v] = how
/// many requests observed integer value v.
inline PercentileSummary summarize_histogram(
    std::span<const std::uint64_t> hist) {
  PercentileSummary out;
  double weighted = 0.0;
  for (std::size_t v = 0; v < hist.size(); ++v) {
    out.count += hist[v];
    weighted += static_cast<double>(hist[v]) * static_cast<double>(v);
    if (hist[v] != 0) out.max = static_cast<double>(v);
  }
  if (out.count == 0) return out;
  out.mean = weighted / static_cast<double>(out.count);
  const auto at = [&hist, &out](double q) {
    const auto target = static_cast<std::uint64_t>(
        q / 100.0 * static_cast<double>(out.count - 1));
    std::uint64_t seen = 0;
    for (std::size_t v = 0; v < hist.size(); ++v) {
      seen += hist[v];
      if (seen > target) return static_cast<double>(v);
    }
    return out.max;
  };
  out.p50 = at(50.0);
  out.p90 = at(90.0);
  out.p99 = at(99.0);
  return out;
}

/// Percentiles of raw samples (sorts in place).
inline PercentileSummary summarize_samples(std::vector<std::uint64_t>& s) {
  PercentileSummary out;
  out.count = s.size();
  if (s.empty()) return out;
  std::sort(s.begin(), s.end());
  double sum = 0.0;
  for (const std::uint64_t v : s) sum += static_cast<double>(v);
  out.mean = sum / static_cast<double>(s.size());
  const auto at = [&s](double q) {
    const auto rank = static_cast<std::size_t>(
        q / 100.0 * static_cast<double>(s.size() - 1));
    return static_cast<double>(s[rank]);
  };
  out.p50 = at(50.0);
  out.p90 = at(90.0);
  out.p99 = at(99.0);
  out.max = static_cast<double>(s.back());
  return out;
}

}  // namespace agtram::bench
