// Update-ratio robustness (paper Section 5 prose): "Further experiments
// with various update ratios (5%, 10%, and 20%) showed similar plot
// trends."  U% is the share of all accesses that are updates, i.e.
// R/W = 1 - U.  This bench re-runs the Figure-3 capacity sweep at each U%
// and reports AGT-RAM and Greedy savings so the trend claim can be checked
// directly, plus the write-popularity ablation (what happens when updates
// concentrate on the hot set instead of spreading uniformly).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace agtram;

  common::Cli cli("Update-ratio ablation: capacity sweep at U% in {5,10,20}");
  bench::add_common_flags(cli);
  cli.add_flag("capacities", "10,20,30,40", "paper C%% sweep points");
  cli.add_flag("updates", "5,10,20", "U%% update-load points");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const bench::Dims dims = bench::resolve_dims(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto capacities = cli.get_double_list("capacities");
  const auto updates = cli.get_double_list("updates");
  const auto agtram = baselines::find_algorithm("AGT-RAM");
  const auto greedy = baselines::find_algorithm("Greedy");

  {
    std::vector<std::string> headers{"C%"};
    for (const double u : updates) {
      headers.push_back("AGT-RAM U=" + common::Table::num(u, 0) + "%");
      headers.push_back("Greedy U=" + common::Table::num(u, 0) + "%");
    }
    common::Table table(std::move(headers));
    table.set_title("OTC savings (%) vs. capacity at various update ratios");
    for (const double c : capacities) {
      std::vector<std::string> row{common::Table::num(c, 0) + "%"};
      for (const double u : updates) {
        const double rw = 1.0 - u / 100.0;
        const drp::Problem problem = bench::build_instance(dims, c, rw, seed);
        const double initial = drp::CostModel::initial_cost(problem);
        row.push_back(common::Table::pct(
            bench::run_algorithm(agtram, problem, initial, seed).savings));
        row.push_back(common::Table::pct(
            bench::run_algorithm(greedy, problem, initial, seed).savings));
      }
      table.add_row(std::move(row));
      std::cerr << "  C=" << c << "% done\n";
    }
    bench::emit(cli, table);
  }

  // Design-choice ablation (DESIGN.md): the builder spreads update volume
  // uniformly across objects by default; concentrating it on the read-hot
  // ranks (exponent -> the read Zipf exponent) collapses the profitable
  // set and with it the achievable savings.
  {
    common::Table table({"write popularity exponent", "AGT-RAM savings",
                         "replicas placed"});
    table.set_title("Ablation: update volume concentration vs. savings "
                    "[C=30%, U=10%]");
    for (const double e : {0.0, 0.4, 0.8, 1.1}) {
      drp::InstanceSpec spec;
      spec.servers = dims.servers;
      spec.objects = dims.objects;
      spec.seed = seed;
      spec.instance.capacity_fraction = bench::capacity_fraction(30.0);
      spec.instance.rw_ratio = 0.9;
      spec.instance.write_popularity_exponent = e;
      const drp::Problem problem = drp::make_instance(spec);
      const double initial = drp::CostModel::initial_cost(problem);
      const auto outcome =
          bench::run_algorithm(agtram, problem, initial, seed);
      table.add_row({common::Table::num(e, 1),
                     common::Table::pct(outcome.savings),
                     std::to_string(outcome.replicas)});
    }
    table.print(std::cout);
  }
  return 0;
}
