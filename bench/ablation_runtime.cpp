// Semi-distributed runtime accounting (paper Sections 1 and 7): "all the
// heavy processing is done on the servers ... the central body is only
// required to take a binary decision".  This bench quantifies that claim:
// protocol traffic split between centre and agents, simulated convergence
// time under the latency model, and the wall-clock effect of running the
// agents' PARFOR loops on the thread pool.
#include <iostream>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "core/agt_ram.hpp"
#include "runtime/distributed_mechanism.hpp"
#include "runtime/event_sim.hpp"

int main(int argc, char** argv) {
  using namespace agtram;

  common::Cli cli("Runtime ablation: semi-distributed traffic and parallel "
                  "agent evaluation");
  bench::add_common_flags(cli);
  cli.add_flag("capacity", "30", "paper C%%");
  cli.add_flag("rw", "0.90", "read fraction");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const bench::Dims dims = bench::resolve_dims(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const drp::Problem problem = bench::build_instance(
      dims, cli.get_double("capacity"), cli.get_double("rw"), seed);

  // --- Serial vs. parallel agent evaluation (identical allocations).
  common::Timer serial_timer;
  const auto serial = core::run_agt_ram(problem);
  const double serial_seconds = serial_timer.seconds();

  const auto distributed = runtime::run_distributed(problem);
  const auto& stats = distributed.messages;

  {
    common::Table table({"metric", "value"});
    table.set_title("Semi-distributed AGT-RAM run [M=" +
                    std::to_string(dims.servers) + ", N=" +
                    std::to_string(dims.objects) + "]");
    table.add_row({"rounds", std::to_string(stats.rounds)});
    table.add_row({"replicas placed",
                   std::to_string(distributed.result.replicas_placed())});
    table.add_row({"centre (medoid server)",
                   std::to_string(distributed.centre)});
    table.add_row({"agent->centre reports",
                   std::to_string(stats.report_messages)});
    table.add_row({"centre->winner allocations",
                   std::to_string(stats.allocation_messages)});
    table.add_row({"centre broadcasts (fan-out msgs)",
                   std::to_string(stats.broadcast_messages)});
    table.add_row({"total protocol bytes",
                   std::to_string(stats.total_bytes())});
    table.add_row({"bytes per placed replica",
                   common::Table::num(
                       static_cast<double>(stats.total_bytes()) /
                           static_cast<double>(std::max<std::size_t>(
                               1, distributed.result.replicas_placed())),
                       1)});
    table.add_row({"simulated protocol time (s)",
                   common::Table::num(stats.simulated_seconds, 3)});
    table.add_row({"serial wall time (s)",
                   common::Table::num(serial_seconds, 3)});
    table.add_row({"parallel-agents wall time (s)",
                   common::Table::num(distributed.wall_seconds, 3)});
    bench::emit(cli, table);
  }

  // --- The binary-decision claim: per round the centre compares scalars;
  // its decision payload is O(1) regardless of N.
  {
    common::Table table({"check", "result"});
    table.set_title("Scalability checks (the centre's work is O(M) scalars "
                    "per round, independent of N)");
    const double reports_per_round =
        static_cast<double>(stats.report_messages) /
        static_cast<double>(std::max<std::size_t>(1, stats.rounds));
    table.add_row({"mean reports per round (<= M)",
                   common::Table::num(reports_per_round, 1)});
    table.add_row({"report payload (bytes)", "16"});
    table.add_row({"decision payload (bytes)", "16"});
    const bool identical =
        serial.rounds.size() == distributed.result.rounds.size();
    table.add_row({"parallel == serial allocation",
                   identical ? "yes" : "NO (bug!)"});
    table.print(std::cout);
  }

  // --- Discrete-event protocol simulation: turn-around time of the wire
  // protocol (Figure 2) under clean, straggly, and lossy networks, flat vs
  // regional decision bodies.
  {
    common::Table table({"deployment", "network", "makespan (s)",
                         "rounds/epochs", "network share", "compute share",
                         "msgs", "retransmits"});
    table.set_title("protocol turn-around time (discrete-event simulation)");
    struct Scenario {
      const char* name;
      double straggler;
      double loss;
    };
    const Scenario scenarios[] = {
        {"clean", 0.0, 0.0}, {"stragglers x3", 3.0, 0.0},
        {"2% message loss", 0.0, 0.02}};
    for (const Scenario& s : scenarios) {
      runtime::ProtocolModel model;
      model.straggler_factor = s.straggler;
      model.loss_probability = s.loss;
      for (const std::uint32_t regions : {0u, 8u}) {
        const runtime::ProtocolTrace trace =
            regions == 0
                ? runtime::simulate_protocol(problem, model)
                : runtime::simulate_regional_protocol(problem, regions, model);
        table.add_row(
            {regions == 0 ? "flat (1 centre)" : "regional (8 centres)",
             s.name, common::Table::num(trace.makespan_seconds, 3),
             std::to_string(trace.rounds),
             common::Table::pct(trace.network_seconds /
                                trace.makespan_seconds),
             common::Table::pct(trace.compute_seconds /
                                trace.makespan_seconds),
             std::to_string(trace.messages_sent),
             std::to_string(trace.retransmissions)});
      }
      std::cerr << "  protocol scenario '" << s.name << "' done\n";
    }
    table.print(std::cout);
  }
  return 0;
}
