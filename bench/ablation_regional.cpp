// Regional/hierarchical mechanism ablation (paper Section 7 future work):
// sweeping the number of autonomous regions and injecting regional
// failures.  The claims to quantify:
//
//   * quality is preserved — the regional decomposition converges to the
//     same no-positive-candidate fixed point as the flat mechanism;
//   * coordination cost drops — R regions allocate concurrently, so epochs
//     shrink ~R-fold and each regional centre handles only its members;
//   * failures degrade gracefully — killing one regional decision body
//     stalls only that region's allocations.
#include <iostream>
#include <utility>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "core/agt_ram.hpp"
#include "core/economics.hpp"
#include "core/regional.hpp"

int main(int argc, char** argv) {
  using namespace agtram;

  common::Cli cli("Regional mechanism ablation: region sweep + failure "
                  "injection");
  bench::add_common_flags(cli);
  cli.add_flag("capacity", "30", "paper C%%");
  cli.add_flag("rw", "0.90", "read fraction");
  cli.add_flag("regions", "1,2,4,8,16", "region counts to sweep");
  cli.add_flag("json", "",
               "also write the region sweep as machine-readable "
               "ablation_regional_sweep rows (serial + sharded) to this path");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const bench::Dims dims = bench::resolve_dims(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const drp::Problem problem = bench::build_instance(
      dims, cli.get_double("capacity"), cli.get_double("rw"), seed);
  const double initial = drp::CostModel::initial_cost(problem);

  const auto flat = core::run_agt_ram(problem);
  const double flat_savings =
      (initial - drp::CostModel::total_cost(flat.placement)) / initial;

  bench::JsonWriter json;
  const std::string json_path = cli.get("json");

  {
    common::Table table({"regions", "savings", "epochs",
                         "largest region", "max replicas/region",
                         "clearing charges"});
    table.set_title(
        "region sweep (flat mechanism: " + common::Table::pct(flat_savings) +
        " savings in " + std::to_string(flat.rounds.size()) + " rounds)");
    for (const double r : cli.get_double_list("regions")) {
      // Both epoch-execution orders, timed; sharded is byte-identical to
      // serial, so the table reads off the serial run and the JSON carries
      // the serial/sharded pair for the trajectory.
      for (const auto execution : {core::RegionalExecution::Serial,
                                   core::RegionalExecution::Sharded}) {
        core::RegionalConfig cfg;
        cfg.regions = static_cast<std::uint32_t>(r);
        cfg.seed = seed;
        cfg.execution = execution;
        cfg.parallel_agents = execution == core::RegionalExecution::Sharded;
        common::Timer timer;
        const auto result = core::run_regional(problem, cfg);
        const double seconds = timer.seconds();
        const double savings =
            (initial - drp::CostModel::total_cost(result.placement)) /
            initial;
        std::uint32_t largest = 0;
        std::size_t max_replicas = 0;
        double charges = 0.0;
        std::uint64_t wire_bytes = 0;
        for (const auto& region : result.regions) {
          largest = std::max(largest, region.member_count);
          max_replicas = std::max(max_replicas, region.replicas_placed);
          charges += region.charges;
          wire_bytes += region.wire_bytes;
        }
        if (!json_path.empty()) {
          bench::JsonWriter::Record record;
          record.field("benchmark", "ablation_regional_sweep")
              .field("servers", static_cast<std::uint64_t>(dims.servers))
              .field("objects", static_cast<std::uint64_t>(dims.objects))
              .field("regions", static_cast<std::uint64_t>(cfg.regions))
              .field("execution",
                     execution == core::RegionalExecution::Sharded
                         ? "sharded"
                         : "serial")
              .field("seconds", seconds)
              .field("savings", savings)
              .field("epochs", static_cast<std::uint64_t>(result.epochs))
              .field("replicas",
                     static_cast<std::uint64_t>(result.replicas_placed()))
              .field("charges", charges)
              .field("wire_bytes", wire_bytes);
          json.add(std::move(record));
        }
        if (execution == core::RegionalExecution::Serial) {
          table.add_row({std::to_string(cfg.regions),
                         common::Table::pct(savings),
                         std::to_string(result.epochs),
                         std::to_string(largest),
                         std::to_string(max_replicas),
                         common::Table::num(charges, 0)});
        }
      }
      std::cerr << "  R=" << static_cast<std::uint32_t>(r) << " done\n";
    }
    bench::emit(cli, table);
  }

  // Two-level hierarchy: regional champions -> top centre.  Allocation-
  // equivalent to the flat mechanism; the win is the top centre's fan-in
  // (R scalars instead of M) and weakly cheaper clearing.
  {
    common::Table table({"mechanism", "savings", "top-centre reports/round",
                         "total charges"});
    table.set_title("two-level hierarchy vs flat centre");
    table.add_row({"flat",
                   common::Table::pct(flat_savings),
                   common::Table::num(
                       static_cast<double>(problem.server_count()), 0) + " max",
                   common::Table::num(
                       core::economics_report(flat).charges, 0)});
    for (const std::uint32_t regions : {4u, 16u}) {
      core::RegionalConfig cfg;
      cfg.regions = regions;
      cfg.seed = seed;
      const auto hier = core::run_hierarchical(problem, cfg);
      const double savings =
          (initial - drp::CostModel::total_cost(hier.placement)) / initial;
      table.add_row({"hierarchical R=" + std::to_string(regions),
                     common::Table::pct(savings),
                     common::Table::num(
                         static_cast<double>(hier.top_level_reports) /
                             static_cast<double>(
                                 std::max<std::size_t>(1, hier.rounds.size())),
                         1),
                     common::Table::num(hier.total_charges, 0)});
    }
    table.print(std::cout);
    std::cerr << "  hierarchy panel done\n";
  }

  // Cooperative vs non-cooperative play within regions (the hierarchical
  // games the paper's future work envisions).
  {
    common::Table table({"intra-region game", "regions", "savings",
                         "replicas", "epochs"});
    table.set_title("hierarchical games: coalition welfare vs private "
                    "valuations inside each region");
    for (const std::uint32_t regions : {2u, 4u, 8u}) {
      core::RegionalConfig cfg;
      cfg.regions = regions;
      cfg.seed = seed;
      const auto selfish = core::run_regional(problem, cfg);
      const auto cooperative = core::run_regional_cooperative(problem, cfg);
      table.add_row({"non-cooperative", std::to_string(regions),
                     common::Table::pct(
                         (initial -
                          drp::CostModel::total_cost(selfish.placement)) /
                         initial),
                     std::to_string(selfish.replicas_placed()),
                     std::to_string(selfish.epochs)});
      table.add_row({"cooperative", std::to_string(regions),
                     common::Table::pct(
                         (initial -
                          drp::CostModel::total_cost(cooperative.placement)) /
                         initial),
                     std::to_string(cooperative.replicas_placed()),
                     std::to_string(cooperative.epochs)});
      std::cerr << "  hierarchical R=" << regions << " done\n";
    }
    table.print(std::cout);
  }

  {
    common::Table table({"failure scenario", "savings", "replicas placed"});
    table.set_title("failure injection (4 regions): a dead regional centre "
                    "stalls only its own members");
    for (int failures = 0; failures <= 3; ++failures) {
      core::RegionalConfig cfg;
      cfg.regions = 4;
      cfg.seed = seed;
      for (int f = 0; f < failures; ++f) {
        cfg.failed_regions.push_back(static_cast<std::uint32_t>(f));
      }
      const auto result = core::run_regional(problem, cfg);
      const double savings =
          (initial - drp::CostModel::total_cost(result.placement)) / initial;
      table.add_row({std::to_string(failures) + " of 4 regions down",
                     common::Table::pct(savings),
                     std::to_string(result.replicas_placed())});
    }
    table.print(std::cout);
  }

  if (!json_path.empty()) {
    if (json.write_file(json_path, "ablation_regional")) {
      std::cerr << "sweep rows written to " << json_path << "\n";
    } else {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
  }
  return 0;
}
