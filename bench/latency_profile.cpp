// User-perceived access latency (paper Section 1 motivation: "Replicating
// data objects onto servers across a system can alleviate access delays").
//
// The request-replay simulator routes every read against each method's
// placement and reports the latency distribution (metric-closure hops per
// read), the locally-served fraction, and the traffic-class breakdown —
// the end-user view behind the OTC savings of Figures 3/4.
#include <iostream>

#include "bench_common.hpp"
#include "sim/replay.hpp"

int main(int argc, char** argv) {
  using namespace agtram;

  common::Cli cli("Read-latency profile of every placement method");
  bench::add_common_flags(cli);
  cli.add_flag("capacity", "30", "paper C%%");
  cli.add_flag("rw", "0.90", "read fraction");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const bench::Dims dims = bench::resolve_dims(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const drp::Problem problem = bench::build_instance(
      dims, cli.get_double("capacity"), cli.get_double("rw"), seed);

  common::Table table({"method", "mean", "p50", "p90", "p99", "local reads",
                       "load imbalance", "top-5% load share"});
  table.set_title("per-read latency (metric-closure cost units) and server "
                  "load balance [M=" + std::to_string(dims.servers) +
                  ", N=" + std::to_string(dims.objects) + "]");

  const auto add_row = [&table](const std::string& name,
                                const sim::ReplayStats& stats) {
    table.add_row({name,
                   common::Table::num(stats.read_latency.mean, 2),
                   common::Table::num(stats.read_latency.p50, 1),
                   common::Table::num(stats.read_latency.p90, 1),
                   common::Table::num(stats.read_latency.p99, 1),
                   common::Table::pct(stats.read_latency.local_fraction),
                   common::Table::num(stats.server_load.imbalance, 1) + "x",
                   common::Table::pct(stats.server_load.top5_share)});
  };

  // Baseline row: the primaries-only network.
  add_row("(primaries only)", sim::replay(drp::ReplicaPlacement(problem)));

  for (const auto& algorithm : baselines::all_algorithms()) {
    const auto placement = algorithm.run(problem, seed);
    add_row(algorithm.name, sim::replay(placement));
    std::cerr << "  " << algorithm.name << " done\n";
  }
  bench::emit(cli, table);
  std::cout << "\nload imbalance = hottest server's served reads over the "
               "mean; the paper's 'no hosts become overloaded' claim means "
               "replication should pull it far below the primaries-only "
               "concentration.\n";
  return 0;
}
