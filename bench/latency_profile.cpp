// User-perceived access latency (paper Section 1 motivation: "Replicating
// data objects onto servers across a system can alleviate access delays").
//
// The request-replay simulator routes every read against each method's
// placement and reports the latency distribution (metric-closure hops per
// read), the locally-served fraction, and the traffic-class breakdown —
// the end-user view behind the OTC savings of Figures 3/4.
//
// Percentiles come from the exact dense read-latency histogram (path costs
// are bounded by the network diameter) through the shared
// bench/percentiles.hpp machinery — the same summaries the serving-layer
// rows report, so the two benches are directly comparable.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "percentiles.hpp"
#include "sim/replay.hpp"

namespace {

using namespace agtram;

/// Exact request-weighted read-latency histogram of a placement:
/// hist[path cost] = routed reads served at that distance.
std::vector<std::uint64_t> read_latency_histogram(
    const drp::ReplicaPlacement& placement) {
  const drp::Problem& p = placement.problem();
  std::vector<std::uint64_t> hist(
      static_cast<std::size_t>(p.distances->diameter()) + 1, 0);
  for (drp::ObjectIndex k = 0; k < p.object_count(); ++k) {
    const auto row = p.access.accessors(k);
    const auto dist = placement.nn_row(k);
    for (std::size_t slot = 0; slot < row.size(); ++slot) {
      if (row[slot].reads > 0) hist[dist[slot]] += row[slot].reads;
    }
  }
  return hist;
}

}  // namespace

int main(int argc, char** argv) {
  common::Cli cli("Read-latency profile of every placement method");
  bench::add_common_flags(cli);
  cli.add_flag("capacity", "30", "paper C%%");
  cli.add_flag("rw", "0.90", "read fraction");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const bench::Dims dims = bench::resolve_dims(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const drp::Problem problem = bench::build_instance(
      dims, cli.get_double("capacity"), cli.get_double("rw"), seed);

  common::Table table({"method", "mean", "p50", "p90", "p99", "local reads",
                       "load imbalance", "top-5% load share"});
  table.set_title("per-read latency (metric-closure cost units) and server "
                  "load balance [M=" + std::to_string(dims.servers) +
                  ", N=" + std::to_string(dims.objects) + "]");

  const auto add_row = [&table](const std::string& name,
                                const drp::ReplicaPlacement& placement) {
    const std::vector<std::uint64_t> hist = read_latency_histogram(placement);
    const bench::PercentileSummary latency =
        bench::summarize_histogram(hist);
    const sim::ReplayStats stats = sim::replay(placement);
    table.add_row({name,
                   common::Table::num(latency.mean, 2),
                   common::Table::num(latency.p50, 1),
                   common::Table::num(latency.p90, 1),
                   common::Table::num(latency.p99, 1),
                   common::Table::pct(stats.read_latency.local_fraction),
                   common::Table::num(stats.server_load.imbalance, 1) + "x",
                   common::Table::pct(stats.server_load.top5_share)});
  };

  // Baseline row: the primaries-only network.
  add_row("(primaries only)", drp::ReplicaPlacement(problem));

  for (const auto& algorithm : baselines::all_algorithms()) {
    const auto placement = algorithm.run(problem, seed);
    add_row(algorithm.name, placement);
    std::cerr << "  " << algorithm.name << " done\n";
  }
  bench::emit(cli, table);
  std::cout << "\nload imbalance = hottest server's served reads over the "
               "mean; the paper's 'no hosts become overloaded' claim means "
               "replication should pull it far below the primaries-only "
               "concentration.\n";
  return 0;
}
