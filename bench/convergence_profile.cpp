// Convergence dynamics: AGT-RAM is an anytime mechanism — every round ends
// with a feasible scheme, so a deployment can stop (or be interrupted) at
// any point.  This bench profiles OTC savings as a function of the round
// budget, quantifying the "solutions converge in a fast turn-around time"
// claim: the value-ordered allocation (highest valuations first) should
// capture most of the final savings in a small fraction of the rounds.
#include <iostream>

#include "bench_common.hpp"
#include "core/agt_ram.hpp"
#include "core/regional.hpp"

int main(int argc, char** argv) {
  using namespace agtram;

  common::Cli cli("anytime convergence profile of the mechanism");
  bench::add_common_flags(cli);
  cli.add_flag("capacity", "30", "paper C%%");
  cli.add_flag("rw", "0.90", "read fraction");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const bench::Dims dims = bench::resolve_dims(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const drp::Problem problem = bench::build_instance(
      dims, cli.get_double("capacity"), cli.get_double("rw"), seed);
  const double initial = drp::CostModel::initial_cost(problem);

  // Full run to learn the total round count and final savings.
  const auto full = core::run_agt_ram(problem);
  const double final_cost = drp::CostModel::total_cost(full.placement);
  const double final_savings = (initial - final_cost) / initial;
  const std::size_t total_rounds = full.rounds.size();

  common::Table table({"round budget", "% of rounds", "savings",
                       "% of final savings"});
  table.set_title("anytime profile: savings vs. round budget  [" +
                  std::to_string(total_rounds) + " rounds to quiescence, " +
                  common::Table::pct(final_savings) + " final]");

  // Replay the recorded allocation prefix — identical to running the
  // mechanism with max_rounds = budget, at a fraction of the cost.
  for (const double fraction : {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}) {
    const auto budget = static_cast<std::size_t>(
        fraction * static_cast<double>(total_rounds));
    drp::ReplicaPlacement partial(problem);
    for (std::size_t r = 0; r < budget; ++r) {
      partial.add_replica(full.rounds[r].winner, full.rounds[r].object);
    }
    const double cost = drp::CostModel::total_cost(partial);
    const double savings = (initial - cost) / initial;
    table.add_row({std::to_string(budget),
                   common::Table::pct(fraction),
                   common::Table::pct(savings),
                   common::Table::pct(final_savings > 0.0
                                          ? savings / final_savings
                                          : 0.0)});
  }
  bench::emit(cli, table);

  // The regional deployment reaches the same fixed point in far fewer
  // epochs; show its head start as well.
  core::RegionalConfig rc;
  rc.regions = 8;
  rc.seed = seed;
  rc.max_epochs = std::max<std::size_t>(1, total_rounds / 50);
  const auto regional = core::run_regional(problem, rc);
  const double regional_savings =
      (initial - drp::CostModel::total_cost(regional.placement)) / initial;
  std::cout << "\nregional (8 regions) after " << regional.epochs
            << " epochs (" << regional.replicas_placed() << " replicas): "
            << common::Table::pct(regional_savings) << " savings\n";
  return 0;
}
