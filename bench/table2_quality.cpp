// Table 2 reproduction: average OTC savings under ten randomly chosen
// problem instances.
//
// The ten (M, N, C%, R/W) combinations are exactly the paper's rows, with
// M and N scaled by ~10 at the default bench scale.  Observation to
// reproduce: AGT-RAM leads or ties the field on most rows, with Greedy and
// Ae-Star competitive and EA/GRA trailing; the final column reports the
// improvement AGT-RAM brings over the weakest method (the paper reports
// the improvement over the row).
#include <algorithm>
#include <iostream>

#include "baselines/tree_placement.hpp"
#include "bench_common.hpp"
#include "core/agt_ram.hpp"
#include "core/regional.hpp"

namespace {

struct PaperRow {
  std::uint32_t m;      // paper M
  std::uint32_t n;      // paper N
  double capacity;      // paper C%
  double rw;            // paper R/W
};

// The ten rows of Table 2, verbatim from the paper.
constexpr PaperRow kRows[] = {
    {100, 1000, 20, 0.75},  {200, 2000, 20, 0.80},  {500, 3000, 25, 0.95},
    {1000, 5000, 35, 0.95}, {1500, 10000, 25, 0.75}, {2000, 15000, 30, 0.65},
    {2500, 15000, 25, 0.85}, {3000, 20000, 25, 0.65}, {3500, 25000, 35, 0.50},
    {3718, 25000, 10, 0.40},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace agtram;

  common::Cli cli("Table 2: average OTC savings (%) under the paper's ten "
                  "randomly chosen problem instances");
  bench::add_common_flags(cli);
  cli.add_flag("divisor", "10",
               "scale the paper's M and N down by this factor "
               "(1 = paper scale, slow)");
  cli.add_flag("regional", "0",
               "compare the flat mechanism against the regional / "
               "cooperative / hierarchical variants instead of the "
               "baseline field");
  cli.add_flag("regions", "8", "region count for --regional 1");
  cli.add_flag("tree", "0",
               "rerun the paper rows on TopologyKind::Tree instances and "
               "compare AGT-RAM against the Benoit-Rehn-Robert greedy and "
               "exact tree strategies");
  cli.add_flag("tree-shape", "random",
               "tree shape for --tree 1: random | balanced | caterpillar");
  bench::add_baseline_eval_flag(cli);
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  double divisor = cli.get_double("divisor");
  if (cli.get("scale") == "paper") divisor = 1.0;
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // --regional 1: per paper row, quality loss of the concurrent-regions
  // variants relative to the flat mechanism — the cost of decomposing the
  // single global auction into R regional ones.
  if (cli.get_bool("regional")) {
    const auto regions_flag =
        static_cast<std::uint32_t>(cli.get_int("regions"));
    common::Table table({"problem size", "flat", "regional", "cooperative",
                         "hierarchical", "worst quality loss"});
    table.set_title(
        "regional quality vs the flat mechanism (paper rows, M and N "
        "divided by " +
        common::Table::num(divisor, 0) + ", R=" +
        std::to_string(regions_flag) + ")");
    std::uint64_t row_seed = seed;
    for (const PaperRow& paper : kRows) {
      const bench::Dims dims{
          std::max<std::uint32_t>(
              16, static_cast<std::uint32_t>(paper.m / divisor)),
          std::max<std::uint32_t>(
              64, static_cast<std::uint32_t>(paper.n / divisor))};
      const drp::Problem problem =
          bench::build_instance(dims, paper.capacity, paper.rw, ++row_seed);
      const double initial = drp::CostModel::initial_cost(problem);
      const auto savings_of = [&](const drp::ReplicaPlacement& placement) {
        return (initial - drp::CostModel::total_cost(placement)) / initial;
      };
      core::RegionalConfig cfg;
      cfg.regions = std::max<std::uint32_t>(
          1, std::min(regions_flag, dims.servers / 4));
      cfg.seed = row_seed;
      const double flat = savings_of(core::run_agt_ram(problem).placement);
      const double regional =
          savings_of(core::run_regional(problem, cfg).placement);
      const double cooperative =
          savings_of(core::run_regional_cooperative(problem, cfg).placement);
      const double hierarchical =
          savings_of(core::run_hierarchical(problem, cfg).placement);
      const double worst =
          flat - std::min({regional, cooperative, hierarchical});
      table.add_row({"M=" + std::to_string(dims.servers) + ", N=" +
                         std::to_string(dims.objects) + " [R=" +
                         std::to_string(cfg.regions) + "]",
                     common::Table::pct(flat), common::Table::pct(regional),
                     common::Table::pct(cooperative),
                     common::Table::pct(hierarchical),
                     common::Table::pct(worst)});
      std::cerr << "  row M=" << dims.servers << " N=" << dims.objects
                << " done\n";
    }
    bench::emit(cli, table);
    return 0;
  }

  // --tree 1: per paper row, the same (C%, R/W) cells on a tree topology,
  // with the Benoit–Rehn–Robert closest-ancestor strategies as the
  // optimality reference — exact is the per-object policy optimum, so the
  // exact-vs-greedy column measures how much the cheap greedy leaves on the
  // table, and the AGT-RAM column shows what lifting the ancestor
  // restriction buys.
  if (cli.get_bool("tree")) {
    const std::string shape_name = cli.get("tree-shape");
    net::TreeShape shape = net::TreeShape::Random;
    if (shape_name == "balanced") {
      shape = net::TreeShape::Balanced;
    } else if (shape_name == "caterpillar") {
      shape = net::TreeShape::Caterpillar;
    } else if (shape_name != "random") {
      std::cerr << "unknown --tree-shape: " << shape_name << "\n";
      return 1;
    }
    common::Table table({"problem size", "AGT-RAM", "tree greedy",
                         "tree exact", "exact vs greedy"});
    table.set_title("tree-topology quality: AGT-RAM vs the "
                    "Benoit-Rehn-Robert strategies (paper rows, M and N "
                    "divided by " +
                    common::Table::num(divisor, 0) + ", shape=" + shape_name +
                    ")");
    std::uint64_t row_seed = seed;
    for (const PaperRow& paper : kRows) {
      const bench::Dims dims{
          std::max<std::uint32_t>(
              16, static_cast<std::uint32_t>(paper.m / divisor)),
          std::max<std::uint32_t>(
              64, static_cast<std::uint32_t>(paper.n / divisor))};
      drp::InstanceSpec spec;
      spec.servers = dims.servers;
      spec.objects = dims.objects;
      spec.seed = ++row_seed;
      spec.topology = net::TopologyKind::Tree;
      spec.tree_shape = shape;
      spec.instance.capacity_fraction =
          bench::capacity_fraction(paper.capacity);
      spec.instance.rw_ratio = paper.rw;
      const drp::Problem problem = drp::make_instance(spec);
      const net::Graph tree = drp::make_topology(spec);
      const double initial = drp::CostModel::initial_cost(problem);

      const double agtram =
          (initial -
           drp::CostModel::total_cost(core::run_agt_ram(problem).placement)) /
          initial;
      const auto greedy =
          baselines::run_tree_placement(problem, tree, {.exact = false});
      const auto exact =
          baselines::run_tree_placement(problem, tree, {.exact = true});
      table.add_row({"M=" + std::to_string(dims.servers) + ", N=" +
                         std::to_string(dims.objects) + " [C=" +
                         common::Table::num(paper.capacity, 0) + "%, R/W=" +
                         common::Table::num(paper.rw, 2) + "]",
                     common::Table::pct(agtram),
                     common::Table::pct(1.0 - greedy.policy_cost / initial),
                     common::Table::pct(1.0 - exact.policy_cost / initial),
                     common::Table::pct((greedy.policy_cost -
                                         exact.policy_cost) /
                                        initial)});
      std::cerr << "  row M=" << dims.servers << " N=" << dims.objects
                << " done\n";
    }
    bench::emit(cli, table);
    return 0;
  }

  const auto algorithms =
      baselines::all_algorithms(bench::resolve_algo_options(cli));

  std::vector<std::string> headers{"problem size"};
  for (const auto& a : algorithms) headers.push_back(a.name);
  headers.push_back("AGT-RAM vs weakest");
  common::Table table(std::move(headers));
  table.set_title(
      "Table 2: average OTC (%) savings under randomly chosen problem "
      "instances (paper rows, M and N divided by " +
      common::Table::num(divisor, 0) + ")");

  std::uint64_t row_seed = seed;
  for (const PaperRow& paper : kRows) {
    const bench::Dims dims{
        std::max<std::uint32_t>(
            16, static_cast<std::uint32_t>(paper.m / divisor)),
        std::max<std::uint32_t>(
            64, static_cast<std::uint32_t>(paper.n / divisor))};
    const drp::Problem problem =
        bench::build_instance(dims, paper.capacity, paper.rw, ++row_seed);
    const double initial = drp::CostModel::initial_cost(problem);

    std::vector<std::string> row{
        "M=" + std::to_string(dims.servers) + ", N=" +
        std::to_string(dims.objects) + " [C=" +
        common::Table::num(paper.capacity, 0) + "%, R/W=" +
        common::Table::num(paper.rw, 2) + "]"};
    double agtram_savings = 0.0;
    double weakest = 1.0;
    for (const auto& algorithm : algorithms) {
      const auto outcome =
          bench::run_algorithm(algorithm, problem, initial, row_seed);
      row.push_back(common::Table::pct(outcome.savings));
      weakest = std::min(weakest, outcome.savings);
      if (algorithm.name == "AGT-RAM") agtram_savings = outcome.savings;
    }
    row.push_back(common::Table::pct(agtram_savings - weakest));
    table.add_row(std::move(row));
    std::cerr << "  row M=" << dims.servers << " N=" << dims.objects
              << " done\n";
  }
  bench::emit(cli, table);
  return 0;
}
