// Topology-robustness ablation (paper Section 5 setup): the paper draws
// GT-ITM random topologies with p in {0.4, 0.5, 0.6, 0.7, 0.8} and an
// Inet-style AS-level topology.  This bench sweeps both the edge
// probability of the flat random model and the generator family, showing
// that the algorithm ordering is topology-invariant (the claim implicit in
// the paper's "to establish diversity ... the network connectivity was
// changed considerably").
#include <iostream>

#include "bench_common.hpp"
#include "net/topology.hpp"

namespace {

agtram::drp::Problem instance_with_topology(const agtram::bench::Dims& dims,
                                            agtram::net::TopologyKind kind,
                                            double edge_probability,
                                            double capacity_percent, double rw,
                                            std::uint64_t seed) {
  agtram::drp::InstanceSpec spec;
  spec.servers = dims.servers;
  spec.objects = dims.objects;
  spec.topology = kind;
  spec.edge_probability = edge_probability;
  spec.seed = seed;
  spec.instance.capacity_fraction =
      agtram::bench::capacity_fraction(capacity_percent);
  spec.instance.rw_ratio = rw;
  return agtram::drp::make_instance(spec);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agtram;

  common::Cli cli("Topology ablation: GT-ITM p-sweep and generator families");
  bench::add_common_flags(cli);
  cli.add_flag("capacity", "30", "paper C%%");
  cli.add_flag("rw", "0.90", "read fraction");
  cli.add_flag("probabilities", "0.4,0.5,0.6,0.7,0.8",
               "edge probabilities for the GT-ITM pure-random model");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const bench::Dims dims = bench::resolve_dims(cli);
  const double capacity = cli.get_double("capacity");
  const double rw = cli.get_double("rw");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto algorithms = baselines::all_algorithms();

  {
    std::vector<std::string> headers{"p"};
    for (const auto& a : algorithms) headers.push_back(a.name);
    common::Table table(std::move(headers));
    table.set_title("OTC savings (%) on GT-ITM pure-random G(M, p)");
    for (const double p : cli.get_double_list("probabilities")) {
      const drp::Problem problem = instance_with_topology(
          dims, net::TopologyKind::FlatRandom, p, capacity, rw, seed);
      const double initial = drp::CostModel::initial_cost(problem);
      std::vector<std::string> row{common::Table::num(p, 1)};
      for (const auto& algorithm : algorithms) {
        row.push_back(common::Table::pct(
            bench::run_algorithm(algorithm, problem, initial, seed).savings));
      }
      table.add_row(std::move(row));
      std::cerr << "  p=" << p << " done\n";
    }
    bench::emit(cli, table);
  }

  {
    std::vector<std::string> headers{"topology"};
    for (const auto& a : algorithms) headers.push_back(a.name);
    common::Table table(std::move(headers));
    table.set_title("OTC savings (%) across generator families "
                    "(random = GT-ITM, power-law = Inet-style)");
    for (const auto kind :
         {net::TopologyKind::FlatRandom, net::TopologyKind::Waxman,
          net::TopologyKind::TransitStub, net::TopologyKind::PowerLaw}) {
      const drp::Problem problem =
          instance_with_topology(dims, kind, 0.5, capacity, rw, seed);
      const double initial = drp::CostModel::initial_cost(problem);
      std::vector<std::string> row{net::to_string(kind)};
      for (const auto& algorithm : algorithms) {
        row.push_back(common::Table::pct(
            bench::run_algorithm(algorithm, problem, initial, seed).savings));
      }
      table.add_row(std::move(row));
      std::cerr << "  " << net::to_string(kind) << " done\n";
    }
    table.print(std::cout);
  }
  return 0;
}
