// bench::ObsWriter — bridges agtram::obs into the bench JSON trajectory.
//
// Two outputs (DESIGN.md §9, EXPERIMENTS.md "Reading an --obs-trace"):
//
//  * an `obs` block merged into each bench row: the Auto-policy decisions
//    (ReportMode / EvalPath) with the exact inputs and thresholds that
//    decided them, plus — when the binary was built with -DAGTRAM_OBS=ON —
//    the registry counter/span deltas accumulated across the row's timing
//    loop.  The bench gate keys on a fixed field tuple, so extra blocks are
//    invisible to it.
//
//  * a per-round JSONL dump (`--obs-trace <file>`): one meta line per traced
//    run (instance dims + decisions), then one line per mechanism round with
//    that round's gauges (dirty-set size, winner, payment, ...).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "baselines/glauber.hpp"
#include "bench_common.hpp"
#include "common/thread_pool.hpp"
#include "core/agt_ram.hpp"
#include "core/audit.hpp"
#include "core/online.hpp"
#include "core/regional.hpp"
#include "drp/delta_evaluator.hpp"
#include "net/topology.hpp"
#include "obs/obs.hpp"
#include "srv/serving_engine.hpp"

namespace agtram::bench {

inline constexpr bool obs_enabled() { return AGTRAM_OBS_ENABLED != 0; }

/// Counter/span registry snapshot; subtract two to get what one timing loop
/// cost.  Registration order is stable within a run, so pairwise deltas by
/// name are computed against a name-indexed copy.
struct ObsSnapshot {
  std::vector<obs::CounterSnapshot> counters;
  std::vector<obs::SpanSnapshot> spans;

  static ObsSnapshot take() {
    ObsSnapshot snap;
    snap.counters = obs::Registry::instance().counters();
    snap.spans = obs::Registry::instance().spans();
    return snap;
  }

  std::uint64_t counter(std::string_view name) const {
    for (const auto& c : counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  }

  std::pair<std::uint64_t, std::uint64_t> span(std::string_view name) const {
    for (const auto& s : spans) {
      if (s.name == name) return {s.count, s.total_ns};
    }
    return {0, 0};
  }
};

/// Counter deltas (after - before) as a flat record; spans contribute
/// "<name>.count" and "<name>.total_ns" keys.  Counters that did not move
/// are dropped so quiet subsystems don't bloat the rows.
inline JsonWriter::Record obs_delta_record(const ObsSnapshot& before,
                                           const ObsSnapshot& after) {
  JsonWriter::Record record;
  for (const auto& c : after.counters) {
    const std::uint64_t delta = c.value - before.counter(c.name);
    if (delta != 0) record.field(c.name, delta);
  }
  for (const auto& s : after.spans) {
    const auto [count0, ns0] = before.span(s.name);
    if (s.count == count0 && s.total_ns == ns0) continue;
    record.field(s.name + ".count", s.count - count0);
    record.field(s.name + ".total_ns", s.total_ns - ns0);
  }
  return record;
}

/// The mechanism-side policy decisions for one bench row: how the requested
/// ReportMode resolved and the signals/thresholds behind the Auto pick, plus
/// the PARFOR policy inputs.  Always available — the decision statistics are
/// cheap and independent of AGTRAM_OBS.
inline JsonWriter::Record mechanism_decisions(
    const drp::Problem& problem, const core::AgtRamConfig& config) {
  const core::AutoPolicyDecision decision = core::explain_report_mode(
      problem, problem.server_count(), config.report_mode);
  JsonWriter::Record record;
  record.field("report_mode_requested", report_mode_name(decision.requested));
  record.field("report_mode_resolved", report_mode_name(decision.resolved));
  record.field("auto_size_biased_readers", decision.size_biased_readers);
  record.field("auto_effective_hot_objects", decision.effective_hot_objects);
  record.field("auto_agent_count",
               static_cast<std::uint64_t>(decision.agent_count));
  record.field("auto_incremental_fraction", decision.incremental_fraction);
  record.field("auto_min_effective_hot_objects",
               decision.min_effective_hot_objects);
  record.field("auto_dirty_is_local", decision.dirty_is_local);
  record.field("auto_demand_is_dispersed", decision.demand_is_dispersed);
  record.field("parallel_agents", config.parallel_agents);
  record.field("parallel_min_agents",
               static_cast<std::uint64_t>(config.parallel_min_agents));
  record.field("pool_workers",
               static_cast<std::uint64_t>(
                   common::ThreadPool::shared().thread_count()));
  return record;
}

/// The baseline-side policy decisions: EvalPath plus the candidate-scan
/// parallelisation inputs (the scan forks only when the instance clears
/// DeltaEvaluator::kParallelMinServers).
inline JsonWriter::Record baseline_decisions(const drp::Problem& problem,
                                             bool delta_eval,
                                             bool parallel_scan) {
  JsonWriter::Record record;
  record.field("eval_path", delta_eval ? "delta" : "naive");
  record.field("parallel_scan", parallel_scan);
  record.field("scan_min_servers",
               static_cast<std::uint64_t>(
                   drp::DeltaEvaluator::kParallelMinServers));
  record.field("scan_servers",
               static_cast<std::uint64_t>(problem.server_count()));
  record.field("pool_workers",
               static_cast<std::uint64_t>(
                   common::ThreadPool::shared().thread_count()));
  return record;
}

/// The regional-engine decisions for one bench row: region count, epoch
/// execution order (serial poll loop vs concurrent region jobs), the
/// intra-region game, the inner agent-PARFOR knob, and the pool the sharded
/// path fans out on.
inline JsonWriter::Record regional_decisions(std::uint32_t regions,
                                             core::RegionalExecution execution,
                                             bool cooperative,
                                             bool parallel_agents) {
  JsonWriter::Record record;
  record.field("regions", static_cast<std::uint64_t>(regions));
  record.field("execution",
               execution == core::RegionalExecution::Sharded ? "sharded"
                                                             : "serial");
  record.field("cooperative", cooperative);
  record.field("parallel_agents", parallel_agents);
  record.field("pool_workers",
               static_cast<std::uint64_t>(
                   common::ThreadPool::shared().thread_count()));
  return record;
}

/// The online-engine decisions for one bench row: the repair-round bound,
/// whether the per-batch differential oracle ran, and the mechanism config
/// every repair run inherits (all report modes produce byte-identical
/// allocations, so the choice only moves the timing).
inline JsonWriter::Record online_decisions(const core::OnlineConfig& config,
                                           std::uint64_t batches) {
  JsonWriter::Record record;
  record.field("batches", batches);
  record.field("max_repair_rounds",
               static_cast<std::uint64_t>(config.max_repair_rounds));
  record.field("differential_oracle", config.differential_oracle);
  record.field("report_mode_requested",
               report_mode_name(config.mechanism.report_mode));
  record.field("parallel_agents", config.mechanism.parallel_agents);
  record.field("pool_workers",
               static_cast<std::uint64_t>(
                   common::ThreadPool::shared().thread_count()));
  return record;
}

/// The serving-layer decisions for one bench row: the re-convergence policy,
/// the drift-trigger thresholds it watches, the eviction budget each repair
/// may spend, and the routing fan-out inputs.
inline JsonWriter::Record serving_decisions(const srv::ServingConfig& config,
                                            std::uint64_t batches) {
  JsonWriter::Record record;
  record.field("batches", batches);
  const char* policy = "ondrift";
  if (config.policy == srv::ReconvergePolicy::Static) policy = "static";
  if (config.policy == srv::ReconvergePolicy::EveryBatch) policy = "resolve";
  record.field("policy", policy);
  record.field("volume_drift_threshold", config.volume_drift_threshold);
  record.field("cost_regression_threshold", config.cost_regression_threshold);
  record.field("min_window_requests", config.min_window_requests);
  record.field("eviction_limit",
               static_cast<std::uint64_t>(config.eviction_limit));
  record.field("latency_sample_every",
               static_cast<std::uint64_t>(config.latency_sample_every));
  record.field("shards", static_cast<std::uint64_t>(config.shards));
  record.field("pool_workers",
               static_cast<std::uint64_t>(
                   common::ThreadPool::shared().thread_count()));
  return record;
}

/// The strategic-audit decisions for one bench row: the payment rule under
/// audit, the probe and sweep sizes, and the collusion-ring size — the
/// knobs that decide how many mechanism runs the row times.
inline JsonWriter::Record strategic_decisions(
    const core::StrategicAuditConfig& config) {
  JsonWriter::Record record;
  record.field("payment_rule", core::to_string(config.payment_rule));
  record.field("report_mode_requested",
               report_mode_name(config.report_mode));
  record.field("agents_to_probe",
               static_cast<std::uint64_t>(config.agents_to_probe));
  record.field("inflate_factors",
               static_cast<std::uint64_t>(config.inflate_factors.size()));
  record.field("deflate_factors",
               static_cast<std::uint64_t>(config.deflate_factors.size()));
  record.field("collusion_size",
               static_cast<std::uint64_t>(config.collusion_size));
  return record;
}

/// The Glauber-baseline decisions for one bench row: the annealing schedule,
/// the pricing path, and whether the run was wired to a MessageBus.
inline JsonWriter::Record glauber_decisions(
    const baselines::GlauberConfig& config) {
  JsonWriter::Record record;
  record.field("sweeps", static_cast<std::uint64_t>(config.sweeps));
  record.field("initial_temperature_fraction",
               config.initial_temperature_fraction);
  record.field("cooling_rate", config.cooling_rate);
  record.field("eval_path",
               config.eval == baselines::EvalPath::Delta ? "delta" : "naive");
  record.field("bus_attached", config.bus != nullptr);
  return record;
}

/// The tree-placement decisions for one bench row: the tree family shape
/// and the Benoit–Rehn–Robert strategy variant.
inline JsonWriter::Record tree_decisions(net::TreeShape shape,
                                         std::uint32_t arity, bool exact) {
  JsonWriter::Record record;
  const char* shape_name = "random";
  if (shape == net::TreeShape::Balanced) shape_name = "balanced";
  if (shape == net::TreeShape::Caterpillar) shape_name = "caterpillar";
  record.field("shape", shape_name);
  record.field("arity", static_cast<std::uint64_t>(arity));
  record.field("strategy", exact ? "exact" : "greedy");
  return record;
}

/// Assembles the `obs` block for one bench row: the decisions, the enabled
/// flag, and (when instrumented) the counter deltas across the row's runs
/// with the repetition count needed to normalise them.
inline JsonWriter::Record obs_block(JsonWriter::Record decisions,
                                    const ObsSnapshot& before,
                                    const ObsSnapshot& after,
                                    std::uint64_t runs) {
  JsonWriter::Record record;
  record.field("enabled", obs_enabled());
  record.field("runs", runs);
  record.object_field("decisions", decisions);
  if (obs_enabled()) {
    record.object_field("counters", obs_delta_record(before, after));
  }
  return record;
}

/// obs::TraceSink writing one JSON object per mechanism round, plus `meta`
/// lines describing the traced run.  Driven from the centre's thread only
/// (the TraceSink contract), so plain buffered writes suffice.
class JsonlTrace : public obs::TraceSink {
 public:
  explicit JsonlTrace(const std::string& path) : out_(path) {}

  JsonlTrace(const JsonlTrace&) = delete;
  JsonlTrace& operator=(const JsonlTrace&) = delete;

  ~JsonlTrace() override { close(); }

  bool ok() const { return static_cast<bool>(out_); }

  /// Emits {"kind": "meta", ...record} — call before the traced run.
  void meta(const JsonWriter::Record& record) {
    flush_round();
    JsonWriter::Record line;
    line.field("kind", "meta");
    line.object_field("data", record);
    out_ << line.json() << '\n';
  }

  void round_begin(std::uint64_t round) override {
    flush_round();
    line_.field("kind", "round");
    line_.field("round", round);
    open_ = true;
  }

  void gauge(std::string_view key, double value) override {
    if (open_) line_.field(std::string(key), value);
  }
  void gauge(std::string_view key, std::uint64_t value) override {
    if (open_) line_.field(std::string(key), value);
  }
  void gauge(std::string_view key, std::string_view value) override {
    if (open_) line_.field(std::string(key), std::string(value));
  }

  void close() {
    flush_round();
    out_.flush();
  }

 private:
  void flush_round() {
    if (open_) {
      out_ << line_.json() << '\n';
      line_ = JsonWriter::Record();
      open_ = false;
    }
  }

  std::ofstream out_;
  JsonWriter::Record line_;
  bool open_ = false;
};

/// Scoped install of a JsonlTrace as the process trace sink.
class ScopedTrace {
 public:
  explicit ScopedTrace(JsonlTrace& trace) { obs::install_trace(&trace); }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
  ~ScopedTrace() { obs::install_trace(nullptr); }
};

}  // namespace agtram::bench
