// Table 1 reproduction: running time of the replica placement methods.
//
// Paper setup: C = 45%, R/W = 0.85, nine problem sizes
// (M in {2500, 3000, 3718} x N in {15k, 20k, 25k}); entries are seconds,
// the fastest method per row in bold, plus AGT-RAM's improvement over the
// slowest.  Observation to reproduce: AGT-RAM terminates fastest, GRA
// slowest; the default bench grid scales both axes by ~10.
#include <algorithm>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/agt_ram.hpp"
#include "obs_writer.hpp"

int main(int argc, char** argv) {
  using namespace agtram;

  common::Cli cli("Table 1: running time (seconds) of the placement methods "
                  "[C=45%, R/W=0.85 in the paper]");
  bench::add_common_flags(cli);
  cli.add_flag("capacity", "45", "paper C%%");
  cli.add_flag("rw", "0.85", "read fraction");
  cli.add_flag("m-grid", "250,300,372", "server counts (paper: 2500,3000,3718)");
  cli.add_flag("n-grid", "1500,2000,2500", "object counts (paper: 15k,20k,25k)");
  cli.add_flag("json", bench::kMechanismJsonPath,
               "write per-cell wall times as JSON here ('' disables)");
  cli.add_flag("obs-trace", "",
               "write per-round JSONL from an untimed Auto-mode mechanism "
               "run per cell to this path ('' disables)");
  bench::add_baseline_eval_flag(cli);
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 1;

  const double capacity = cli.get_double("capacity");
  const double rw = cli.get_double("rw");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  auto m_grid = cli.get_double_list("m-grid");
  auto n_grid = cli.get_double_list("n-grid");
  if (cli.get("scale") == "paper") {
    m_grid = {2500, 3000, 3718};
    n_grid = {15000, 20000, 25000};
  }
  const baselines::AlgoOptions algo_options = bench::resolve_algo_options(cli);
  const char* eval_name =
      algo_options.eval == baselines::EvalPath::Naive ? "naive" : "delta";
  const auto algorithms = baselines::all_algorithms(algo_options);

  std::vector<std::string> headers{"problem size"};
  for (const auto& a : algorithms) headers.push_back(a.name);
  headers.push_back("AGT-RAM vs slowest");
  common::Table table(std::move(headers));
  table.set_title("Table 1: running time of the replica placement methods "
                  "in seconds [C=" + common::Table::num(capacity, 0) +
                  "%, R/W=" + common::Table::num(rw, 2) + "]");

  std::unique_ptr<bench::JsonlTrace> trace;
  if (!cli.get("obs-trace").empty()) {
    trace = std::make_unique<bench::JsonlTrace>(cli.get("obs-trace"));
    if (!trace->ok()) {
      std::cerr << "failed to open obs trace " << cli.get("obs-trace") << "\n";
      return 1;
    }
  }

  bench::JsonWriter json;
  for (const double m : m_grid) {
    for (const double n : n_grid) {
      const bench::Dims dims{static_cast<std::uint32_t>(m),
                             static_cast<std::uint32_t>(n)};
      const drp::Problem problem =
          bench::build_instance(dims, capacity, rw, seed);
      const double initial = drp::CostModel::initial_cost(problem);

      std::vector<std::string> row{"M=" + std::to_string(dims.servers) +
                                   ", N=" + std::to_string(dims.objects)};
      double agtram_seconds = 0.0;
      double slowest = 0.0;
      double fastest = 1e30;
      for (const auto& algorithm : algorithms) {
        const bench::ObsSnapshot obs_before = bench::ObsSnapshot::take();
        const auto outcome =
            bench::run_algorithm(algorithm, problem, initial, seed);
        const bench::ObsSnapshot obs_after = bench::ObsSnapshot::take();
        row.push_back(common::Table::num(outcome.seconds, 3));
        slowest = std::max(slowest, outcome.seconds);
        fastest = std::min(fastest, outcome.seconds);
        if (algorithm.name == "AGT-RAM") agtram_seconds = outcome.seconds;
        bench::JsonWriter::Record record;
        record.field("benchmark", "table1_exec_time")
            .field("servers", static_cast<std::uint64_t>(dims.servers))
            .field("objects", static_cast<std::uint64_t>(dims.objects))
            .field("algorithm", algorithm.name)
            .field("eval", eval_name)
            .field("seconds", outcome.seconds)
            .field("savings", outcome.savings)
            .field("replicas", static_cast<std::uint64_t>(outcome.replicas))
            .object_field(
                "obs",
                bench::obs_block(
                    bench::baseline_decisions(
                        problem,
                        algo_options.eval == baselines::EvalPath::Delta,
                        algo_options.parallel_scans),
                    obs_before, obs_after, /*runs=*/1));
        json.add(std::move(record));
      }

      // JSON-only extra: AGT-RAM's report-evaluation paths head to head
      // (the printed table keeps the paper's algorithm columns untouched).
      for (const core::ReportMode mode :
           {core::ReportMode::Naive, core::ReportMode::Incremental,
            core::ReportMode::Auto}) {
        core::AgtRamConfig cfg;
        cfg.report_mode = mode;
        const bench::ObsSnapshot obs_before = bench::ObsSnapshot::take();
        common::Timer timer;
        const core::MechanismResult result = core::run_agt_ram(problem, cfg);
        const double seconds = timer.seconds();
        const bench::ObsSnapshot obs_after = bench::ObsSnapshot::take();
        bench::JsonWriter::Record record;
        record.field("benchmark", "table1_agt_ram_paths")
            .field("servers", static_cast<std::uint64_t>(dims.servers))
            .field("objects", static_cast<std::uint64_t>(dims.objects))
            .field("report_mode", bench::report_mode_name(mode))
            .field("resolved_mode",
                   bench::report_mode_name(result.resolved_mode))
            .field("seconds", seconds)
            .field("rounds", static_cast<std::uint64_t>(result.rounds.size()))
            .field("candidate_evaluations", result.candidate_evaluations)
            .field("reports_computed", result.reports_computed)
            .object_field(
                "obs",
                bench::obs_block(bench::mechanism_decisions(problem, cfg),
                                 obs_before, obs_after, /*runs=*/1));
        json.add(std::move(record));
      }

      // Per-round trace of an untimed Auto-mode run for this cell.
      if (trace) {
        core::AgtRamConfig cfg;
        cfg.report_mode = core::ReportMode::Auto;
        bench::JsonWriter::Record meta;
        meta.field("benchmark", "table1_obs_trace")
            .field("servers", static_cast<std::uint64_t>(dims.servers))
            .field("objects", static_cast<std::uint64_t>(dims.objects))
            .field("obs_enabled", bench::obs_enabled())
            .object_field("decisions",
                          bench::mechanism_decisions(problem, cfg));
        trace->meta(meta);
        bench::ScopedTrace scoped(*trace);
        core::run_agt_ram(problem, cfg);
      }

      // The paper reports the % improvement AGT-RAM brings over the row.
      row.push_back(common::Table::pct(
          (slowest - agtram_seconds) / slowest, 1));
      table.add_row(std::move(row));
      std::cerr << "  M=" << dims.servers << " N=" << dims.objects << " done\n";
    }
  }
  bench::emit(cli, table);
  if (trace) {
    trace->close();
    std::cout << "obs trace written to " << cli.get("obs-trace") << "\n";
  }
  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    if (json.write_file(json_path, "table1_exec_time")) {
      std::cout << "json written to " << json_path << "\n";
    } else {
      std::cerr << "failed to write " << json_path << "\n";
    }
  }
  return 0;
}
