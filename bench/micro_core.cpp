// Google-benchmark microbenchmarks for the performance-critical primitives:
// the metric closure, the incremental cost engine, NN maintenance, and a
// full mechanism round.  These guard the complexity claims behind Table 1
// (AGT-RAM's near-linear rounds via the lazy heaps).
#include <benchmark/benchmark.h>

#include "core/agent.hpp"
#include "core/agt_ram.hpp"
#include "drp/builder.hpp"
#include "drp/cost_model.hpp"
#include "net/shortest_paths.hpp"
#include "net/topology.hpp"

namespace {

using namespace agtram;

const drp::Problem& cached_instance(std::uint32_t servers,
                                    std::uint32_t objects) {
  static std::map<std::pair<std::uint32_t, std::uint32_t>, drp::Problem>
      cache;
  const auto key = std::make_pair(servers, objects);
  auto it = cache.find(key);
  if (it == cache.end()) {
    drp::InstanceSpec spec;
    spec.servers = servers;
    spec.objects = objects;
    spec.seed = 42;
    spec.instance.capacity_fraction = 0.01;
    spec.instance.rw_ratio = 0.9;
    it = cache.emplace(key, drp::make_instance(spec)).first;
  }
  return it->second;
}

void BM_DijkstraSingleSource(benchmark::State& state) {
  net::TopologyConfig cfg;
  cfg.nodes = static_cast<std::uint32_t>(state.range(0));
  cfg.edge_probability = 0.1;
  cfg.seed = 7;
  const net::Graph g = net::generate_topology(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::dijkstra(g, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DijkstraSingleSource)->Arg(128)->Arg(512)->Arg(1024)->Complexity();

void BM_MetricClosure(benchmark::State& state) {
  net::TopologyConfig cfg;
  cfg.nodes = static_cast<std::uint32_t>(state.range(0));
  cfg.edge_probability = 0.1;
  cfg.seed = 7;
  const net::Graph g = net::generate_topology(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::DistanceMatrix::compute(g));
  }
}
BENCHMARK(BM_MetricClosure)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_TotalCost(benchmark::State& state) {
  const drp::Problem& p =
      cached_instance(128, static_cast<std::uint32_t>(state.range(0)));
  const drp::ReplicaPlacement placement(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(drp::CostModel::total_cost(placement));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TotalCost)->Arg(500)->Arg(1000)->Arg(2000)->Complexity();

void BM_AgentBenefit(benchmark::State& state) {
  const drp::Problem& p = cached_instance(128, 1000);
  const drp::ReplicaPlacement placement(p);
  drp::ObjectIndex k = 0;
  for (auto _ : state) {
    const auto accessors = p.access.accessors(k);
    if (!accessors.empty() &&
        !placement.is_replicator(accessors[0].server, k)) {
      benchmark::DoNotOptimize(
          drp::CostModel::agent_benefit(placement, accessors[0].server, k));
    }
    k = (k + 1) % static_cast<drp::ObjectIndex>(p.object_count());
  }
}
BENCHMARK(BM_AgentBenefit);

void BM_GlobalBenefit(benchmark::State& state) {
  const drp::Problem& p = cached_instance(128, 1000);
  const drp::ReplicaPlacement placement(p);
  drp::ObjectIndex k = 0;
  for (auto _ : state) {
    const auto accessors = p.access.accessors(k);
    if (!accessors.empty() &&
        !placement.is_replicator(accessors[0].server, k)) {
      benchmark::DoNotOptimize(
          drp::CostModel::global_benefit(placement, accessors[0].server, k));
    }
    k = (k + 1) % static_cast<drp::ObjectIndex>(p.object_count());
  }
}
BENCHMARK(BM_GlobalBenefit);

void BM_AddReplicaNnUpdate(benchmark::State& state) {
  const drp::Problem& p = cached_instance(128, 1000);
  for (auto _ : state) {
    state.PauseTiming();
    drp::ReplicaPlacement placement(p);
    state.ResumeTiming();
    for (drp::ObjectIndex k = 0; k < 64; ++k) {
      const auto accessors = p.access.accessors(k);
      if (accessors.empty()) continue;
      if (placement.can_replicate(accessors[0].server, k)) {
        placement.add_replica(accessors[0].server, k);
      }
    }
  }
}
BENCHMARK(BM_AddReplicaNnUpdate)->Unit(benchmark::kMicrosecond);

void BM_FullMechanism(benchmark::State& state) {
  const drp::Problem& p =
      cached_instance(static_cast<std::uint32_t>(state.range(0)),
                      static_cast<std::uint32_t>(state.range(0)) * 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_agt_ram(p));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullMechanism)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_MechanismRoundsParallel(benchmark::State& state) {
  const drp::Problem& p = cached_instance(256, 2560);
  core::AgtRamConfig cfg;
  cfg.parallel_agents = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_agt_ram(p, cfg));
  }
  state.SetLabel(cfg.parallel_agents ? "parallel" : "serial");
}
BENCHMARK(BM_MechanismRoundsParallel)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
