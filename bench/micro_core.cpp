// Google-benchmark microbenchmarks for the performance-critical primitives:
// the metric closure, the incremental cost engine, NN maintenance, and a
// full mechanism round.  These guard the complexity claims behind Table 1
// (AGT-RAM's near-linear rounds via the lazy heaps and the dirty-set
// incremental evaluation).  After the registered benchmarks run, main()
// times the report-evaluation paths head to head on two instance families —
// the largest shipped configuration and the paper-scale M=3000, N=25600
// family — and writes the numbers to BENCH_mechanism.json so the perf
// trajectory is machine-readable across PRs.
//
// Scale flags (stripped before google-benchmark sees argv):
//   --mech-servers=N / --mech-objects=N    base trajectory instance (256x2560)
//   --paper-servers=N / --paper-objects=N  paper-scale instance (3000x25600)
//   --paper-scale=0                        skip the paper-scale family
//   --reps=N / --paper-reps=N              timing repetitions (best-of)
//   --kernels=0                            skip the kernel-engine family
//   --regional=0                           skip the regional family
//   --regional-servers=10000,50000,100000  tiled large-M sweep sizes
//   --regional-regions=8,32,128            tiled region counts
//   --regional-budget-mb=4096              tiled distance-state budget
//   --regional-reps=N                      regional timing repetitions
//   --online=0                             skip the online re-convergence
//                                          family
//   --online-batches=N                     event batches per timed stream
//   --online-oracle-batches=N              batches in the oracle-ON pass
//   --online-reps=N                        stream timing repetitions
//   --serving=0                            skip the serving-layer family
//   --serving-batches=N                    request batches per policy stream
//   --serving-reps=N                       serving timing repetitions
//   --strategic=0                          skip the strategic-audit family
//   --glauber=0                            skip the Glauber baseline family
//   --glauber-sweeps=N                     Glauber annealing sweeps
//   --tree=0                               skip the tree-placement family
//   --json=PATH                            output path
//   --obs-trace=PATH                       per-round JSONL from an untimed
//                                          Auto-mode run per family
//
// The trajectory run *enforces* the parallel execution policy: if any
// emitted mechanism_full_run row shows parallel_agents=true slower than its
// serial twin by more than the noise tolerance, the process exits nonzero.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "baselines/glauber.hpp"
#include "baselines/registry.hpp"
#include "baselines/strategic_damage.hpp"
#include "baselines/tree_placement.hpp"
#include "bench_common.hpp"
#include "core/audit.hpp"
#include "core/strategy.hpp"
#include "common/timer.hpp"
#include "core/agent.hpp"
#include "core/agt_ram.hpp"
#include "core/online.hpp"
#include "core/regional.hpp"
#include "core/regional_tiled.hpp"
#include "drp/builder.hpp"
#include "drp/cost_model.hpp"
#include "drp/delta_evaluator.hpp"
#include "drp/kernels.hpp"
#include "net/shortest_paths.hpp"
#include "net/topology.hpp"
#include "obs_writer.hpp"
#include "percentiles.hpp"
#include "runtime/event_sim.hpp"
#include "runtime/message_bus.hpp"
#include "srv/serving_engine.hpp"
#include "srv/workload.hpp"

namespace {

using namespace agtram;

const drp::Problem& cached_instance(std::uint32_t servers,
                                    std::uint32_t objects) {
  static std::map<std::pair<std::uint32_t, std::uint32_t>, drp::Problem>
      cache;
  const auto key = std::make_pair(servers, objects);
  auto it = cache.find(key);
  if (it == cache.end()) {
    drp::InstanceSpec spec;
    spec.servers = servers;
    spec.objects = objects;
    spec.seed = 42;
    if (servers > 1000) spec.topology = net::TopologyKind::PowerLaw;
    spec.instance.capacity_fraction = 0.01;
    spec.instance.rw_ratio = 0.9;
    it = cache.emplace(key, drp::make_instance(spec)).first;
  }
  return it->second;
}

void BM_DijkstraSingleSource(benchmark::State& state) {
  net::TopologyConfig cfg;
  cfg.nodes = static_cast<std::uint32_t>(state.range(0));
  cfg.edge_probability = 0.1;
  cfg.seed = 7;
  const net::Graph g = net::generate_topology(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::dijkstra(g, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DijkstraSingleSource)->Arg(128)->Arg(512)->Arg(1024)->Complexity();

void BM_MetricClosure(benchmark::State& state) {
  net::TopologyConfig cfg;
  cfg.nodes = static_cast<std::uint32_t>(state.range(0));
  cfg.edge_probability = 0.1;
  cfg.seed = 7;
  const net::Graph g = net::generate_topology(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::DistanceMatrix::compute(g));
  }
}
BENCHMARK(BM_MetricClosure)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_TotalCost(benchmark::State& state) {
  const drp::Problem& p =
      cached_instance(128, static_cast<std::uint32_t>(state.range(0)));
  const drp::ReplicaPlacement placement(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(drp::CostModel::total_cost(placement));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TotalCost)->Arg(500)->Arg(1000)->Arg(2000)->Complexity();

void BM_AgentBenefit(benchmark::State& state) {
  const drp::Problem& p = cached_instance(128, 1000);
  const drp::ReplicaPlacement placement(p);
  drp::ObjectIndex k = 0;
  for (auto _ : state) {
    const auto accessors = p.access.accessors(k);
    if (!accessors.empty() &&
        !placement.is_replicator(accessors[0].server, k)) {
      benchmark::DoNotOptimize(
          drp::CostModel::agent_benefit(placement, accessors[0].server, k));
    }
    k = (k + 1) % static_cast<drp::ObjectIndex>(p.object_count());
  }
}
BENCHMARK(BM_AgentBenefit);

// Slot-resolved fast path the mechanism's inner loop actually takes.
void BM_AgentBenefitAt(benchmark::State& state) {
  const drp::Problem& p = cached_instance(128, 1000);
  const drp::ReplicaPlacement placement(p);
  drp::ObjectIndex k = 0;
  for (auto _ : state) {
    const auto accessors = p.access.accessors(k);
    if (!accessors.empty() &&
        !placement.is_replicator(accessors[0].server, k)) {
      benchmark::DoNotOptimize(drp::CostModel::agent_benefit_at(
          placement, accessors[0].server, k, 0));
    }
    k = (k + 1) % static_cast<drp::ObjectIndex>(p.object_count());
  }
}
BENCHMARK(BM_AgentBenefitAt);

void BM_GlobalBenefit(benchmark::State& state) {
  const drp::Problem& p = cached_instance(128, 1000);
  const drp::ReplicaPlacement placement(p);
  drp::ObjectIndex k = 0;
  for (auto _ : state) {
    const auto accessors = p.access.accessors(k);
    if (!accessors.empty() &&
        !placement.is_replicator(accessors[0].server, k)) {
      benchmark::DoNotOptimize(
          drp::CostModel::global_benefit(placement, accessors[0].server, k));
    }
    k = (k + 1) % static_cast<drp::ObjectIndex>(p.object_count());
  }
}
BENCHMARK(BM_GlobalBenefit);

void BM_AddReplicaNnUpdate(benchmark::State& state) {
  const drp::Problem& p = cached_instance(128, 1000);
  for (auto _ : state) {
    state.PauseTiming();
    drp::ReplicaPlacement placement(p);
    state.ResumeTiming();
    for (drp::ObjectIndex k = 0; k < 64; ++k) {
      const auto accessors = p.access.accessors(k);
      if (accessors.empty()) continue;
      if (placement.can_replicate(accessors[0].server, k)) {
        placement.add_replica(accessors[0].server, k);
      }
    }
  }
}
BENCHMARK(BM_AddReplicaNnUpdate)->Unit(benchmark::kMicrosecond);

void BM_FullMechanism(benchmark::State& state) {
  const drp::Problem& p =
      cached_instance(static_cast<std::uint32_t>(state.range(0)),
                      static_cast<std::uint32_t>(state.range(0)) * 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_agt_ram(p));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullMechanism)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_MechanismRoundsParallel(benchmark::State& state) {
  const drp::Problem& p = cached_instance(256, 2560);
  core::AgtRamConfig cfg;
  cfg.parallel_agents = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_agt_ram(p, cfg));
  }
  state.SetLabel(cfg.parallel_agents ? "parallel" : "serial");
}
BENCHMARK(BM_MechanismRoundsParallel)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Dispersed-demand variant of the 256 x 2560 instance: every server stays
// live with its own candidate list while each object's reader set stays
// small — the paper's large-M regime, and the one the dirty-set incremental
// path is built for (see DESIGN.md).
const drp::Problem& dispersed_instance(std::uint32_t servers,
                                       std::uint32_t objects) {
  static std::map<std::pair<std::uint32_t, std::uint32_t>, drp::Problem>
      cache;
  const auto key = std::make_pair(servers, objects);
  auto it = cache.find(key);
  if (it == cache.end()) {
    drp::InstanceSpec spec;
    spec.servers = servers;
    spec.objects = objects;
    spec.seed = 42;
    if (servers > 1000) spec.topology = net::TopologyKind::PowerLaw;
    spec.demand = drp::DemandModel::Dispersed;
    spec.readers_per_object = 8.0;
    spec.instance.capacity_fraction = 0.01;
    spec.instance.rw_ratio = 0.9;
    it = cache.emplace(key, drp::make_instance(spec)).first;
  }
  return it->second;
}

void BM_MechanismIncremental(benchmark::State& state) {
  const drp::Problem& p = state.range(1) != 0 ? dispersed_instance(256, 2560)
                                              : cached_instance(256, 2560);
  core::AgtRamConfig cfg;
  cfg.report_mode = state.range(0) != 0 ? core::ReportMode::Incremental
                                        : core::ReportMode::Naive;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_agt_ram(p, cfg));
  }
  state.SetLabel(std::string(bench::report_mode_name(cfg.report_mode)) +
                 (state.range(1) != 0 ? "/dispersed" : "/trace"));
}
BENCHMARK(BM_MechanismIncremental)
    ->Args({0, 0})->Args({1, 0})->Args({0, 1})->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Machine-readable trajectory: the report-evaluation paths head to head on
// the base (256 x 2560) and paper-scale (3000 x 25600) families, one record
// per (mode, parallel) combination, plus speedup / auto-mode / policy-check
// rows.  The parallel execution policy is *enforced* here: the run fails if
// any full-run row has the parallel twin slower than serial beyond noise.

struct TrajectoryOptions {
  std::uint32_t mech_servers = 256;
  std::uint32_t mech_objects = 2560;
  std::uint32_t paper_servers = 3000;
  std::uint32_t paper_objects = 25600;
  bool paper_scale = true;
  int reps = 3;
  int paper_reps = 2;
  /// Baseline naive-vs-delta family (Greedy, GRA, Aε-Star, Selfish,
  /// LocalSearch, SA at the base scale; Greedy + GRA at paper scale).
  bool baselines = true;
  int baseline_reps = 2;
  /// Kernel-engine family: the DESIGN.md §10 kernels timed aos / scalar /
  /// simd at both scales, with a bitwise cross-variant identity check.
  bool kernels = true;
  /// Regional family: the shared-placement engines (regional / cooperative
  /// / hierarchical) serial-vs-sharded at the mech and paper scales, plus
  /// the tiled large-M engine over regional_servers x regional_regions.
  bool regional = true;
  std::vector<std::uint32_t> regional_servers = {10000, 50000, 100000};
  std::vector<std::uint32_t> regional_regions = {8, 32, 128};
  double regional_budget_mb = 4096.0;
  int regional_reps = 2;
  /// Online family: a long-lived OnlineMechanism absorbing a seeded
  /// mean-field event stream; the per-event re-convergence cost is gated
  /// against the from-scratch re-solve a system without the engine must pay
  /// (>= 20x at mech scale, >= 50x at paper scale), and a second oracle-ON
  /// pass enforces byte-identity against full-participation re-solves.
  bool online = true;
  int online_batches = 64;
  int online_oracle_batches = 12;
  int online_reps = 2;
  /// Serving family: srv::ServingEngine replaying one drifting synthetic
  /// request stream under all three re-convergence policies.  OnDrift's
  /// total re-convergence wall time is gated >= 10x cheaper than re-solving
  /// after every batch (mech scale), and the final routing snapshot is
  /// checked cell for cell against the naive nearest-replica scan.
  bool serving = true;
  int serving_batches = 48;
  int serving_reps = 2;
  /// Strategic family: core::strategic_audit sweeping misreports over the
  /// truthful run's top winners on both demand families.  The per-round
  /// dominance invariant (Lemma 1 / Theorem 5) is *enforced* — any round
  /// where a misreporting agent's bid beat truth exits nonzero — and the
  /// same lies are replayed against the demand-consuming baselines, where
  /// at least one must show measurable allocation damage.
  bool strategic = true;
  /// Glauber family: the distributed heat-bath baseline timed Delta vs the
  /// naive mutate-measure-undo oracle.  Enforced: bit-identical trajectories
  /// across pricing paths, determinism per seed, and every proposal /
  /// decision accounted on the MessageBus with nonzero wire bytes.
  bool glauber = true;
  int glauber_sweeps = 48;
  /// Tree family: Benoit–Rehn–Robert exact-DP vs greedy placement on a
  /// TopologyKind::Tree instance, with AGT-RAM on the same instance for
  /// quality context.  Enforced: the exact DP never loses to greedy.
  bool tree = true;
  std::string json_path = bench::kMechanismJsonPath;
  /// Per-round JSONL sink (--obs-trace=PATH): one meta line per traced
  /// Auto-mode run, then one line per mechanism round.  Round lines carry
  /// gauges only when the binary was built with -DAGTRAM_OBS=ON.
  std::string obs_trace_path;
};

/// Parallel-vs-serial noise tolerance.  With the round-size cutoff in place
/// the two paths execute identical code below the crossover, so the only
/// differences left are scheduler noise; 10% of wall time bounds that
/// comfortably at best-of-N timing.  Millisecond-scale rows additionally
/// get the same absolute floor the bench gate uses: a ~1 ms swing on a
/// 5 ms row is jitter (especially on single-core runners, where parallel
/// is serial plus the fork handshake), not a policy violation — the rows
/// the check exists for take seconds and clear the floor easily.
constexpr double kParallelTolerance = 1.10;
constexpr double kParallelMinDelta = 0.02;  // seconds

bool parallel_within_policy(double serial, double parallel) {
  // On a single-worker pool every parallel_for degrades to the identical
  // inline code path, so the two timings measure the same instructions and
  // their ratio is pure container noise (multi-second rows swing 10-25%
  // run to run on shared 1-CPU runners, in either direction).  The policy
  // is only meaningful — and only enforced — when the pool can actually
  // overlap work; the identity checks keep holding regardless.
  if (common::ThreadPool::shared().thread_count() <= 1) return true;
  return parallel <= serial * kParallelTolerance ||
         parallel - serial <= kParallelMinDelta;
}

/// Pre-migration wall times captured at commit b73a4db (nested-vector
/// layout, binary-search NN lookups, unconditional PARFOR forking), same
/// machine, best-of-3 (best-of-1 at paper scale).  Emitted as
/// layout="nested" rows so the JSON carries genuine before/after pairs, and
/// used for the layout-speedup rows below.
struct NestedBaseline {
  std::uint32_t servers;
  std::uint32_t objects;
  const char* demand;
  bool incremental;
  bool parallel;
  double seconds;
  std::uint64_t rounds;
};
constexpr NestedBaseline kNestedBaselines[] = {
    {256, 2560, "trace", false, false, 0.00567, 968},
    {256, 2560, "trace", false, true, 0.00677, 968},
    {256, 2560, "trace", true, false, 0.00799, 968},
    {256, 2560, "trace", true, true, 0.00954, 968},
    {256, 2560, "dispersed", false, false, 0.0407, 3403},
    {256, 2560, "dispersed", false, true, 0.0486, 3403},
    {256, 2560, "dispersed", true, false, 0.00618, 3403},
    {256, 2560, "dispersed", true, true, 0.00592, 3403},
    {3000, 25600, "dispersed", false, false, 11.83, 31787},
    {3000, 25600, "dispersed", false, true, 13.35, 31787},
    {3000, 25600, "dispersed", true, false, 0.1012, 31787},
    {3000, 25600, "dispersed", true, true, 0.1002, 31787},
};

const NestedBaseline* find_baseline(std::uint32_t servers,
                                    std::uint32_t objects, const char* demand,
                                    bool incremental, bool parallel) {
  for (const NestedBaseline& b : kNestedBaselines) {
    if (b.servers == servers && b.objects == objects &&
        std::strcmp(b.demand, demand) == 0 &&
        b.incremental == incremental && b.parallel == parallel) {
      return &b;
    }
  }
  return nullptr;
}

struct ModeOutcome {
  double seconds = 0.0;
  std::uint64_t rounds = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t reports = 0;
  core::ReportMode resolved = core::ReportMode::Naive;
};

ModeOutcome time_mechanism(const drp::Problem& p, core::ReportMode mode,
                           bool parallel, int repetitions) {
  core::AgtRamConfig cfg;
  cfg.report_mode = mode;
  cfg.parallel_agents = parallel;
  ModeOutcome best;
  best.seconds = 1e30;
  for (int rep = 0; rep < repetitions; ++rep) {
    common::Timer timer;
    const core::MechanismResult result = core::run_agt_ram(p, cfg);
    const double seconds = timer.seconds();
    if (seconds < best.seconds) {
      best.seconds = seconds;
      best.rounds = result.rounds.size();
      best.evaluations = result.candidate_evaluations;
      best.reports = result.reports_computed;
      best.resolved = result.resolved_mode;
    }
  }
  return best;
}

struct FamilyReport {
  bool parallel_ok = true;
};

FamilyReport run_family(bench::JsonWriter& json, const drp::Problem& p,
                        const char* demand, std::uint32_t servers,
                        std::uint32_t objects, int reps,
                        bench::JsonlTrace* trace) {
  FamilyReport family;
  ModeOutcome outcomes[2][2];  // [incremental][parallel]
  for (const bool incremental : {false, true}) {
    const core::ReportMode mode = incremental ? core::ReportMode::Incremental
                                              : core::ReportMode::Naive;
    for (const bool parallel : {false, true}) {
      core::AgtRamConfig cfg;
      cfg.report_mode = mode;
      cfg.parallel_agents = parallel;
      const bench::ObsSnapshot obs_before = bench::ObsSnapshot::take();
      const ModeOutcome o = time_mechanism(p, mode, parallel, reps);
      const bench::ObsSnapshot obs_after = bench::ObsSnapshot::take();
      outcomes[incremental ? 1 : 0][parallel ? 1 : 0] = o;
      bench::JsonWriter::Record record;
      record.field("benchmark", "mechanism_full_run")
          .field("servers", static_cast<std::uint64_t>(servers))
          .field("objects", static_cast<std::uint64_t>(objects))
          .field("demand", demand)
          .field("layout", "flat")
          .field("incremental_reports", incremental)
          .field("parallel_agents", parallel)
          .field("seconds", o.seconds)
          .field("rounds", o.rounds)
          .field("candidate_evaluations", o.evaluations)
          .field("reports_computed", o.reports)
          .object_field("obs",
                        bench::obs_block(bench::mechanism_decisions(p, cfg),
                                         obs_before, obs_after,
                                         static_cast<std::uint64_t>(reps)));
      json.add(std::move(record));
      std::printf("mechanism %ux%u %s/%s/%s: %.4fs, %llu rounds, %llu reports\n",
                  servers, objects, demand,
                  bench::report_mode_name(mode),
                  parallel ? "parallel" : "serial", o.seconds,
                  static_cast<unsigned long long>(o.rounds),
                  static_cast<unsigned long long>(o.reports));

      // Before/after pair: the pre-migration capture for this exact cell,
      // plus the flat/nested speedup.
      if (const NestedBaseline* before =
              find_baseline(servers, objects, demand, incremental, parallel)) {
        bench::JsonWriter::Record nested;
        nested.field("benchmark", "mechanism_full_run")
            .field("servers", static_cast<std::uint64_t>(servers))
            .field("objects", static_cast<std::uint64_t>(objects))
            .field("demand", demand)
            .field("layout", "nested")
            .field("captured_at", "b73a4db")
            .field("incremental_reports", incremental)
            .field("parallel_agents", parallel)
            .field("seconds", before->seconds)
            .field("rounds", before->rounds);
        json.add(std::move(nested));
        bench::JsonWriter::Record speedup;
        speedup.field("benchmark", "mechanism_layout_speedup")
            .field("servers", static_cast<std::uint64_t>(servers))
            .field("objects", static_cast<std::uint64_t>(objects))
            .field("demand", demand)
            .field("incremental_reports", incremental)
            .field("parallel_agents", parallel)
            .field("nested_seconds", before->seconds)
            .field("flat_seconds", o.seconds)
            .field("speedup",
                   o.seconds > 0.0 ? before->seconds / o.seconds : 0.0);
        json.add(std::move(speedup));
        std::printf("  vs nested layout (%.4fs): %.2fx\n", before->seconds,
                    o.seconds > 0.0 ? before->seconds / o.seconds : 0.0);
      }
    }
  }

  // Enforced execution policy: parallel must not lose to serial on any
  // emitted row (the round-size cutoff makes sub-crossover rounds take the
  // identical inline path, so anything beyond tolerance is a real
  // regression).
  for (const bool incremental : {false, true}) {
    const double serial = outcomes[incremental ? 1 : 0][0].seconds;
    const double parallel = outcomes[incremental ? 1 : 0][1].seconds;
    const bool ok = parallel_within_policy(serial, parallel);
    family.parallel_ok = family.parallel_ok && ok;
    bench::JsonWriter::Record record;
    record.field("benchmark", "parallel_vs_serial_check")
        .field("servers", static_cast<std::uint64_t>(servers))
        .field("objects", static_cast<std::uint64_t>(objects))
        .field("demand", demand)
        .field("incremental_reports", incremental)
        .field("serial_seconds", serial)
        .field("parallel_seconds", parallel)
        .field("tolerance", kParallelTolerance)
        .field("ok", ok);
    json.add(std::move(record));
    if (!ok) {
      std::fprintf(stderr,
                   "FAIL: parallel (%.4fs) slower than serial (%.4fs) on "
                   "%ux%u %s incremental=%d\n",
                   parallel, serial, servers, objects, demand,
                   incremental ? 1 : 0);
    }
  }

  for (const bool parallel : {false, true}) {
    const double naive = outcomes[0][parallel ? 1 : 0].seconds;
    const double incremental = outcomes[1][parallel ? 1 : 0].seconds;
    const double speedup = incremental > 0.0 ? naive / incremental : 0.0;
    bench::JsonWriter::Record record;
    record.field("benchmark", "mechanism_incremental_speedup")
        .field("servers", static_cast<std::uint64_t>(servers))
        .field("objects", static_cast<std::uint64_t>(objects))
        .field("demand", demand)
        .field("parallel_agents", parallel)
        .field("naive_seconds", naive)
        .field("incremental_seconds", incremental)
        .field("speedup", speedup);
    json.add(std::move(record));
    std::printf("speedup (%s, %s): %.2fx\n", demand,
                parallel ? "parallel" : "serial", speedup);
  }

  // ReportMode::Auto must land on the winning path for the family.
  {
    core::AgtRamConfig auto_cfg;
    auto_cfg.report_mode = core::ReportMode::Auto;
    auto_cfg.parallel_agents = false;
    const bench::ObsSnapshot before = bench::ObsSnapshot::take();
    const ModeOutcome o =
        time_mechanism(p, core::ReportMode::Auto, /*parallel=*/false, reps);
    const bench::ObsSnapshot after = bench::ObsSnapshot::take();
    const double naive = outcomes[0][0].seconds;
    const double incr = outcomes[1][0].seconds;
    const char* picked = bench::report_mode_name(o.resolved);
    const char* winner = naive <= incr ? "naive" : "incremental";
    bench::JsonWriter::Record record;
    record.field("benchmark", "mechanism_auto_mode")
        .field("servers", static_cast<std::uint64_t>(servers))
        .field("objects", static_cast<std::uint64_t>(objects))
        .field("demand", demand)
        .field("picked", picked)
        .field("measured_winner", winner)
        .field("seconds", o.seconds)
        .field("naive_seconds", naive)
        .field("incremental_seconds", incr)
        .object_field("obs",
                      bench::obs_block(bench::mechanism_decisions(p, auto_cfg),
                                       before, after,
                                       static_cast<std::uint64_t>(reps)));
    json.add(std::move(record));
    std::printf("auto mode (%s): picked %s, measured winner %s (%.4fs)\n",
                demand, picked, winner, o.seconds);
  }

  // Per-round trace: one untimed Auto-mode run under the JSONL sink.  Kept
  // outside the timing loops above so tracing never perturbs the numbers.
  if (trace != nullptr) {
    core::AgtRamConfig cfg;
    cfg.report_mode = core::ReportMode::Auto;
    bench::JsonWriter::Record meta;
    meta.field("benchmark", "mechanism_obs_trace")
        .field("servers", static_cast<std::uint64_t>(servers))
        .field("objects", static_cast<std::uint64_t>(objects))
        .field("demand", demand)
        .field("obs_enabled", bench::obs_enabled())
        .object_field("decisions", bench::mechanism_decisions(p, cfg));
    trace->meta(meta);
    const core::MechanismResult result = [&] {
      bench::ScopedTrace scoped(*trace);
      return core::run_agt_ram(p, cfg);
    }();
    trace->close();
    std::printf("obs trace (%ux%u %s): %zu rounds traced\n", servers, objects,
                demand, result.rounds.size());
  }
  return family;
}

// ---------------------------------------------------------------------------
// Baseline naive-vs-delta family.
//
// Each baseline is run three ways — naive oracle, delta serial, delta
// parallel — through the same registry entries the table binaries use.  The
// delta paths are bit-identical reformulations, so beyond the before/after
// timing rows the family asserts (nonzero exit) that every variant lands on
// the same placement cost and replica count, and that parallel scans never
// lose to serial beyond kParallelTolerance.
// ---------------------------------------------------------------------------

struct BaselineOutcome {
  double seconds = 0.0;
  double cost = 0.0;
  std::uint64_t replicas = 0;
};

BaselineOutcome time_baseline(const drp::Problem& p,
                              const baselines::AlgorithmEntry& algo,
                              int repetitions) {
  BaselineOutcome best;
  best.seconds = 1e30;
  for (int rep = 0; rep < repetitions; ++rep) {
    common::Timer timer;
    const drp::ReplicaPlacement placement = algo.run(p, /*seed=*/1);
    const double seconds = timer.seconds();
    if (seconds < best.seconds) {
      best.seconds = seconds;
      best.cost = drp::CostModel::total_cost(placement);
      best.replicas = placement.extra_replica_count();
    }
  }
  return best;
}

bool run_baseline_family(bench::JsonWriter& json, const drp::Problem& p,
                         const char* demand, std::uint32_t servers,
                         std::uint32_t objects,
                         const std::vector<std::string>& names, int reps) {
  struct Variant {
    const char* eval;
    bool parallel;
    baselines::AlgoOptions options;
  };
  const Variant variants[3] = {
      {"naive", false, {baselines::EvalPath::Naive, false}},
      {"delta", false, {baselines::EvalPath::Delta, false}},
      {"delta", true, {baselines::EvalPath::Delta, true}},
  };
  bool ok = true;
  for (const std::string& name : names) {
    BaselineOutcome out[3];
    for (int v = 0; v < 3; ++v) {
      const baselines::AlgorithmEntry algo =
          baselines::find_algorithm(name, variants[v].options);
      const bench::ObsSnapshot before = bench::ObsSnapshot::take();
      out[v] = time_baseline(p, algo, reps);
      const bench::ObsSnapshot after = bench::ObsSnapshot::take();
      bench::JsonWriter::Record record;
      record.field("benchmark", "baseline_run")
          .field("algorithm", name)
          .field("servers", static_cast<std::uint64_t>(servers))
          .field("objects", static_cast<std::uint64_t>(objects))
          .field("demand", demand)
          .field("eval", variants[v].eval)
          .field("parallel_scan", variants[v].parallel)
          .field("seconds", out[v].seconds)
          .field("total_cost", out[v].cost)
          .field("extra_replicas", out[v].replicas)
          .object_field(
              "obs",
              bench::obs_block(
                  bench::baseline_decisions(
                      p,
                      variants[v].options.eval == baselines::EvalPath::Delta,
                      variants[v].parallel),
                  before, after, static_cast<std::uint64_t>(reps)));
      json.add(std::move(record));
      std::printf("baseline %-11s %ux%u %s %s/%s: %.4fs, %llu replicas\n",
                  name.c_str(), servers, objects, demand, variants[v].eval,
                  variants[v].parallel ? "parallel" : "serial", out[v].seconds,
                  static_cast<unsigned long long>(out[v].replicas));
    }

    // The delta engine is a bit-identical reformulation of the naive oracle:
    // same placement, same total cost (bitwise), for every baseline.
    bool identical = true;
    for (int v = 1; v < 3; ++v) {
      if (out[v].cost != out[0].cost || out[v].replicas != out[0].replicas) {
        identical = false;
        std::fprintf(stderr,
                     "FAIL: %s %s/%s diverged from naive: cost %.17g vs "
                     "%.17g, replicas %llu vs %llu\n",
                     name.c_str(), variants[v].eval,
                     variants[v].parallel ? "parallel" : "serial", out[v].cost,
                     out[0].cost,
                     static_cast<unsigned long long>(out[v].replicas),
                     static_cast<unsigned long long>(out[0].replicas));
      }
    }
    ok = ok && identical;
    bench::JsonWriter::Record identity;
    identity.field("benchmark", "baseline_identity_check")
        .field("algorithm", name)
        .field("servers", static_cast<std::uint64_t>(servers))
        .field("objects", static_cast<std::uint64_t>(objects))
        .field("demand", demand)
        .field("ok", identical);
    json.add(std::move(identity));

    const double serial_speedup =
        out[1].seconds > 0.0 ? out[0].seconds / out[1].seconds : 0.0;
    const double parallel_speedup =
        out[2].seconds > 0.0 ? out[0].seconds / out[2].seconds : 0.0;
    bench::JsonWriter::Record speedup;
    speedup.field("benchmark", "baseline_speedup")
        .field("algorithm", name)
        .field("servers", static_cast<std::uint64_t>(servers))
        .field("objects", static_cast<std::uint64_t>(objects))
        .field("demand", demand)
        .field("naive_seconds", out[0].seconds)
        .field("delta_serial_seconds", out[1].seconds)
        .field("delta_parallel_seconds", out[2].seconds)
        .field("serial_speedup", serial_speedup)
        .field("parallel_speedup", parallel_speedup);
    json.add(std::move(speedup));
    std::printf("  %s delta speedup: %.2fx serial, %.2fx parallel\n",
                name.c_str(), serial_speedup, parallel_speedup);

    // Same execution policy as the mechanism rows: parallel candidate scans
    // must never lose to serial (the round-size cutoffs degrade them to the
    // identical inline path below the crossover).
    const bool parallel_ok =
        parallel_within_policy(out[1].seconds, out[2].seconds);
    ok = ok && parallel_ok;
    bench::JsonWriter::Record check;
    check.field("benchmark", "baseline_parallel_check")
        .field("algorithm", name)
        .field("servers", static_cast<std::uint64_t>(servers))
        .field("objects", static_cast<std::uint64_t>(objects))
        .field("demand", demand)
        .field("serial_seconds", out[1].seconds)
        .field("parallel_seconds", out[2].seconds)
        .field("tolerance", kParallelTolerance)
        .field("ok", parallel_ok);
    json.add(std::move(check));
    if (!parallel_ok) {
      std::fprintf(stderr,
                   "FAIL: %s parallel scan (%.4fs) slower than serial "
                   "(%.4fs) on %ux%u %s\n",
                   name.c_str(), out[2].seconds, out[1].seconds, servers,
                   objects, demand);
    }
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Kernel-engine family (--kernels=0 skips).
//
// The kernel shapes of DESIGN.md §10 timed three ways over one seeded
// placement per scale:
//
//   aos    — the pre-change AoS loops (per-slot is_replicator probes,
//            per-use static_casts, the two-pointer w_ik merge), transcribed
//            verbatim below; the capture the issue's >= 1.5x acceptance
//            speedup is measured against,
//   scalar — the shipped kernel entry points with the vector paths forced
//            off (kernels::set_simd_enabled(false)): SoA streams + member
//            masks, portable loops,
//   simd   — the same entry points with the vector paths on; rows emitted
//            only when the binary carries the AVX2 TU and the CPU runs it.
//
// Each row reports best-of wall seconds plus ns per processed item
// (accessor slots for the sweeps, rep entries for the min-reduce, benefit
// cells for the candidate scan) under the shared ns_per_accessor field.
// The family asserts — nonzero exit — that every variant lands on
// bit-identical checksums: the FP contract, enforced at the exact
// workloads where the speedup is claimed.

struct KernelWork {
  double checksum = 0.0;    ///< primary bitwise-compared accumulator
  double checksum2 = 0.0;   ///< secondary accumulator (savings / winners)
  std::uint64_t items = 0;  ///< ns_per_accessor denominator
};

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Deterministic replica seeding for the kernel workloads: each object's
/// first two accessor servers (so the member branches of the sweeps fire),
/// then a strided probe over all servers — most reader slots stay active,
/// keeping the read-savings loops the scan kernels exist for on the hot
/// path.  Round-robin across objects so the capacity budget spreads instead
/// of draining on the first objects; depth 24 pushes typical rep lists past
/// the SIMD min-reduce cutoff wherever capacity allows.
drp::ReplicaPlacement seeded_placement(const drp::Problem& p) {
  constexpr std::uint32_t kDepth = 24;
  const auto m = static_cast<std::uint32_t>(p.server_count());
  drp::ReplicaPlacement placement(p);
  for (std::uint32_t depth = 0; depth < kDepth; ++depth) {
    for (drp::ObjectIndex k = 0; k < p.object_count(); ++k) {
      const auto accessors = p.access.accessors(k);
      const drp::ServerId i =
          depth < 2 && depth < accessors.size()
              ? accessors[depth].server
              : static_cast<drp::ServerId>((k * 61u + depth * 97u + 1u) % m);
      if (placement.can_replicate(i, k)) placement.add_replica(i, k);
    }
  }
  return placement;
}

/// Pre-change accessor sweep of CostModel::object_cost /
/// DeltaEvaluator::refresh (the loop kernels::object_cost_accumulate
/// replaced), minus the demandless-replicator spur both code paths still
/// share.
void aos_object_cost_sweep(const drp::ReplicaPlacement& placement,
                           drp::ObjectIndex k, double& cost, double& saving) {
  const drp::Problem& p = placement.problem();
  const double o = static_cast<double>(p.object_units[k]);
  const double w_total = static_cast<double>(p.access.total_writes(k));
  const auto accessors = p.access.accessors(k);
  const auto nn = placement.nn_row(k);
  const auto primary_row = p.distances->row(p.primary[k]);
  for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
    const drp::Access& a = accessors[slot];
    const double c_primary = static_cast<double>(primary_row[a.server]);
    cost += static_cast<double>(a.writes) * o * c_primary;
    if (placement.is_replicator(a.server, k)) {
      cost += (w_total - static_cast<double>(a.writes)) * o * c_primary;
    } else {
      cost += static_cast<double>(a.reads) * o * static_cast<double>(nn[slot]);
      if (a.reads != 0) {
        saving +=
            static_cast<double>(a.reads) * o * static_cast<double>(nn[slot]);
      }
    }
  }
}

/// Pre-change CostModel::global_benefit: per-slot is_replicator probes over
/// the AoS cells, then the broadcast-price subtraction off a per-call
/// writes(i, k) lookup.
double aos_global_benefit(const drp::ReplicaPlacement& placement,
                          drp::ServerId i, drp::ObjectIndex k) {
  const drp::Problem& p = placement.problem();
  const double o = static_cast<double>(p.object_units[k]);
  double benefit = 0.0;
  const auto accessors = p.access.accessors(k);
  const auto nn = placement.nn_row(k);
  const auto i_row = p.distances->row(i);
  for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
    const drp::Access& a = accessors[slot];
    if (a.reads == 0 || placement.is_replicator(a.server, k)) continue;
    const net::Cost current = nn[slot];
    const net::Cost with_i = std::min(current, i_row[a.server]);
    benefit += static_cast<double>(a.reads) * o *
               (static_cast<double>(current) - static_cast<double>(with_i));
  }
  benefit -= (static_cast<double>(p.access.total_writes(k)) -
              static_cast<double>(p.access.writes(i, k))) *
             o * static_cast<double>(p.distance(p.primary[k], i));
  return benefit;
}

/// Pre-change DeltaEvaluator::best_add_for_object, inline scan: per-slot
/// is_replicator probes, scalar row walks, and the two-pointer w_ik merge
/// for the broadcast pass.
drp::DeltaEvaluator::BestAdd aos_best_add(
    const drp::ReplicaPlacement& placement, drp::ObjectIndex k,
    std::vector<double>& benefit) {
  const drp::Problem& p = placement.problem();
  const std::size_t m = p.server_count();
  const double o = static_cast<double>(p.object_units[k]);
  const double w_total = static_cast<double>(p.access.total_writes(k));
  const auto accessors = p.access.accessors(k);
  const auto nn = placement.nn_row(k);
  const auto primary_row = p.distances->row(p.primary[k]);
  benefit.assign(m, 0.0);
  for (std::size_t slot = 0; slot < accessors.size(); ++slot) {
    const drp::Access& a = accessors[slot];
    if (a.reads == 0 || placement.is_replicator(a.server, k)) continue;
    const auto a_row = p.distances->row(a.server);
    const net::Cost current = nn[slot];
    const double ro = static_cast<double>(a.reads) * o;
    for (std::size_t i = 0; i < m; ++i) {
      const net::Cost with_i = std::min(current, a_row[i]);
      benefit[i] +=
          ro * (static_cast<double>(current) - static_cast<double>(with_i));
    }
  }
  std::size_t ptr = 0;
  for (std::size_t i = 0; i < m; ++i) {
    while (ptr < accessors.size() && accessors[ptr].server < i) ++ptr;
    const double w_i = (ptr < accessors.size() && accessors[ptr].server == i)
                           ? static_cast<double>(accessors[ptr].writes)
                           : 0.0;
    benefit[i] -= (w_total - w_i) * o * static_cast<double>(primary_row[i]);
  }
  drp::DeltaEvaluator::BestAdd best;
  for (std::size_t i = 0; i < m; ++i) {
    const auto server = static_cast<drp::ServerId>(i);
    if (!placement.can_replicate(server, k)) continue;
    if (benefit[i] > best.benefit) {
      best.benefit = benefit[i];
      best.server = server;
    }
  }
  return best;
}

bool run_kernel_family(bench::JsonWriter& json, const drp::Problem& p,
                       const char* demand, std::uint32_t servers,
                       std::uint32_t objects, int reps, int passes) {
  const std::size_t n = p.object_count();
  const std::size_t m = p.server_count();
  const drp::ReplicaPlacement placement = seeded_placement(p);
  const drp::DeltaEvaluator eval{drp::ReplicaPlacement(placement)};
  std::printf("kernels %ux%u %s: seeded placement, %zu extra replicas\n",
              servers, objects, demand, placement.extra_replica_count());

  // One non-replicator benefit candidate per object, fixed up front so every
  // variant prices the identical (i, k) set.
  std::vector<drp::ServerId> candidate(n);
  for (drp::ObjectIndex k = 0; k < n; ++k) {
    auto i = static_cast<drp::ServerId>((k * 7919u + 3u) % m);
    while (placement.is_replicator(i, k)) {
      i = static_cast<drp::ServerId>((i + 1u) % m);
    }
    candidate[k] = i;
  }

  const auto object_cost_work = [&](bool aos) {
    KernelWork w;
    for (int pass = 0; pass < passes; ++pass) {
      double cost = 0.0;
      double saving = 0.0;
      for (drp::ObjectIndex k = 0; k < n; ++k) {
        if (aos) {
          aos_object_cost_sweep(placement, k, cost, saving);
        } else {
          const auto srv = p.access.accessor_servers(k);
          drp::kernels::Scratch& scratch = drp::kernels::tls_scratch();
          scratch.mask.resize(srv.size());
          drp::kernels::member_mask(srv, placement.replicators(k),
                                    scratch.mask.data());
          const drp::kernels::CostAccum acc =
              drp::kernels::object_cost_accumulate(
                  srv, p.access.accessor_reads_d(k),
                  p.access.accessor_writes_d(k), placement.nn_row(k),
                  p.distances->row(p.primary[k]), scratch.mask.data(),
                  static_cast<double>(p.object_units[k]),
                  static_cast<double>(p.access.total_writes(k)));
          cost += acc.cost;
          saving += acc.saving;
        }
      }
      w.checksum = cost;
      w.checksum2 = saving;
    }
    w.items = static_cast<std::uint64_t>(passes) * p.access.nonzeros();
    return w;
  };

  const auto nn_min_work = [&](bool aos) {
    KernelWork w;
    double sum = 0.0;
    for (int pass = 0; pass < passes; ++pass) {
      sum = 0.0;
      for (drp::ObjectIndex k = 0; k < n; ++k) {
        const auto reps_k = placement.replicators(k);
        for (std::uint32_t j = 0; j < 4; ++j) {
          const auto probe =
              static_cast<drp::ServerId>((k * 2654435761u + 40503u * j) % m);
          const auto row = p.distances->row(probe);
          net::Cost v;
          if (aos) {
            v = net::kUnreachable;
            for (const drp::ServerId r : reps_k) v = std::min(v, row[r]);
          } else {
            v = drp::kernels::nn_min(row, reps_k);
          }
          sum += static_cast<double>(v);
        }
        if (pass == 0) w.items += 4ull * reps_k.size();
      }
    }
    w.checksum = sum;
    w.items *= static_cast<std::uint64_t>(passes);
    return w;
  };

  const auto global_benefit_work = [&](bool aos) {
    KernelWork w;
    double sum = 0.0;
    for (int pass = 0; pass < passes; ++pass) {
      sum = 0.0;
      for (drp::ObjectIndex k = 0; k < n; ++k) {
        sum += aos ? aos_global_benefit(placement, candidate[k], k)
                   : drp::CostModel::global_benefit(placement, candidate[k], k);
      }
    }
    w.checksum = sum;
    w.items = static_cast<std::uint64_t>(passes) * p.access.nonzeros();
    return w;
  };

  // Candidate-scan subset: ~512 objects, strided so the subset spans the
  // catalogue.  Each scanned object prices all M servers.
  const std::size_t stride = std::max<std::size_t>(1, n / 512);
  drp::DeltaEvaluator::ScanScratch scan_scratch;
  std::vector<double> aos_benefit;
  const auto best_add_work = [&](bool aos) {
    KernelWork w;
    double bsum = 0.0;
    double ssum = 0.0;
    std::uint64_t scanned = 0;
    for (int pass = 0; pass < passes; ++pass) {
      bsum = 0.0;
      ssum = 0.0;
      scanned = 0;
      for (drp::ObjectIndex k = 0; k < n; k += stride) {
        const drp::DeltaEvaluator::BestAdd best =
            aos ? aos_best_add(placement, k, aos_benefit)
                : eval.best_add_for_object(k, nullptr, scan_scratch,
                                           /*parallel=*/false);
        bsum += best.benefit;
        ssum += static_cast<double>(best.server);
        ++scanned;
      }
    }
    w.checksum = bsum;
    w.checksum2 = ssum;
    w.items = static_cast<std::uint64_t>(passes) * scanned * m;
    return w;
  };

  struct VariantRun {
    bool ran = false;
    double seconds = 0.0;
    KernelWork work;
  };
  static constexpr const char* kVariantName[3] = {"aos", "scalar", "simd"};

  const auto measure = [&](const char* row_name, auto&& work_fn) {
    VariantRun runs[3];
    for (int v = 0; v < 3; ++v) {
      if (v == 1) drp::kernels::set_simd_enabled(false);
      if (v == 2) {
        drp::kernels::set_simd_enabled(true);
        if (!drp::kernels::simd_active()) {
          std::printf("  %-21s simd  : unavailable in this build/CPU\n",
                      row_name);
          continue;
        }
      }
      VariantRun& run = runs[v];
      run.ran = true;
      run.seconds = 1e30;
      for (int rep = 0; rep < reps; ++rep) {
        common::Timer timer;
        const KernelWork work = work_fn(v == 0);
        const double s = timer.seconds();
        if (s < run.seconds) {
          run.seconds = s;
          run.work = work;
        }
      }
      const double ns = run.work.items > 0
                            ? run.seconds * 1e9 /
                                  static_cast<double>(run.work.items)
                            : 0.0;
      bench::JsonWriter::Record record;
      record.field("benchmark", row_name)
          .field("servers", static_cast<std::uint64_t>(servers))
          .field("objects", static_cast<std::uint64_t>(objects))
          .field("demand", demand)
          .field("variant", kVariantName[v])
          .field("seconds", run.seconds)
          .field("items", run.work.items)
          .field("ns_per_accessor", ns);
      json.add(std::move(record));
      std::printf("  %-21s %-6s: %.4fs, %.3f ns/item\n", row_name,
                  kVariantName[v], run.seconds, ns);
    }
    drp::kernels::set_simd_enabled(true);

    // FP contract, enforced on the timed workload itself: scalar and simd
    // must land bit for bit on the aos capture's checksums.
    bool identical = true;
    for (int v = 1; v < 3; ++v) {
      if (!runs[v].ran) continue;
      if (!bits_equal(runs[v].work.checksum, runs[0].work.checksum) ||
          !bits_equal(runs[v].work.checksum2, runs[0].work.checksum2) ||
          runs[v].work.items != runs[0].work.items) {
        identical = false;
        std::fprintf(stderr,
                     "FAIL: %s %s diverged from aos: %a/%a vs %a/%a\n",
                     row_name, kVariantName[v], runs[v].work.checksum,
                     runs[v].work.checksum2, runs[0].work.checksum,
                     runs[0].work.checksum2);
      }
    }
    bench::JsonWriter::Record identity;
    identity.field("benchmark", "kernel_identity_check")
        .field("kernel", row_name)
        .field("servers", static_cast<std::uint64_t>(servers))
        .field("objects", static_cast<std::uint64_t>(objects))
        .field("demand", demand)
        .field("ok", identical);
    json.add(std::move(identity));

    bench::JsonWriter::Record speedup;
    speedup.field("benchmark", "kernel_speedup")
        .field("kernel", row_name)
        .field("servers", static_cast<std::uint64_t>(servers))
        .field("objects", static_cast<std::uint64_t>(objects))
        .field("demand", demand)
        .field("aos_seconds", runs[0].seconds)
        .field("scalar_seconds", runs[1].seconds);
    const double scalar_vs_aos =
        runs[1].seconds > 0.0 ? runs[0].seconds / runs[1].seconds : 0.0;
    speedup.field("scalar_vs_aos", scalar_vs_aos);
    if (runs[2].ran) {
      const double simd_vs_aos =
          runs[2].seconds > 0.0 ? runs[0].seconds / runs[2].seconds : 0.0;
      const double simd_vs_scalar =
          runs[2].seconds > 0.0 ? runs[1].seconds / runs[2].seconds : 0.0;
      speedup.field("simd_seconds", runs[2].seconds)
          .field("simd_vs_aos", simd_vs_aos)
          .field("simd_vs_scalar", simd_vs_scalar);
      std::printf("  %-21s speedup: %.2fx scalar, %.2fx simd vs aos\n",
                  row_name, scalar_vs_aos, simd_vs_aos);
    } else {
      std::printf("  %-21s speedup: %.2fx scalar vs aos (no simd)\n",
                  row_name, scalar_vs_aos);
    }
    json.add(std::move(speedup));
    return identical;
  };

  bool ok = true;
  ok = measure("kernel_object_cost", object_cost_work) && ok;
  ok = measure("kernel_nn_min", nn_min_work) && ok;
  ok = measure("kernel_global_benefit", global_benefit_work) && ok;
  ok = measure("kernel_best_add_scan", best_add_work) && ok;
  return ok;
}

// ---------------------------------------------------------------------------
// Regional family (--regional=0 skips).
//
// Two halves.  (1) The shared-placement engines — regional auction,
// cooperative coalitions, two-level hierarchy — timed serial vs sharded on
// the mech- and paper-scale dispersed instances.  Serial and Sharded are
// byte-identical by construction (snapshot-epoch polling, commits in region
// order), so beyond the timing rows the family asserts — nonzero exit —
// that both executions land on the same allocations, charges, and epochs,
// and that the sharded run never loses to serial beyond the same noise
// policy the mechanism rows enforce.  (2) The tiled large-M engine at
// M = 10k-100k: per-(M, R) cell the partition (sampled clustering + tiled
// distance blocks) is built once and reused by the timed serial/sharded
// runs; cells whose distance state would blow the memory budget emit a
// regional_budget_skip row instead of silently capping.
// ---------------------------------------------------------------------------

const char* execution_name(core::RegionalExecution execution) {
  return execution == core::RegionalExecution::Sharded ? "sharded" : "serial";
}

using AllocationList = std::vector<std::pair<drp::ServerId, drp::ObjectIndex>>;

AllocationList extra_allocations(const drp::ReplicaPlacement& placement) {
  AllocationList out;
  const drp::Problem& p = placement.problem();
  for (drp::ObjectIndex k = 0; k < p.object_count(); ++k) {
    for (const drp::ServerId s : placement.replicators(k)) {
      if (s != p.primary[k]) out.emplace_back(s, k);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct RegionalEngineOutcome {
  double seconds = 0.0;
  std::size_t epochs = 0;
  std::size_t replicas = 0;
  double charges = 0.0;
  double final_cost = 0.0;
  std::uint64_t reports = 0;
  std::uint64_t wire_bytes = 0;
  AllocationList allocations;
};

RegionalEngineOutcome time_regional_engine(const drp::Problem& p,
                                           const char* variant,
                                           const core::RegionalConfig& cfg,
                                           int repetitions) {
  RegionalEngineOutcome best;
  best.seconds = 1e30;
  for (int rep = 0; rep < repetitions; ++rep) {
    common::Timer timer;
    RegionalEngineOutcome out;
    if (std::strcmp(variant, "hierarchical") == 0) {
      const core::HierarchicalResult result = core::run_hierarchical(p, cfg);
      out.seconds = timer.seconds();
      out.epochs = result.rounds.size();
      out.charges = result.total_charges;
      out.reports = result.top_level_reports;
      out.final_cost = drp::CostModel::total_cost(result.placement);
      out.allocations = extra_allocations(result.placement);
      out.replicas = out.allocations.size();
    } else {
      const core::RegionalResult result =
          std::strcmp(variant, "cooperative") == 0
              ? core::run_regional_cooperative(p, cfg)
              : core::run_regional(p, cfg);
      out.seconds = timer.seconds();
      out.epochs = result.epochs;
      out.replicas = result.replicas_placed();
      for (const core::RegionOutcome& region : result.regions) {
        out.charges += region.charges;
        out.reports += region.reports_polled;
        out.wire_bytes += region.wire_bytes;
      }
      out.final_cost = drp::CostModel::total_cost(result.placement);
      out.allocations = extra_allocations(result.placement);
    }
    if (out.seconds < best.seconds) best = std::move(out);
  }
  return best;
}

bool run_regional_engine_family(bench::JsonWriter& json, const drp::Problem& p,
                                const char* demand, std::uint32_t servers,
                                std::uint32_t objects,
                                bool include_hierarchical, int reps) {
  const double initial = drp::CostModel::initial_cost(p);
  const std::uint32_t regions =
      std::min<std::uint32_t>(32, std::max<std::uint32_t>(2, servers / 8));
  bool ok = true;
  std::vector<const char*> variants = {"regional", "cooperative"};
  if (include_hierarchical) variants.push_back("hierarchical");
  for (const char* variant : variants) {
    RegionalEngineOutcome out[2];  // [serial, sharded]
    for (int e = 0; e < 2; ++e) {
      core::RegionalConfig cfg;
      cfg.regions = regions;
      cfg.seed = 42;
      cfg.execution = e != 0 ? core::RegionalExecution::Sharded
                             : core::RegionalExecution::Serial;
      cfg.parallel_agents = e != 0;
      const bench::ObsSnapshot before = bench::ObsSnapshot::take();
      out[e] = time_regional_engine(p, variant, cfg, reps);
      const bench::ObsSnapshot after = bench::ObsSnapshot::take();
      const double savings =
          initial > 0.0 ? (initial - out[e].final_cost) / initial : 0.0;
      bench::JsonWriter::Record record;
      record.field("benchmark", "regional_engine_run")
          .field("servers", static_cast<std::uint64_t>(servers))
          .field("objects", static_cast<std::uint64_t>(objects))
          .field("demand", demand)
          .field("variant", variant)
          .field("regions", static_cast<std::uint64_t>(regions))
          .field("execution", execution_name(cfg.execution))
          .field("seconds", out[e].seconds)
          .field("epochs", static_cast<std::uint64_t>(out[e].epochs))
          .field("replicas", static_cast<std::uint64_t>(out[e].replicas))
          .field("charges", out[e].charges)
          .field("savings", savings)
          .field("reports_polled", out[e].reports)
          .field("wire_bytes", out[e].wire_bytes)
          .object_field(
              "obs",
              bench::obs_block(
                  bench::regional_decisions(regions, cfg.execution,
                                            std::strcmp(variant,
                                                        "cooperative") == 0,
                                            cfg.parallel_agents),
                  before, after, static_cast<std::uint64_t>(reps)));
      json.add(std::move(record));
      std::printf("regional %ux%u %s R=%u %s/%s: %.4fs, %zu epochs, "
                  "%zu replicas\n",
                  servers, objects, demand, regions, variant,
                  execution_name(cfg.execution), out[e].seconds,
                  out[e].epochs, out[e].replicas);
    }

    // Sharded must reproduce the serial engine byte for byte.
    const bool identical = out[0].allocations == out[1].allocations &&
                           out[0].charges == out[1].charges &&
                           out[0].epochs == out[1].epochs &&
                           out[0].reports == out[1].reports;
    ok = ok && identical;
    bench::JsonWriter::Record identity;
    identity.field("benchmark", "regional_identity_check")
        .field("servers", static_cast<std::uint64_t>(servers))
        .field("objects", static_cast<std::uint64_t>(objects))
        .field("demand", demand)
        .field("variant", variant)
        .field("regions", static_cast<std::uint64_t>(regions))
        .field("ok", identical);
    json.add(std::move(identity));
    if (!identical) {
      std::fprintf(stderr,
                   "FAIL: regional %s sharded diverged from serial on %ux%u "
                   "(%zu vs %zu allocations)\n",
                   variant, servers, objects, out[1].allocations.size(),
                   out[0].allocations.size());
    }

    const bool parallel_ok =
        parallel_within_policy(out[0].seconds, out[1].seconds);
    ok = ok && parallel_ok;
    bench::JsonWriter::Record check;
    check.field("benchmark", "regional_parallel_check")
        .field("servers", static_cast<std::uint64_t>(servers))
        .field("objects", static_cast<std::uint64_t>(objects))
        .field("demand", demand)
        .field("variant", variant)
        .field("regions", static_cast<std::uint64_t>(regions))
        .field("serial_seconds", out[0].seconds)
        .field("parallel_seconds", out[1].seconds)
        .field("tolerance", kParallelTolerance)
        .field("ok", parallel_ok);
    json.add(std::move(check));
    if (!parallel_ok) {
      std::fprintf(stderr,
                   "FAIL: regional %s sharded (%.4fs) slower than serial "
                   "(%.4fs) on %ux%u\n",
                   variant, out[1].seconds, out[0].seconds, servers, objects);
    }
  }

  if (include_hierarchical) {
    // The two-level mechanism is allocation-equivalent to the flat one; pin
    // it on the bench instance, against the sharded execution.
    const auto flat = core::run_agt_ram(p);
    core::RegionalConfig cfg;
    cfg.regions = regions;
    cfg.seed = 42;
    cfg.execution = core::RegionalExecution::Sharded;
    const core::HierarchicalResult hier = core::run_hierarchical(p, cfg);
    bool identical = flat.rounds.size() == hier.rounds.size();
    for (std::size_t r = 0; identical && r < flat.rounds.size(); ++r) {
      identical = flat.rounds[r].winner == hier.rounds[r].winner &&
                  flat.rounds[r].object == hier.rounds[r].object;
    }
    ok = ok && identical;
    bench::JsonWriter::Record identity;
    identity.field("benchmark", "regional_identity_check")
        .field("servers", static_cast<std::uint64_t>(servers))
        .field("objects", static_cast<std::uint64_t>(objects))
        .field("demand", demand)
        .field("variant", "hierarchical_vs_flat")
        .field("regions", static_cast<std::uint64_t>(regions))
        .field("ok", identical);
    json.add(std::move(identity));
    if (!identical) {
      std::fprintf(stderr,
                   "FAIL: hierarchical allocation sequence diverged from the "
                   "flat mechanism on %ux%u\n",
                   servers, objects);
    }
  }
  return ok;
}

struct TiledTimedRun {
  double seconds = 0.0;
  core::TiledRegionalResult result;
};

TiledTimedRun time_regional_tiled(const drp::SparseInstance& instance,
                                  const core::TiledPartition& partition,
                                  const core::TiledRegionalConfig& cfg,
                                  int repetitions) {
  TiledTimedRun best;
  best.seconds = 1e30;
  for (int rep = 0; rep < repetitions; ++rep) {
    common::Timer timer;
    core::TiledRegionalResult result =
        core::run_regional_tiled(instance, partition, cfg);
    const double seconds = timer.seconds();
    if (seconds < best.seconds) {
      best.seconds = seconds;
      best.result = std::move(result);
    }
  }
  return best;
}

bool run_regional_tiled_family(bench::JsonWriter& json,
                               const TrajectoryOptions& opts) {
  const auto budget = static_cast<std::uint64_t>(opts.regional_budget_mb *
                                                 1024.0 * 1024.0);
  const std::uint32_t smallest = *std::min_element(
      opts.regional_servers.begin(), opts.regional_servers.end());
  bool ok = true;
  for (const std::uint32_t servers : opts.regional_servers) {
    const std::uint32_t objects = servers * 2;
    common::Timer build_timer;
    drp::InstanceSpec spec;
    spec.servers = servers;
    spec.objects = objects;
    spec.seed = 42;
    if (servers > 1000) spec.topology = net::TopologyKind::PowerLaw;
    spec.demand = drp::DemandModel::Dispersed;
    spec.readers_per_object = 8.0;
    spec.instance.capacity_fraction = 0.01;
    spec.instance.rw_ratio = 0.9;
    const drp::SparseInstance instance = drp::make_sparse_instance(spec);
    std::printf("tiled instance %ux%u built in %.1fs (no dense closure)\n",
                servers, objects, build_timer.seconds());

    for (const std::uint32_t regions : opts.regional_regions) {
      if (regions >= servers) continue;
      core::TiledRegionalConfig base_cfg;
      base_cfg.regions = regions;
      base_cfg.seed = 42;
      base_cfg.distance_budget_bytes = budget;
      common::Timer partition_timer;
      const core::TiledPartition partition =
          core::make_tiled_partition(instance, base_cfg);
      const double partition_seconds = partition_timer.seconds();
      if (!partition.within_budget) {
        bench::JsonWriter::Record skip;
        skip.field("benchmark", "regional_budget_skip")
            .field("servers", static_cast<std::uint64_t>(servers))
            .field("objects", static_cast<std::uint64_t>(objects))
            .field("regions", static_cast<std::uint64_t>(regions))
            .field("tile_bytes", partition.tile_bytes)
            .field("budget_bytes", budget);
        json.add(std::move(skip));
        std::printf("tiled %ux%u R=%u: SKIPPED — distance tiles need "
                    "%.2f GiB, budget %.2f GiB\n",
                    servers, objects, regions,
                    static_cast<double>(partition.tile_bytes) / (1u << 30),
                    static_cast<double>(budget) / (1u << 30));
        continue;
      }

      // Cooperative shards only at the smallest M (the coalition scan is a
      // full member x object sweep per region — quadratic where the auction
      // is round-bounded); logged so the cap is visible.
      const bool with_cooperative =
          servers == smallest && regions == opts.regional_regions.front();
      for (const bool cooperative : {false, true}) {
        if (cooperative && !with_cooperative) continue;
        const char* variant = cooperative ? "cooperative" : "auction";
        TiledTimedRun out[2];  // [serial, sharded]
        for (int e = 0; e < 2; ++e) {
          core::TiledRegionalConfig cfg = base_cfg;
          cfg.cooperative = cooperative;
          cfg.execution = e != 0 ? core::RegionalExecution::Sharded
                                 : core::RegionalExecution::Serial;
          const bench::ObsSnapshot before = bench::ObsSnapshot::take();
          out[e] =
              time_regional_tiled(instance, partition, cfg, opts.regional_reps);
          const bench::ObsSnapshot after = bench::ObsSnapshot::take();
          const core::TiledRegionalResult& result = out[e].result;
          std::uint64_t reports = 0;
          std::uint64_t wire_bytes = 0;
          std::uint32_t largest = 0;
          for (const core::TiledShardOutcome& shard : result.shards) {
            reports += shard.reports_computed;
            wire_bytes += shard.wire_bytes;
            largest = std::max(largest, shard.member_count);
          }
          bench::JsonWriter::Record record;
          record.field("benchmark", "regional_tiled_run")
              .field("servers", static_cast<std::uint64_t>(servers))
              .field("objects", static_cast<std::uint64_t>(objects))
              .field("demand", "dispersed")
              .field("variant", variant)
              .field("regions", static_cast<std::uint64_t>(regions))
              .field("execution", execution_name(cfg.execution))
              .field("seconds", out[e].seconds)
              .field("partition_seconds", partition_seconds)
              .field("tile_bytes", result.tile_bytes)
              .field("largest_region", static_cast<std::uint64_t>(largest))
              .field("replicas",
                     static_cast<std::uint64_t>(result.replicas_placed()))
              .field("savings", result.savings())
              .field("reports_computed", reports)
              .field("wire_bytes", wire_bytes)
              .object_field(
                  "obs",
                  bench::obs_block(
                      bench::regional_decisions(regions, cfg.execution,
                                                cooperative,
                                                cfg.parallel_agents),
                      before, after,
                      static_cast<std::uint64_t>(opts.regional_reps)));
          json.add(std::move(record));
          std::printf("tiled %ux%u R=%u %s/%s: %.3fs (+%.1fs partition), "
                      "%zu replicas, %.1f%% savings, %.2f GiB tiles\n",
                      servers, objects, regions, variant,
                      execution_name(cfg.execution), out[e].seconds,
                      partition_seconds, result.replicas_placed(),
                      result.savings() * 100.0,
                      static_cast<double>(result.tile_bytes) / (1u << 30));
        }

        const bool identical =
            out[0].result.allocations == out[1].result.allocations &&
            out[0].result.final_cost == out[1].result.final_cost &&
            out[0].result.initial_cost == out[1].result.initial_cost;
        ok = ok && identical;
        bench::JsonWriter::Record identity;
        identity.field("benchmark", "regional_identity_check")
            .field("servers", static_cast<std::uint64_t>(servers))
            .field("objects", static_cast<std::uint64_t>(objects))
            .field("demand", "dispersed")
            .field("variant", std::string("tiled_") + variant)
            .field("regions", static_cast<std::uint64_t>(regions))
            .field("ok", identical);
        json.add(std::move(identity));
        if (!identical) {
          std::fprintf(stderr,
                       "FAIL: tiled %s sharded diverged from serial on %ux%u "
                       "R=%u\n",
                       variant, servers, objects, regions);
        }

        const bool parallel_ok =
            parallel_within_policy(out[0].seconds, out[1].seconds);
        ok = ok && parallel_ok;
        bench::JsonWriter::Record check;
        check.field("benchmark", "regional_parallel_check")
            .field("servers", static_cast<std::uint64_t>(servers))
            .field("objects", static_cast<std::uint64_t>(objects))
            .field("demand", "dispersed")
            .field("variant", std::string("tiled_") + variant)
            .field("regions", static_cast<std::uint64_t>(regions))
            .field("serial_seconds", out[0].seconds)
            .field("parallel_seconds", out[1].seconds)
            .field("tolerance", kParallelTolerance)
            .field("ok", parallel_ok);
        json.add(std::move(check));
        if (!parallel_ok) {
          std::fprintf(stderr,
                       "FAIL: tiled %s sharded (%.3fs) slower than serial "
                       "(%.3fs) on %ux%u R=%u\n",
                       variant, out[1].seconds, out[0].seconds, servers,
                       objects, regions);
        }
      }
    }
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Online re-convergence family (DESIGN.md §12): a long-lived OnlineMechanism
// absorbs a seeded mean-field event stream (demand drift, replica loss,
// server fail/join, object churn) and repairs incrementally after each
// batch.  Three comparisons per scale, all emitted as rows:
//
//  * online_event_run       — wall time of apply_events across the stream
//                             (steady state: the initial solve is excluded
//                             and reported separately on the row),
//  * online_fromscratch_run — one cold run_agt_ram on the drifted instance:
//                             what a system without the engine pays per
//                             event to stay converged,
//  * online_speedup         — from-scratch seconds over online seconds per
//                             event, gated >= 20x at mech scale and >= 50x
//                             at paper scale (skipped below mech scale),
//  * online_identity_check  — a second, untimed pass with the differential
//                             oracle ON: every drained batch re-solved with
//                             full participation and compared byte for byte.

/// Speedup floors, applied only at the scales they were calibrated for;
/// smoke-scale runs record the speedup without gating it.
constexpr double kOnlineSpeedupFloorMech = 20.0;
constexpr double kOnlineSpeedupFloorPaper = 50.0;

struct OnlineStreamOutcome {
  double seconds = 0.0;          ///< sum of apply_events wall time
  double initial_seconds = 0.0;  ///< constructor (initial full solve)
  std::uint64_t batches = 0;
  std::uint64_t events = 0;
  std::uint64_t dirty_agents = 0;
  std::uint64_t max_dirty_agents = 0;
  std::uint64_t repair_rounds = 0;
  std::uint64_t replicas_added = 0;
  std::uint64_t replicas_lost = 0;
  std::uint64_t reports_computed = 0;
  std::uint64_t candidate_evaluations = 0;
  double final_cost = 0.0;
};

/// One full pass over a fresh engine + fresh source (the stream is
/// deterministic per seed, so repetitions re-time identical work).  Returns
/// the engine so the caller can re-solve the drifted instance from scratch.
std::unique_ptr<core::OnlineMechanism> run_online_pass(
    const drp::Problem& p, const core::OnlineConfig& cfg,
    const runtime::OnlineEventModel& model, int batches,
    OnlineStreamOutcome& out) {
  common::Timer initial_timer;
  auto engine = std::make_unique<core::OnlineMechanism>(p, cfg);
  out.initial_seconds = initial_timer.seconds();
  runtime::OnlineEventSource source(*engine, model);
  for (int b = 0; b < batches; ++b) {
    const std::vector<core::OnlineEvent> batch = source.next_batch();
    common::Timer timer;
    const core::BatchOutcome res = engine->apply_events(batch);
    out.seconds += timer.seconds();
    ++out.batches;
    out.events += res.events_applied;
    out.dirty_agents += res.dirty_agents;
    out.max_dirty_agents =
        std::max<std::uint64_t>(out.max_dirty_agents, res.dirty_agents);
    out.repair_rounds += res.repair_rounds;
    out.replicas_added += res.replicas_added;
    out.replicas_lost += res.replicas_lost;
    out.reports_computed += res.reports_computed;
    out.candidate_evaluations += res.candidate_evaluations;
    out.final_cost = res.total_cost;
  }
  return engine;
}

bool run_online_family(bench::JsonWriter& json, const drp::Problem& p,
                       std::uint32_t servers, std::uint32_t objects,
                       int batches, int oracle_batches, int reps,
                       double speedup_floor) {
  core::OnlineConfig cfg;  // unbounded repair, oracle off for the timed pass
  runtime::OnlineEventModel model;
  model.seed = 42;

  const bench::ObsSnapshot before = bench::ObsSnapshot::take();
  OnlineStreamOutcome best;
  best.seconds = 1e30;
  std::unique_ptr<core::OnlineMechanism> engine;
  for (int rep = 0; rep < reps; ++rep) {
    OnlineStreamOutcome out;
    std::unique_ptr<core::OnlineMechanism> e =
        run_online_pass(p, cfg, model, batches, out);
    if (out.seconds < best.seconds) {
      best = out;
      engine = std::move(e);
    }
  }
  const bench::ObsSnapshot after = bench::ObsSnapshot::take();

  const double per_batch =
      best.batches > 0 ? best.seconds / static_cast<double>(best.batches) : 0.0;
  const double per_event =
      best.events > 0 ? best.seconds / static_cast<double>(best.events) : 0.0;
  bench::JsonWriter::Record stream;
  stream.field("benchmark", "online_event_run")
      .field("servers", static_cast<std::uint64_t>(servers))
      .field("objects", static_cast<std::uint64_t>(objects))
      .field("demand", "dispersed")
      .field("seconds", best.seconds)
      .field("initial_solve_seconds", best.initial_seconds)
      .field("batches", best.batches)
      .field("events", best.events)
      .field("seconds_per_batch", per_batch)
      .field("seconds_per_event", per_event)
      .field("dirty_agents", best.dirty_agents)
      .field("max_dirty_agents", best.max_dirty_agents)
      .field("repair_rounds", best.repair_rounds)
      .field("replicas_added", best.replicas_added)
      .field("replicas_lost", best.replicas_lost)
      .field("reports_computed", best.reports_computed)
      .field("candidate_evaluations", best.candidate_evaluations)
      .field("final_cost", best.final_cost)
      .object_field("obs",
                    bench::obs_block(bench::online_decisions(
                                         cfg, static_cast<std::uint64_t>(
                                                  batches)),
                                     before, after,
                                     static_cast<std::uint64_t>(reps)));
  json.add(std::move(stream));
  std::printf("online %ux%u: %llu events in %llu batches, %.4fs total "
              "(%.2f us/event), %llu repair rounds, %llu dirty agents\n",
              servers, objects, static_cast<unsigned long long>(best.events),
              static_cast<unsigned long long>(best.batches), best.seconds,
              per_event * 1e6,
              static_cast<unsigned long long>(best.repair_rounds),
              static_cast<unsigned long long>(best.dirty_agents));

  // The cost baseline: one cold run_agt_ram on the drifted instance — what
  // every event would cost without the engine.  Not a placement oracle (the
  // greedy round sequence is path-dependent and the mechanism never
  // evicts); the byte-identity oracle below is the correctness check.
  const drp::Problem& drifted = engine->problem();
  ModeOutcome scratch;
  scratch.seconds = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    common::Timer timer;
    const core::MechanismResult result =
        core::run_agt_ram(drifted, cfg.mechanism);
    const double seconds = timer.seconds();
    if (seconds < scratch.seconds) {
      scratch.seconds = seconds;
      scratch.rounds = result.rounds.size();
      scratch.evaluations = result.candidate_evaluations;
      scratch.reports = result.reports_computed;
      scratch.resolved = result.resolved_mode;
    }
  }
  bench::JsonWriter::Record fromscratch;
  fromscratch.field("benchmark", "online_fromscratch_run")
      .field("servers", static_cast<std::uint64_t>(servers))
      .field("objects", static_cast<std::uint64_t>(objects))
      .field("demand", "dispersed")
      .field("seconds", scratch.seconds)
      .field("rounds", scratch.rounds)
      .field("candidate_evaluations", scratch.evaluations)
      .field("reports_computed", scratch.reports)
      .field("report_mode_resolved",
             bench::report_mode_name(scratch.resolved));
  json.add(std::move(fromscratch));
  std::printf("online %ux%u from-scratch re-solve: %.4fs, %llu rounds\n",
              servers, objects, scratch.seconds,
              static_cast<unsigned long long>(scratch.rounds));

  const double speedup_event =
      per_event > 0.0 ? scratch.seconds / per_event : 0.0;
  const double speedup_batch =
      per_batch > 0.0 ? scratch.seconds / per_batch : 0.0;
  const bool gated = speedup_floor > 0.0;
  const bool speedup_ok = !gated || speedup_event >= speedup_floor;
  bench::JsonWriter::Record speedup;
  speedup.field("benchmark", "online_speedup")
      .field("servers", static_cast<std::uint64_t>(servers))
      .field("objects", static_cast<std::uint64_t>(objects))
      .field("demand", "dispersed")
      .field("fromscratch_seconds", scratch.seconds)
      .field("online_seconds_per_event", per_event)
      .field("online_seconds_per_batch", per_batch)
      .field("speedup_per_event", speedup_event)
      .field("speedup_per_batch", speedup_batch)
      .field("floor", speedup_floor)
      .field("gated", gated)
      .field("ok", speedup_ok);
  json.add(std::move(speedup));
  std::printf("online %ux%u speedup: %.0fx/event, %.0fx/batch (floor %s%.0fx)\n",
              servers, objects, speedup_event, speedup_batch,
              gated ? "" : "ungated ", speedup_floor);
  if (!speedup_ok) {
    std::fprintf(stderr,
                 "FAIL: online re-convergence on %ux%u only %.1fx cheaper "
                 "per event than from-scratch (floor %.0fx)\n",
                 servers, objects, speedup_event, speedup_floor);
  }

  // Byte-identity pass: oracle ON, fresh engine, fresh stream (different
  // seed so the two passes don't share a trajectory).  apply_events throws
  // std::logic_error on the first byte that differs from the
  // full-participation re-solve.
  bool identity_ok = true;
  std::string identity_why;
  std::uint64_t oracle_events = 0;
  std::uint64_t oracle_checks = 0;
  try {
    core::OnlineConfig oracle_cfg = cfg;
    oracle_cfg.differential_oracle = true;
    runtime::OnlineEventModel oracle_model = model;
    oracle_model.seed = 43;
    core::OnlineMechanism oracle_engine(p, oracle_cfg);
    runtime::OnlineEventSource oracle_source(oracle_engine, oracle_model);
    for (int b = 0; b < oracle_batches; ++b) {
      const std::vector<core::OnlineEvent> batch = oracle_source.next_batch();
      const core::BatchOutcome res = oracle_engine.apply_events(batch);
      oracle_events += res.events_applied;
      if (res.oracle_checked) ++oracle_checks;
    }
  } catch (const std::exception& e) {
    identity_ok = false;
    identity_why = e.what();
  }
  bench::JsonWriter::Record identity;
  identity.field("benchmark", "online_identity_check")
      .field("servers", static_cast<std::uint64_t>(servers))
      .field("objects", static_cast<std::uint64_t>(objects))
      .field("demand", "dispersed")
      .field("batches", static_cast<std::uint64_t>(oracle_batches))
      .field("events", oracle_events)
      .field("oracle_checks", oracle_checks)
      .field("ok", identity_ok);
  json.add(std::move(identity));
  if (identity_ok) {
    std::printf("online %ux%u identity: %llu oracle re-solves, all "
                "byte-identical\n",
                servers, objects,
                static_cast<unsigned long long>(oracle_checks));
  } else {
    std::fprintf(stderr,
                 "FAIL: online engine diverged from the full-participation "
                 "re-solve on %ux%u: %s\n",
                 servers, objects, identity_why.c_str());
  }
  return speedup_ok && identity_ok;
}

// ---------------------------------------------------------------------------
// Serving-layer family (DESIGN.md §13): srv::ServingEngine replays the same
// drifting synthetic request stream — millions of routed reads/writes — under
// each re-convergence policy and reports what the serving plane observes:
//  * serving_replay_run     — OnDrift: drift-triggered OnlineMechanism
//                             repair + bounded eviction; routing throughput,
//                             sampled query latency, the exact read-cost
//                             distribution, and the wire-byte split,
//  * serving_static_run     — solve once, never re-converge (the
//                             placement-quality floor under drift),
//  * serving_resolve_run    — cold full re-solve after every batch (what
//                             staying converged costs without the engine),
//  * serving_speedup        — resolve re-convergence seconds over OnDrift
//                             re-convergence seconds on identical streams,
//                             gated >= 10x at mech scale,
//  * serving_identity_check — the final OnDrift snapshot scanned cell for
//                             cell against the naive nearest-replica oracle.

/// Speedup floor, applied only at the scale it was calibrated for.
constexpr double kServingSpeedupFloorMech = 10.0;

struct ServingOutcome {
  std::unique_ptr<runtime::MessageBus> bus;
  std::unique_ptr<srv::ServingEngine> engine;
};

srv::ServingConfig serving_config(srv::ReconvergePolicy policy,
                                  runtime::MessageBus* bus) {
  srv::ServingConfig cfg;
  cfg.policy = policy;
  cfg.eviction_limit = 32;
  cfg.bus = bus;
  return cfg;
}

srv::WorkloadConfig serving_workload(std::uint32_t objects) {
  srv::WorkloadConfig w;
  w.requests_per_batch = 4096;
  w.mean_count = 8;
  w.drift_interval = 2;
  w.drift_fraction = 0.5;
  // Redirect 1/4 of the catalogue per step: the trigger's L1 signal scales
  // with the fraction of objects moved, so a fixed count would vanish at
  // mech scale and a mild schedule would sit inside the sampling-noise
  // floor for the whole stream.
  w.drift_objects = std::max<std::size_t>(16, objects / 4);
  w.seed = 1234;
  return w;
}

/// One full stream replay under `policy`; the stream is deterministic per
/// seed, so repetitions re-time identical work.  The bus outlives the engine
/// (the engine charges serving wire kinds to it during run_batch).
ServingOutcome run_serving_pass(const drp::Problem& p,
                                srv::ReconvergePolicy policy, int batches) {
  ServingOutcome out;
  out.bus = std::make_unique<runtime::MessageBus>(
      p, runtime::MessageBus::pick_centre(p));
  out.engine = std::make_unique<srv::ServingEngine>(
      drp::Problem(p), serving_config(policy, out.bus.get()));
  srv::SyntheticWorkload workload(
      out.engine->problem(),
      serving_workload(static_cast<std::uint32_t>(p.object_count())));
  std::vector<srv::Request> batch;
  for (int b = 0; b < batches; ++b) {
    workload.next_batch(batch);
    out.engine->run_batch(batch);
  }
  return out;
}

bool run_serving_family(bench::JsonWriter& json, const drp::Problem& p,
                        std::uint32_t servers, std::uint32_t objects,
                        int batches, int reps, double speedup_floor) {
  const auto run_best = [&](srv::ReconvergePolicy policy) {
    ServingOutcome best;
    for (int rep = 0; rep < reps; ++rep) {
      ServingOutcome out = run_serving_pass(p, policy, batches);
      if (!best.engine || out.engine->stats().total_seconds() <
                              best.engine->stats().total_seconds()) {
        best = std::move(out);
      }
    }
    return best;
  };

  const auto policy_row = [&](const char* name, const ServingOutcome& out,
                              bench::JsonWriter::Record* obs) {
    srv::ServingStats stats = out.engine->stats();  // summaries sort in place
    const bench::PercentileSummary query =
        bench::summarize_samples(stats.query_ns);
    const bench::PercentileSummary cost =
        bench::summarize_histogram(stats.read_cost_histogram);
    const runtime::MessageStats& wire = out.bus->stats();
    bench::JsonWriter::Record row;
    row.field("benchmark", name)
        .field("servers", static_cast<std::uint64_t>(servers))
        .field("objects", static_cast<std::uint64_t>(objects))
        .field("demand", "dispersed")
        .field("batches", stats.batches)
        .field("requests", stats.requests)
        .field("reads", stats.reads)
        .field("writes", stats.writes)
        .field("seconds", stats.total_seconds())
        .field("serve_seconds", stats.serve_seconds)
        .field("reconverge_seconds", stats.reconverge_seconds)
        .field("requests_per_second",
               stats.serve_seconds > 0.0
                   ? static_cast<double>(stats.requests) / stats.serve_seconds
                   : 0.0)
        .field("query_p50_ns", query.p50)
        .field("query_p99_ns", query.p99)
        .field("read_cost_mean", cost.mean)
        .field("read_cost_p99", cost.p99)
        .field("local_read_fraction",
               stats.reads > 0
                   ? static_cast<double>(stats.local_reads) /
                         static_cast<double>(stats.reads)
                   : 0.0)
        .field("units_moved", stats.read_units + stats.write_units)
        .field("installs", stats.installs)
        .field("drift_triggers", stats.drift_triggers)
        .field("reconverges", stats.reconverges)
        .field("repair_rounds", stats.repair_rounds)
        .field("replicas_evicted", stats.replicas_evicted)
        .field("demand_delta_cells", stats.demand_delta_cells)
        .field("route_bytes", wire.route_bytes)
        .field("delta_bytes", wire.delta_bytes)
        .field("install_bytes", wire.install_bytes);
    if (obs != nullptr) row.object_field("obs", *obs);
    json.add(std::move(row));
    std::printf("serving %ux%u %s: %llu requests, %.0f req/s, read cost "
                "%.2f mean / %.0f p99, %llu reconverges (%.3fs), %llu "
                "evicted\n",
                servers, objects, name,
                static_cast<unsigned long long>(stats.requests),
                stats.serve_seconds > 0.0
                    ? static_cast<double>(stats.requests) / stats.serve_seconds
                    : 0.0,
                cost.mean, cost.p99,
                static_cast<unsigned long long>(stats.reconverges),
                stats.reconverge_seconds,
                static_cast<unsigned long long>(stats.replicas_evicted));
  };

  // The system under test, instrumented; keep the best engine alive for the
  // identity scan below.
  const bench::ObsSnapshot before = bench::ObsSnapshot::take();
  const ServingOutcome ondrift = run_best(srv::ReconvergePolicy::OnDrift);
  const bench::ObsSnapshot after = bench::ObsSnapshot::take();
  bench::JsonWriter::Record obs = bench::obs_block(
      bench::serving_decisions(serving_config(srv::ReconvergePolicy::OnDrift,
                                              nullptr),
                               static_cast<std::uint64_t>(batches)),
      before, after, static_cast<std::uint64_t>(reps));
  policy_row("serving_replay_run", ondrift, &obs);

  const ServingOutcome stat = run_best(srv::ReconvergePolicy::Static);
  policy_row("serving_static_run", stat, nullptr);
  const ServingOutcome resolve = run_best(srv::ReconvergePolicy::EveryBatch);
  policy_row("serving_resolve_run", resolve, nullptr);

  // Re-convergence cost head to head on identical streams.  The gate also
  // requires OnDrift to have actually re-converged: a trigger that never
  // fires under this much drift would make the ratio vacuous while read
  // cost silently degrades toward the static floor.
  const double resolve_reconv = resolve.engine->stats().reconverge_seconds;
  const double ondrift_reconv = ondrift.engine->stats().reconverge_seconds;
  const std::uint64_t reconverges = ondrift.engine->stats().reconverges;
  const double speedup =
      ondrift_reconv > 0.0 ? resolve_reconv / ondrift_reconv : 0.0;
  const double total_speedup =
      ondrift.engine->stats().total_seconds() > 0.0
          ? resolve.engine->stats().total_seconds() /
                ondrift.engine->stats().total_seconds()
          : 0.0;
  const bool gated = speedup_floor > 0.0;
  const bool speedup_ok =
      !gated || (reconverges > 0 && speedup >= speedup_floor);
  bench::JsonWriter::Record sp;
  sp.field("benchmark", "serving_speedup")
      .field("servers", static_cast<std::uint64_t>(servers))
      .field("objects", static_cast<std::uint64_t>(objects))
      .field("demand", "dispersed")
      .field("resolve_reconverge_seconds", resolve_reconv)
      .field("ondrift_reconverge_seconds", ondrift_reconv)
      .field("ondrift_reconverges", reconverges)
      .field("speedup", speedup)
      .field("total_speedup", total_speedup)
      .field("floor", speedup_floor)
      .field("gated", gated)
      .field("ok", speedup_ok);
  json.add(std::move(sp));
  std::printf("serving %ux%u speedup: %.0fx re-convergence, %.1fx "
              "end-to-end (floor %s%.0fx)\n",
              servers, objects, speedup, total_speedup,
              gated ? "" : "ungated ", speedup_floor);
  if (!speedup_ok) {
    std::fprintf(stderr,
                 "FAIL: drift-triggered re-convergence on %ux%u only %.1fx "
                 "cheaper than re-solve-every-batch across %llu reconverges "
                 "(floor %.0fx)\n",
                 servers, objects, speedup,
                 static_cast<unsigned long long>(reconverges), speedup_floor);
  }

  // Byte-identity of the routing plane: every structural cell of the final
  // OnDrift snapshot must route exactly like the naive nearest-replica scan
  // over the live placement.
  bool identity_ok = true;
  std::string identity_why;
  std::uint64_t cells = 0;
  {
    const srv::RoutingSnapshot* snap = ondrift.engine->snapshot();
    const drp::ReplicaPlacement& placement = ondrift.engine->placement();
    const drp::Problem& q = ondrift.engine->problem();
    for (drp::ObjectIndex k = 0;
         identity_ok && k < q.object_count(); ++k) {
      const auto cell_servers = q.access.accessor_servers(k);
      for (std::size_t slot = 0; slot < cell_servers.size(); ++slot) {
        const srv::RouteDecision route =
            snap->route_read(k, static_cast<std::uint32_t>(slot));
        net::Cost best = std::numeric_limits<net::Cost>::max();
        for (const drp::ServerId r : placement.replicators(k)) {
          best = std::min(best, q.distance(cell_servers[slot], r));
        }
        if (route.distance != best ||
            !placement.is_replicator(route.server, k) ||
            q.distance(cell_servers[slot], route.server) != route.distance) {
          identity_ok = false;
          identity_why = "object " + std::to_string(k) + " slot " +
                         std::to_string(slot);
          break;
        }
        ++cells;
      }
    }
  }
  bench::JsonWriter::Record identity;
  identity.field("benchmark", "serving_identity_check")
      .field("servers", static_cast<std::uint64_t>(servers))
      .field("objects", static_cast<std::uint64_t>(objects))
      .field("demand", "dispersed")
      .field("cells", cells)
      .field("epoch", ondrift.engine->snapshot()->epoch())
      .field("ok", identity_ok);
  json.add(std::move(identity));
  if (identity_ok) {
    std::printf("serving %ux%u identity: %llu cells match the naive scan\n",
                servers, objects, static_cast<unsigned long long>(cells));
  } else {
    std::fprintf(stderr,
                 "FAIL: serving snapshot diverged from the naive "
                 "nearest-replica scan on %ux%u at %s\n",
                 servers, objects, identity_why.c_str());
  }
  return speedup_ok && identity_ok;
}

// ---------------------------------------------------------------------------
// Strategic family: core::strategic_audit on one instance —
//  * strategic_audit_run       — wall time of the full sweep (truthful run +
//                                one mechanism run per (agent, factor) trial
//                                + the collusion ring and its reversions),
//  * strategic_dominance_check — the exact per-round invariant: in no
//                                audited round did a misreporting agent's
//                                bid beat what truth would have realised
//                                (nonzero exit on violation),
//  * misreport_damage_run      — the same lies aimed at each demand-
//                                consuming baseline (plan on the lie, score
//                                on the truth),
//  * strategic_damage_check    — at least one baseline shows measurable
//                                damage (AGT-RAM rows are context, not
//                                gated: its allocation reacts to lies too,
//                                but lying is irrational under it).

bool run_strategic_family(bench::JsonWriter& json, const drp::Problem& p,
                          const char* demand, std::uint32_t servers,
                          std::uint32_t objects, int reps) {
  core::StrategicAuditConfig cfg;
  cfg.agents_to_probe = 2;
  cfg.inflate_factors = {2.0};
  cfg.deflate_factors = {0.0, 0.5};
  cfg.collusion_size = 3;

  const bench::ObsSnapshot before = bench::ObsSnapshot::take();
  double seconds = 1e30;
  core::StrategicAuditReport report;
  for (int rep = 0; rep < reps; ++rep) {
    common::Timer timer;
    core::StrategicAuditReport r = core::strategic_audit(p, cfg);
    const double s = timer.seconds();
    if (s < seconds) seconds = s;
    if (rep == 0) report = std::move(r);  // deterministic: all reps agree
  }
  const bench::ObsSnapshot after = bench::ObsSnapshot::take();

  std::size_t round_checks = 0;
  double min_round_margin = 0.0;
  for (const core::StrategicTrial& trial : report.trials) {
    round_checks += trial.rounds_checked;
    min_round_margin = std::min(min_round_margin, trial.min_round_margin);
  }
  bench::JsonWriter::Record run;
  run.field("benchmark", "strategic_audit_run")
      .field("servers", static_cast<std::uint64_t>(servers))
      .field("objects", static_cast<std::uint64_t>(objects))
      .field("demand", demand)
      .field("seconds", seconds)
      .field("trials", static_cast<std::uint64_t>(report.trials.size()))
      .field("rounds_checked", static_cast<std::uint64_t>(round_checks))
      .field("round_violations",
             static_cast<std::uint64_t>(report.total_round_violations))
      .field("min_round_margin", min_round_margin)
      .field("min_full_game_margin", report.min_full_game_margin)
      .field("truthful_revenue", report.collusion.truthful_revenue)
      .field("collusive_revenue", report.collusion.collusive_revenue)
      .object_field("obs",
                    bench::obs_block(bench::strategic_decisions(cfg), before,
                                     after, static_cast<std::uint64_t>(reps)));
  json.add(std::move(run));
  std::printf("strategic %ux%u %s: %zu trials, %zu round checks, %zu "
              "violations, %.4fs\n",
              servers, objects, demand, report.trials.size(), round_checks,
              report.total_round_violations, seconds);

  const bool dominance_ok = report.dominance_holds;
  bench::JsonWriter::Record check;
  check.field("benchmark", "strategic_dominance_check")
      .field("servers", static_cast<std::uint64_t>(servers))
      .field("objects", static_cast<std::uint64_t>(objects))
      .field("demand", demand)
      .field("trials", static_cast<std::uint64_t>(report.trials.size()))
      .field("round_violations",
             static_cast<std::uint64_t>(report.total_round_violations))
      .field("ok", dominance_ok);
  json.add(std::move(check));
  if (!dominance_ok) {
    std::fprintf(stderr,
                 "FAIL: per-round dominance violated on %ux%u %s (%zu "
                 "violations across %zu trials)\n",
                 servers, objects, demand, report.total_round_violations,
                 report.trials.size());
  }

  // The same lies aimed at the baselines: zero out every probed agent's
  // demand claim (the strongest misreport the audit swept) and let each
  // demand-consuming algorithm plan on the lie.
  core::StrategyProfile lie;
  {
    std::vector<drp::ServerId> probed;
    for (const core::StrategicTrial& trial : report.trials) {
      if (probed.empty() || probed.back() != trial.agent) {
        probed.push_back(trial.agent);
      }
    }
    for (const drp::ServerId who : probed) {
      lie.deviations.push_back(
          core::Deviation{who, core::DeviationKind::Zero, 1.0});
    }
  }
  const std::vector<std::string> victims = {"Greedy", "GRA", "DA", "EA",
                                            "AGT-RAM"};
  const auto damage_rows =
      baselines::misreport_damage(p, lie, victims, /*seed=*/7);
  double max_damage = 0.0;
  bool any_damage = false;
  for (const auto& row : damage_rows) {
    const bool gated = row.algorithm != "AGT-RAM";
    const double tolerance =
        1e-6 * std::max(1.0, std::abs(row.truthful_savings));
    if (gated && row.damage() > tolerance) {
      any_damage = true;
      max_damage = std::max(max_damage, row.damage());
    }
    bench::JsonWriter::Record damage;
    damage.field("benchmark", "misreport_damage_run")
        .field("algorithm", row.algorithm)
        .field("servers", static_cast<std::uint64_t>(servers))
        .field("objects", static_cast<std::uint64_t>(objects))
        .field("demand", demand)
        .field("truthful_savings", row.truthful_savings)
        .field("misreport_savings", row.misreport_savings)
        .field("damage", row.damage())
        .field("skipped_infeasible",
               static_cast<std::uint64_t>(row.skipped_infeasible))
        .field("gated", gated);
    json.add(std::move(damage));
    std::printf("  misreport damage %-8s: savings %.4f -> %.4f (%.4f lost)\n",
                row.algorithm.c_str(), row.truthful_savings,
                row.misreport_savings, row.damage());
  }
  bench::JsonWriter::Record damage_check;
  damage_check.field("benchmark", "strategic_damage_check")
      .field("servers", static_cast<std::uint64_t>(servers))
      .field("objects", static_cast<std::uint64_t>(objects))
      .field("demand", demand)
      .field("max_damage", max_damage)
      .field("ok", any_damage);
  json.add(std::move(damage_check));
  if (!any_damage) {
    std::fprintf(stderr,
                 "FAIL: no baseline showed measurable misreport damage on "
                 "%ux%u %s\n",
                 servers, objects, demand);
  }
  return dominance_ok && any_damage;
}

// ---------------------------------------------------------------------------
// Glauber family: the distributed heat-bath baseline —
//  * glauber_run            — Delta pricing (timed, wired to a MessageBus)
//                             and the naive mutate-measure-undo oracle,
//  * glauber_identity_check — Delta and Naive walk bit-identical chains,
//                             identical seeds give identical trajectories,
//                             and every proposal/decision is accounted on
//                             the bus with nonzero wire bytes (nonzero exit
//                             when any of the three fails).

bool run_glauber_family(bench::JsonWriter& json, const drp::Problem& p,
                        const char* demand, std::uint32_t servers,
                        std::uint32_t objects, int sweeps, int reps) {
  const double initial = drp::CostModel::initial_cost(p);
  baselines::GlauberConfig cfg;
  cfg.seed = 7;
  cfg.sweeps = static_cast<std::size_t>(sweeps);

  struct Timed {
    double seconds = 1e30;
    double final_cost = 0.0;
    std::size_t proposals = 0;
    std::size_t accepted = 0;
  };
  std::optional<drp::ReplicaPlacement> placements[2];
  Timed timed[2];  // [0] = delta, [1] = naive oracle
  runtime::MessageStats wire_stats;
  for (int v = 0; v < 2; ++v) {
    baselines::GlauberConfig variant = cfg;
    variant.eval =
        v == 0 ? baselines::EvalPath::Delta : baselines::EvalPath::Naive;
    const int runs = v == 0 ? reps : 1;  // the oracle re-prices everything
    const bench::ObsSnapshot before = bench::ObsSnapshot::take();
    for (int rep = 0; rep < runs; ++rep) {
      runtime::MessageBus bus(p, runtime::MessageBus::pick_centre(p));
      variant.bus = &bus;
      common::Timer timer;
      baselines::GlauberResult result = baselines::run_glauber(p, variant);
      const double s = timer.seconds();
      if (s < timed[v].seconds) timed[v].seconds = s;
      if (rep == 0) {  // deterministic: every rep lands on the same chain
        timed[v].final_cost = result.final_cost;
        timed[v].proposals = result.proposals;
        timed[v].accepted = result.accepted;
        placements[v].emplace(std::move(result.placement));
        wire_stats = bus.stats();
      }
    }
    const bench::ObsSnapshot after = bench::ObsSnapshot::take();

    bench::JsonWriter::Record run;
    run.field("benchmark", "glauber_run")
        .field("servers", static_cast<std::uint64_t>(servers))
        .field("objects", static_cast<std::uint64_t>(objects))
        .field("demand", demand)
        .field("eval", v == 0 ? "delta" : "naive")
        .field("seconds", timed[v].seconds)
        .field("sweeps", static_cast<std::uint64_t>(sweeps))
        .field("proposals", static_cast<std::uint64_t>(timed[v].proposals))
        .field("accepted", static_cast<std::uint64_t>(timed[v].accepted))
        .field("final_cost", timed[v].final_cost)
        .field("savings",
               initial > 0.0 ? (initial - timed[v].final_cost) / initial
                             : 0.0)
        .field("wire_proposal_msgs", wire_stats.glauber_proposal_messages)
        .field("wire_proposal_bytes", wire_stats.glauber_proposal_bytes)
        .field("wire_decision_msgs", wire_stats.glauber_decision_messages)
        .field("wire_decision_bytes", wire_stats.glauber_decision_bytes)
        .object_field(
            "obs", bench::obs_block(bench::glauber_decisions(variant), before,
                                    after,
                                    static_cast<std::uint64_t>(runs)));
    json.add(std::move(run));
    std::printf("glauber %ux%u %s %s: %.4fs, %zu proposals, %zu accepted, "
                "cost %.0f\n",
                servers, objects, demand, v == 0 ? "delta" : "naive",
                timed[v].seconds, timed[v].proposals, timed[v].accepted,
                timed[v].final_cost);
  }

  // Identity: the naive oracle consumed the same rng stream, so everything
  // downstream of the pricing must match bit for bit.
  bool identity_ok = timed[0].final_cost == timed[1].final_cost &&
                     timed[0].proposals == timed[1].proposals &&
                     timed[0].accepted == timed[1].accepted;
  for (drp::ObjectIndex k = 0; identity_ok && k < p.object_count(); ++k) {
    const auto a = placements[0]->replicators(k);
    const auto b = placements[1]->replicators(k);
    identity_ok = a.size() == b.size() &&
                  std::equal(a.begin(), a.end(), b.begin());
  }

  // Determinism: a fresh run with the same seed repeats the chain exactly.
  baselines::GlauberConfig repeat = cfg;
  repeat.eval = baselines::EvalPath::Delta;
  const baselines::GlauberResult again = baselines::run_glauber(p, repeat);
  const bool deterministic = again.final_cost == timed[0].final_cost &&
                             again.proposals == timed[0].proposals &&
                             again.accepted == timed[0].accepted;

  // Wire accounting: one proposal up and one decision back per evaluated
  // flip, nonzero per-kind bytes (the baseline runs over the bus, not
  // beside it).
  const bool wire_ok =
      wire_stats.glauber_proposal_messages == timed[1].proposals &&
      wire_stats.glauber_decision_messages == timed[1].proposals &&
      wire_stats.glauber_proposal_bytes > 0 &&
      wire_stats.glauber_decision_bytes > 0;

  const bool ok = identity_ok && deterministic && wire_ok;
  bench::JsonWriter::Record check;
  check.field("benchmark", "glauber_identity_check")
      .field("servers", static_cast<std::uint64_t>(servers))
      .field("objects", static_cast<std::uint64_t>(objects))
      .field("demand", demand)
      .field("identity_ok", identity_ok)
      .field("deterministic", deterministic)
      .field("wire_ok", wire_ok)
      .field("ok", ok);
  json.add(std::move(check));
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: glauber %ux%u %s: identity=%d deterministic=%d "
                 "wire=%d\n",
                 servers, objects, demand, identity_ok ? 1 : 0,
                 deterministic ? 1 : 0, wire_ok ? 1 : 0);
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Tree family: a TopologyKind::Tree instance at the mech dimensions —
//  * tree_placement_run    — Benoit–Rehn–Robert exact DP and greedy under
//                            the closest-ancestor policy, timed, plus
//                            AGT-RAM on the same instance (strategy
//                            "agt-ram") for quality context,
//  * tree_optimality_check — the exact DP's policy cost never exceeds
//                            greedy's (nonzero exit on violation).

bool run_tree_family(bench::JsonWriter& json, std::uint32_t servers,
                     std::uint32_t objects, int reps) {
  drp::InstanceSpec spec;
  spec.servers = servers;
  spec.objects = objects;
  spec.seed = 42;
  spec.topology = net::TopologyKind::Tree;
  spec.tree_shape = net::TreeShape::Random;
  spec.instance.capacity_fraction = 0.05;
  spec.instance.rw_ratio = 0.9;
  const drp::Problem p = drp::make_instance(spec);
  const net::Graph tree = drp::make_topology(spec);
  const double initial = drp::CostModel::initial_cost(p);

  double policy_cost[2] = {0.0, 0.0};  // [0] = exact, [1] = greedy
  for (const bool exact : {true, false}) {
    const bench::ObsSnapshot before = bench::ObsSnapshot::take();
    double seconds = 1e30;
    double replayed_cost = 0.0;
    std::size_t skipped = 0;
    for (int rep = 0; rep < reps; ++rep) {
      common::Timer timer;
      const baselines::TreePlacementResult result =
          baselines::run_tree_placement(p, tree, {.exact = exact});
      const double s = timer.seconds();
      if (s < seconds) seconds = s;
      policy_cost[exact ? 0 : 1] = result.policy_cost;
      replayed_cost = drp::CostModel::total_cost(result.placement);
      skipped = result.skipped_infeasible;
    }
    const bench::ObsSnapshot after = bench::ObsSnapshot::take();

    bench::JsonWriter::Record run;
    run.field("benchmark", "tree_placement_run")
        .field("servers", static_cast<std::uint64_t>(servers))
        .field("objects", static_cast<std::uint64_t>(objects))
        .field("demand", "tree")
        .field("variant", exact ? "exact" : "greedy")
        .field("seconds", seconds)
        .field("policy_cost", policy_cost[exact ? 0 : 1])
        .field("policy_savings",
               initial > 0.0
                   ? (initial - policy_cost[exact ? 0 : 1]) / initial
                   : 0.0)
        .field("replayed_cost", replayed_cost)
        .field("skipped_infeasible", static_cast<std::uint64_t>(skipped))
        .object_field(
            "obs",
            bench::obs_block(
                bench::tree_decisions(spec.tree_shape, spec.tree_arity,
                                      exact),
                before, after, static_cast<std::uint64_t>(reps)));
    json.add(std::move(run));
    std::printf("tree %ux%u %s: %.4fs, policy cost %.0f (%.1f%% savings)\n",
                servers, objects, exact ? "exact" : "greedy", seconds,
                policy_cost[exact ? 0 : 1],
                initial > 0.0
                    ? 100.0 * (initial - policy_cost[exact ? 0 : 1]) / initial
                    : 0.0);
  }

  // AGT-RAM on the same tree instance: free of the ancestor restriction,
  // so its OTC is the number the policy references contextualise.
  double agt_seconds = 1e30;
  double agt_cost = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    common::Timer timer;
    const core::MechanismResult result = core::run_agt_ram(p);
    const double s = timer.seconds();
    if (s < agt_seconds) agt_seconds = s;
    agt_cost = drp::CostModel::total_cost(result.placement);
  }
  bench::JsonWriter::Record agt;
  agt.field("benchmark", "tree_placement_run")
      .field("servers", static_cast<std::uint64_t>(servers))
      .field("objects", static_cast<std::uint64_t>(objects))
      .field("demand", "tree")
      .field("variant", "agt-ram")
      .field("seconds", agt_seconds)
      .field("policy_cost", agt_cost)
      .field("policy_savings",
             initial > 0.0 ? (initial - agt_cost) / initial : 0.0);
  json.add(std::move(agt));
  std::printf("tree %ux%u agt-ram: %.4fs, cost %.0f\n", servers, objects,
              agt_seconds, agt_cost);

  const bool ok = policy_cost[0] <=
                  policy_cost[1] * (1.0 + 1e-9) + 1e-9;
  bench::JsonWriter::Record check;
  check.field("benchmark", "tree_optimality_check")
      .field("servers", static_cast<std::uint64_t>(servers))
      .field("objects", static_cast<std::uint64_t>(objects))
      .field("demand", "tree")
      .field("exact_policy_cost", policy_cost[0])
      .field("greedy_policy_cost", policy_cost[1])
      .field("agtram_cost", agt_cost)
      .field("ok", ok);
  json.add(std::move(check));
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: tree exact DP (%.2f) beaten by greedy (%.2f) on "
                 "%ux%u\n",
                 policy_cost[0], policy_cost[1], servers, objects);
  }
  return ok;
}

int write_mechanism_trajectory(const TrajectoryOptions& opts) {
  bench::JsonWriter json;
  bool parallel_ok = true;

  std::unique_ptr<bench::JsonlTrace> trace;
  if (!opts.obs_trace_path.empty()) {
    trace = std::make_unique<bench::JsonlTrace>(opts.obs_trace_path);
    if (!trace->ok()) {
      std::fprintf(stderr, "failed to open obs trace %s\n",
                   opts.obs_trace_path.c_str());
      return 1;
    }
  }

  for (const bool dispersed : {false, true}) {
    const char* demand = dispersed ? "dispersed" : "trace";
    const drp::Problem& p =
        dispersed ? dispersed_instance(opts.mech_servers, opts.mech_objects)
                  : cached_instance(opts.mech_servers, opts.mech_objects);
    const FamilyReport family =
        run_family(json, p, demand, opts.mech_servers, opts.mech_objects,
                   opts.reps, trace.get());
    parallel_ok = parallel_ok && family.parallel_ok;
  }

  if (opts.paper_scale) {
    // The paper's own scale (Section 4: M up to ~3700, N 25000), dispersed
    // demand — |readers(k)| << M, the regime the whole dirty-set +
    // CSR-flat design targets.
    common::Timer build_timer;
    const drp::Problem& p =
        dispersed_instance(opts.paper_servers, opts.paper_objects);
    std::printf("paper-scale instance built in %.1fs: %s\n",
                build_timer.seconds(), p.summary().c_str());
    const FamilyReport family =
        run_family(json, p, "dispersed", opts.paper_servers,
                   opts.paper_objects, opts.paper_reps, trace.get());
    parallel_ok = parallel_ok && family.parallel_ok;
  }

  bool kernels_ok = true;
  if (opts.kernels) {
    // Passes are fixed per scale so seconds stay comparable run to run; the
    // paper-scale family reuses the dispersed instance the mechanism rows
    // just built.
    kernels_ok = run_kernel_family(
        json, cached_instance(opts.mech_servers, opts.mech_objects), "trace",
        opts.mech_servers, opts.mech_objects, opts.reps, /*passes=*/32);
    if (opts.paper_scale) {
      kernels_ok = run_kernel_family(
                       json,
                       dispersed_instance(opts.paper_servers,
                                          opts.paper_objects),
                       "dispersed", opts.paper_servers, opts.paper_objects,
                       opts.paper_reps, /*passes=*/32) &&
                   kernels_ok;
    }
  }

  bool baselines_ok = true;
  if (opts.baselines) {
    const std::vector<std::string> all = {"Greedy",  "GRA",         "Ae-Star",
                                          "Selfish", "LocalSearch", "SA"};
    for (const bool dispersed : {false, true}) {
      const char* demand = dispersed ? "dispersed" : "trace";
      const drp::Problem& p =
          dispersed ? dispersed_instance(opts.mech_servers, opts.mech_objects)
                    : cached_instance(opts.mech_servers, opts.mech_objects);
      baselines_ok = run_baseline_family(json, p, demand, opts.mech_servers,
                                         opts.mech_objects, all,
                                         opts.baseline_reps) &&
                     baselines_ok;
    }
    if (opts.paper_scale) {
      // The issue's acceptance gate: Greedy and GRA delta-vs-naive at the
      // paper's own dimensions.  Naive oracles are slow here, so best-of-1.
      const std::vector<std::string> gate = {"Greedy", "GRA"};
      const drp::Problem& p =
          dispersed_instance(opts.paper_servers, opts.paper_objects);
      baselines_ok = run_baseline_family(json, p, "dispersed",
                                         opts.paper_servers,
                                         opts.paper_objects, gate,
                                         /*reps=*/1) &&
                     baselines_ok;
    }
  }

  bool regional_ok = true;
  if (opts.regional) {
    regional_ok = run_regional_engine_family(
        json, dispersed_instance(opts.mech_servers, opts.mech_objects),
        "dispersed", opts.mech_servers, opts.mech_objects,
        /*include_hierarchical=*/true, opts.reps);
    if (opts.paper_scale) {
      regional_ok = run_regional_engine_family(
                        json,
                        dispersed_instance(opts.paper_servers,
                                           opts.paper_objects),
                        "dispersed", opts.paper_servers, opts.paper_objects,
                        /*include_hierarchical=*/false, opts.regional_reps) &&
                    regional_ok;
    }
    regional_ok = run_regional_tiled_family(json, opts) && regional_ok;
  }

  bool online_ok = true;
  if (opts.online) {
    online_ok = run_online_family(
        json, dispersed_instance(opts.mech_servers, opts.mech_objects),
        opts.mech_servers, opts.mech_objects, opts.online_batches,
        opts.online_oracle_batches, opts.online_reps,
        opts.mech_servers >= 256 ? kOnlineSpeedupFloorMech : 0.0);
    if (opts.paper_scale) {
      // Paper scale: best-of-1 (the stream alone is minutes of repair
      // rounds) and a shorter oracle pass — each oracle check is a full
      // warm re-solve with all M agents polled.
      online_ok = run_online_family(
                      json,
                      dispersed_instance(opts.paper_servers,
                                         opts.paper_objects),
                      opts.paper_servers, opts.paper_objects,
                      opts.online_batches,
                      std::min(opts.online_oracle_batches, 4),
                      /*reps=*/1, kOnlineSpeedupFloorPaper) &&
                  online_ok;
    }
  }

  bool serving_ok = true;
  if (opts.serving) {
    // Mech scale only: the resolve baseline pays a cold solve per batch, so
    // paper scale would spend minutes re-measuring what online_fromscratch
    // already pins down.
    serving_ok = run_serving_family(
        json, dispersed_instance(opts.mech_servers, opts.mech_objects),
        opts.mech_servers, opts.mech_objects, opts.serving_batches,
        opts.serving_reps,
        opts.mech_servers >= 256 ? kServingSpeedupFloorMech : 0.0);
  }

  // Mech scale only for the three new families: the strategic audit is
  // O(trials) mechanism runs and the Glauber/naive oracle re-prices every
  // proposal, so paper scale would dominate the whole trajectory.
  bool strategic_ok = true;
  if (opts.strategic) {
    strategic_ok = run_strategic_family(
        json, dispersed_instance(opts.mech_servers, opts.mech_objects),
        "dispersed", opts.mech_servers, opts.mech_objects, opts.reps);
  }

  bool glauber_ok = true;
  if (opts.glauber) {
    glauber_ok = run_glauber_family(
        json, dispersed_instance(opts.mech_servers, opts.mech_objects),
        "dispersed", opts.mech_servers, opts.mech_objects,
        opts.glauber_sweeps, opts.reps);
  }

  bool tree_ok = true;
  if (opts.tree) {
    tree_ok = run_tree_family(json, opts.mech_servers, opts.mech_objects,
                              opts.reps);
  }

  if (trace) {
    trace->close();
    std::printf("obs trace written to %s\n", opts.obs_trace_path.c_str());
  }
  if (json.write_file(opts.json_path, "micro_core")) {
    std::printf("mechanism trajectory written to %s\n",
                opts.json_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", opts.json_path.c_str());
    return 1;
  }
  if (!parallel_ok) {
    std::fprintf(stderr,
                 "parallel execution policy violated (see "
                 "parallel_vs_serial_check rows)\n");
    return 1;
  }
  if (!baselines_ok) {
    std::fprintf(stderr,
                 "baseline delta-vs-naive policy violated (see "
                 "baseline_identity_check / baseline_parallel_check rows)\n");
    return 1;
  }
  if (!kernels_ok) {
    std::fprintf(stderr,
                 "kernel FP contract violated (see kernel_identity_check "
                 "rows)\n");
    return 1;
  }
  if (!regional_ok) {
    std::fprintf(stderr,
                 "regional sharded-execution policy violated (see "
                 "regional_identity_check / regional_parallel_check rows)\n");
    return 1;
  }
  if (!online_ok) {
    std::fprintf(stderr,
                 "online re-convergence policy violated (see online_speedup "
                 "/ online_identity_check rows)\n");
    return 1;
  }
  if (!serving_ok) {
    std::fprintf(stderr,
                 "serving-layer policy violated (see serving_speedup / "
                 "serving_identity_check rows)\n");
    return 1;
  }
  if (!strategic_ok) {
    std::fprintf(stderr,
                 "strategic-agent policy violated (see "
                 "strategic_dominance_check / strategic_damage_check rows)\n");
    return 1;
  }
  if (!glauber_ok) {
    std::fprintf(stderr,
                 "glauber baseline policy violated (see "
                 "glauber_identity_check rows)\n");
    return 1;
  }
  if (!tree_ok) {
    std::fprintf(stderr,
                 "tree-placement optimality violated (see "
                 "tree_optimality_check rows)\n");
    return 1;
  }
  return 0;
}

/// Strips `--key=value` scale flags (ours) from argv before google-benchmark
/// parses the rest.  Returns false on a malformed flag.
bool parse_trajectory_args(int& argc, char** argv, TrajectoryOptions& opts) {
  int out = 1;
  bool ok = true;
  const auto value_of = [](const char* arg, const char* key,
                           const char** value) {
    const std::size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') {
      *value = arg + n + 1;
      return true;
    }
    return false;
  };
  const auto parse_u32_list = [](const char* v,
                                 std::vector<std::uint32_t>& list) {
    list.clear();
    while (*v != '\0') {
      char* end = nullptr;
      const unsigned long x = std::strtoul(v, &end, 10);
      if (end == v || x == 0) return false;
      list.push_back(static_cast<std::uint32_t>(x));
      if (*end == ',') {
        v = end + 1;
      } else if (*end == '\0') {
        v = end;
      } else {
        return false;
      }
    }
    return !list.empty();
  };
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (value_of(argv[i], "--mech-servers", &v)) {
      opts.mech_servers = static_cast<std::uint32_t>(std::atoi(v));
    } else if (value_of(argv[i], "--mech-objects", &v)) {
      opts.mech_objects = static_cast<std::uint32_t>(std::atoi(v));
    } else if (value_of(argv[i], "--paper-servers", &v)) {
      opts.paper_servers = static_cast<std::uint32_t>(std::atoi(v));
    } else if (value_of(argv[i], "--paper-objects", &v)) {
      opts.paper_objects = static_cast<std::uint32_t>(std::atoi(v));
    } else if (value_of(argv[i], "--paper-scale", &v)) {
      opts.paper_scale = std::atoi(v) != 0;
    } else if (value_of(argv[i], "--reps", &v)) {
      opts.reps = std::atoi(v);
    } else if (value_of(argv[i], "--paper-reps", &v)) {
      opts.paper_reps = std::atoi(v);
    } else if (value_of(argv[i], "--baselines", &v)) {
      opts.baselines = std::atoi(v) != 0;
    } else if (value_of(argv[i], "--baseline-reps", &v)) {
      opts.baseline_reps = std::atoi(v);
    } else if (value_of(argv[i], "--kernels", &v)) {
      opts.kernels = std::atoi(v) != 0;
    } else if (value_of(argv[i], "--regional", &v)) {
      opts.regional = std::atoi(v) != 0;
    } else if (value_of(argv[i], "--regional-servers", &v)) {
      ok = parse_u32_list(v, opts.regional_servers) && ok;
    } else if (value_of(argv[i], "--regional-regions", &v)) {
      ok = parse_u32_list(v, opts.regional_regions) && ok;
    } else if (value_of(argv[i], "--regional-budget-mb", &v)) {
      opts.regional_budget_mb = std::atof(v);
    } else if (value_of(argv[i], "--regional-reps", &v)) {
      opts.regional_reps = std::atoi(v);
    } else if (value_of(argv[i], "--online", &v)) {
      opts.online = std::atoi(v) != 0;
    } else if (value_of(argv[i], "--online-batches", &v)) {
      opts.online_batches = std::atoi(v);
    } else if (value_of(argv[i], "--online-oracle-batches", &v)) {
      opts.online_oracle_batches = std::atoi(v);
    } else if (value_of(argv[i], "--online-reps", &v)) {
      opts.online_reps = std::atoi(v);
    } else if (value_of(argv[i], "--serving", &v)) {
      opts.serving = std::atoi(v) != 0;
    } else if (value_of(argv[i], "--serving-batches", &v)) {
      opts.serving_batches = std::atoi(v);
    } else if (value_of(argv[i], "--serving-reps", &v)) {
      opts.serving_reps = std::atoi(v);
    } else if (value_of(argv[i], "--strategic", &v)) {
      opts.strategic = std::atoi(v) != 0;
    } else if (value_of(argv[i], "--glauber", &v)) {
      opts.glauber = std::atoi(v) != 0;
    } else if (value_of(argv[i], "--glauber-sweeps", &v)) {
      opts.glauber_sweeps = std::atoi(v);
    } else if (value_of(argv[i], "--tree", &v)) {
      opts.tree = std::atoi(v) != 0;
    } else if (value_of(argv[i], "--json", &v)) {
      opts.json_path = v;
    } else if (value_of(argv[i], "--obs-trace", &v)) {
      opts.obs_trace_path = v;
    } else {
      argv[out++] = argv[i];  // not ours — leave for google-benchmark
      continue;
    }
    if (v == nullptr || *v == '\0') ok = false;
  }
  argc = out;
  return ok && opts.mech_servers > 0 && opts.mech_objects > 0 &&
         opts.reps > 0 && opts.paper_reps > 0 && opts.baseline_reps > 0 &&
         opts.regional_reps > 0 && opts.regional_budget_mb > 0.0 &&
         opts.online_batches > 0 && opts.online_oracle_batches > 0 &&
         opts.online_reps > 0 && opts.serving_batches > 0 &&
         opts.serving_reps > 0 && opts.glauber_sweeps > 0 &&
         (!opts.paper_scale ||
          (opts.paper_servers > 0 && opts.paper_objects > 0));
}

}  // namespace

int main(int argc, char** argv) {
  TrajectoryOptions opts;
  if (!parse_trajectory_args(argc, argv, opts)) {
    std::fprintf(stderr, "malformed trajectory flag (--key=value)\n");
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return write_mechanism_trajectory(opts);
}
